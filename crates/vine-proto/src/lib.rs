//! # vine-proto
//!
//! The wire protocol between the three live processes of the paper's
//! architecture (§3.4, §3.5): the **manager**, its **workers**, and the
//! **library daemons** each worker hosts. Two message planes:
//!
//! * [`messages`] — manager ↔ worker: join/leave with capacity, library
//!   install/ready/startup-failed, invocation dispatch/result/requeue,
//!   stateless tasks, and file-staging directives;
//! * [`library`] — worker ↔ library: the §3.4 step 1–4 daemon protocol.
//!
//! Federated deployments add a third plane, [`routing`] — router ↔ shard:
//! shard join/leave, submission forwarding, and load reports.
//!
//! Both planes are plain serde types with no substrate baked in. The
//! in-process runtime moves them over channels untouched; the TCP runtime
//! moves them through [`framing`] — a length-prefixed codec with explicit
//! maximum-frame, truncation, and garbage-frame error paths — so a worker
//! can live in a different OS process (or machine) from its manager.

pub mod framing;
pub mod library;
pub mod messages;
pub mod routing;

pub use framing::{
    decode_frame, encode_frame, read_frame, write_frame, Frame, FrameDecoder, FrameError, MAX_FRAME,
};
pub use library::{LibraryToWorker, WorkerToLibrary};
pub use messages::{CompiledBlob, LibraryImage, LibrarySetup, ManagerToWorker, WorkerToManager};
pub use routing::{render_shard_stats, RouterToShard, ShardStats, ShardToRouter};
