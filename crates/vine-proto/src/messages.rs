//! The manager ↔ worker protocol plane (paper §3.4 steps 1–4, §3.5).
//!
//! The manager is the only coordinator; workers are peers that join with a
//! capacity announcement, receive library installs and work dispatches,
//! and report readiness and results. Every message is substrate-neutral:
//! the in-process backend moves them over channels, the TCP backend
//! through [`crate::framing`].

use serde::{Deserialize, Serialize};
use vine_core::context::FileRef;
use vine_core::ids::{ContentHash, LibraryInstanceId, WorkerId};
use vine_core::resources::Resources;
use vine_core::task::{ExecMode, FunctionCall, Outcome, TaskSpec, WorkUnit};

/// A context-setup directive shipped with a library image: the named
/// function is called once with the serialized arguments when the daemon
/// boots (§2.2.1 element 4, Fig 5's `create_library_from_functions`).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LibrarySetup {
    pub function: String,
    pub args_blob: Vec<u8>,
}

/// A compiled library module, content-addressed by the digest of the
/// source it was compiled from. The manager compiles once per distinct
/// source at install time; workers intern the bytes by digest so many
/// instances of one library share one copy, and daemons boot by executing
/// the image instead of re-parsing the source.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CompiledBlob {
    pub source_digest: ContentHash,
    pub bytes: Vec<u8>,
}

/// Everything a worker needs to boot a library daemon (what the manager
/// ships: code + setup + environment identity).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LibraryImage {
    pub instance: LibraryInstanceId,
    /// vine-lang source of the library's module (functions + setup).
    pub source: String,
    /// Serialized functions with no source form, reconstructed on boot.
    pub serialized_functions: Vec<Vec<u8>>,
    /// Context setup to run once on boot, if the library declares one.
    pub setup: Option<LibrarySetup>,
    pub default_mode: ExecMode,
    /// Bytecode compiled from `source` at install time, if the manager
    /// produced one. Daemons without it fall back to parsing the source.
    pub compiled: Option<CompiledBlob>,
}

/// Messages the manager sends a worker.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ManagerToWorker {
    /// Handshake reply: the manager admits the worker under this id.
    Welcome { worker: WorkerId },
    /// Stage the listed context files, then boot a library instance and
    /// run its context setup (§3.4 steps 1–2). The worker answers with
    /// [`WorkerToManager::LibraryReady`] or
    /// [`WorkerToManager::LibraryFailed`].
    InstallLibrary {
        image: LibraryImage,
        /// Files the worker's cache is missing (file-transfer directive).
        stage: Vec<FileRef>,
    },
    /// Remove an empty library instance to reclaim resources (§3.5.2).
    RemoveLibrary { instance: LibraryInstanceId },
    /// Dispatch an invocation to a ready library instance (§3.4 step 3).
    Invoke {
        instance: LibraryInstanceId,
        call: FunctionCall,
    },
    /// Stage the listed inputs, then run a stateless task (the L1/L2
    /// whole-worker path).
    RunTask { task: TaskSpec, stage: Vec<FileRef> },
    /// Drain in-flight work and disconnect.
    Shutdown,
}

/// Messages a worker sends the manager.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum WorkerToManager {
    /// Handshake: announce capacity and ask to join the cluster (§3.5).
    /// Answered with [`ManagerToWorker::Welcome`].
    Join { resources: Resources },
    /// A library instance finished context setup and serves invocations.
    LibraryReady { instance: LibraryInstanceId },
    /// A library instance failed to boot; it holds no resources.
    LibraryFailed {
        instance: LibraryInstanceId,
        error: String,
    },
    /// A dispatched unit finished (success or execution failure).
    UnitDone { outcome: Outcome },
    /// The worker cannot execute a dispatched unit through no fault of
    /// the unit itself (e.g. the target instance vanished in an eviction
    /// race); the manager should reschedule it elsewhere.
    Requeue { unit: WorkUnit },
    /// Graceful leave: the worker is about to disconnect.
    Leave,
}
