//! Length-prefixed framing for protocol messages on byte streams.
//!
//! Wire format, per frame:
//!
//! ```text
//! +----------------+----------------------------------+
//! | length: u32 LE | payload: `length` bytes of JSON  |
//! +----------------+----------------------------------+
//! ```
//!
//! The payload is the serde encoding of one message (this workspace's
//! serde shim renders JSON text). Frames are self-delimiting, so a reader
//! never needs lookahead, and every failure mode is explicit:
//!
//! * a stream that ends **between** frames is a clean close
//!   ([`FrameError::Closed`] — how a worker's death is observed);
//! * a stream that ends **inside** a header or payload is
//!   [`FrameError::Truncated`];
//! * a header announcing more than [`MAX_FRAME`] bytes is
//!   [`FrameError::Oversized`] and is rejected *before* any allocation —
//!   a garbage header cannot make the receiver allocate gigabytes;
//! * a payload that is not valid UTF-8/JSON or does not decode to the
//!   expected message type is [`FrameError::Malformed`].

use crate::messages::ManagerToWorker;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::sync::Arc;

/// Largest payload a frame may carry (64 MiB). Library images ship whole
/// module sources and serialized functions, so frames are allowed to be
/// large — but never unbounded.
pub const MAX_FRAME: usize = 64 * 1024 * 1024;

/// Every way reading or writing a frame can fail.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the stream cleanly on a frame boundary.
    Closed,
    /// The stream ended mid-header or mid-payload.
    Truncated { expected: usize, got: usize },
    /// The header announced a payload larger than [`MAX_FRAME`] (or an
    /// encoder was asked to produce one).
    Oversized { len: usize, max: usize },
    /// The payload was not a valid encoding of the expected message.
    Malformed(String),
    /// The underlying transport failed.
    Io(std::io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "stream closed"),
            FrameError::Truncated { expected, got } => {
                write!(f, "truncated frame: expected {expected} bytes, got {got}")
            }
            FrameError::Oversized { len, max } => {
                write!(f, "oversized frame: {len} bytes exceeds the {max}-byte cap")
            }
            FrameError::Malformed(msg) => write!(f, "malformed frame: {msg}"),
            FrameError::Io(e) => write!(f, "frame i/o: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Encode one message and write it as a frame.
pub fn write_frame<T: Serialize>(w: &mut impl Write, msg: &T) -> Result<(), FrameError> {
    let payload = serde_json::to_string(msg)
        .map_err(|e| FrameError::Malformed(e.to_string()))?
        .into_bytes();
    if payload.len() > MAX_FRAME {
        return Err(FrameError::Oversized {
            len: payload.len(),
            max: MAX_FRAME,
        });
    }
    // one buffer, one write: header and payload must not straddle writes,
    // or Nagle's algorithm turns every frame into a delayed-ACK stall
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Read until `buf` is full or the stream ends; returns bytes read. Unlike
/// `read_exact`, a short read is reported with its exact length so the
/// caller can distinguish a clean close from a truncated frame.
fn read_full(r: &mut impl Read, buf: &mut [u8]) -> Result<usize, FrameError> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => break,
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(got)
}

/// Read and decode the next frame.
pub fn read_frame<T: Deserialize>(r: &mut impl Read) -> Result<T, FrameError> {
    let mut header = [0u8; 4];
    match read_full(r, &mut header)? {
        0 => return Err(FrameError::Closed),
        4 => {}
        got => return Err(FrameError::Truncated { expected: 4, got }),
    }
    let len = u32::from_le_bytes(header) as usize;
    if len == 0 {
        return Err(FrameError::Malformed("empty frame".into()));
    }
    if len > MAX_FRAME {
        return Err(FrameError::Oversized {
            len,
            max: MAX_FRAME,
        });
    }
    let mut payload = vec![0u8; len];
    let got = read_full(r, &mut payload)?;
    if got < len {
        return Err(FrameError::Truncated { expected: len, got });
    }
    let text =
        std::str::from_utf8(&payload).map_err(|e| FrameError::Malformed(format!("utf-8: {e}")))?;
    serde_json::from_str(text).map_err(|e| FrameError::Malformed(e.to_string()))
}

/// Encode one message as a standalone frame (header + payload), e.g. for
/// tests that want to corrupt specific bytes.
pub fn encode_frame<T: Serialize>(msg: &T) -> Result<Vec<u8>, FrameError> {
    let mut buf = Vec::new();
    write_frame(&mut buf, msg)?;
    Ok(buf)
}

/// Decode one message from a standalone frame.
pub fn decode_frame<T: Deserialize>(frame: &[u8]) -> Result<T, FrameError> {
    let mut cursor = frame;
    read_frame(&mut cursor)
}

// -------------------------------------------------------- shared frames

/// A manager→worker message encoded **once** into a shared, immutable
/// frame (header + payload, byte-identical to what [`write_frame`] emits —
/// a proptest pins this).
///
/// Broadcasting the same message to N workers through a `Frame` serializes
/// it a single time; each recipient's outbound queue holds an `Arc` clone
/// of the same bytes. A `LibraryImage` install fanned out to a fleet is
/// the motivating case: the image (source + serialized functions +
/// compiled bytecode) is the dominant payload in the system, and without
/// this it would be re-encoded per worker.
///
/// The typed message rides along so substrates that never serialize (the
/// in-process transport moves typed values over channels) can deliver the
/// same `Frame` without a decode round-trip.
#[derive(Clone, Debug)]
pub struct Frame {
    bytes: Arc<[u8]>,
    msg: Arc<ManagerToWorker>,
}

impl Frame {
    /// Encode `msg` exactly as [`write_frame`] would, once.
    pub fn encode_once(msg: ManagerToWorker) -> Result<Frame, FrameError> {
        let mut buf = Vec::new();
        write_frame(&mut buf, &msg)?;
        Ok(Frame {
            bytes: Arc::from(buf.into_boxed_slice()),
            msg: Arc::new(msg),
        })
    }

    /// The full wire frame (length header + payload).
    pub fn bytes(&self) -> &Arc<[u8]> {
        &self.bytes
    }

    /// Total on-wire size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The typed message this frame encodes.
    pub fn message(&self) -> &ManagerToWorker {
        &self.msg
    }

    /// A typed copy for channel-based substrates (clones the message, not
    /// the bytes).
    pub fn to_message(&self) -> ManagerToWorker {
        (*self.msg).clone()
    }
}

// --------------------------------------------------- incremental decode

/// How far a partially buffered stream can compact before memmoving the
/// tail to the front (amortizes the copy across many small frames).
const COMPACT_THRESHOLD: usize = 64 * 1024;

/// Incremental frame decoder for readiness-driven readers.
///
/// A nonblocking socket hands the reactor arbitrary byte chunks: half a
/// header, three frames back to back, a payload split anywhere. The
/// decoder buffers whatever arrives ([`FrameDecoder::extend`]) and yields
/// complete messages as they materialize ([`FrameDecoder::decode`] —
/// `Ok(None)` means "need more bytes"). Error classification matches
/// [`read_frame`] exactly (a proptest pins the equivalence): oversized
/// headers are rejected before any payload is buffered past them, empty
/// and malformed payloads report the same [`FrameError`]s, and
/// [`FrameDecoder::finish`] distinguishes a clean close on a frame
/// boundary from a stream that died mid-frame.
#[derive(Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted lazily.
    start: usize,
}

impl FrameDecoder {
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Buffer freshly read bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a decoded frame.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Decode the next complete frame, if one is fully buffered.
    ///
    /// `Ok(None)` asks for more bytes. Any `Err` is fatal to the stream:
    /// the caller cannot resynchronize after a bad header or payload and
    /// should drop the connection.
    pub fn decode<T: Deserialize>(&mut self) -> Result<Option<T>, FrameError> {
        let avail = self.buffered();
        if avail < 4 {
            return Ok(None);
        }
        let header: [u8; 4] = self.buf[self.start..self.start + 4]
            .try_into()
            .expect("4-byte slice");
        let len = u32::from_le_bytes(header) as usize;
        if len == 0 {
            return Err(FrameError::Malformed("empty frame".into()));
        }
        if len > MAX_FRAME {
            return Err(FrameError::Oversized {
                len,
                max: MAX_FRAME,
            });
        }
        if avail < 4 + len {
            return Ok(None);
        }
        let payload = &self.buf[self.start + 4..self.start + 4 + len];
        let text = std::str::from_utf8(payload)
            .map_err(|e| FrameError::Malformed(format!("utf-8: {e}")))?;
        let msg = serde_json::from_str(text).map_err(|e| FrameError::Malformed(e.to_string()))?;
        self.start += 4 + len;
        if self.start == self.buf.len() || self.start > COMPACT_THRESHOLD {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        Ok(Some(msg))
    }

    /// Classify end-of-stream: `Ok` when the peer closed on a frame
    /// boundary, [`FrameError::Truncated`] when it died mid-frame.
    pub fn finish(&self) -> Result<(), FrameError> {
        let avail = self.buffered();
        if avail == 0 {
            return Ok(());
        }
        let expected = if avail < 4 {
            4
        } else {
            let header: [u8; 4] = self.buf[self.start..self.start + 4]
                .try_into()
                .expect("4-byte slice");
            u32::from_le_bytes(header) as usize
        };
        Err(FrameError::Truncated {
            expected,
            got: avail.min(expected),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::WorkerToManager;
    use vine_core::resources::Resources;

    #[test]
    fn roundtrip_and_clean_close() {
        let msg = WorkerToManager::Join {
            resources: Resources::new(8, 1024, 1024),
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &msg).unwrap();
        write_frame(&mut buf, &WorkerToManager::Leave).unwrap();
        let mut cursor = &buf[..];
        assert_eq!(read_frame::<WorkerToManager>(&mut cursor).unwrap(), msg);
        assert_eq!(
            read_frame::<WorkerToManager>(&mut cursor).unwrap(),
            WorkerToManager::Leave
        );
        assert!(matches!(
            read_frame::<WorkerToManager>(&mut cursor),
            Err(FrameError::Closed)
        ));
    }

    #[test]
    fn oversized_header_rejected_before_allocation() {
        let mut frame = Vec::new();
        frame.extend_from_slice(&(u32::MAX).to_le_bytes());
        frame.extend_from_slice(b"not that long");
        assert!(matches!(
            decode_frame::<WorkerToManager>(&frame),
            Err(FrameError::Oversized { .. })
        ));
    }
}
