//! Length-prefixed framing for protocol messages on byte streams.
//!
//! Wire format, per frame:
//!
//! ```text
//! +----------------+----------------------------------+
//! | length: u32 LE | payload: `length` bytes of JSON  |
//! +----------------+----------------------------------+
//! ```
//!
//! The payload is the serde encoding of one message (this workspace's
//! serde shim renders JSON text). Frames are self-delimiting, so a reader
//! never needs lookahead, and every failure mode is explicit:
//!
//! * a stream that ends **between** frames is a clean close
//!   ([`FrameError::Closed`] — how a worker's death is observed);
//! * a stream that ends **inside** a header or payload is
//!   [`FrameError::Truncated`];
//! * a header announcing more than [`MAX_FRAME`] bytes is
//!   [`FrameError::Oversized`] and is rejected *before* any allocation —
//!   a garbage header cannot make the receiver allocate gigabytes;
//! * a payload that is not valid UTF-8/JSON or does not decode to the
//!   expected message type is [`FrameError::Malformed`].

use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

/// Largest payload a frame may carry (64 MiB). Library images ship whole
/// module sources and serialized functions, so frames are allowed to be
/// large — but never unbounded.
pub const MAX_FRAME: usize = 64 * 1024 * 1024;

/// Every way reading or writing a frame can fail.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the stream cleanly on a frame boundary.
    Closed,
    /// The stream ended mid-header or mid-payload.
    Truncated { expected: usize, got: usize },
    /// The header announced a payload larger than [`MAX_FRAME`] (or an
    /// encoder was asked to produce one).
    Oversized { len: usize, max: usize },
    /// The payload was not a valid encoding of the expected message.
    Malformed(String),
    /// The underlying transport failed.
    Io(std::io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "stream closed"),
            FrameError::Truncated { expected, got } => {
                write!(f, "truncated frame: expected {expected} bytes, got {got}")
            }
            FrameError::Oversized { len, max } => {
                write!(f, "oversized frame: {len} bytes exceeds the {max}-byte cap")
            }
            FrameError::Malformed(msg) => write!(f, "malformed frame: {msg}"),
            FrameError::Io(e) => write!(f, "frame i/o: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Encode one message and write it as a frame.
pub fn write_frame<T: Serialize>(w: &mut impl Write, msg: &T) -> Result<(), FrameError> {
    let payload = serde_json::to_string(msg)
        .map_err(|e| FrameError::Malformed(e.to_string()))?
        .into_bytes();
    if payload.len() > MAX_FRAME {
        return Err(FrameError::Oversized {
            len: payload.len(),
            max: MAX_FRAME,
        });
    }
    // one buffer, one write: header and payload must not straddle writes,
    // or Nagle's algorithm turns every frame into a delayed-ACK stall
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Read until `buf` is full or the stream ends; returns bytes read. Unlike
/// `read_exact`, a short read is reported with its exact length so the
/// caller can distinguish a clean close from a truncated frame.
fn read_full(r: &mut impl Read, buf: &mut [u8]) -> Result<usize, FrameError> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => break,
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(got)
}

/// Read and decode the next frame.
pub fn read_frame<T: Deserialize>(r: &mut impl Read) -> Result<T, FrameError> {
    let mut header = [0u8; 4];
    match read_full(r, &mut header)? {
        0 => return Err(FrameError::Closed),
        4 => {}
        got => return Err(FrameError::Truncated { expected: 4, got }),
    }
    let len = u32::from_le_bytes(header) as usize;
    if len == 0 {
        return Err(FrameError::Malformed("empty frame".into()));
    }
    if len > MAX_FRAME {
        return Err(FrameError::Oversized {
            len,
            max: MAX_FRAME,
        });
    }
    let mut payload = vec![0u8; len];
    let got = read_full(r, &mut payload)?;
    if got < len {
        return Err(FrameError::Truncated { expected: len, got });
    }
    let text =
        std::str::from_utf8(&payload).map_err(|e| FrameError::Malformed(format!("utf-8: {e}")))?;
    serde_json::from_str(text).map_err(|e| FrameError::Malformed(e.to_string()))
}

/// Encode one message as a standalone frame (header + payload), e.g. for
/// tests that want to corrupt specific bytes.
pub fn encode_frame<T: Serialize>(msg: &T) -> Result<Vec<u8>, FrameError> {
    let mut buf = Vec::new();
    write_frame(&mut buf, msg)?;
    Ok(buf)
}

/// Decode one message from a standalone frame.
pub fn decode_frame<T: Deserialize>(frame: &[u8]) -> Result<T, FrameError> {
    let mut cursor = frame;
    read_frame(&mut cursor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::WorkerToManager;
    use vine_core::resources::Resources;

    #[test]
    fn roundtrip_and_clean_close() {
        let msg = WorkerToManager::Join {
            resources: Resources::new(8, 1024, 1024),
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &msg).unwrap();
        write_frame(&mut buf, &WorkerToManager::Leave).unwrap();
        let mut cursor = &buf[..];
        assert_eq!(read_frame::<WorkerToManager>(&mut cursor).unwrap(), msg);
        assert_eq!(
            read_frame::<WorkerToManager>(&mut cursor).unwrap(),
            WorkerToManager::Leave
        );
        assert!(matches!(
            read_frame::<WorkerToManager>(&mut cursor),
            Err(FrameError::Closed)
        ));
    }

    #[test]
    fn oversized_header_rejected_before_allocation() {
        let mut frame = Vec::new();
        frame.extend_from_slice(&(u32::MAX).to_le_bytes());
        frame.extend_from_slice(b"not that long");
        assert!(matches!(
            decode_frame::<WorkerToManager>(&frame),
            Err(FrameError::Oversized { .. })
        ));
    }
}
