//! The worker ↔ library protocol (paper §3.4).
//!
//! 1. The worker forks/execs the library.
//! 2. The library boots, runs all context-setup functions, sends
//!    [`LibraryToWorker::Ready`], and waits.
//! 3. The worker receives an invocation from the manager, creates a
//!    sandbox, and sends [`WorkerToLibrary::Invoke`].
//! 4. The library executes (directly or in a fork), serializes the result
//!    into the sandbox, and sends [`LibraryToWorker::ResultReady`]. The
//!    worker returns the result file to the manager and destroys the
//!    sandbox.

use serde::{Deserialize, Serialize};
use vine_core::ids::InvocationId;
use vine_core::task::ExecMode;

/// Messages a worker sends to a library daemon.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum WorkerToLibrary {
    /// Execute an invocation (§3.4 step 3): metadata, arguments, and the
    /// sandbox path.
    Invoke {
        id: InvocationId,
        function: String,
        args_blob: Vec<u8>,
        sandbox: String,
        mode: ExecMode,
    },
    /// Terminate the daemon (library eviction, worker shutdown).
    Shutdown,
}

/// Messages a library daemon sends to its worker.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum LibraryToWorker {
    /// Context setup complete; ready to execute invocations (§3.4 step 2).
    Ready,
    /// Context setup failed; the library is unusable.
    StartupFailed { error: String },
    /// An invocation finished; its result file is in the sandbox
    /// (§3.4 step 4).
    ResultReady {
        id: InvocationId,
        /// Serialized result on success, error text on failure. An
        /// invocation failure does not kill the library.
        result: Result<Vec<u8>, String>,
    },
}
