//! The router ↔ shard protocol plane (federated sharding).
//!
//! A federated deployment runs N scheduling shards — each a
//! `vine_manager::Shard` embedded in its own serve process, owning its
//! own workers — behind one thin routing front-end. The front-end speaks
//! this plane: shards announce themselves with [`ShardToRouter::ShardJoin`],
//! the router forwards each submission with [`RouterToShard::Route`] to
//! the shard its function-context digest hashes to, results flow back as
//! [`ShardToRouter::UnitDone`], and load reports ride
//! [`ShardToRouter::ShardStats`]. Like the worker plane, the messages are
//! substrate-neutral serde types; the live path frames them with
//! [`crate::framing`].

use serde::{Deserialize, Serialize};
use vine_core::ids::ShardId;
use vine_core::task::{Outcome, WorkUnit};

/// Messages the routing front-end sends a shard.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum RouterToShard {
    /// Forward a submission to the shard its function-context digest
    /// hashed to on the shard ring. Boxed so the two small control
    /// variants don't carry the full unit's footprint.
    Route { unit: Box<WorkUnit> },
    /// Ask for a load report; answered with [`ShardToRouter::ShardStats`].
    StatsRequest,
    /// Drain in-flight work and exit.
    Shutdown,
}

/// Messages a shard sends the routing front-end.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ShardToRouter {
    /// Handshake: announce this shard's identity and worker count. The id
    /// is the shard's ring position key, so it must be unique; the router
    /// rejects duplicate announcements.
    ShardJoin { shard: ShardId, workers: u32 },
    /// Graceful leave; the router re-routes whatever was in flight here.
    ShardLeave { shard: ShardId },
    /// One routed unit finished (success or failure).
    UnitDone { outcome: Outcome },
    /// A load report (answer to [`RouterToShard::StatsRequest`]).
    ShardStats { stats: ShardStats },
}

/// Per-shard load and wire aggregates — the scheduling counters from
/// `vine_manager::ShardLoad` plus the shard's worker-transport totals,
/// rendered in the `repro route` stderr table.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardStats {
    pub shard: ShardId,
    pub workers: u32,
    /// Units accepted from the router.
    pub routed: u64,
    /// Units completed.
    pub finished: u64,
    /// Units re-admitted after a worker loss inside the shard.
    pub requeued: u64,
    pub queued: u64,
    pub running: u64,
    /// Aggregate frames received from this shard's workers.
    pub frames_in: u64,
    /// Aggregate frames sent to this shard's workers.
    pub frames_out: u64,
    /// Aggregate bytes received from this shard's workers.
    pub bytes_in: u64,
    /// Aggregate bytes sent to this shard's workers.
    pub bytes_out: u64,
}

/// Render a fleet of shard reports as the fixed-width stderr table the
/// `repro route` front-end prints after a run.
pub fn render_shard_stats(stats: &[ShardStats]) -> String {
    let mut out = String::new();
    out.push_str(
        "# shard  workers   routed finished requeued  frames_in frames_out   bytes_in  bytes_out\n",
    );
    for s in stats {
        out.push_str(&format!(
            "# {:<6} {:>7} {:>8} {:>8} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
            format!("{}", s.shard),
            s.workers,
            s.routed,
            s.finished,
            s.requeued,
            s.frames_in,
            s.frames_out,
            s.bytes_in,
            s.bytes_out,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framing::{decode_frame, encode_frame};
    use vine_core::ids::InvocationId;
    use vine_core::task::{FunctionCall, UnitId};

    #[test]
    fn routing_messages_roundtrip_the_codec() {
        let msgs = vec![
            RouterToShard::Route {
                unit: Box::new(WorkUnit::Call(FunctionCall::new(
                    InvocationId(7),
                    "lnni",
                    "infer",
                    vec![1, 2, 3],
                ))),
            },
            RouterToShard::StatsRequest,
            RouterToShard::Shutdown,
        ];
        for m in msgs {
            let bytes = encode_frame(&m).unwrap();
            let back: RouterToShard = decode_frame(&bytes).unwrap();
            assert_eq!(back, m);
        }
        let msgs = vec![
            ShardToRouter::ShardJoin {
                shard: ShardId(2),
                workers: 4,
            },
            ShardToRouter::ShardLeave { shard: ShardId(2) },
            ShardToRouter::UnitDone {
                outcome: Outcome::ok(UnitId::Call(InvocationId(7)), vec![9]),
            },
            ShardToRouter::ShardStats {
                stats: ShardStats {
                    shard: ShardId(1),
                    workers: 2,
                    routed: 100,
                    finished: 99,
                    ..Default::default()
                },
            },
        ];
        for m in msgs {
            let bytes = encode_frame(&m).unwrap();
            let back: ShardToRouter = decode_frame(&bytes).unwrap();
            assert_eq!(back, m);
        }
    }

    #[test]
    fn stats_table_lists_every_shard() {
        let t = render_shard_stats(&[
            ShardStats {
                shard: ShardId(0),
                workers: 2,
                routed: 60,
                finished: 60,
                ..Default::default()
            },
            ShardStats {
                shard: ShardId(1),
                workers: 2,
                routed: 40,
                finished: 40,
                ..Default::default()
            },
        ]);
        assert!(t.contains("s0"));
        assert!(t.contains("s1"));
        assert_eq!(t.lines().count(), 3);
    }
}
