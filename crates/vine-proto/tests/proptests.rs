//! Property-based tests for the wire protocol: every message type on both
//! protocol planes round-trips exactly through the framed codec, and the
//! decoder rejects — never panics on, never misreads — truncated,
//! oversized, and corrupt frames.
//!
//! These generated round-trips replace the hand-rolled
//! `messages_roundtrip_through_serde` sample that previously lived in
//! `vine-worker`: instead of three fixed values, the whole message space
//! is sampled.

use proptest::prelude::*;
use std::io::Cursor;
use vine_core::context::{CodeArtifact, FileRef, FileSource};
use vine_core::ids::{ContentHash, FileId, InvocationId, LibraryInstanceId, TaskId, WorkerId};
use vine_core::resources::Resources;
use vine_core::task::{ExecMode, FunctionCall, Outcome, TaskSpec, UnitId, WorkProfile, WorkUnit};
use vine_proto::{
    read_frame, write_frame, CompiledBlob, Frame, FrameDecoder, FrameError, LibraryImage,
    LibrarySetup, LibraryToWorker, ManagerToWorker, WorkerToLibrary, WorkerToManager, MAX_FRAME,
};

// ---- strategies over the core vocabulary ----

fn arb_name() -> impl Strategy<Value = String> {
    "[a-zA-Z_][a-zA-Z0-9_\\-\\.]{0,16}"
}

fn arb_blob() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(any::<u8>(), 0..64)
}

fn arb_exec_mode() -> impl Strategy<Value = ExecMode> {
    prop_oneof![Just(ExecMode::Direct), Just(ExecMode::Fork)]
}

fn arb_resources() -> impl Strategy<Value = Resources> {
    (any::<u32>(), any::<u64>(), any::<u64>(), 0u32..8)
        .prop_map(|(c, m, d, g)| Resources::new(c, m, d).with_gpus(g))
}

fn arb_profile() -> impl Strategy<Value = WorkProfile> {
    (
        prop::num::f64::NORMAL,
        prop::num::f64::NORMAL,
        any::<u64>(),
        any::<u64>(),
        prop::num::f64::NORMAL,
        any::<u64>(),
    )
        .prop_map(|(eg, cg, crb, ob, ops, srb)| WorkProfile {
            exec_gflop: eg,
            context_gflop: cg,
            context_read_bytes: crb,
            output_bytes: ob,
            sharedfs_ops: ops,
            sharedfs_read_bytes: srb,
            l1_exec_slowdown: 1.0,
        })
}

fn arb_file_ref() -> impl Strategy<Value = FileRef> {
    (
        any::<u64>(),
        any::<u128>(),
        arb_name(),
        any::<u64>(),
        any::<bool>(),
        any::<bool>(),
        prop_oneof![Just(FileSource::Manager), Just(FileSource::SharedFs)],
        any::<u64>(),
    )
        .prop_map(|(id, hash, name, size, cache, peer, source, unpacked)| {
            let mut f = FileRef::new(FileId(id), name, ContentHash(hash), size);
            f.cache = cache;
            f.peer_transfer = peer;
            f.source = source;
            f.unpacked_bytes = unpacked;
            f
        })
}

fn arb_code_artifact() -> impl Strategy<Value = CodeArtifact> {
    prop_oneof![
        (arb_name(), "[ -~]{0,48}").prop_map(|(name, text)| CodeArtifact::Source { name, text }),
        (arb_name(), arb_blob()).prop_map(|(name, blob)| CodeArtifact::Serialized { name, blob }),
    ]
}

fn arb_task_spec() -> impl Strategy<Value = TaskSpec> {
    (
        any::<u64>(),
        arb_name(),
        prop::collection::vec(arb_code_artifact(), 0..3),
        prop::option::of(arb_name()),
        arb_blob(),
        prop::collection::vec(arb_file_ref(), 0..3),
        arb_resources(),
        arb_profile(),
    )
        .prop_map(
            |(id, name, code, function, args, inputs, resources, profile)| {
                let mut t = TaskSpec::new(TaskId(id), name);
                t.code = code;
                t.function = function;
                t.args_blob = args;
                t.inputs = inputs;
                t.resources = resources;
                t.profile = profile;
                t
            },
        )
}

fn arb_call() -> impl Strategy<Value = FunctionCall> {
    (
        any::<u64>(),
        arb_name(),
        arb_name(),
        arb_blob(),
        arb_resources(),
        prop::option::of(arb_exec_mode()),
        arb_profile(),
    )
        .prop_map(|(id, library, function, args, resources, mode, profile)| {
            let mut c = FunctionCall::new(InvocationId(id), library, function, args);
            c.resources = resources;
            c.exec_mode = mode;
            c.profile = profile;
            c
        })
}

fn arb_work_unit() -> impl Strategy<Value = WorkUnit> {
    prop_oneof![
        arb_task_spec().prop_map(WorkUnit::Task),
        arb_call().prop_map(WorkUnit::Call),
    ]
}

fn arb_unit_id() -> impl Strategy<Value = UnitId> {
    prop_oneof![
        any::<u64>().prop_map(|n| UnitId::Task(TaskId(n))),
        any::<u64>().prop_map(|n| UnitId::Call(InvocationId(n))),
    ]
}

fn arb_outcome() -> impl Strategy<Value = Outcome> {
    (arb_unit_id(), arb_blob(), prop::option::of("[ -~]{0,32}")).prop_map(|(unit, blob, error)| {
        match error {
            None => Outcome::ok(unit, blob),
            Some(e) => Outcome::failed(unit, e),
        }
    })
}

fn arb_compiled_blob() -> impl Strategy<Value = CompiledBlob> {
    (any::<u128>(), arb_blob()).prop_map(|(digest, bytes)| CompiledBlob {
        source_digest: ContentHash(digest),
        bytes,
    })
}

fn arb_library_image() -> impl Strategy<Value = LibraryImage> {
    (
        any::<u64>(),
        "[ -~]{0,64}",
        prop::collection::vec(arb_blob(), 0..3),
        prop::option::of((arb_name(), arb_blob())),
        arb_exec_mode(),
        prop::option::of(arb_compiled_blob()),
    )
        .prop_map(|(id, source, blobs, setup, mode, compiled)| LibraryImage {
            instance: LibraryInstanceId(id),
            source,
            serialized_functions: blobs,
            setup: setup.map(|(function, args_blob)| LibrarySetup {
                function,
                args_blob,
            }),
            default_mode: mode,
            compiled,
        })
}

// ---- strategies over the message planes ----

fn arb_manager_to_worker() -> impl Strategy<Value = ManagerToWorker> {
    prop_oneof![
        any::<u32>().prop_map(|w| ManagerToWorker::Welcome {
            worker: WorkerId(w)
        }),
        (
            arb_library_image(),
            prop::collection::vec(arb_file_ref(), 0..3)
        )
            .prop_map(|(image, stage)| ManagerToWorker::InstallLibrary { image, stage }),
        any::<u64>().prop_map(|n| ManagerToWorker::RemoveLibrary {
            instance: LibraryInstanceId(n)
        }),
        (any::<u64>(), arb_call()).prop_map(|(n, call)| ManagerToWorker::Invoke {
            instance: LibraryInstanceId(n),
            call
        }),
        (arb_task_spec(), prop::collection::vec(arb_file_ref(), 0..3))
            .prop_map(|(task, stage)| ManagerToWorker::RunTask { task, stage }),
        Just(ManagerToWorker::Shutdown),
    ]
}

fn arb_worker_to_manager() -> impl Strategy<Value = WorkerToManager> {
    prop_oneof![
        arb_resources().prop_map(|resources| WorkerToManager::Join { resources }),
        any::<u64>().prop_map(|n| WorkerToManager::LibraryReady {
            instance: LibraryInstanceId(n)
        }),
        (any::<u64>(), "[ -~]{0,32}").prop_map(|(n, error)| WorkerToManager::LibraryFailed {
            instance: LibraryInstanceId(n),
            error
        }),
        arb_outcome().prop_map(|outcome| WorkerToManager::UnitDone { outcome }),
        arb_work_unit().prop_map(|unit| WorkerToManager::Requeue { unit }),
        Just(WorkerToManager::Leave),
    ]
}

fn arb_worker_to_library() -> impl Strategy<Value = WorkerToLibrary> {
    prop_oneof![
        (
            any::<u64>(),
            arb_name(),
            arb_blob(),
            "[ -~]{0,24}",
            arb_exec_mode()
        )
            .prop_map(
                |(id, function, args_blob, sandbox, mode)| WorkerToLibrary::Invoke {
                    id: InvocationId(id),
                    function,
                    args_blob,
                    sandbox,
                    mode,
                }
            ),
        Just(WorkerToLibrary::Shutdown),
    ]
}

fn arb_library_to_worker() -> impl Strategy<Value = LibraryToWorker> {
    prop_oneof![
        Just(LibraryToWorker::Ready),
        "[ -~]{0,32}".prop_map(|error| LibraryToWorker::StartupFailed { error }),
        (
            any::<u64>(),
            prop_oneof![
                arb_blob().prop_map(Ok),
                "[ -~]{0,32}".prop_map(|e: String| Err(e)),
            ]
        )
            .prop_map(|(id, result)| LibraryToWorker::ResultReady {
                id: InvocationId(id),
                result,
            }),
    ]
}

// ---- the round-trip property ----

fn roundtrip<T>(msg: &T) -> T
where
    T: serde::Serialize + serde::Deserialize + std::fmt::Debug,
{
    let mut buf = Vec::new();
    write_frame(&mut buf, msg).expect("encode");
    let mut cursor = Cursor::new(buf);
    let back: T = read_frame(&mut cursor).expect("decode");
    // the frame must be consumed exactly: nothing left in the stream
    match read_frame::<T>(&mut cursor) {
        Err(FrameError::Closed) => {}
        other => panic!("expected clean EOF after one frame, got {other:?}"),
    }
    back
}

proptest! {
    #[test]
    fn manager_to_worker_roundtrips(msg in arb_manager_to_worker()) {
        prop_assert_eq!(roundtrip(&msg), msg);
    }

    #[test]
    fn worker_to_manager_roundtrips(msg in arb_worker_to_manager()) {
        prop_assert_eq!(roundtrip(&msg), msg);
    }

    #[test]
    fn worker_to_library_roundtrips(msg in arb_worker_to_library()) {
        prop_assert_eq!(roundtrip(&msg), msg);
    }

    #[test]
    fn library_to_worker_roundtrips(msg in arb_library_to_worker()) {
        prop_assert_eq!(roundtrip(&msg), msg);
    }

    #[test]
    fn back_to_back_frames_decode_in_order(
        a in arb_manager_to_worker(),
        b in arb_manager_to_worker(),
        c in arb_manager_to_worker(),
    ) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &a).unwrap();
        write_frame(&mut buf, &b).unwrap();
        write_frame(&mut buf, &c).unwrap();
        let mut cursor = Cursor::new(buf);
        prop_assert_eq!(read_frame::<ManagerToWorker>(&mut cursor).unwrap(), a);
        prop_assert_eq!(read_frame::<ManagerToWorker>(&mut cursor).unwrap(), b);
        prop_assert_eq!(read_frame::<ManagerToWorker>(&mut cursor).unwrap(), c);
    }

    // ---- rejection properties: bad bytes error, never panic ----

    #[test]
    fn truncated_frames_are_rejected(msg in arb_worker_to_manager(), keep in any::<u16>()) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &msg).unwrap();
        // cut somewhere strictly inside the frame
        let cut = 1 + (keep as usize) % (buf.len() - 1);
        buf.truncate(cut);
        let mut cursor = Cursor::new(buf);
        match read_frame::<WorkerToManager>(&mut cursor) {
            Err(FrameError::Truncated { .. }) => {}
            other => prop_assert!(false, "expected Truncated, got {:?}", other),
        }
    }

    #[test]
    fn oversized_headers_are_rejected(extra in 1u32..1024) {
        // a header that promises more than MAX_FRAME must be refused
        // before any payload allocation happens
        let len = MAX_FRAME as u32 + extra;
        let mut buf = len.to_le_bytes().to_vec();
        buf.extend_from_slice(b"xx");
        let mut cursor = Cursor::new(buf);
        match read_frame::<ManagerToWorker>(&mut cursor) {
            Err(FrameError::Oversized { .. }) => {}
            other => prop_assert!(false, "expected Oversized, got {:?}", other),
        }
    }

    #[test]
    fn corrupt_payloads_never_panic(msg in arb_manager_to_worker(), flip in any::<u16>(), bit in 0u8..8) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &msg).unwrap();
        // flip one payload bit (never the length header)
        if buf.len() > 4 {
            let idx = 4 + (flip as usize) % (buf.len() - 4);
            buf[idx] ^= 1 << bit;
            let mut cursor = Cursor::new(buf);
            // a flipped bit may still decode (e.g. inside an integer); what
            // it must never do is panic or misread the frame boundary
            let _ = read_frame::<ManagerToWorker>(&mut cursor);
        }
    }

    #[test]
    fn garbage_bytes_never_panic(junk in prop::collection::vec(any::<u8>(), 0..64)) {
        let mut cursor = Cursor::new(junk);
        let _ = read_frame::<WorkerToManager>(&mut cursor);
    }

    // ---- pre-encoded shared frames (`Frame::encode_once`) ----

    #[test]
    fn encode_once_is_byte_identical_to_write_frame(msg in arb_manager_to_worker()) {
        let mut reference = Vec::new();
        write_frame(&mut reference, &msg).unwrap();
        let frame = Frame::encode_once(msg.clone()).unwrap();
        prop_assert_eq!(&frame.bytes()[..], &reference[..]);
        prop_assert_eq!(frame.len(), reference.len());
        // the typed copy riding along is the message itself
        prop_assert_eq!(frame.to_message(), msg);
    }

    // ---- incremental decode (the reactor's `FrameDecoder`) ----

    #[test]
    fn decoder_split_at_every_byte_boundary_matches_read_frame(
        msgs in prop::collection::vec(arb_manager_to_worker(), 1..4),
    ) {
        let mut wire = Vec::new();
        for m in &msgs {
            write_frame(&mut wire, m).unwrap();
        }
        // feeding one byte at a time exercises every split point in one
        // pass: every header and payload boundary sees a short read
        let mut dec = FrameDecoder::new();
        let mut out: Vec<ManagerToWorker> = Vec::new();
        for (i, b) in wire.iter().enumerate() {
            dec.extend(std::slice::from_ref(b));
            while let Some(m) = dec.decode::<ManagerToWorker>().unwrap() {
                out.push(m);
            }
            // mid-stream the decoder never errors on a short prefix
            if i + 1 < wire.len() && out.len() < msgs.len() {
                prop_assert!(dec.decode::<ManagerToWorker>().unwrap().is_none());
            }
        }
        prop_assert_eq!(&out, &msgs);
        dec.finish().expect("clean close on a frame boundary");

        // the same bytes through the blocking reader give the same stream
        let mut cursor = Cursor::new(wire);
        for m in &msgs {
            prop_assert_eq!(&read_frame::<ManagerToWorker>(&mut cursor).unwrap(), m);
        }
    }

    #[test]
    fn decoder_handles_arbitrary_chunkings_and_coalesced_frames(
        msgs in prop::collection::vec(arb_manager_to_worker(), 1..5),
        chunks in prop::collection::vec(1usize..512, 1..32),
    ) {
        let mut wire = Vec::new();
        for m in &msgs {
            write_frame(&mut wire, m).unwrap();
        }
        // partial writes of arbitrary sizes, including chunks spanning
        // several back-to-back frames at once
        let mut dec = FrameDecoder::new();
        let mut out: Vec<ManagerToWorker> = Vec::new();
        let mut off = 0;
        let mut ci = 0;
        while off < wire.len() {
            let take = chunks[ci % chunks.len()].min(wire.len() - off);
            ci += 1;
            dec.extend(&wire[off..off + take]);
            off += take;
            while let Some(m) = dec.decode::<ManagerToWorker>().unwrap() {
                out.push(m);
            }
        }
        prop_assert_eq!(&out, &msgs);
        prop_assert_eq!(dec.buffered(), 0);
        dec.finish().expect("clean close");
    }

    #[test]
    fn decoder_truncation_matches_read_frame(msg in arb_manager_to_worker(), keep in any::<u16>()) {
        let mut wire = Vec::new();
        write_frame(&mut wire, &msg).unwrap();
        let cut = 1 + (keep as usize) % (wire.len() - 1);
        wire.truncate(cut);

        let mut dec = FrameDecoder::new();
        dec.extend(&wire);
        // a truncated frame is "need more bytes" until EOF classifies it
        prop_assert!(dec.decode::<ManagerToWorker>().unwrap().is_none());
        match dec.finish() {
            Err(FrameError::Truncated { .. }) => {}
            other => prop_assert!(false, "expected Truncated, got {:?}", other),
        }

        let mut cursor = Cursor::new(wire);
        match read_frame::<ManagerToWorker>(&mut cursor) {
            Err(FrameError::Truncated { .. }) => {}
            other => prop_assert!(false, "read_frame disagrees: {:?}", other),
        }
    }

    #[test]
    fn decoder_rejects_oversized_headers_before_buffering_payload(extra in 1u32..1024) {
        let len = MAX_FRAME as u32 + extra;
        let mut dec = FrameDecoder::new();
        dec.extend(&len.to_le_bytes());
        dec.extend(b"xx");
        match dec.decode::<ManagerToWorker>() {
            Err(FrameError::Oversized { .. }) => {}
            other => prop_assert!(false, "expected Oversized, got {:?}", other),
        }
    }

    #[test]
    fn decoder_corruption_verdict_matches_read_frame(
        msg in arb_manager_to_worker(),
        flip in any::<u16>(),
        bit in 0u8..8,
    ) {
        let mut wire = Vec::new();
        write_frame(&mut wire, &msg).unwrap();
        if wire.len() > 4 {
            // flip one payload bit (never the length header) and require
            // the incremental and blocking decoders to agree on the verdict
            let idx = 4 + (flip as usize) % (wire.len() - 4);
            wire[idx] ^= 1 << bit;
            let mut dec = FrameDecoder::new();
            dec.extend(&wire);
            let incremental = dec.decode::<ManagerToWorker>();
            let mut cursor = Cursor::new(wire);
            let blocking = read_frame::<ManagerToWorker>(&mut cursor);
            match (incremental, blocking) {
                (Ok(Some(a)), Ok(b)) => prop_assert_eq!(a, b),
                (Err(FrameError::Malformed(a)), Err(FrameError::Malformed(b))) => {
                    prop_assert_eq!(a, b)
                }
                (a, b) => prop_assert!(false, "decoders disagree: {:?} vs {:?}", a, b),
            }
        }
    }
}
