//! Differential property test: the bytecode VM and the tree-walking
//! interpreter must be observationally *identical* on generated modules —
//! same work-function results, same printed output, same final global
//! namespace, and (stricter than agreement) byte-identical error strings,
//! raised at the same invocation. This is what licenses the runtime to
//! switch library daemons to the VM while keeping the tree-walker as the
//! reference semantics.
//!
//! The generator leans into the hazards: closures over globals with late
//! binding, `global` declarations inside branches, builtin shadowing,
//! `eval`/`exec` re-entering the interpreter mid-call, dynamic `return`/
//! `break` misplacement, short-circuit operands, dict-key evaluation
//! order, possibly-out-of-range indexing, and source-module imports.

use proptest::prelude::*;
use std::collections::BTreeMap;
use vine_lang::{Engine, Interp, ModuleRegistry, Value};

/// xorshift64* — deterministic per-case source of structure.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
    fn chance(&mut self, pct: u64) -> bool {
        self.next() % 100 < pct
    }
}

#[derive(Default)]
struct Defined {
    ints: Vec<String>,
    lists: Vec<String>,
    helpers: Vec<String>,
}

fn int_expr(rng: &mut Rng, env: &Defined, depth: usize) -> String {
    if depth == 0 || env.ints.is_empty() && rng.chance(50) {
        return format!("{}", rng.below(20));
    }
    match rng.below(7) {
        0 => format!("{}", rng.below(20)),
        1 if !env.ints.is_empty() => env.ints[rng.below(env.ints.len())].clone(),
        2 if !env.lists.is_empty() => format!("len({})", env.lists[rng.below(env.lists.len())]),
        3 => format!(
            "({} + {})",
            int_expr(rng, env, depth - 1),
            int_expr(rng, env, depth - 1)
        ),
        4 => format!("({} * {})", int_expr(rng, env, depth - 1), rng.below(5)),
        // short-circuit yielding the deciding operand
        5 => format!(
            "({} {} {})",
            int_expr(rng, env, depth - 1),
            if rng.chance(50) { "and" } else { "or" },
            int_expr(rng, env, depth - 1)
        ),
        _ => format!(
            "({} - {})",
            int_expr(rng, env, depth - 1),
            int_expr(rng, env, depth - 1)
        ),
    }
}

fn cond_expr(rng: &mut Rng, env: &Defined) -> String {
    match rng.below(3) {
        0 => format!("{} < {}", int_expr(rng, env, 1), int_expr(rng, env, 1)),
        1 => format!("{} == {}", int_expr(rng, env, 1), int_expr(rng, env, 1)),
        _ => if rng.chance(50) { "true" } else { "false" }.to_string(),
    }
}

/// One generated module defining `work(t)` plus whatever state it reads.
fn gen_module(seed: u64) -> String {
    let mut rng = Rng::new(seed);
    let mut env = Defined::default();
    let mut out = String::new();
    let mut helper_id = 0usize;

    if rng.chance(35) {
        out.push_str("import util\n");
    }

    let n_stmts = 5 + rng.below(8);
    for i in 0..n_stmts {
        match rng.below(11) {
            0 | 1 => {
                let name = format!("g{i}");
                out.push_str(&format!("{name} = {}\n", int_expr(&mut rng, &env, 2)));
                env.ints.push(name);
            }
            2 => {
                let name = format!("l{i}");
                out.push_str(&format!(
                    "{name} = [{}, {}]\n",
                    int_expr(&mut rng, &env, 1),
                    int_expr(&mut rng, &env, 1)
                ));
                env.lists.push(name);
            }
            3 if !env.lists.is_empty() => {
                let l = env.lists[rng.below(env.lists.len())].clone();
                out.push_str(&format!("push({l}, {})\n", int_expr(&mut rng, &env, 1)));
            }
            4 if !env.lists.is_empty() => {
                let l = env.lists[rng.below(env.lists.len())].clone();
                out.push_str(&format!(
                    "{l}[{}] = {}\n",
                    rng.below(2),
                    int_expr(&mut rng, &env, 1)
                ));
            }
            // module-level loop with break/continue
            5 => {
                let name = format!("t{i}");
                out.push_str(&format!(
                    "{name} = []\nfor i{i} in range({}) {{\n    if i{i} == {} {{ continue }}\n    \
                     if i{i} > {} {{ break }}\n    push({name}, i{i} * {})\n}}\n",
                    3 + rng.below(5),
                    rng.below(3),
                    2 + rng.below(4),
                    1 + rng.below(3)
                ));
                env.lists.push(name);
            }
            // dict with ordered key evaluation + iteration over its keys
            6 => {
                let name = format!("d{i}");
                out.push_str(&format!(
                    "{name} = {{\"a\": {}, \"b\": {}}}\nacc{i} = \"\"\nfor k{i} in {name} {{ acc{i} = acc{i} + k{i} }}\n",
                    int_expr(&mut rng, &env, 1),
                    int_expr(&mut rng, &env, 1)
                ));
            }
            // module-level branch, sometimes reassigning an existing int
            7 => {
                let name = if !env.ints.is_empty() && rng.chance(40) {
                    env.ints[rng.below(env.ints.len())].clone()
                } else {
                    let fresh = format!("b{i}");
                    env.ints.push(fresh.clone());
                    fresh
                };
                out.push_str(&format!(
                    "if {} {{\n    {name} = {}\n}} else {{\n    {name} = {}\n}}\n",
                    cond_expr(&mut rng, &env),
                    int_expr(&mut rng, &env, 1),
                    int_expr(&mut rng, &env, 1)
                ));
            }
            8 => {
                out.push_str(&format!("print({})\n", int_expr(&mut rng, &env, 1)));
            }
            // builtin shadowing: a user `len` that later code may call
            9 if rng.chance(30) => {
                out.push_str("def len(x) { return 999 }\n");
                env.helpers.push("len".into());
            }
            // helper definition exercising closures, global-in-branch,
            // eval/exec, loops, lambdas
            _ => {
                let name = format!("h{helper_id}");
                helper_id += 1;
                let body = match rng.below(8) {
                    0 => format!("    return a + {}\n", int_expr(&mut rng, &env, 1)),
                    // late-bound closure over a global
                    1 if !env.ints.is_empty() => {
                        let g = &env.ints[rng.below(env.ints.len())];
                        format!("    return a * {g}\n")
                    }
                    // global write from inside the function
                    2 if !env.ints.is_empty() => {
                        let g = env.ints[rng.below(env.ints.len())].clone();
                        format!("    global {g}\n    {g} = {g} + a\n    return {g}\n")
                    }
                    // `global` executed only on one branch: the declaration
                    // is dynamic, so the other branch writes a local
                    3 if !env.ints.is_empty() => {
                        let g = env.ints[rng.below(env.ints.len())].clone();
                        format!(
                            "    if a > {} {{\n        global {g}\n    }}\n    {g} = a\n    return {g}\n",
                            rng.below(3)
                        )
                    }
                    4 => "    print(a)\n    return a\n".to_string(),
                    // eval re-enters the interpreter mid-call
                    5 => "    return eval(\"3 + 4\") + a\n".to_string(),
                    // exec defines a function dynamically, then calls it
                    6 => {
                        "    exec(\"def dyn(v) { return v + 1 }\")\n    return dyn(a)\n".to_string()
                    }
                    // local loop with a lambda applied per element
                    _ => format!(
                        "    f = fn (v) {{ return v * {} }}\n    s = 0\n    for i in range(a) {{ s = s + f(i) }}\n    return s\n",
                        1 + rng.below(3)
                    ),
                };
                out.push_str(&format!("def {name}(a) {{\n{body}}}\n"));
                env.helpers.push(name);
            }
        }
    }

    // the work function
    let mut body = String::new();
    if !env.ints.is_empty() && rng.chance(60) {
        let g = env.ints[rng.below(env.ints.len())].clone();
        body.push_str(&format!("    global {g}\n    {g} = {g} + t\n"));
    }
    if !env.lists.is_empty() && rng.chance(40) {
        let l = env.lists[rng.below(env.lists.len())].clone();
        body.push_str(&format!("    push({l}, t)\n"));
    }
    let mut ret = int_expr(&mut rng, &env, 2);
    if !env.helpers.is_empty() && rng.chance(60) {
        let h = env.helpers[rng.below(env.helpers.len())].clone();
        ret = format!("{h}({ret})");
    }
    // error paths: both engines must fail with byte-identical messages at
    // the same invocation
    if rng.chance(20) {
        ret = match rng.below(4) {
            0 if !env.lists.is_empty() => {
                format!("{}[90 + t]", env.lists[rng.below(env.lists.len())])
            }
            1 => format!("({ret}) + no_such_var"),
            2 if !env.helpers.is_empty() => {
                format!(
                    "{}({ret}, {ret})",
                    env.helpers[rng.below(env.helpers.len())]
                )
            }
            _ => format!("({ret}) / (t - 1)"),
        };
    }
    body.push_str(&format!("    return {ret} + t\n"));
    out.push_str(&format!("def work(t) {{\n{body}}}\n"));
    out
}

/// Everything observable about one module execution: the module-level
/// outcome, each invocation's result-or-error, all printed output, and
/// the final data globals.
#[derive(Debug, PartialEq)]
struct Observed {
    boot: Result<(), String>,
    invocations: Vec<Result<String, String>>,
    output: Vec<String>,
    globals: BTreeMap<String, String>,
}

fn registry() -> ModuleRegistry {
    let mut reg = ModuleRegistry::new();
    reg.register_source(
        "util",
        "factor = 3\ndef triple(x) { return x * factor }\ndef tag(s) { return \"<\" + s + \">\" }\n",
    );
    reg
}

fn run(src: &str, engine: Engine) -> Observed {
    let mut interp = Interp::with_registry(registry());
    interp.engine = engine;
    let boot = interp.exec_source(src).map_err(|e| e.to_string());
    let mut invocations = Vec::new();
    if boot.is_ok() {
        for t in 0..3i64 {
            invocations.push(
                interp
                    .call_global("work", &[Value::Int(t)])
                    .map(|v| format!("{v}"))
                    .map_err(|e| e.to_string()),
            );
        }
    }
    let globals: BTreeMap<String, String> = interp
        .global_names()
        .into_iter()
        .filter_map(|n| {
            let v = interp.get_global(&n)?;
            if matches!(v, Value::Func(_) | Value::Native(_) | Value::Module(_)) {
                None
            } else {
                Some((n, format!("{v}")))
            }
        })
        .collect();
    Observed {
        boot,
        invocations,
        output: interp.output.clone(),
        globals,
    }
}

fn check_case(seed: u64) -> Result<(), proptest::test_runner::TestCaseError> {
    let src = gen_module(seed);
    let tree = run(&src, Engine::Tree);
    let vm = run(&src, Engine::Vm);
    if tree != vm {
        return Err(proptest::test_runner::TestCaseError::fail(format!(
            "engine divergence\n--- module ---\n{src}\n--- tree ---\n{tree:?}\n--- vm ---\n{vm:?}"
        )));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn vm_execution_is_bit_identical_to_tree_walker(seed in any::<u64>()) {
        check_case(seed)?;
    }
}

/// Targeted cases the generator may only rarely hit: each must produce the
/// same observables (including exact error text) on both engines.
#[test]
fn vm_matches_tree_on_hazard_corpus() {
    let cases = [
        // return at module level: value evaluates (print runs), then errors
        "print(1)\nreturn print(2)\n",
        // break outside any loop
        "if true { break }\n",
        // argument evaluation precedes callee resolution
        "def work(t) { return no_such_fn(print(t)) }\n",
        // dict key type error fires before the value expression
        "def work(t) { d = {1: no_such } return 0 }\n",
        // and/or return the deciding operand itself
        "x = 0 and 5\ny = 3 or no_such\ndef work(t) { return x + y }\n",
        // global declared mid-function, after a local read fell through
        "g = 10\ndef work(t) {\n    a = g\n    global g\n    g = a + t\n    return g\n}\n",
        // duplicate parameter names: last binding wins
        "def work(t, t) { return t }\n",
        // builtin shadowed by a global only after first invocation
        "def work(t) {\n    if t == 2 {\n        global len\n        len = fn (x) {  return 777 }\n    }\n    return len([1])\n}\n",
        // string indexing, negative indices, and char iteration
        "s = \"hello\"\nacc = \"\"\nfor c in s { acc = acc + c }\ndef work(t) { return s[-1] + s[t] }\n",
        // import binds in a local frame when executed inside a function
        "def work(t) {\n    import util\n    return util.triple(t)\n}\n",
        // step limit: both engines abort a runaway loop with the same error
        "while true { x = 1 }\n",
    ];
    for src in cases {
        let tree = run_limited(src, Engine::Tree);
        let vm = run_limited(src, Engine::Vm);
        assert_eq!(tree, vm, "divergence on:\n{src}");
    }
}

fn run_limited(src: &str, engine: Engine) -> Observed {
    let mut interp = Interp::with_registry(registry());
    interp.engine = engine;
    interp.step_limit = 100_000;
    let boot = interp.exec_source(src).map_err(|e| e.to_string());
    let mut invocations = Vec::new();
    if boot.is_ok() && interp.get_global("work").is_some() {
        for t in 0..3i64 {
            invocations.push(
                interp
                    .call_global("work", &[Value::Int(t)])
                    .map(|v| format!("{v}"))
                    .map_err(|e| e.to_string()),
            );
        }
    }
    let globals: BTreeMap<String, String> = interp
        .global_names()
        .into_iter()
        .filter_map(|n| {
            let v = interp.get_global(&n)?;
            if matches!(v, Value::Func(_) | Value::Native(_) | Value::Module(_)) {
                None
            } else {
                Some((n, format!("{v}")))
            }
        })
        .collect();
    Observed {
        boot,
        invocations,
        output: interp.output.clone(),
        globals,
    }
}
