//! Golden-disassembly tests: the compiler's output for fixed sources is
//! pinned as exact text, so instruction-selection or encoding changes are
//! reviewed deliberately instead of slipping through. The disassembler is
//! also the roundtrip oracle — an image must disassemble identically after
//! `to_bytes`/`from_bytes`.

use vine_lang::bytecode::{disassemble, from_bytes};

fn disasm(src: &str) -> String {
    let prog = vine_lang::parse(src).unwrap();
    let m = vine_lang::compile_module(&prog, src);
    disassemble(&m.top)
}

#[test]
fn module_with_function_loop_dict_and_lambda() {
    let src = r#"import util
base = 10
def scale(x) {
    global base
    s = 0
    for i in range(x) {
        if i % 2 == 0 { continue }
        s = s + i * base
    }
    return s
}
table = {"a": scale(4), "b": util.triple(base) or 0}
f = fn (v) { return v + base }
"#;
    // Note: `global base` in scale compiles to no instruction — `base` has
    // no local slot there, so the declaration cannot change any resolution.
    let expected = "\
fn <module>(params=0, slots=0)
     0 import     util
     1 store_glb  util
     2 const      0 ; 10
     3 store_glb  base
     4 make_fn    0 ; scale
     5 store_glb  scale
     6 const      1 ; \"a\"
     7 check_key
     8 const      2 ; 4
     9 call_named scale argc=1 slot=-
    10 const      3 ; \"b\"
    11 check_key
    12 load_glb   base
    13 load_glb   util
    14 load_attr  triple
    15 call_value argc=1
    16 jt_keep    -> 19
    17 pop
    18 const      4 ; 0
    19 make_dict  2
    20 store_glb  table
    21 make_fn    1 ; <lambda>
    22 store_glb  f
fn scale(params=1, slots=3 [x s i])
     0 const      0 ; 0
     1 store_loc  1:s
     2 load_loc   0:x
     3 call_named range argc=1 slot=-
     4 make_iter
     5 for_iter   2:i -> 18
     6 binary_lc  Mod 2:i 1 ; 2
     7 binary_sc  Eq 0 ; 0
     8 jf         -> 11
     9 jump       -> 5
    10 jump       -> 11
    11 load_loc   1:s
    12 load_loc   2:i
    13 load_glb   base
    14 binary     Mul
    15 binary     Add
    16 store_loc  1:s
    17 jump       -> 5
    18 ret_loc    1:s
    19 ret_const  2 ; none
fn <lambda>(params=1, slots=1 [v])
     0 load_loc   0:v
     1 load_glb   base
     2 binary     Add
     3 return
     4 ret_const  0 ; none
";
    assert_eq!(disasm(src), expected);
}

#[test]
fn dynamic_control_flow_errors_compile_to_raise() {
    let src = "break\nreturn 7\n";
    let expected = "\
fn <module>(params=0, slots=0)
     0 raise      break/continue outside loop
     1 const      0 ; 7
     2 raise      return outside function
";
    assert_eq!(disasm(src), expected);
}

#[test]
fn shadowable_call_carries_its_slot() {
    // calling a name that *is* a local slot: the instruction records the
    // slot so the VM can apply the tree-walker's shadowing rule
    let src = "def apply(f, x) { return f(x) }\n";
    let expected = "\
fn <module>(params=0, slots=0)
     0 make_fn    0 ; apply
     1 store_glb  apply
fn apply(params=2, slots=2 [f x])
     0 load_loc   1:x
     1 call_named f argc=1 slot=0:f
     2 return
     3 ret_const  0 ; none
";
    assert_eq!(disasm(src), expected);
}

#[test]
fn wire_roundtrip_disassembles_identically() {
    let src = r#"
def work(t) {
    acc = []
    for c in "ab" { push(acc, c) }
    while t > 0 { t = t - 1 }
    return len(acc) and t
}
"#;
    let prog = vine_lang::parse(src).unwrap();
    let m = vine_lang::compile_module(&prog, src);
    let back = from_bytes(&m.to_bytes()).unwrap();
    assert_eq!(disassemble(&m.top), disassemble(&back));
}
