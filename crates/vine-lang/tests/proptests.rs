//! Property-based tests for vine-lang invariants:
//!
//! * vinepickle round-trips arbitrary values and arbitrary ASTs exactly;
//! * the pretty-printer's output re-parses to the identical AST;
//! * corrupt pickle bytes never panic (they error or — if still decodable —
//!   decode);
//! * interpreter arithmetic matches Rust semantics on safe ranges.

use proptest::prelude::*;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use vine_lang::ast::{walk_stmts, BinOp, Expr, FuncDef, Stmt, StmtKind, Target, UnOp};
use vine_lang::inspect::{format_funcdef, format_program};
use vine_lang::pickle;
use vine_lang::value::{Tensor, Value};
use vine_lang::Interp;

fn fresh_globals() -> Rc<RefCell<BTreeMap<String, Value>>> {
    Rc::new(RefCell::new(BTreeMap::new()))
}

// ---- arbitrary values ----

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::None),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // avoid NaN: Value equality is not reflexive for NaN (like Python)
        prop::num::f64::NORMAL.prop_map(Value::Float),
        "[a-zA-Z0-9 _\\-\\.\u{e9}\u{4e16}]{0,24}".prop_map(Value::str),
        prop::collection::vec(any::<u8>(), 0..64).prop_map(|b| Value::Bytes(Rc::new(b))),
        prop::collection::vec(prop::num::f64::NORMAL, 0..16).prop_map(|d| {
            let n = d.len();
            Value::tensor(Tensor::new(vec![n], d).unwrap())
        }),
    ];
    leaf.prop_recursive(3, 48, 6, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..6).prop_map(Value::list),
            prop::collection::btree_map("[a-z]{1,6}", inner, 0..6)
                .prop_map(|m| Value::Dict(Rc::new(RefCell::new(m)))),
        ]
    })
}

// ---- arbitrary ASTs ----

fn arb_name() -> impl Strategy<Value = String> {
    const KEYWORDS: &[&str] = &[
        "def", "fn", "return", "if", "elif", "else", "while", "for", "in", "break", "continue",
        "global", "import", "and", "or", "not", "true", "false", "none",
    ];
    "[a-z_][a-z0-9_]{0,8}".prop_filter("not a keyword", |s| !KEYWORDS.contains(&s.as_str()))
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    // literals are non-negative: the grammar has no negative literals
    // (the parser produces Unary(Neg, lit) instead), so only
    // parser-producible ASTs are fair game for the print/reparse property
    let leaf = prop_oneof![
        Just(Expr::None),
        any::<bool>().prop_map(Expr::Bool),
        (0..i64::MAX).prop_map(Expr::Int),
        prop::num::f64::POSITIVE
            .prop_filter("finite", |v| v.is_finite())
            .prop_map(Expr::Float),
        "[a-zA-Z0-9 _]{0,12}".prop_map(Expr::Str),
        arb_name().prop_map(Expr::Var),
    ];
    leaf.prop_recursive(3, 32, 4, |inner| {
        let op = prop_oneof![
            Just(BinOp::Add),
            Just(BinOp::Sub),
            Just(BinOp::Mul),
            Just(BinOp::Div),
            Just(BinOp::Mod),
            Just(BinOp::Eq),
            Just(BinOp::Ne),
            Just(BinOp::Lt),
            Just(BinOp::Le),
            Just(BinOp::Gt),
            Just(BinOp::Ge),
            Just(BinOp::And),
            Just(BinOp::Or),
        ];
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Expr::List),
            (inner.clone(), arb_name()).prop_map(|(o, a)| Expr::Attr(Box::new(o), a)),
            (inner.clone(), inner.clone()).prop_map(|(o, i)| Expr::Index(Box::new(o), Box::new(i))),
            (inner.clone(), prop::collection::vec(inner.clone(), 0..3))
                .prop_map(|(f, args)| Expr::Call(Box::new(f), args)),
            (prop_oneof![Just(UnOp::Neg), Just(UnOp::Not)], inner.clone())
                .prop_map(|(op, x)| Expr::Unary(op, Box::new(x))),
            (op, inner.clone(), inner).prop_map(|(op, a, b)| Expr::Binary(
                op,
                Box::new(a),
                Box::new(b)
            )),
        ]
    })
}

fn arb_stmt() -> impl Strategy<Value = Stmt> {
    // synthesized statements carry dummy spans; Stmt equality ignores spans,
    // so round-trip properties compare structure only
    let leaf = prop_oneof![
        arb_name().prop_map(|n| Stmt::dummy(StmtKind::Import(n))),
        (arb_name(), arb_expr())
            .prop_map(|(n, e)| Stmt::dummy(StmtKind::Assign(Target::Var(n), e))),
        (arb_expr(), arb_expr(), arb_expr())
            .prop_map(|(o, i, e)| Stmt::dummy(StmtKind::Assign(Target::Index(o, i), e))),
        prop::collection::vec(arb_name(), 1..3).prop_map(|ns| Stmt::dummy(StmtKind::Global(ns))),
        arb_expr().prop_map(|e| Stmt::dummy(StmtKind::Return(Some(e)))),
        Just(Stmt::dummy(StmtKind::Return(None))),
        Just(Stmt::dummy(StmtKind::Break)),
        Just(Stmt::dummy(StmtKind::Continue)),
        arb_expr().prop_map(|e| Stmt::dummy(StmtKind::Expr(e))),
    ];
    leaf.prop_recursive(2, 16, 3, |inner| {
        prop_oneof![
            (
                prop::collection::vec(
                    (arb_expr(), prop::collection::vec(inner.clone(), 0..3)),
                    1..3
                ),
                prop::option::of(prop::collection::vec(inner.clone(), 0..3))
            )
                .prop_map(|(arms, els)| Stmt::dummy(StmtKind::If(arms, els))),
            (arb_expr(), prop::collection::vec(inner.clone(), 0..3))
                .prop_map(|(c, b)| Stmt::dummy(StmtKind::While(c, b))),
            (arb_name(), arb_expr(), prop::collection::vec(inner, 0..3))
                .prop_map(|(v, it, b)| Stmt::dummy(StmtKind::For(v, it, b))),
        ]
    })
}

fn arb_funcdef() -> impl Strategy<Value = FuncDef> {
    (
        arb_name(),
        prop::collection::vec(arb_name(), 0..4),
        prop::collection::vec(arb_stmt(), 0..6),
    )
        .prop_map(|(name, params, body)| FuncDef::new(name, params, body))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn pickle_value_roundtrip(v in arb_value()) {
        let blob = pickle::serialize_value(&v).unwrap();
        let back = pickle::deserialize_value(&blob, &fresh_globals()).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn pickle_funcdef_roundtrip(def in arb_funcdef()) {
        let blob = pickle::serialize_funcdef(&def);
        let back = pickle::deserialize_funcdef(&blob).unwrap();
        prop_assert_eq!(&*back, &def);
    }

    #[test]
    fn printer_output_reparses_identically(def in arb_funcdef()) {
        let printed = format_funcdef(&def);
        let prog = vine_lang::parse(&printed)
            .unwrap_or_else(|e| panic!("printed source failed to parse: {e}\n{printed}"));
        prop_assert_eq!(prog.len(), 1);
        match &prog[0].kind {
            StmtKind::FuncDef(parsed) => prop_assert_eq!(&**parsed, &def),
            other => prop_assert!(false, "expected FuncDef, got {:?}", other),
        }
        // and the printer is idempotent
        prop_assert_eq!(format_program(&prog), printed);
    }

    #[test]
    fn parse_format_parse_is_fixpoint_with_live_spans(def in arb_funcdef()) {
        // parse(format(parse(format(def)))) == parse(format(def)), and every
        // statement parsed from real text carries an in-bounds, non-empty
        // span whose slice re-parses to that same statement
        let printed = format_funcdef(&def);
        let prog = vine_lang::parse(&printed).unwrap();
        let reformatted = format_program(&prog);
        // format is a fixpoint after one parse
        prop_assert_eq!(&reformatted, &printed);
        let reparsed = vine_lang::parse(&reformatted).unwrap();
        prop_assert_eq!(&reparsed, &prog);

        let mut bad: Vec<String> = Vec::new();
        walk_stmts(&prog, &mut |s| {
            let (start, end) = (s.span.start as usize, s.span.end as usize);
            if start >= end || end > printed.len() {
                bad.push(format!("out-of-bounds span {start}..{end}: {:?}", s.kind));
                return;
            }
            let text = s.span.slice(&printed);
            match vine_lang::parse(text) {
                Ok(sub) if sub.len() == 1 && sub[0] == *s => {}
                Ok(sub) => bad.push(format!("slice {text:?} parsed to {sub:?}")),
                Err(e) => bad.push(format!("slice {text:?} failed to parse: {e}")),
            }
        });
        prop_assert!(bad.is_empty(), "span violations: {:#?}", bad);
    }

    #[test]
    fn corrupt_pickle_never_panics(mut blob in prop::collection::vec(any::<u8>(), 0..256)) {
        // any byte soup: must return (Ok or Err), never panic
        let _ = pickle::deserialize_value(&blob, &fresh_globals());
        // and with a valid header prefix:
        if blob.len() >= 4 {
            blob[..4].copy_from_slice(b"VPK1");
            let _ = pickle::deserialize_value(&blob, &fresh_globals());
            let _ = pickle::deserialize_funcdef(&blob);
        }
    }

    #[test]
    fn interpreter_integer_arithmetic_matches_rust(a in -1_000_000i64..1_000_000, b in -1_000_000i64..1_000_000) {
        let mut interp = Interp::new();
        interp.exec_source(&format!("x = {a} + {b}\ny = {a} * {b}\nz = {a} - {b}")).unwrap();
        prop_assert_eq!(interp.get_global("x").unwrap(), Value::Int(a + b));
        prop_assert_eq!(interp.get_global("y").unwrap(), Value::Int(a * b));
        prop_assert_eq!(interp.get_global("z").unwrap(), Value::Int(a - b));
    }

    #[test]
    fn interpreter_comparison_total_order(a in any::<i64>(), b in any::<i64>()) {
        let mut interp = Interp::new();
        interp.exec_source(&format!("lt = {a} < {b}\nge = {a} >= {b}")).unwrap();
        prop_assert_eq!(interp.get_global("lt").unwrap(), Value::Bool(a < b));
        prop_assert_eq!(interp.get_global("ge").unwrap(), Value::Bool(a >= b));
    }

    #[test]
    fn shipped_function_computes_same_result(x in -10_000i64..10_000) {
        // define f locally, ship it, run it remotely: results must agree
        let mut origin = Interp::new();
        origin.exec_source("def f(v) { return v * 3 - 1 }").unwrap();
        let local = origin.call_global("f", &[Value::Int(x)]).unwrap();

        let blob = pickle::serialize_value(&origin.get_global("f").unwrap()).unwrap();
        let mut worker = Interp::new();
        let f = pickle::deserialize_value(&blob, &worker.globals).unwrap();
        let remote = worker.call_value(&f, &[Value::Int(x)]).unwrap();
        prop_assert_eq!(local, remote);
    }
}
