//! Module registry: the interpreter's view of "software dependencies".
//!
//! `import foo` resolves against a [`ModuleRegistry`]. A module is either
//! *native* (Rust functions exposed to scripts — the analogue of compiled
//! packages like NumPy) or *source* (vinescript text compiled on first
//! import — the analogue of pure-Python packages). What a worker's registry
//! contains is decided by the environment the discover mechanism packaged
//! for it (`vine-env`): importing a module that the environment didn't
//! install fails, exactly like a missing package on a remote node.

use crate::value::{ModuleObj, NativeFunc, Value};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::sync::Arc;
use vine_core::{Result, VineError};

/// Builders are `Send + Sync` so a registry can be handed to worker and
/// library threads; the `Rc`-based values they *produce* stay thread-local
/// to the interpreter that imports them.
type NativeBuilder = Arc<dyn Fn() -> Vec<(String, Rc<NativeFunc>)> + Send + Sync>;

/// Registry of importable modules.
#[derive(Default, Clone)]
pub struct ModuleRegistry {
    native: BTreeMap<String, NativeBuilder>,
    source: BTreeMap<String, String>,
}

impl ModuleRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a native module. The builder runs once per interpreter on
    /// first import.
    pub fn register_native<F>(&mut self, name: impl Into<String>, builder: F)
    where
        F: Fn() -> Vec<(String, Rc<NativeFunc>)> + Send + Sync + 'static,
    {
        self.native.insert(name.into(), Arc::new(builder));
    }

    /// Register a module defined by vinescript source text.
    pub fn register_source(&mut self, name: impl Into<String>, src: impl Into<String>) {
        self.source.insert(name.into(), src.into());
    }

    pub fn contains(&self, name: &str) -> bool {
        self.native.contains_key(name) || self.source.contains_key(name)
    }

    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.native
            .keys()
            .chain(self.source.keys())
            .map(|s| s.as_str())
    }

    /// Source text of a source module, if registered that way (used by the
    /// discover mechanism to extract function code).
    pub fn source_of(&self, name: &str) -> Option<&str> {
        self.source.get(name).map(|s| s.as_str())
    }

    pub(crate) fn build_native(&self, name: &str) -> Option<Value> {
        let builder = self.native.get(name)?;
        let members: BTreeMap<String, Value> = builder()
            .into_iter()
            .map(|(n, f)| (n, Value::Native(f)))
            .collect();
        Some(Value::Module(Rc::new(ModuleObj {
            name: name.to_string(),
            members: Rc::new(RefCell::new(members)),
        })))
    }

    pub(crate) fn source_module(&self, name: &str) -> Option<&str> {
        self.source.get(name).map(|s| s.as_str())
    }

    pub fn missing(&self, name: &str) -> VineError {
        VineError::Dependency(format!(
            "module '{name}' is not installed in this environment"
        ))
    }
}

/// Convenience for building one native function.
pub fn native<F>(name: &str, f: F) -> (String, Rc<NativeFunc>)
where
    F: Fn(&[Value]) -> Result<Value> + 'static,
{
    (
        name.to_string(),
        Rc::new(NativeFunc {
            name: name.to_string(),
            f: Box::new(f),
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_tracks_both_kinds() {
        let mut reg = ModuleRegistry::new();
        reg.register_native("nn", || vec![native("zero", |_| Ok(Value::Int(0)))]);
        reg.register_source("helpers", "def id(x) { return x }");
        assert!(reg.contains("nn"));
        assert!(reg.contains("helpers"));
        assert!(!reg.contains("missing"));
        assert_eq!(reg.source_of("helpers").unwrap(), "def id(x) { return x }");
        assert!(reg.source_of("nn").is_none());
        let names: Vec<&str> = reg.names().collect();
        assert_eq!(names, vec!["nn", "helpers"]);
    }

    #[test]
    fn native_module_builds_members() {
        let mut reg = ModuleRegistry::new();
        reg.register_native("m", || vec![native("f", |_| Ok(Value::Int(42)))]);
        let module = reg.build_native("m").unwrap();
        match module {
            Value::Module(obj) => {
                assert_eq!(obj.name, "m");
                assert!(obj.members.borrow().contains_key("f"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
