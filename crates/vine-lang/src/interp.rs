//! The tree-walking interpreter.
//!
//! One [`Interp`] is one "interpreter process": in the live runtime, each
//! library daemon owns one, executes its context-setup function once, and
//! then serves invocations against the retained global namespace — the
//! paper's L3 retain mechanism (§2.2.3). Wrapped tasks (L1/L2) instead
//! build a fresh `Interp` per execution, paying context reconstruction
//! every time.

use crate::ast::{BinOp, Expr, FuncDef, Program, Stmt, StmtKind, Target, UnOp};
use crate::builtins;
use crate::bytecode::{CompiledFn, CompiledModule};
use crate::modules::ModuleRegistry;
use crate::value::{Function, Value};
use crate::{compile, vm};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;
use vine_core::{Result, VineError};

/// Which execution engine this interpreter runs programs and function
/// bodies on. Both engines share all other interpreter state (globals,
/// modules, output, step budget) and are semantically identical; the VM is
/// the fast path for retained library contexts, the tree-walker the
/// differential reference.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Engine {
    #[default]
    Tree,
    Vm,
}

/// Local variable scope for one function activation. Keys are `Rc<str>`
/// so re-assignment and parameter binding never re-clone the name text.
struct Frame {
    locals: BTreeMap<Rc<str>, Value>,
    global_decls: BTreeSet<String>,
}

enum Flow {
    Normal,
    Return(Value),
    Break,
    Continue,
}

/// An interpreter instance: globals + module registry + captured output.
pub struct Interp {
    /// Module-level namespace. Shared (by `Rc`) with every function defined
    /// in it, so `global` writes from context setup are visible to later
    /// invocations.
    pub globals: Rc<RefCell<BTreeMap<String, Value>>>,
    registry: ModuleRegistry,
    /// Cache of already-imported modules.
    loaded: BTreeMap<String, Value>,
    /// Captured `print` output.
    pub output: Vec<String>,
    steps: u64,
    /// Abort execution after this many evaluation steps (guards tests and
    /// fuzzing against runaway loops).
    pub step_limit: u64,
    /// Which engine executes programs and function bodies.
    pub engine: Engine,
    /// Bytecode cache keyed by `FuncDef` identity. The `Rc<FuncDef>` is
    /// retained so the address can never be reused by a freed definition.
    compiled: BTreeMap<usize, (Rc<FuncDef>, Rc<CompiledFn>)>,
    /// Recycled VM local-slot buffers, so steady-state calls allocate
    /// nothing.
    slot_pool: Vec<Vec<Option<Value>>>,
    /// Recycled VM operand stacks.
    stack_pool: Vec<Vec<Value>>,
}

impl Default for Interp {
    fn default() -> Self {
        Self::new()
    }
}

impl Interp {
    pub fn new() -> Interp {
        Interp::with_registry(ModuleRegistry::new())
    }

    pub fn with_registry(registry: ModuleRegistry) -> Interp {
        Interp {
            globals: Rc::new(RefCell::new(BTreeMap::new())),
            registry,
            loaded: BTreeMap::new(),
            output: Vec::new(),
            steps: 0,
            step_limit: 200_000_000,
            engine: Engine::Tree,
            compiled: BTreeMap::new(),
            slot_pool: Vec::new(),
            stack_pool: Vec::new(),
        }
    }

    pub fn registry(&self) -> &ModuleRegistry {
        &self.registry
    }

    /// Parse and execute source at module level.
    pub fn exec_source(&mut self, src: &str) -> Result<()> {
        let prog = crate::parse(src)?;
        self.exec_program(&prog)
    }

    /// Execute a parsed program at module level.
    pub fn exec_program(&mut self, prog: &Program) -> Result<()> {
        if self.engine == Engine::Vm {
            let top = compile::compile_program(prog);
            return vm::run_toplevel(self, &top);
        }
        for stmt in prog {
            match self.exec_stmt(stmt, None)? {
                Flow::Normal => {}
                Flow::Return(_) => return Err(VineError::Lang("return outside function".into())),
                Flow::Break | Flow::Continue => {
                    return Err(VineError::Lang("break/continue outside loop".into()))
                }
            }
        }
        Ok(())
    }

    /// Execute an already-compiled module image at module level, skipping
    /// parse and compile entirely — the install-once/invoke-many path for
    /// shipped library contexts.
    pub fn exec_compiled(&mut self, module: &CompiledModule) -> Result<()> {
        vm::run_toplevel(self, &module.top)
    }

    /// Evaluate a single expression in the global scope.
    pub fn eval_source(&mut self, src: &str) -> Result<Value> {
        let prog = crate::parse(src)?;
        match prog.as_slice() {
            [Stmt {
                kind: StmtKind::Expr(e),
                ..
            }] => self.eval(e, None),
            _ => Err(VineError::Lang(
                "eval_source expects exactly one expression".into(),
            )),
        }
    }

    /// Look up a global by name.
    pub fn get_global(&self, name: &str) -> Option<Value> {
        self.globals.borrow().get(name).cloned()
    }

    /// Set a global.
    pub fn set_global(&mut self, name: impl Into<String>, value: Value) {
        self.globals.borrow_mut().insert(name.into(), value);
    }

    /// Every bound global name, sorted. Differential tests use this to
    /// compare whole namespaces between execution variants.
    pub fn global_names(&self) -> Vec<String> {
        self.globals.borrow().keys().cloned().collect()
    }

    /// Call a function bound in globals with the given arguments.
    pub fn call_global(&mut self, name: &str, args: &[Value]) -> Result<Value> {
        let f = self
            .get_global(name)
            .ok_or_else(|| VineError::Lang(format!("undefined function: {name}")))?;
        self.call_value(&f, args)
    }

    /// Call any callable value.
    pub fn call_value(&mut self, callee: &Value, args: &[Value]) -> Result<Value> {
        match callee {
            Value::Func(f) => self.call_function(f, args),
            Value::Native(n) => (n.f)(args),
            other => Err(VineError::Lang(format!(
                "{} is not callable",
                other.type_name()
            ))),
        }
    }

    fn call_function(&mut self, f: &Rc<Function>, args: &[Value]) -> Result<Value> {
        if args.len() != f.def.params.len() {
            return Err(VineError::Lang(format!(
                "function {} takes {} arguments, got {}",
                if f.def.name.is_empty() {
                    "<lambda>"
                } else {
                    &f.def.name
                },
                f.def.params.len(),
                args.len()
            )));
        }
        // the function executes against its *defining* globals, which may
        // belong to a different interpreter than `self` (e.g. a deserialized
        // function re-bound on a worker)
        let saved = Rc::clone(&self.globals);
        self.globals = Rc::clone(&f.globals);
        let result = if self.engine == Engine::Vm {
            let code = self.compiled_for(f);
            vm::run_function(self, &code, args)
        } else {
            let mut frame = Frame {
                locals: f
                    .param_names
                    .iter()
                    .cloned()
                    .zip(args.iter().cloned())
                    .collect(),
                global_decls: BTreeSet::new(),
            };
            (|| -> Result<Value> {
                for stmt in &f.def.body {
                    match self.exec_stmt(stmt, Some(&mut frame))? {
                        Flow::Normal => {}
                        Flow::Return(v) => return Ok(v),
                        Flow::Break | Flow::Continue => {
                            return Err(VineError::Lang("break/continue outside loop".into()))
                        }
                    }
                }
                Ok(Value::None)
            })()
        };
        self.globals = saved;
        result
    }

    /// The bytecode for a function value: from its inline cache, the
    /// interpreter-wide cache, or compiled on first call. Functions created
    /// by VM `MakeFunc` (including ones decoded from a shipped image) are
    /// pre-seeded and never hit the compiler here.
    fn compiled_for(&mut self, f: &Function) -> Rc<CompiledFn> {
        if let Some(c) = f.compiled.borrow().as_ref() {
            return Rc::clone(c);
        }
        let key = Rc::as_ptr(&f.def) as usize;
        let code = match self.compiled.get(&key) {
            Some((_, c)) => Rc::clone(c),
            None => {
                let c = Rc::new(compile::compile_function(&f.def));
                self.compiled
                    .insert(key, (Rc::clone(&f.def), Rc::clone(&c)));
                c
            }
        };
        *f.compiled.borrow_mut() = Some(Rc::clone(&code));
        code
    }

    /// Record already-compiled bytecode for a definition so later function
    /// values over the same `FuncDef` reuse it.
    pub(crate) fn cache_compiled(&mut self, def: &Rc<FuncDef>, code: &Rc<CompiledFn>) {
        let key = Rc::as_ptr(def) as usize;
        self.compiled
            .entry(key)
            .or_insert_with(|| (Rc::clone(def), Rc::clone(code)));
    }

    pub(crate) fn take_slot_buf(&mut self) -> Vec<Option<Value>> {
        self.slot_pool.pop().unwrap_or_default()
    }

    pub(crate) fn put_slot_buf(&mut self, mut buf: Vec<Option<Value>>) {
        buf.clear();
        if self.slot_pool.len() < 64 {
            self.slot_pool.push(buf);
        }
    }

    pub(crate) fn take_stack_buf(&mut self) -> Vec<Value> {
        self.stack_pool.pop().unwrap_or_default()
    }

    pub(crate) fn put_stack_buf(&mut self, mut buf: Vec<Value>) {
        buf.clear();
        if self.stack_pool.len() < 64 {
            self.stack_pool.push(buf);
        }
    }

    /// Global write that overwrites in place when the key exists, cloning
    /// the name only for genuinely new bindings.
    #[inline]
    pub(crate) fn set_global_fast(&self, name: &str, value: Value) {
        let mut globals = self.globals.borrow_mut();
        match globals.get_mut(name) {
            Some(slot) => *slot = value,
            None => {
                globals.insert(name.to_string(), value);
            }
        }
    }

    #[inline]
    pub(crate) fn tick(&mut self) -> Result<()> {
        self.steps += 1;
        if self.steps > self.step_limit {
            return Err(VineError::Lang(format!(
                "step limit exceeded ({} steps)",
                self.step_limit
            )));
        }
        Ok(())
    }

    fn exec_block(&mut self, stmts: &[Stmt], frame: Option<&mut Frame>) -> Result<Flow> {
        // reborrow pattern: we need to pass the frame to each statement
        let mut frame = frame;
        for stmt in stmts {
            let flow = self.exec_stmt(stmt, frame.as_deref_mut())?;
            if !matches!(flow, Flow::Normal) {
                return Ok(flow);
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, stmt: &Stmt, mut frame: Option<&mut Frame>) -> Result<Flow> {
        self.tick()?;
        match &stmt.kind {
            StmtKind::Import(name) => {
                let module = self.import_module(name)?;
                self.assign_var(name, module, frame);
                Ok(Flow::Normal)
            }
            StmtKind::FuncDef(def) => {
                let func = Value::Func(Rc::new(Function::new(
                    Rc::clone(def),
                    Rc::clone(&self.globals),
                )));
                self.assign_var(&def.name, func, frame);
                Ok(Flow::Normal)
            }
            StmtKind::Global(names) => {
                if let Some(fr) = frame.as_deref_mut() {
                    for n in names {
                        fr.global_decls.insert(n.clone());
                    }
                }
                // at module level `global` is a no-op
                Ok(Flow::Normal)
            }
            StmtKind::Assign(target, expr) => {
                let value = self.eval(expr, frame.as_deref_mut())?;
                match target {
                    Target::Var(name) => self.assign_var(name, value, frame),
                    Target::Index(obj, idx) => {
                        let obj_v = self.eval(obj, frame.as_deref_mut())?;
                        let idx_v = self.eval(idx, frame.as_deref_mut())?;
                        self.index_assign(&obj_v, &idx_v, value)?;
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::If(arms, els) => {
                for (cond, body) in arms {
                    if self.eval(cond, frame.as_deref_mut())?.truthy() {
                        return self.exec_block(body, frame);
                    }
                }
                if let Some(body) = els {
                    return self.exec_block(body, frame);
                }
                Ok(Flow::Normal)
            }
            StmtKind::While(cond, body) => {
                while self.eval(cond, frame.as_deref_mut())?.truthy() {
                    self.tick()?;
                    match self.exec_block(body, frame.as_deref_mut())? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::For(var, iter, body) => {
                let items = self.iterable_items(iter, frame.as_deref_mut())?;
                for item in items {
                    self.tick()?;
                    self.assign_var(var, item, frame.as_deref_mut());
                    match self.exec_block(body, frame.as_deref_mut())? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::Return(value) => {
                let v = match value {
                    Some(e) => self.eval(e, frame)?,
                    None => Value::None,
                };
                Ok(Flow::Return(v))
            }
            StmtKind::Break => Ok(Flow::Break),
            StmtKind::Continue => Ok(Flow::Continue),
            StmtKind::Expr(e) => {
                self.eval(e, frame)?;
                Ok(Flow::Normal)
            }
        }
    }

    fn iterable_items(&mut self, iter: &Expr, frame: Option<&mut Frame>) -> Result<Vec<Value>> {
        let v = self.eval(iter, frame)?;
        match v {
            Value::List(items) => Ok(items.borrow().clone()),
            Value::Dict(d) => Ok(d.borrow().keys().map(|k| Value::str(k.clone())).collect()),
            Value::Str(s) => Ok(s.chars().map(|c| Value::str(c.to_string())).collect()),
            other => Err(VineError::Lang(format!(
                "{} is not iterable",
                other.type_name()
            ))),
        }
    }

    fn assign_var(&mut self, name: &str, value: Value, frame: Option<&mut Frame>) {
        match frame {
            Some(fr) if !fr.global_decls.contains(name) => {
                // re-assignment overwrites in place; the name text is only
                // cloned the first time a local is created
                match fr.locals.get_mut(name) {
                    Some(slot) => *slot = value,
                    None => {
                        fr.locals.insert(Rc::from(name), value);
                    }
                }
            }
            _ => self.set_global_fast(name, value),
        }
    }

    pub(crate) fn index_assign(&mut self, obj: &Value, idx: &Value, value: Value) -> Result<()> {
        match obj {
            Value::List(items) => {
                let i = idx.as_int()?;
                let mut items = items.borrow_mut();
                let len = items.len() as i64;
                let i = if i < 0 { i + len } else { i };
                if i < 0 || i >= len {
                    return Err(VineError::Lang(format!(
                        "list index {i} out of range (len {len})"
                    )));
                }
                items[i as usize] = value;
                Ok(())
            }
            Value::Dict(d) => {
                let k = idx.as_str()?.to_string();
                d.borrow_mut().insert(k, value);
                Ok(())
            }
            other => Err(VineError::Lang(format!(
                "{} does not support item assignment",
                other.type_name()
            ))),
        }
    }

    pub(crate) fn import_module(&mut self, name: &str) -> Result<Value> {
        if let Some(m) = self.loaded.get(name) {
            return Ok(m.clone());
        }
        let module = if let Some(m) = self.registry.build_native(name) {
            m
        } else if let Some(src) = self.registry.source_module(name).map(str::to_string) {
            // execute the module source in a fresh namespace sharing this
            // registry, then adopt its globals map *as* the module's member
            // table — the functions defined in it close over the same map,
            // so no copy is needed (or wanted)
            let mut sub = Interp::with_registry(self.registry.clone());
            sub.engine = self.engine;
            sub.exec_source(&src)?;
            Value::Module(Rc::new(crate::value::ModuleObj {
                name: name.to_string(),
                members: Rc::clone(&sub.globals),
            }))
        } else {
            return Err(self.registry.missing(name));
        };
        self.loaded.insert(name.to_string(), module.clone());
        Ok(module)
    }

    fn eval(&mut self, expr: &Expr, mut frame: Option<&mut Frame>) -> Result<Value> {
        self.tick()?;
        match expr {
            Expr::None => Ok(Value::None),
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::Int(v) => Ok(Value::Int(*v)),
            Expr::Float(v) => Ok(Value::Float(*v)),
            Expr::Str(s) => Ok(Value::str(s.clone())),
            Expr::List(items) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    out.push(self.eval(item, frame.as_deref_mut())?);
                }
                Ok(Value::list(out))
            }
            Expr::Dict(pairs) => {
                let mut out = BTreeMap::new();
                for (k, v) in pairs {
                    let key = self.eval(k, frame.as_deref_mut())?.as_str()?.to_string();
                    let val = self.eval(v, frame.as_deref_mut())?;
                    out.insert(key, val);
                }
                Ok(Value::Dict(Rc::new(RefCell::new(out))))
            }
            Expr::Var(name) => self.lookup(name, frame.as_deref()),
            Expr::Attr(obj, attr) => {
                let obj = self.eval(obj, frame)?;
                match obj {
                    Value::Module(m) => m.members.borrow().get(attr).cloned().ok_or_else(|| {
                        VineError::Lang(format!("module {} has no member {attr}", m.name))
                    }),
                    other => Err(VineError::Lang(format!(
                        "{} has no attributes",
                        other.type_name()
                    ))),
                }
            }
            Expr::Index(obj, idx) => {
                let obj = self.eval(obj, frame.as_deref_mut())?;
                let idx = self.eval(idx, frame)?;
                self.index_get(&obj, &idx)
            }
            Expr::Call(callee, args) => {
                // builtins may need interpreter services (print capture,
                // eval), so builtin dispatch happens here
                let mut arg_vals = Vec::with_capacity(args.len());
                for a in args {
                    arg_vals.push(self.eval(a, frame.as_deref_mut())?);
                }
                if let Expr::Var(name) = callee.as_ref() {
                    let shadowed = self.name_resolves(name, frame.as_deref());
                    if !shadowed {
                        if let Some(result) = builtins::call_builtin(self, name, &arg_vals)? {
                            return Ok(result);
                        }
                    }
                }
                let callee = self.eval(callee, frame)?;
                self.call_value(&callee, &arg_vals)
            }
            Expr::Unary(op, inner) => {
                let v = self.eval(inner, frame)?;
                unary_op(*op, &v)
            }
            Expr::Binary(op, lhs, rhs) => {
                // short-circuit logical operators
                match op {
                    BinOp::And => {
                        let l = self.eval(lhs, frame.as_deref_mut())?;
                        if !l.truthy() {
                            return Ok(l);
                        }
                        return self.eval(rhs, frame);
                    }
                    BinOp::Or => {
                        let l = self.eval(lhs, frame.as_deref_mut())?;
                        if l.truthy() {
                            return Ok(l);
                        }
                        return self.eval(rhs, frame);
                    }
                    _ => {}
                }
                let l = self.eval(lhs, frame.as_deref_mut())?;
                let r = self.eval(rhs, frame)?;
                binary_op(*op, &l, &r)
            }
            Expr::Lambda(def) => Ok(Value::Func(Rc::new(Function::new(
                Rc::clone(def),
                Rc::clone(&self.globals),
            )))),
        }
    }

    fn name_resolves(&self, name: &str, frame: Option<&Frame>) -> bool {
        if let Some(fr) = frame {
            if fr.locals.contains_key(name) && !fr.global_decls.contains(name) {
                return true;
            }
        }
        self.globals.borrow().contains_key(name)
    }

    fn lookup(&self, name: &str, frame: Option<&Frame>) -> Result<Value> {
        if let Some(fr) = frame {
            if !fr.global_decls.contains(name) {
                if let Some(v) = fr.locals.get(name) {
                    return Ok(v.clone());
                }
            }
        }
        self.globals
            .borrow()
            .get(name)
            .cloned()
            .ok_or_else(|| VineError::Lang(format!("undefined variable: {name}")))
    }

    #[inline]
    pub(crate) fn index_get(&self, obj: &Value, idx: &Value) -> Result<Value> {
        match obj {
            Value::List(items) => {
                let items = items.borrow();
                let len = items.len() as i64;
                let i = idx.as_int()?;
                let i = if i < 0 { i + len } else { i };
                if i < 0 || i >= len {
                    return Err(VineError::Lang(format!(
                        "list index {i} out of range (len {len})"
                    )));
                }
                Ok(items[i as usize].clone())
            }
            Value::Dict(d) => {
                let k = idx.as_str()?;
                d.borrow()
                    .get(k)
                    .cloned()
                    .ok_or_else(|| VineError::Lang(format!("key not found: {k}")))
            }
            Value::Str(s) => {
                // iterate once instead of materializing a Vec<char> per index
                let len = s.chars().count() as i64;
                let i = idx.as_int()?;
                let i = if i < 0 { i + len } else { i };
                if i < 0 || i >= len {
                    return Err(VineError::Lang(format!(
                        "string index {i} out of range (len {len})"
                    )));
                }
                let c = s.chars().nth(i as usize).expect("index checked in range");
                Ok(Value::str(c.to_string()))
            }
            Value::Tensor(t) => {
                let i = idx.as_int()?;
                let len = t.data.len() as i64;
                let i = if i < 0 { i + len } else { i };
                if i < 0 || i >= len {
                    return Err(VineError::Lang(format!(
                        "tensor index {i} out of range (len {len})"
                    )));
                }
                Ok(Value::Float(t.data[i as usize]))
            }
            other => Err(VineError::Lang(format!(
                "{} is not indexable",
                other.type_name()
            ))),
        }
    }

    /// Bind a function definition into this interpreter's globals, attaching
    /// it to *these* globals — used when reconstructing shipped functions on
    /// a worker.
    pub fn bind_function(&mut self, def: Rc<FuncDef>) {
        let name = def.name.clone();
        let func = Value::Func(Rc::new(Function::new(def, Rc::clone(&self.globals))));
        self.globals.borrow_mut().insert(name, func);
    }
}

/// Apply a unary operator to an already-evaluated value. Public for the
/// same reason as [`binary_op`]: constant folding must share the runtime's
/// exact semantics.
#[inline]
pub fn unary_op(op: UnOp, v: &Value) -> Result<Value> {
    match op {
        UnOp::Neg => match v {
            Value::Int(x) => Ok(Value::Int(x.checked_neg().ok_or_else(overflow)?)),
            Value::Float(x) => Ok(Value::Float(-x)),
            other => Err(VineError::Lang(format!(
                "cannot negate {}",
                other.type_name()
            ))),
        },
        UnOp::Not => Ok(Value::Bool(!v.truthy())),
    }
}

/// Apply a (non-short-circuit) binary operator to two already-evaluated
/// values. Public so static analyses (vine-flow constant propagation) can
/// fold operators with *exactly* the runtime semantics — same overflow
/// checks, same division rules — guaranteeing fold-then-run never diverges
/// from run. `And`/`Or` are short-circuited in `eval` and must not be
/// passed here.
#[inline]
pub fn binary_op(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    use BinOp::*;
    use Value::*;
    match op {
        Add => match (l, r) {
            (Int(a), Int(b)) => Ok(Int(a.checked_add(*b).ok_or_else(overflow)?)),
            (Str(a), Str(b)) => Ok(Value::str(format!("{a}{b}"))),
            (List(a), List(b)) => {
                let mut out = a.borrow().clone();
                out.extend(b.borrow().iter().cloned());
                Ok(Value::list(out))
            }
            _ => num_op(l, r, |a, b| a + b),
        },
        Sub => match (l, r) {
            (Int(a), Int(b)) => Ok(Int(a.checked_sub(*b).ok_or_else(overflow)?)),
            _ => num_op(l, r, |a, b| a - b),
        },
        Mul => match (l, r) {
            (Int(a), Int(b)) => Ok(Int(a.checked_mul(*b).ok_or_else(overflow)?)),
            (Str(a), Int(n)) => Ok(Value::str(a.repeat((*n).max(0) as usize))),
            _ => num_op(l, r, |a, b| a * b),
        },
        Div => match (l, r) {
            (Int(a), Int(b)) => {
                if *b == 0 {
                    Err(VineError::Lang("division by zero".into()))
                } else {
                    Ok(Int(a / b))
                }
            }
            _ => {
                let b = r.as_float()?;
                if b == 0.0 {
                    Err(VineError::Lang("division by zero".into()))
                } else {
                    Ok(Float(l.as_float()? / b))
                }
            }
        },
        Mod => match (l, r) {
            (Int(a), Int(b)) => {
                if *b == 0 {
                    Err(VineError::Lang("modulo by zero".into()))
                } else {
                    Ok(Int(a.rem_euclid(*b)))
                }
            }
            _ => Err(VineError::Lang("modulo requires integers".into())),
        },
        Eq => Ok(Bool(l == r)),
        Ne => Ok(Bool(l != r)),
        Lt | Le | Gt | Ge => {
            let ord = compare(l, r)?;
            Ok(Bool(match op {
                Lt => ord == std::cmp::Ordering::Less,
                Le => ord != std::cmp::Ordering::Greater,
                Gt => ord == std::cmp::Ordering::Greater,
                Ge => ord != std::cmp::Ordering::Less,
                _ => unreachable!(),
            }))
        }
        And | Or => unreachable!("short-circuited in eval"),
    }
}

fn overflow() -> VineError {
    VineError::Lang("integer overflow".into())
}

fn num_op(l: &Value, r: &Value, f: impl Fn(f64, f64) -> f64) -> Result<Value> {
    Ok(Value::Float(f(l.as_float()?, r.as_float()?)))
}

fn compare(l: &Value, r: &Value) -> Result<std::cmp::Ordering> {
    use Value::*;
    match (l, r) {
        (Int(a), Int(b)) => Ok(a.cmp(b)),
        (Str(a), Str(b)) => Ok(a.cmp(b)),
        _ => {
            let (a, b) = (l.as_float()?, r.as_float()?);
            a.partial_cmp(&b)
                .ok_or_else(|| VineError::Lang("cannot compare NaN".into()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modules::native;

    fn run(src: &str) -> Interp {
        let mut interp = Interp::new();
        interp.exec_source(src).unwrap();
        interp
    }

    fn eval_global(src: &str, name: &str) -> Value {
        run(src).get_global(name).unwrap()
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(eval_global("x = 2 + 3 * 4", "x"), Value::Int(14));
        assert_eq!(eval_global("x = (2 + 3) * 4", "x"), Value::Int(20));
        assert_eq!(eval_global("x = 7 / 2", "x"), Value::Int(3));
        assert_eq!(eval_global("x = 7.0 / 2", "x"), Value::Float(3.5));
        assert_eq!(eval_global("x = 7 % 3", "x"), Value::Int(1));
        assert_eq!(eval_global("x = -7 % 3", "x"), Value::Int(2)); // euclidean
        assert_eq!(eval_global("x = -(3 + 4)", "x"), Value::Int(-7));
    }

    #[test]
    fn string_ops() {
        assert_eq!(eval_global(r#"x = "ab" + "cd""#, "x"), Value::str("abcd"));
        assert_eq!(eval_global(r#"x = "ab" * 3"#, "x"), Value::str("ababab"));
        assert_eq!(eval_global(r#"x = "abc"[1]"#, "x"), Value::str("b"));
        assert_eq!(eval_global(r#"x = "abc"[-1]"#, "x"), Value::str("c"));
    }

    #[test]
    fn functions_and_recursion() {
        let src = r#"
            def fib(n) {
                if n < 2 { return n }
                return fib(n - 1) + fib(n - 2)
            }
            x = fib(15)
        "#;
        assert_eq!(eval_global(src, "x"), Value::Int(610));
    }

    #[test]
    fn closures_see_defining_globals() {
        let src = r#"
            base = 100
            def f(x) { return base + x }
            y = f(5)
            base = 200
            z = f(5)
        "#;
        let interp = run(src);
        assert_eq!(interp.get_global("y").unwrap(), Value::Int(105));
        // late binding: the global's current value is read at call time
        assert_eq!(interp.get_global("z").unwrap(), Value::Int(205));
    }

    #[test]
    fn global_statement_publishes_state() {
        // the paper's Fig 4 pattern: context setup registers a model in the
        // global namespace, the work function reads it
        let src = r#"
            def context_setup(params) {
                global model
                model = params * 2
            }
            def infer(x) { return model + x }
            context_setup(50)
            result = infer(1)
        "#;
        assert_eq!(eval_global(src, "result"), Value::Int(101));
    }

    #[test]
    fn locals_do_not_leak_without_global() {
        let src = r#"
            def f() { temp = 42 }
            f()
        "#;
        let interp = run(src);
        assert!(interp.get_global("temp").is_none());
    }

    #[test]
    fn loops_and_control_flow() {
        let src = r#"
            s = 0
            for i in range(10) {
                if i % 2 == 0 { continue }
                if i > 7 { break }
                s += i
            }
            n = 0
            while n < 5 { n += 1 }
        "#;
        let interp = run(src);
        assert_eq!(interp.get_global("s").unwrap(), Value::Int(1 + 3 + 5 + 7));
        assert_eq!(interp.get_global("n").unwrap(), Value::Int(5));
    }

    #[test]
    fn list_and_dict_manipulation() {
        let src = r#"
            xs = [1, 2, 3]
            xs[0] = 10
            push(xs, 4)
            d = {"a": 1}
            d["b"] = 2
            total = xs[0] + xs[3] + d["b"]
        "#;
        assert_eq!(eval_global(src, "total"), Value::Int(16));
    }

    #[test]
    fn lambda_values() {
        let src = r#"
            double = fn (x) { return x * 2 }
            y = double(21)
        "#;
        assert_eq!(eval_global(src, "y"), Value::Int(42));
    }

    #[test]
    fn higher_order_functions() {
        let src = r#"
            def apply(f, x) { return f(x) }
            y = apply(fn (v) { return v + 1 }, 41)
        "#;
        assert_eq!(eval_global(src, "y"), Value::Int(42));
    }

    #[test]
    fn import_native_module() {
        let mut reg = ModuleRegistry::new();
        reg.register_native("mathx", || {
            vec![native("square", |args| {
                let x = args[0].as_int()?;
                Ok(Value::Int(x * x))
            })]
        });
        let mut interp = Interp::with_registry(reg);
        interp
            .exec_source("import mathx\ny = mathx.square(9)")
            .unwrap();
        assert_eq!(interp.get_global("y").unwrap(), Value::Int(81));
    }

    #[test]
    fn import_source_module() {
        let mut reg = ModuleRegistry::new();
        reg.register_source("helpers", "def triple(x) { return x * 3 }");
        let mut interp = Interp::with_registry(reg);
        interp
            .exec_source("import helpers\ny = helpers.triple(14)")
            .unwrap();
        assert_eq!(interp.get_global("y").unwrap(), Value::Int(42));
    }

    #[test]
    fn missing_import_is_dependency_error() {
        let mut interp = Interp::new();
        let e = interp.exec_source("import numpy").unwrap_err();
        assert!(matches!(e, VineError::Dependency(_)), "{e:?}");
    }

    #[test]
    fn short_circuit_evaluation() {
        // rhs would divide by zero if evaluated
        let src = "x = false and 1 / 0\ny = true or 1 / 0";
        let interp = run(src);
        assert_eq!(interp.get_global("x").unwrap(), Value::Bool(false));
        assert_eq!(interp.get_global("y").unwrap(), Value::Bool(true));
    }

    #[test]
    fn runtime_errors() {
        let cases = [
            ("x = 1 / 0", "division by zero"),
            ("x = [1][5]", "out of range"),
            ("x = {\"a\": 1}[\"b\"]", "key not found"),
            ("undefined_fn(1)", "undefined"),
            ("x = nosuchvar", "undefined variable"),
            ("x = 1 + \"s\"", "expected float"),
        ];
        for (src, needle) in cases {
            let mut interp = Interp::new();
            let e = interp.exec_source(src).unwrap_err().to_string();
            assert!(e.contains(needle), "{src}: {e}");
        }
    }

    #[test]
    fn integer_overflow_is_caught() {
        let mut interp = Interp::new();
        let e = interp
            .exec_source("x = 9223372036854775807 + 1")
            .unwrap_err();
        assert!(e.to_string().contains("overflow"));
    }

    #[test]
    fn step_limit_stops_infinite_loop() {
        let mut interp = Interp::new();
        interp.step_limit = 10_000;
        let e = interp.exec_source("while true { }").unwrap_err();
        assert!(e.to_string().contains("step limit"));
    }

    #[test]
    fn builtin_shadowing_by_user_definition() {
        // user-defined len replaces the builtin
        let src = r#"
            def len(x) { return 999 }
            y = len([1, 2, 3])
        "#;
        assert_eq!(eval_global(src, "y"), Value::Int(999));
    }

    #[test]
    fn for_over_dict_iterates_keys() {
        let src = r#"
            d = {"b": 2, "a": 1}
            ks = []
            for k in d { push(ks, k) }
        "#;
        let interp = run(src);
        // BTreeMap iteration: sorted keys — deterministic
        assert_eq!(
            interp.get_global("ks").unwrap(),
            Value::list(vec![Value::str("a"), Value::str("b")])
        );
    }

    #[test]
    fn bind_function_attaches_to_new_globals() {
        let def = Rc::new(crate::ast::FuncDef::new(
            "probe",
            vec![],
            vec![Stmt::dummy(StmtKind::Return(Some(Expr::Var(
                "state".into(),
            ))))],
        ));
        let mut interp = Interp::new();
        interp.set_global("state", Value::Int(7));
        interp.bind_function(def);
        assert_eq!(interp.call_global("probe", &[]).unwrap(), Value::Int(7));
    }

    #[test]
    fn wrong_arity_is_error() {
        let mut interp = Interp::new();
        interp.exec_source("def f(a, b) { return a }").unwrap();
        let e = interp.call_global("f", &[Value::Int(1)]).unwrap_err();
        assert!(e.to_string().contains("takes 2 arguments"));
    }
}
