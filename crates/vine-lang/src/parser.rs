//! Recursive-descent parser for vinescript.

use crate::ast::{BinOp, Expr, FuncDef, Program, Span, Stmt, StmtKind, Target, UnOp};
use crate::lexer::{Tok, Token};
use std::rc::Rc;
use vine_core::{Result, VineError};

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
}

fn perr(line: u32, col: u32, msg: impl std::fmt::Display) -> VineError {
    VineError::Lang(format!("parse error at line {line}, column {col}: {msg}"))
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].kind
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    fn col(&self) -> u32 {
        self.toks[self.pos].col
    }

    /// Byte offset where the current token starts.
    fn start(&self) -> u32 {
        self.toks[self.pos].span.start
    }

    /// Byte offset just past the most recently consumed token.
    fn prev_end(&self) -> u32 {
        if self.pos == 0 {
            0
        } else {
            self.toks[self.pos - 1].span.end
        }
    }

    fn advance(&mut self) -> Tok {
        let t = self.toks[self.pos].kind.clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, want: &Tok) -> Result<()> {
        if self.peek() == want {
            self.advance();
            Ok(())
        } else {
            Err(perr(
                self.line(),
                self.col(),
                format!("expected {:?}, found {:?}", want, self.peek()),
            ))
        }
    }

    fn eat_ident(&mut self) -> Result<String> {
        match self.peek().clone() {
            Tok::Ident(name) => {
                self.advance();
                Ok(name)
            }
            other => Err(perr(
                self.line(),
                self.col(),
                format!("expected identifier, found {other:?}"),
            )),
        }
    }

    // ---- statements ----

    fn block(&mut self) -> Result<Vec<Stmt>> {
        self.eat(&Tok::LBrace)?;
        let mut stmts = Vec::new();
        while self.peek() != &Tok::RBrace {
            if self.peek() == &Tok::Eof {
                return Err(perr(
                    self.line(),
                    self.col(),
                    "unexpected end of input in block",
                ));
            }
            stmts.push(self.statement()?);
        }
        self.eat(&Tok::RBrace)?;
        Ok(stmts)
    }

    fn statement(&mut self) -> Result<Stmt> {
        // optional statement separators
        while self.peek() == &Tok::Semi {
            self.advance();
        }
        let line = self.line();
        let col = self.col();
        let start = self.start();
        let kind = match self.peek().clone() {
            Tok::Import => {
                self.advance();
                let name = self.eat_ident()?;
                StmtKind::Import(name)
            }
            Tok::Def => {
                self.advance();
                let name = self.eat_ident()?;
                let params = self.param_list()?;
                let body = self.block()?;
                let span = Span {
                    start,
                    end: self.prev_end(),
                };
                StmtKind::FuncDef(Rc::new(FuncDef {
                    name,
                    params,
                    body,
                    span,
                }))
            }
            Tok::Global => {
                self.advance();
                let mut names = vec![self.eat_ident()?];
                while self.peek() == &Tok::Comma {
                    self.advance();
                    names.push(self.eat_ident()?);
                }
                StmtKind::Global(names)
            }
            Tok::Return => {
                self.advance();
                // `return` with nothing before a block/statement boundary
                let value = if matches!(
                    self.peek(),
                    Tok::RBrace | Tok::Eof | Tok::Semi | Tok::Def | Tok::If | Tok::While | Tok::For
                ) {
                    None
                } else {
                    Some(self.expr()?)
                };
                StmtKind::Return(value)
            }
            Tok::Break => {
                self.advance();
                StmtKind::Break
            }
            Tok::Continue => {
                self.advance();
                StmtKind::Continue
            }
            Tok::If => {
                self.advance();
                let mut arms = Vec::new();
                let cond = self.expr()?;
                let body = self.block()?;
                arms.push((cond, body));
                let mut els = None;
                loop {
                    match self.peek() {
                        Tok::Elif => {
                            self.advance();
                            let c = self.expr()?;
                            let b = self.block()?;
                            arms.push((c, b));
                        }
                        Tok::Else => {
                            self.advance();
                            els = Some(self.block()?);
                            break;
                        }
                        _ => break,
                    }
                }
                StmtKind::If(arms, els)
            }
            Tok::While => {
                self.advance();
                let cond = self.expr()?;
                let body = self.block()?;
                StmtKind::While(cond, body)
            }
            Tok::For => {
                self.advance();
                let var = self.eat_ident()?;
                self.eat(&Tok::In)?;
                let iter = self.expr()?;
                let body = self.block()?;
                StmtKind::For(var, iter, body)
            }
            _ => {
                // expression, assignment, or augmented assignment
                let e = self.expr()?;
                match self.peek() {
                    Tok::Assign => {
                        self.advance();
                        let rhs = self.expr()?;
                        StmtKind::Assign(Self::to_target(e, line, col)?, rhs)
                    }
                    Tok::PlusEq | Tok::MinusEq => {
                        let op = if self.peek() == &Tok::PlusEq {
                            BinOp::Add
                        } else {
                            BinOp::Sub
                        };
                        self.advance();
                        let rhs = self.expr()?;
                        let target = Self::to_target(e.clone(), line, col)?;
                        StmtKind::Assign(target, Expr::Binary(op, Box::new(e), Box::new(rhs)))
                    }
                    _ => StmtKind::Expr(e),
                }
            }
        };
        let stmt = Stmt::new(
            kind,
            Span {
                start,
                end: self.prev_end(),
            },
        );
        while self.peek() == &Tok::Semi {
            self.advance();
        }
        Ok(stmt)
    }

    fn to_target(e: Expr, line: u32, col: u32) -> Result<Target> {
        match e {
            Expr::Var(name) => Ok(Target::Var(name)),
            Expr::Index(obj, idx) => Ok(Target::Index(*obj, *idx)),
            other => Err(perr(
                line,
                col,
                format!("invalid assignment target: {other:?}"),
            )),
        }
    }

    fn param_list(&mut self) -> Result<Vec<String>> {
        self.eat(&Tok::LParen)?;
        let mut params = Vec::new();
        if self.peek() != &Tok::RParen {
            params.push(self.eat_ident()?);
            while self.peek() == &Tok::Comma {
                self.advance();
                params.push(self.eat_ident()?);
            }
        }
        self.eat(&Tok::RParen)?;
        Ok(params)
    }

    // ---- expressions (precedence climbing) ----

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.and_expr()?;
        while self.peek() == &Tok::Or {
            self.advance();
            let rhs = self.and_expr()?;
            lhs = Expr::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.not_expr()?;
        while self.peek() == &Tok::And {
            self.advance();
            let rhs = self.not_expr()?;
            lhs = Expr::Binary(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.peek() == &Tok::Not {
            self.advance();
            let inner = self.not_expr()?;
            return Ok(Expr::Unary(UnOp::Not, Box::new(inner)));
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr> {
        let lhs = self.additive()?;
        let op = match self.peek() {
            Tok::Eq => BinOp::Eq,
            Tok::Ne => BinOp::Ne,
            Tok::Lt => BinOp::Lt,
            Tok::Le => BinOp::Le,
            Tok::Gt => BinOp::Gt,
            Tok::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.advance();
        let rhs = self.additive()?;
        Ok(Expr::Binary(op, Box::new(lhs), Box::new(rhs)))
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.advance();
            let rhs = self.multiplicative()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Mod,
                _ => break,
            };
            self.advance();
            let rhs = self.unary()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.peek() == &Tok::Minus {
            self.advance();
            let inner = self.unary()?;
            return Ok(Expr::Unary(UnOp::Neg, Box::new(inner)));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr> {
        let mut e = self.primary()?;
        loop {
            match self.peek() {
                Tok::LParen => {
                    self.advance();
                    let mut args = Vec::new();
                    if self.peek() != &Tok::RParen {
                        args.push(self.expr()?);
                        while self.peek() == &Tok::Comma {
                            self.advance();
                            args.push(self.expr()?);
                        }
                    }
                    self.eat(&Tok::RParen)?;
                    e = Expr::Call(Box::new(e), args);
                }
                Tok::LBracket => {
                    self.advance();
                    let idx = self.expr()?;
                    self.eat(&Tok::RBracket)?;
                    e = Expr::Index(Box::new(e), Box::new(idx));
                }
                Tok::Dot => {
                    self.advance();
                    let attr = self.eat_ident()?;
                    e = Expr::Attr(Box::new(e), attr);
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr> {
        let line = self.line();
        let col = self.col();
        let start = self.start();
        let e = match self.advance() {
            Tok::Int(v) => Expr::Int(v),
            Tok::Float(v) => Expr::Float(v),
            Tok::Str(s) => Expr::Str(s),
            Tok::True => Expr::Bool(true),
            Tok::False => Expr::Bool(false),
            Tok::None => Expr::None,
            Tok::Ident(name) => Expr::Var(name),
            Tok::LParen => {
                let inner = self.expr()?;
                self.eat(&Tok::RParen)?;
                inner
            }
            Tok::LBracket => {
                let mut items = Vec::new();
                if self.peek() != &Tok::RBracket {
                    items.push(self.expr()?);
                    while self.peek() == &Tok::Comma {
                        self.advance();
                        if self.peek() == &Tok::RBracket {
                            break; // trailing comma
                        }
                        items.push(self.expr()?);
                    }
                }
                self.eat(&Tok::RBracket)?;
                Expr::List(items)
            }
            Tok::LBrace => {
                let mut pairs = Vec::new();
                if self.peek() != &Tok::RBrace {
                    loop {
                        let k = self.expr()?;
                        self.eat(&Tok::Colon)?;
                        let v = self.expr()?;
                        pairs.push((k, v));
                        if self.peek() == &Tok::Comma {
                            self.advance();
                            if self.peek() == &Tok::RBrace {
                                break;
                            }
                        } else {
                            break;
                        }
                    }
                }
                self.eat(&Tok::RBrace)?;
                Expr::Dict(pairs)
            }
            Tok::Fn => {
                let params = self.param_list()?;
                let body = self.block()?;
                let span = Span {
                    start,
                    end: self.prev_end(),
                };
                Expr::Lambda(Rc::new(FuncDef {
                    name: String::new(),
                    params,
                    body,
                    span,
                }))
            }
            other => return Err(perr(line, col, format!("unexpected token {other:?}"))),
        };
        Ok(e)
    }
}

/// Parse a token stream into a program.
pub fn parse_program(toks: &[Token]) -> Result<Program> {
    let mut p = Parser { toks, pos: 0 };
    let mut stmts = Vec::new();
    while p.peek() != &Tok::Eof {
        stmts.push(p.statement()?);
    }
    Ok(stmts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Program {
        parse_program(&lex(src).unwrap()).unwrap()
    }

    #[test]
    fn parse_function_def() {
        let prog = parse("def add(a, b) { return a + b }");
        assert_eq!(prog.len(), 1);
        match &prog[0].kind {
            StmtKind::FuncDef(f) => {
                assert_eq!(f.name, "add");
                assert_eq!(f.params, vec!["a", "b"]);
                assert_eq!(f.body.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_precedence() {
        // 1 + 2 * 3 parses as 1 + (2 * 3)
        let prog = parse("x = 1 + 2 * 3");
        match &prog[0].kind {
            StmtKind::Assign(Target::Var(x), Expr::Binary(BinOp::Add, lhs, rhs)) => {
                assert_eq!(x, "x");
                assert_eq!(**lhs, Expr::Int(1));
                assert!(matches!(**rhs, Expr::Binary(BinOp::Mul, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_logical_precedence() {
        // a or b and not c == (a or (b and (not c)))
        let prog = parse("x = a or b and not c");
        match &prog[0].kind {
            StmtKind::Assign(_, Expr::Binary(BinOp::Or, _, rhs)) => {
                assert!(matches!(**rhs, Expr::Binary(BinOp::And, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_if_elif_else() {
        let prog = parse("if a { x = 1 } elif b { x = 2 } else { x = 3 }");
        match &prog[0].kind {
            StmtKind::If(arms, els) => {
                assert_eq!(arms.len(), 2);
                assert!(els.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_for_and_while() {
        let prog = parse("for i in range(10) { s += i }\nwhile s > 0 { s -= 1 }");
        assert!(matches!(prog[0].kind, StmtKind::For(_, _, _)));
        assert!(matches!(prog[1].kind, StmtKind::While(_, _)));
    }

    #[test]
    fn parse_augmented_assign_desugars() {
        let prog = parse("x += 2");
        match &prog[0].kind {
            StmtKind::Assign(Target::Var(x), Expr::Binary(BinOp::Add, _, _)) => assert_eq!(x, "x"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_index_assignment() {
        let prog = parse("xs[0] = 5");
        assert!(matches!(
            &prog[0].kind,
            StmtKind::Assign(Target::Index(_, _), _)
        ));
    }

    #[test]
    fn parse_attr_call_chain() {
        let prog = parse("y = nn.infer(model, img)[0]");
        match &prog[0].kind {
            StmtKind::Assign(_, Expr::Index(call, _)) => {
                assert!(matches!(**call, Expr::Call(_, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_lambda() {
        let prog = parse("f = fn (x) { return x * 2 }");
        match &prog[0].kind {
            StmtKind::Assign(_, Expr::Lambda(f)) => {
                assert!(f.is_lambda());
                assert_eq!(f.params, vec!["x"]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_dict_and_list_literals() {
        let prog = parse(r#"d = {"a": 1, "b": [1, 2, 3,],}"#);
        match &prog[0].kind {
            StmtKind::Assign(_, Expr::Dict(pairs)) => {
                assert_eq!(pairs.len(), 2);
                assert!(matches!(pairs[1].1, Expr::List(ref xs) if xs.len() == 3));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_global_decl() {
        let prog = parse("def setup() { global model, cache\n model = 1 }");
        match &prog[0].kind {
            StmtKind::FuncDef(f) => {
                assert_eq!(
                    f.body[0].kind,
                    StmtKind::Global(vec!["model".into(), "cache".into()])
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_return_without_value() {
        let prog = parse("def f() { return }");
        match &prog[0].kind {
            StmtKind::FuncDef(f) => assert_eq!(f.body[0].kind, StmtKind::Return(None)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_errors() {
        let bad = [
            "def f( {",
            "x = ",
            "if { }",
            "1 = 2",
            "def f() { return x",
            "fn x",
        ];
        for src in bad {
            let toks = lex(src);
            if let Ok(toks) = toks {
                assert!(parse_program(&toks).is_err(), "should fail: {src}");
            }
        }
    }

    #[test]
    fn parse_errors_carry_line_and_column() {
        let toks = lex("x = 1\ny = )").unwrap();
        let e = parse_program(&toks).unwrap_err().to_string();
        assert!(e.contains("line 2, column 5"), "got: {e}");
    }

    #[test]
    fn statements_carry_source_spans() {
        let src = "x = 1\ndef f(a) {\n  return a\n}\ny = f(x)";
        let prog = parse(src);
        assert_eq!(prog[0].span.slice(src), "x = 1");
        assert_eq!(prog[1].span.slice(src), "def f(a) {\n  return a\n}");
        assert_eq!(prog[2].span.slice(src), "y = f(x)");
        match &prog[1].kind {
            StmtKind::FuncDef(f) => {
                assert_eq!(f.span.slice(src), "def f(a) {\n  return a\n}");
                assert_eq!(f.body[0].span.slice(src), "return a");
                assert_eq!(f.body[0].span.line_col(src), (3, 3));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_unary_minus_binds_tighter_than_mul() {
        // -x * y == (-x) * y
        let prog = parse("z = -x * y");
        match &prog[0].kind {
            StmtKind::Assign(_, Expr::Binary(BinOp::Mul, lhs, _)) => {
                assert!(matches!(**lhs, Expr::Unary(UnOp::Neg, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_import() {
        let prog = parse("import nn\nimport mathx");
        assert_eq!(prog[0].kind, StmtKind::Import("nn".into()));
        assert_eq!(prog[1].kind, StmtKind::Import("mathx".into()));
    }
}
