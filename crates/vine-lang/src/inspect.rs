//! Source inspection: the `inspect` + Poncho analogue.
//!
//! The discover mechanism (paper §3.2) "first tries to extract the source
//! code of such functions using the built-in inspect module … If successful,
//! TaskVine adds the source code of the functions to the context … Otherwise
//! TaskVine serializes the functions to files using cloudpickle." And for
//! dependencies, Poncho "scan[s] their ASTs for imported modules".
//!
//! * [`extract_source`] — recover a named function's source from its
//!   defining module text (via parse + pretty-print, so the result is
//!   canonical and re-parseable).
//! * [`scan_imports`] — collect every module a function's AST imports,
//!   including inside nested functions and lambdas.
//! * [`format_program`] / [`format_funcdef`] — the canonical pretty-printer
//!   (sub-expressions are fully parenthesized, making round-tripping
//!   trivially precedence-safe).

use crate::ast::{walk_stmts, BinOp, Expr, FuncDef, Program, Stmt, StmtKind, Target, UnOp};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Extract the source of a top-level function `name` from module source
/// text. Returns `None` if parsing fails or no such function exists — the
/// caller then falls back to serializing the code object, exactly like the
/// paper's inspect-then-cloudpickle cascade.
pub fn extract_source(module_src: &str, name: &str) -> Option<String> {
    let prog = crate::parse(module_src).ok()?;
    for stmt in &prog {
        if let StmtKind::FuncDef(def) = &stmt.kind {
            if def.name == name {
                return Some(format_funcdef(def));
            }
        }
    }
    None
}

/// Collect module names imported anywhere inside `stmts` (nested blocks,
/// inner functions, and lambdas included). Sorted and deduplicated.
pub fn scan_imports(stmts: &[Stmt]) -> Vec<String> {
    let mut found = BTreeSet::new();
    walk_stmts(stmts, &mut |s| {
        if let StmtKind::Import(name) = &s.kind {
            found.insert(name.clone());
        }
    });
    found.into_iter().collect()
}

/// Imports of a single function definition.
pub fn scan_function_imports(def: &FuncDef) -> Vec<String> {
    scan_imports(&def.body)
}

// ---------- pretty-printer ----------

fn binop_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Mod => "%",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::And => "and",
        BinOp::Or => "or",
    }
}

fn escape_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\0' => out.push_str("\\0"),
            other => out.push(other),
        }
    }
    out.push('"');
    out
}

/// Format an expression. Composite sub-expressions are parenthesized, so
/// output never depends on printer-side precedence knowledge.
pub fn format_expr(e: &Expr) -> String {
    match e {
        Expr::None => "none".into(),
        Expr::Bool(b) => b.to_string(),
        Expr::Int(v) => v.to_string(),
        Expr::Float(v) => {
            // Debug is the shortest round-trip form and always contains a
            // '.' or an exponent, so it re-lexes as a float (Display would
            // print 1e300 as 300 digits, which re-lexes as a too-big int)
            format!("{v:?}")
        }
        Expr::Str(s) => escape_str(s),
        Expr::List(items) => {
            let inner: Vec<String> = items.iter().map(format_expr).collect();
            format!("[{}]", inner.join(", "))
        }
        Expr::Dict(pairs) => {
            let inner: Vec<String> = pairs
                .iter()
                .map(|(k, v)| format!("{}: {}", format_expr(k), format_expr(v)))
                .collect();
            format!("{{{}}}", inner.join(", "))
        }
        Expr::Var(name) => name.clone(),
        Expr::Attr(obj, attr) => format!("{}.{}", format_postfix_base(obj), attr),
        Expr::Index(obj, idx) => {
            format!("{}[{}]", format_postfix_base(obj), format_expr(idx))
        }
        Expr::Call(f, args) => {
            let inner: Vec<String> = args.iter().map(format_expr).collect();
            format!("{}({})", format_postfix_base(f), inner.join(", "))
        }
        Expr::Unary(UnOp::Neg, inner) => format!("(-{})", format_expr(inner)),
        Expr::Unary(UnOp::Not, inner) => format!("(not {})", format_expr(inner)),
        Expr::Binary(op, l, r) => {
            format!("({} {} {})", format_expr(l), binop_str(*op), format_expr(r))
        }
        Expr::Lambda(def) => {
            let mut s = format!("fn ({}) {{\n", def.params.join(", "));
            write_block(&mut s, &def.body, 1);
            s.push('}');
            s
        }
    }
}

/// Postfix bases (the `f` in `f(x)`, the `a` in `a[i]` / `a.b`) need parens
/// only when they are themselves operator expressions.
fn format_postfix_base(e: &Expr) -> String {
    match e {
        Expr::Binary(..) | Expr::Unary(..) | Expr::Lambda(_) => {
            format!("({})", format_expr(e))
        }
        _ => format_expr(e),
    }
}

fn write_block(out: &mut String, stmts: &[Stmt], depth: usize) {
    for s in stmts {
        write_stmt(out, s, depth);
    }
}

fn write_stmt(out: &mut String, s: &Stmt, depth: usize) {
    let pad = "    ".repeat(depth);
    match &s.kind {
        StmtKind::Import(name) => {
            let _ = writeln!(out, "{pad}import {name}");
        }
        StmtKind::FuncDef(def) => {
            let _ = writeln!(out, "{pad}def {}({}) {{", def.name, def.params.join(", "));
            write_block(out, &def.body, depth + 1);
            let _ = writeln!(out, "{pad}}}");
        }
        // statements ending in an expression get a ';' so a following
        // statement that begins with '[' or '(' cannot merge into them
        // (the grammar is newline-insensitive)
        StmtKind::Assign(Target::Var(name), e) => {
            let _ = writeln!(out, "{pad}{name} = {};", format_expr(e));
        }
        StmtKind::Assign(Target::Index(obj, idx), e) => {
            let _ = writeln!(
                out,
                "{pad}{}[{}] = {};",
                format_postfix_base(obj),
                format_expr(idx),
                format_expr(e)
            );
        }
        StmtKind::Global(names) => {
            let _ = writeln!(out, "{pad}global {}", names.join(", "));
        }
        StmtKind::If(arms, els) => {
            for (i, (cond, body)) in arms.iter().enumerate() {
                let kw = if i == 0 { "if" } else { "elif" };
                let _ = writeln!(out, "{pad}{kw} {} {{", format_expr(cond));
                write_block(out, body, depth + 1);
                let _ = write!(out, "{pad}}}");
                if i + 1 < arms.len() || els.is_some() {
                    let _ = write!(out, " ");
                } else {
                    let _ = writeln!(out);
                }
            }
            if let Some(body) = els {
                let _ = writeln!(out, "else {{");
                write_block(out, body, depth + 1);
                let _ = writeln!(out, "{pad}}}");
            }
        }
        StmtKind::While(cond, body) => {
            let _ = writeln!(out, "{pad}while {} {{", format_expr(cond));
            write_block(out, body, depth + 1);
            let _ = writeln!(out, "{pad}}}");
        }
        StmtKind::For(var, iter, body) => {
            let _ = writeln!(out, "{pad}for {var} in {} {{", format_expr(iter));
            write_block(out, body, depth + 1);
            let _ = writeln!(out, "{pad}}}");
        }
        StmtKind::Return(Some(e)) => {
            let _ = writeln!(out, "{pad}return {};", format_expr(e));
        }
        StmtKind::Return(None) => {
            let _ = writeln!(out, "{pad}return;");
        }
        StmtKind::Break => {
            let _ = writeln!(out, "{pad}break");
        }
        StmtKind::Continue => {
            let _ = writeln!(out, "{pad}continue");
        }
        StmtKind::Expr(e) => {
            let _ = writeln!(out, "{pad}{};", format_expr(e));
        }
    }
}

/// Canonical source form of a whole program.
pub fn format_program(prog: &Program) -> String {
    let mut out = String::new();
    write_block(&mut out, prog, 0);
    out
}

/// Canonical source form of one function definition.
pub fn format_funcdef(def: &FuncDef) -> String {
    let mut out = String::new();
    write_stmt(
        &mut out,
        &Stmt::dummy(StmtKind::FuncDef(std::rc::Rc::new(def.clone()))),
        0,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const MODULE: &str = r#"
        import nn
        version = 3

        def context_setup(path) {
            global model
            model = nn.load_model(path)
        }

        def infer(img) {
            import mathx
            return nn.forward(model, img)
        }

        def unrelated() { return 0 }
    "#;

    #[test]
    fn extract_source_finds_named_function() {
        let src = extract_source(MODULE, "infer").unwrap();
        assert!(src.starts_with("def infer(img) {"));
        assert!(src.contains("nn.forward(model, img)"));
        // extracted source must re-parse
        let prog = crate::parse(&src).unwrap();
        assert_eq!(prog.len(), 1);
    }

    #[test]
    fn extract_source_missing_function_is_none() {
        assert!(extract_source(MODULE, "nope").is_none());
        assert!(extract_source("not ] valid source", "f").is_none());
    }

    #[test]
    fn extracted_source_executes_identically() {
        let src = extract_source(MODULE, "unrelated").unwrap();
        let mut interp = crate::interp::Interp::new();
        interp.exec_source(&src).unwrap();
        assert_eq!(
            interp.call_global("unrelated", &[]).unwrap(),
            crate::Value::Int(0)
        );
    }

    #[test]
    fn scan_imports_finds_nested() {
        let prog = crate::parse(MODULE).unwrap();
        let imports = scan_imports(&prog);
        assert_eq!(imports, vec!["mathx".to_string(), "nn".to_string()]);
    }

    #[test]
    fn scan_function_imports_only_that_function() {
        let prog = crate::parse(MODULE).unwrap();
        let infer = prog
            .iter()
            .find_map(|s| match &s.kind {
                StmtKind::FuncDef(d) if d.name == "infer" => Some(d.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(scan_function_imports(&infer), vec!["mathx".to_string()]);
    }

    #[test]
    fn scan_imports_in_lambdas() {
        let prog = crate::parse("g = fn (x) { import dep\nreturn x }").unwrap();
        assert_eq!(scan_imports(&prog), vec!["dep".to_string()]);
    }

    #[test]
    fn pretty_print_roundtrips_to_same_ast() {
        let src = r#"
            import nn
            def f(a, b) {
                global g
                xs = [1, 2.5, "s", none, true]
                d = {"k": [a]}
                xs[0] = a + b * 2
                d["j"] = -a
                if a > 0 and b < 3 { return xs } elif not a { return d } else { a = 0 }
                for i in range(10) { if i == 2 { continue } else { break } }
                while a != b { a += 1 }
                h = fn (z) { return z }
                return h(nn.forward(a, b)[0].shape)
            }
        "#;
        let prog1 = crate::parse(src).unwrap();
        let printed = format_program(&prog1);
        let prog2 = crate::parse(&printed).unwrap();
        assert_eq!(prog1, prog2, "printed:\n{printed}");
        // idempotent: printing again yields identical text
        assert_eq!(format_program(&prog2), printed);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let prog1 = crate::parse(r#"s = "a\nb\t\"c\"\\d""#).unwrap();
        let printed = format_program(&prog1);
        let prog2 = crate::parse(&printed).unwrap();
        assert_eq!(prog1, prog2);
    }

    #[test]
    fn float_literals_reparse_as_floats() {
        let prog1 = crate::parse("x = 2.0").unwrap();
        let printed = format_program(&prog1);
        let prog2 = crate::parse(&printed).unwrap();
        assert_eq!(prog1, prog2);
    }
}
