//! Tokenizer for vinescript.

use crate::ast::Span;
use vine_core::{Result, VineError};

/// A lexical token with its source position (for error messages and
/// diagnostic spans).
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    pub kind: Tok,
    /// 1-based source line.
    pub line: u32,
    /// 1-based byte column within the line.
    pub col: u32,
    /// Byte range of the token text in the source.
    pub span: Span,
}

#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    // literals
    Int(i64),
    Float(f64),
    Str(String),
    Ident(String),
    // keywords
    Def,
    Fn,
    Return,
    If,
    Elif,
    Else,
    While,
    For,
    In,
    Break,
    Continue,
    Global,
    Import,
    And,
    Or,
    Not,
    True,
    False,
    None,
    // punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Colon,
    Dot,
    Semi,
    // operators
    Assign,  // =
    Plus,    // +
    Minus,   // -
    Star,    // *
    Slash,   // /
    Percent, // %
    Eq,      // ==
    Ne,      // !=
    Lt,      // <
    Le,      // <=
    Gt,      // >
    Ge,      // >=
    PlusEq,  // +=
    MinusEq, // -=
    Eof,
}

fn keyword(word: &str) -> Option<Tok> {
    Some(match word {
        "def" => Tok::Def,
        "fn" => Tok::Fn,
        "return" => Tok::Return,
        "if" => Tok::If,
        "elif" => Tok::Elif,
        "else" => Tok::Else,
        "while" => Tok::While,
        "for" => Tok::For,
        "in" => Tok::In,
        "break" => Tok::Break,
        "continue" => Tok::Continue,
        "global" => Tok::Global,
        "import" => Tok::Import,
        "and" => Tok::And,
        "or" => Tok::Or,
        "not" => Tok::Not,
        "true" => Tok::True,
        "false" => Tok::False,
        "none" => Tok::None,
        _ => return Option::None,
    })
}

fn err(line: u32, col: u32, msg: impl std::fmt::Display) -> VineError {
    VineError::Lang(format!("line {line}, column {col}: {msg}"))
}

/// Tokenize `src`. Comments run from `#` to end of line.
pub fn lex(src: &str) -> Result<Vec<Token>> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    // byte offset where the current line starts; columns derive from it
    let mut line_start = 0usize;

    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        let tok_line = line;
        let tok_col = (i - line_start) as u32 + 1;

        // every arm advances `i` past the token, then `push!` records the
        // consumed byte range [start, i)
        macro_rules! push {
            ($kind:expr) => {
                out.push(Token {
                    kind: $kind,
                    line: tok_line,
                    col: tok_col,
                    span: Span::new(start, i),
                })
            };
        }

        match c {
            '\n' => {
                line += 1;
                i += 1;
                line_start = i;
            }
            ' ' | '\t' | '\r' => i += 1,
            '#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                i += 1;
                push!(Tok::LParen);
            }
            ')' => {
                i += 1;
                push!(Tok::RParen);
            }
            '{' => {
                i += 1;
                push!(Tok::LBrace);
            }
            '}' => {
                i += 1;
                push!(Tok::RBrace);
            }
            '[' => {
                i += 1;
                push!(Tok::LBracket);
            }
            ']' => {
                i += 1;
                push!(Tok::RBracket);
            }
            ',' => {
                i += 1;
                push!(Tok::Comma);
            }
            ':' => {
                i += 1;
                push!(Tok::Colon);
            }
            '.' => {
                i += 1;
                push!(Tok::Dot);
            }
            ';' => {
                i += 1;
                push!(Tok::Semi);
            }
            '+' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    push!(Tok::PlusEq);
                } else {
                    i += 1;
                    push!(Tok::Plus);
                }
            }
            '-' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    push!(Tok::MinusEq);
                } else {
                    i += 1;
                    push!(Tok::Minus);
                }
            }
            '*' => {
                i += 1;
                push!(Tok::Star);
            }
            '/' => {
                i += 1;
                push!(Tok::Slash);
            }
            '%' => {
                i += 1;
                push!(Tok::Percent);
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    push!(Tok::Eq);
                } else {
                    i += 1;
                    push!(Tok::Assign);
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    push!(Tok::Ne);
                } else {
                    return Err(err(tok_line, tok_col, "unexpected '!'"));
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    push!(Tok::Le);
                } else {
                    i += 1;
                    push!(Tok::Lt);
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    push!(Tok::Ge);
                } else {
                    i += 1;
                    push!(Tok::Gt);
                }
            }
            '"' | '\'' => {
                let quote = c;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(err(tok_line, tok_col, "unterminated string"));
                    }
                    let ch = bytes[i] as char;
                    if ch == quote {
                        i += 1;
                        break;
                    }
                    if ch == '\n' {
                        return Err(err(tok_line, tok_col, "unterminated string"));
                    }
                    if ch == '\\' {
                        i += 1;
                        let esc = *bytes
                            .get(i)
                            .ok_or_else(|| err(tok_line, tok_col, "unterminated escape"))?
                            as char;
                        s.push(match esc {
                            'n' => '\n',
                            't' => '\t',
                            'r' => '\r',
                            '\\' => '\\',
                            '\'' => '\'',
                            '"' => '"',
                            '0' => '\0',
                            other => {
                                let esc_col = (i - 1 - line_start) as u32 + 1;
                                return Err(err(line, esc_col, format!("bad escape '\\{other}'")));
                            }
                        });
                        i += 1;
                    } else {
                        s.push(ch);
                        i += 1;
                    }
                }
                push!(Tok::Str(s));
            }
            '0'..='9' => {
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                // a '.' starts a fraction only if followed by a digit, so
                // method-style `x.abs` on ints stays unambiguous
                if i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j].is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &src[start..i];
                if is_float {
                    let v: f64 = text
                        .parse()
                        .map_err(|_| err(tok_line, tok_col, format!("bad float literal {text}")))?;
                    push!(Tok::Float(v));
                } else {
                    let v: i64 = text.parse().map_err(|_| {
                        err(
                            tok_line,
                            tok_col,
                            format!("integer literal out of range: {text}"),
                        )
                    })?;
                    push!(Tok::Int(v));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &src[start..i];
                match keyword(word) {
                    Some(k) => push!(k),
                    Option::None => push!(Tok::Ident(word.to_string())),
                }
            }
            other => {
                return Err(err(
                    tok_line,
                    tok_col,
                    format!("unexpected character '{other}'"),
                ))
            }
        }
    }
    out.push(Token {
        kind: Tok::Eof,
        line,
        col: (i - line_start) as u32 + 1,
        span: Span::new(i, i),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lex_simple_def() {
        let toks = kinds("def f(x) { return x + 1 }");
        assert_eq!(
            toks,
            vec![
                Tok::Def,
                Tok::Ident("f".into()),
                Tok::LParen,
                Tok::Ident("x".into()),
                Tok::RParen,
                Tok::LBrace,
                Tok::Return,
                Tok::Ident("x".into()),
                Tok::Plus,
                Tok::Int(1),
                Tok::RBrace,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn lex_numbers() {
        assert_eq!(
            kinds("1 2.5 1e3 2E-2 10.25"),
            vec![
                Tok::Int(1),
                Tok::Float(2.5),
                Tok::Float(1000.0),
                Tok::Float(0.02),
                Tok::Float(10.25),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lex_strings_and_escapes() {
        assert_eq!(
            kinds(r#""a\nb" 'c\'d'"#),
            vec![Tok::Str("a\nb".into()), Tok::Str("c'd".into()), Tok::Eof]
        );
    }

    #[test]
    fn lex_comments_and_lines() {
        let toks = lex("x = 1 # comment\ny = 2").unwrap();
        assert_eq!(toks[0].line, 1);
        let y = toks
            .iter()
            .find(|t| t.kind == Tok::Ident("y".into()))
            .unwrap();
        assert_eq!(y.line, 2);
    }

    #[test]
    fn lex_columns_and_spans() {
        let src = "x = 1\n  yy = 22";
        let toks = lex(src).unwrap();
        let x = &toks[0];
        assert_eq!((x.line, x.col), (1, 1));
        assert_eq!(x.span.slice(src), "x");
        let yy = toks
            .iter()
            .find(|t| t.kind == Tok::Ident("yy".into()))
            .unwrap();
        assert_eq!((yy.line, yy.col), (2, 3));
        assert_eq!(yy.span.slice(src), "yy");
        let n22 = toks.iter().find(|t| t.kind == Tok::Int(22)).unwrap();
        assert_eq!((n22.line, n22.col), (2, 8));
        assert_eq!(n22.span.slice(src), "22");
    }

    #[test]
    fn lex_comparison_operators() {
        assert_eq!(
            kinds("== != <= >= < > = += -="),
            vec![
                Tok::Eq,
                Tok::Ne,
                Tok::Le,
                Tok::Ge,
                Tok::Lt,
                Tok::Gt,
                Tok::Assign,
                Tok::PlusEq,
                Tok::MinusEq,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lex_keywords_vs_idents() {
        assert_eq!(
            kinds("for forx in int"),
            vec![
                Tok::For,
                Tok::Ident("forx".into()),
                Tok::In,
                Tok::Ident("int".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lex_unterminated_string_errors() {
        assert!(lex("\"abc").is_err());
        assert!(lex("\"abc\ndef\"").is_err());
    }

    #[test]
    fn lex_bad_char_errors() {
        assert!(lex("a @ b").is_err());
        assert!(lex("a ! b").is_err());
    }

    #[test]
    fn lex_errors_carry_line_and_column() {
        let e = lex("x = 1\n  y = @").unwrap_err().to_string();
        assert!(e.contains("line 2, column 7"), "got: {e}");
        let e = lex("s = 'abc").unwrap_err().to_string();
        assert!(e.contains("line 1, column 5"), "got: {e}");
    }

    #[test]
    fn int_dot_method_not_float() {
        // `3.x` must lex as Int Dot Ident, not a float
        assert_eq!(
            kinds("3.x"),
            vec![Tok::Int(3), Tok::Dot, Tok::Ident("x".into()), Tok::Eof]
        );
    }

    #[test]
    fn integer_overflow_is_error() {
        assert!(lex("99999999999999999999999").is_err());
    }
}
