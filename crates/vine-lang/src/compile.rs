//! Single-pass AST → bytecode compiler.
//!
//! Compilation is total: any parseable program compiles, and every dynamic
//! behavior of the tree-walker is preserved by lowering it to an
//! instruction rather than resolving it statically —
//!
//! * locals are *slots* assigned at compile time (every name the function
//!   assigns, its parameters, `for` variables, `import`s and nested
//!   `def`s), but a slot read before any assignment still falls back to a
//!   global lookup at runtime, exactly like the tree-walker's
//!   locals-then-globals `lookup`;
//! * `global` is a *statement* executed dynamically (it may sit inside an
//!   `if`), so it compiles to [`Instr::Global`] flipping slots to
//!   global-backed for the remainder of the activation;
//! * misplaced `return`/`break`/`continue` are runtime errors raised only
//!   when reached, so they compile to [`Instr::Raise`] — after evaluating
//!   the returned expression, as the tree-walker does;
//! * evaluation order is bit-compatible: call arguments before the callee,
//!   assigned values before index targets, dict keys type-checked before
//!   their values evaluate, `and`/`or` yield the deciding operand itself.

use crate::ast::{BinOp, Expr, FuncDef, Program, Stmt, StmtKind, Target};
use crate::bytecode::{CompiledFn, CompiledModule, Instr, RaiseKind, NO_SLOT};
use crate::value::Value;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;
use vine_core::ContentHash;

/// Compile a parsed module plus its source text into a content-addressed
/// [`CompiledModule`].
pub fn compile_module(prog: &Program, src: &str) -> CompiledModule {
    CompiledModule {
        top: Rc::new(compile_program(prog)),
        source_digest: ContentHash::of_str(src),
    }
}

/// Compile module-level code. The top level has no local slots: every
/// variable is a global, as in the tree-walker's frameless execution.
pub fn compile_program(prog: &Program) -> CompiledFn {
    let mut c = Compiler::new(None);
    for stmt in prog {
        c.stmt(stmt);
    }
    c.finish(None, Rc::from("<module>"), 0, Vec::new())
}

/// Compile one function definition (body in its own slot scope).
pub fn compile_function(def: &Rc<FuncDef>) -> CompiledFn {
    // slot layout: one slot per parameter *position* (duplicates get their
    // own positions; the name maps to the last, matching the tree-walker's
    // left-to-right binding), then every assigned name in first-assignment
    // order
    let mut slot_list: Vec<String> = def.params.clone();
    let mut seen: BTreeSet<String> = def.params.iter().cloned().collect();
    collect_assigned(&def.body, &mut slot_list, &mut seen);
    let mut slots: BTreeMap<String, u16> = BTreeMap::new();
    for (i, n) in slot_list.iter().enumerate() {
        slots.insert(n.clone(), i as u16);
    }

    let mut c = Compiler::new(Some(slots));
    for stmt in &def.body {
        c.stmt(stmt);
    }
    // fall-off-the-end epilogue: return none
    let none = c.const_idx(Value::None);
    c.emit(Instr::Const(none));
    c.emit(Instr::Return);

    let name: Rc<str> = if def.name.is_empty() {
        Rc::from("<lambda>")
    } else {
        Rc::from(def.name.as_str())
    };
    let slot_names = slot_list.iter().map(|s| Rc::from(s.as_str())).collect();
    c.finish(
        Some(Rc::clone(def)),
        name,
        def.params.len() as u16,
        slot_names,
    )
}

/// Names `assign_var` would bind locally: `Target::Var` assignments, `for`
/// variables, `import`ed names, nested `def` names. Does not descend into
/// nested function bodies — those are their own scopes.
fn collect_assigned(stmts: &[Stmt], out: &mut Vec<String>, seen: &mut BTreeSet<String>) {
    let add = |n: &str, out: &mut Vec<String>, seen: &mut BTreeSet<String>| {
        if seen.insert(n.to_string()) {
            out.push(n.to_string());
        }
    };
    for stmt in stmts {
        match &stmt.kind {
            StmtKind::Import(name) => add(name, out, seen),
            StmtKind::FuncDef(def) => add(&def.name, out, seen),
            StmtKind::Assign(Target::Var(name), _) => add(name, out, seen),
            StmtKind::Assign(Target::Index(..), _) => {}
            StmtKind::Global(_) => {}
            StmtKind::If(arms, els) => {
                for (_, body) in arms {
                    collect_assigned(body, out, seen);
                }
                if let Some(body) = els {
                    collect_assigned(body, out, seen);
                }
            }
            StmtKind::While(_, body) => collect_assigned(body, out, seen),
            StmtKind::For(var, _, body) => {
                add(var, out, seen);
                collect_assigned(body, out, seen);
            }
            StmtKind::Return(_) | StmtKind::Break | StmtKind::Continue | StmtKind::Expr(_) => {}
        }
    }
}

/// Peephole fusion: collapse adjacent instructions into the fused
/// superinstructions of [`Instr`] wherever the interior of the window is
/// not a jump target. Dispatch (one indirect branch per instruction) is
/// the dominant cost of simple operations, so fewer, fatter instructions
/// is the single biggest VM throughput lever. Every fusion preserves
/// evaluation order and error behavior exactly; jump targets are remapped
/// through an old→new index table afterwards.
fn fuse(code: Vec<Instr>) -> Vec<Instr> {
    use Instr::*;
    // a window may *start* at a jump target (loop heads do), but fusing
    // across one would let a jump land mid-superinstruction
    let mut is_target = vec![false; code.len() + 1];
    for ins in &code {
        match ins {
            Jump(t) | JumpIfFalse(t) | JumpIfFalseKeep(t) | JumpIfTrueKeep(t) | IterNext(t) => {
                is_target[*t as usize] = true;
            }
            _ => {}
        }
    }
    const GONE: u32 = u32::MAX;
    let mut map = vec![GONE; code.len() + 1];
    let mut out: Vec<Instr> = Vec::with_capacity(code.len());
    let mut i = 0usize;
    while i < code.len() {
        map[i] = out.len() as u32;
        let free = |k: usize| k < code.len() && !is_target[k];
        let mut fused = if free(i + 1) && free(i + 2) {
            match (&code[i], &code[i + 1], &code[i + 2]) {
                (LoadLocal(a), LoadLocal(b), Binary(op)) => Some((
                    BinaryLL {
                        op: *op,
                        a: *a,
                        b: *b,
                    },
                    3,
                )),
                (LoadLocal(a), Const(c), Binary(op)) => Some((
                    BinaryLC {
                        op: *op,
                        a: *a,
                        c: *c,
                    },
                    3,
                )),
                _ => None,
            }
        } else {
            None
        };
        if fused.is_none() && free(i + 1) {
            fused = match (&code[i], &code[i + 1]) {
                (LoadLocal(s), Binary(op)) => Some((BinarySL { op: *op, s: *s }, 2)),
                (Const(c), Binary(op)) => Some((BinarySC { op: *op, c: *c }, 2)),
                (LoadLocal(s), Return) => Some((ReturnLocal(*s), 2)),
                (Const(c), Return) => Some((ReturnConst(*c), 2)),
                (IterNext(t), StoreLocal(s)) => Some((
                    ForIter {
                        target: *t,
                        slot: *s,
                    },
                    2,
                )),
                _ => None,
            };
        }
        match fused {
            Some((ins, width)) => {
                out.push(ins);
                i += width;
            }
            None => {
                out.push(code[i].clone());
                i += 1;
            }
        }
    }
    map[code.len()] = out.len() as u32;
    for ins in &mut out {
        match ins {
            Jump(t)
            | JumpIfFalse(t)
            | JumpIfFalseKeep(t)
            | JumpIfTrueKeep(t)
            | IterNext(t)
            | ForIter { target: t, .. } => {
                debug_assert_ne!(map[*t as usize], GONE, "jump into a fused window");
                *t = map[*t as usize];
            }
            _ => {}
        }
    }
    out
}

struct LoopCtx {
    continue_target: u32,
    break_jumps: Vec<usize>,
    is_for: bool,
}

struct Compiler {
    /// Name → slot for the enclosing function; `None` at module level.
    slots: Option<BTreeMap<String, u16>>,
    names: Vec<Rc<str>>,
    name_idx: BTreeMap<String, u32>,
    consts: Vec<Value>,
    funcs: Vec<Rc<CompiledFn>>,
    code: Vec<Instr>,
    loops: Vec<LoopCtx>,
}

impl Compiler {
    fn new(slots: Option<BTreeMap<String, u16>>) -> Compiler {
        Compiler {
            slots,
            names: Vec::new(),
            name_idx: BTreeMap::new(),
            consts: Vec::new(),
            funcs: Vec::new(),
            code: Vec::new(),
            loops: Vec::new(),
        }
    }

    fn finish(
        self,
        def: Option<Rc<FuncDef>>,
        name: Rc<str>,
        n_params: u16,
        slot_names: Vec<Rc<str>>,
    ) -> CompiledFn {
        CompiledFn {
            def,
            name,
            n_params,
            n_slots: slot_names.len() as u16,
            slot_names,
            names: self.names,
            consts: self.consts,
            funcs: self.funcs,
            code: fuse(self.code),
        }
    }

    fn emit(&mut self, i: Instr) -> usize {
        self.code.push(i);
        self.code.len() - 1
    }

    fn here(&self) -> u32 {
        self.code.len() as u32
    }

    fn patch(&mut self, at: usize, target: u32) {
        match &mut self.code[at] {
            Instr::Jump(t)
            | Instr::JumpIfFalse(t)
            | Instr::JumpIfFalseKeep(t)
            | Instr::JumpIfTrueKeep(t)
            | Instr::IterNext(t) => *t = target,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    fn name_idx(&mut self, name: &str) -> u32 {
        if let Some(&i) = self.name_idx.get(name) {
            return i;
        }
        let i = self.names.len() as u32;
        self.names.push(Rc::from(name));
        self.name_idx.insert(name.to_string(), i);
        i
    }

    fn const_idx(&mut self, v: Value) -> u32 {
        // strict-variant equality: Value's PartialEq calls Int(2) and
        // Float(2.0) equal, which must NOT collapse into one pool entry
        fn same(a: &Value, b: &Value) -> bool {
            match (a, b) {
                (Value::None, Value::None) => true,
                (Value::Bool(x), Value::Bool(y)) => x == y,
                (Value::Int(x), Value::Int(y)) => x == y,
                (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
                (Value::Str(x), Value::Str(y)) => x == y,
                _ => false,
            }
        }
        if let Some(i) = self.consts.iter().position(|c| same(c, &v)) {
            return i as u32;
        }
        self.consts.push(v);
        (self.consts.len() - 1) as u32
    }

    fn slot_of(&self, name: &str) -> Option<u16> {
        self.slots.as_ref().and_then(|m| m.get(name).copied())
    }

    fn load_var(&mut self, name: &str) {
        match self.slot_of(name) {
            Some(s) => self.emit(Instr::LoadLocal(s)),
            None => {
                let n = self.name_idx(name);
                self.emit(Instr::LoadGlobal(n))
            }
        };
    }

    fn store_var(&mut self, name: &str) {
        match self.slot_of(name) {
            Some(s) => self.emit(Instr::StoreLocal(s)),
            None => {
                let n = self.name_idx(name);
                self.emit(Instr::StoreGlobal(n))
            }
        };
    }

    fn stmt(&mut self, stmt: &Stmt) {
        match &stmt.kind {
            StmtKind::Import(name) => {
                let n = self.name_idx(name);
                self.emit(Instr::Import(n));
                self.store_var(name);
            }
            StmtKind::FuncDef(def) => {
                let f = Rc::new(compile_function(def));
                self.funcs.push(f);
                let i = (self.funcs.len() - 1) as u32;
                self.emit(Instr::MakeFunc(i));
                self.store_var(&def.name);
            }
            StmtKind::Global(names) => {
                // dynamic declaration: only slots flip; names without a
                // slot already resolve globally, and at module level the
                // statement is a no-op
                let slots: Vec<u16> = names.iter().filter_map(|n| self.slot_of(n)).collect();
                if !slots.is_empty() {
                    self.emit(Instr::Global(slots.into_boxed_slice()));
                }
            }
            StmtKind::Assign(target, expr) => {
                // value first, then the index target's object and index
                self.expr(expr);
                match target {
                    Target::Var(name) => self.store_var(name),
                    Target::Index(obj, idx) => {
                        self.expr(obj);
                        self.expr(idx);
                        self.emit(Instr::StoreIndex);
                    }
                }
            }
            StmtKind::If(arms, els) => {
                let mut end_jumps = Vec::new();
                for (cond, body) in arms {
                    self.expr(cond);
                    let jf = self.emit(Instr::JumpIfFalse(0));
                    for s in body {
                        self.stmt(s);
                    }
                    end_jumps.push(self.emit(Instr::Jump(0)));
                    let next = self.here();
                    self.patch(jf, next);
                }
                if let Some(body) = els {
                    for s in body {
                        self.stmt(s);
                    }
                }
                let end = self.here();
                for j in end_jumps {
                    self.patch(j, end);
                }
            }
            StmtKind::While(cond, body) => {
                let start = self.here();
                self.expr(cond);
                let jf = self.emit(Instr::JumpIfFalse(0));
                self.loops.push(LoopCtx {
                    continue_target: start,
                    break_jumps: Vec::new(),
                    is_for: false,
                });
                for s in body {
                    self.stmt(s);
                }
                self.emit(Instr::Jump(start));
                let end = self.here();
                self.patch(jf, end);
                let ctx = self.loops.pop().expect("loop context");
                for j in ctx.break_jumps {
                    self.patch(j, end);
                }
            }
            StmtKind::For(var, iter, body) => {
                self.expr(iter);
                self.emit(Instr::MakeIter);
                let next = self.here();
                self.emit(Instr::IterNext(0));
                self.store_var(var);
                self.loops.push(LoopCtx {
                    continue_target: next,
                    break_jumps: Vec::new(),
                    is_for: true,
                });
                for s in body {
                    self.stmt(s);
                }
                self.emit(Instr::Jump(next));
                let end = self.here();
                self.patch(next as usize, end);
                let ctx = self.loops.pop().expect("loop context");
                for j in ctx.break_jumps {
                    self.patch(j, end);
                }
            }
            StmtKind::Return(value) => {
                if let Some(e) = value {
                    self.expr(e);
                } else if self.slots.is_some() {
                    let none = self.const_idx(Value::None);
                    self.emit(Instr::Const(none));
                }
                if self.slots.is_some() {
                    self.emit(Instr::Return);
                } else {
                    // module level: the tree-walker evaluates the value,
                    // then errors when the Return flow surfaces
                    self.emit(Instr::Raise(RaiseKind::ReturnOutsideFunction));
                }
            }
            StmtKind::Break => match self.loops.last() {
                Some(ctx) => {
                    if ctx.is_for {
                        self.emit(Instr::PopIter);
                    }
                    let j = self.emit(Instr::Jump(0));
                    self.loops
                        .last_mut()
                        .expect("loop context")
                        .break_jumps
                        .push(j);
                }
                None => {
                    self.emit(Instr::Raise(RaiseKind::BreakContinueOutsideLoop));
                }
            },
            StmtKind::Continue => match self.loops.last() {
                Some(ctx) => {
                    let t = ctx.continue_target;
                    self.emit(Instr::Jump(t));
                }
                None => {
                    self.emit(Instr::Raise(RaiseKind::BreakContinueOutsideLoop));
                }
            },
            StmtKind::Expr(e) => {
                self.expr(e);
                self.emit(Instr::Pop);
            }
        }
    }

    fn expr(&mut self, expr: &Expr) {
        match expr {
            Expr::None => {
                let i = self.const_idx(Value::None);
                self.emit(Instr::Const(i));
            }
            Expr::Bool(b) => {
                let i = self.const_idx(Value::Bool(*b));
                self.emit(Instr::Const(i));
            }
            Expr::Int(v) => {
                let i = self.const_idx(Value::Int(*v));
                self.emit(Instr::Const(i));
            }
            Expr::Float(v) => {
                let i = self.const_idx(Value::Float(*v));
                self.emit(Instr::Const(i));
            }
            Expr::Str(s) => {
                let i = self.const_idx(Value::str(s.clone()));
                self.emit(Instr::Const(i));
            }
            Expr::List(items) => {
                for item in items {
                    self.expr(item);
                }
                self.emit(Instr::MakeList(items.len() as u32));
            }
            Expr::Dict(pairs) => {
                for (k, v) in pairs {
                    // the key's str-ness is checked before the value
                    // expression runs, as in the tree-walker
                    self.expr(k);
                    self.emit(Instr::CheckStrKey);
                    self.expr(v);
                }
                self.emit(Instr::MakeDict(pairs.len() as u32));
            }
            Expr::Var(name) => self.load_var(name),
            Expr::Attr(obj, attr) => {
                self.expr(obj);
                let n = self.name_idx(attr);
                self.emit(Instr::LoadAttr(n));
            }
            Expr::Index(obj, idx) => {
                self.expr(obj);
                self.expr(idx);
                self.emit(Instr::Index);
            }
            Expr::Call(callee, args) => {
                // arguments evaluate before the callee resolves
                for a in args {
                    self.expr(a);
                }
                if let Expr::Var(name) = callee.as_ref() {
                    let slot = self.slot_of(name).unwrap_or(NO_SLOT);
                    let n = self.name_idx(name);
                    self.emit(Instr::CallNamed {
                        name: n,
                        slot,
                        argc: args.len() as u32,
                    });
                } else {
                    self.expr(callee);
                    self.emit(Instr::CallValue(args.len() as u32));
                }
            }
            Expr::Unary(op, inner) => {
                self.expr(inner);
                self.emit(Instr::Unary(*op));
            }
            Expr::Binary(BinOp::And, lhs, rhs) => {
                self.expr(lhs);
                let j = self.emit(Instr::JumpIfFalseKeep(0));
                self.emit(Instr::Pop);
                self.expr(rhs);
                let end = self.here();
                self.patch(j, end);
            }
            Expr::Binary(BinOp::Or, lhs, rhs) => {
                self.expr(lhs);
                let j = self.emit(Instr::JumpIfTrueKeep(0));
                self.emit(Instr::Pop);
                self.expr(rhs);
                let end = self.here();
                self.patch(j, end);
            }
            Expr::Binary(op, lhs, rhs) => {
                self.expr(lhs);
                self.expr(rhs);
                self.emit(Instr::Binary(*op));
            }
            Expr::Lambda(def) => {
                let f = Rc::new(compile_function(def));
                self.funcs.push(f);
                let i = (self.funcs.len() - 1) as u32;
                self.emit(Instr::MakeFunc(i));
            }
        }
    }
}
