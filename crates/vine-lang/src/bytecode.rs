//! The compiled form of a vine-lang module: a compact instruction set plus
//! the pools it indexes into.
//!
//! A [`CompiledFn`] is the unit of compiled code — one per function body,
//! plus one for the module's top level. It owns a constant pool (literal
//! [`Value`]s built once at compile time, so a string literal in a hot loop
//! is an `Rc` bump instead of a fresh allocation), an interned name table
//! for everything still resolved dynamically (globals, attributes,
//! imports), a slot table mapping the function's local variables to dense
//! indices resolved at compile time, and the nested `CompiledFn`s of every
//! function literal in its body.
//!
//! In the paper's terms the compiled module is *context* (§2.2.3): it is
//! computed once — at library install on the manager — shipped inside the
//! library image as bytes, content-addressed by the digest of the source
//! it was compiled from, and retained by the library daemon across
//! invocations. [`to_bytes`]/[`from_bytes`] are the wire
//! form; `vine-data`'s image store dedups by digest.

use crate::ast::{BinOp, FuncDef, UnOp};
use crate::value::Value;
use std::fmt::Write as _;
use std::rc::Rc;
use vine_core::{ContentHash, Result, VineError};

/// Sentinel slot index: the called name has no local slot in this scope
/// (resolution is globals-or-builtin only).
pub const NO_SLOT: u16 = u16::MAX;

/// Fixed runtime errors the compiler lowers misplaced control flow into.
/// The tree-walker raises these *dynamically* — `return` at module level is
/// an error only when execution actually reaches it — so the compiler must
/// preserve that by emitting an instruction, not rejecting the program.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RaiseKind {
    /// `break`/`continue` outside any enclosing loop.
    BreakContinueOutsideLoop,
    /// `return` at module level.
    ReturnOutsideFunction,
}

impl RaiseKind {
    pub fn message(self) -> &'static str {
        match self {
            RaiseKind::BreakContinueOutsideLoop => "break/continue outside loop",
            RaiseKind::ReturnOutsideFunction => "return outside function",
        }
    }
}

/// One VM instruction. Operand indices point into the owning
/// [`CompiledFn`]'s pools; jump targets are absolute instruction indices.
#[derive(Clone, Debug, PartialEq)]
pub enum Instr {
    /// Push `consts[i]`.
    Const(u32),
    /// Pop n values, push them as a new list (in evaluation order).
    MakeList(u32),
    /// Pop 2n values (key/value alternating, evaluation order), push dict.
    MakeDict(u32),
    /// Error unless the top of stack is a str (dict-key check, raised
    /// before the corresponding value expression evaluates).
    CheckStrKey,
    /// Push local slot s; unset or `global`-declared slots fall back to a
    /// global lookup of the slot's name.
    LoadLocal(u16),
    /// Pop into slot s, or into globals if the slot was declared `global`.
    StoreLocal(u16),
    /// Push `globals[names[n]]`; error "undefined variable" when absent.
    LoadGlobal(u32),
    /// Pop into `globals[names[n]]`.
    StoreGlobal(u32),
    /// Pop a module object, push its member `names[n]`.
    LoadAttr(u32),
    /// Pop index then container, push the element.
    Index,
    /// Pop index, container, value (pushed in value/container/index
    /// order); assign the element.
    StoreIndex,
    /// Pop argc arguments; dispatch by name with the tree-walker's exact
    /// shadowing rule: builtins fire only when `names[n]` resolves to
    /// neither a set local (slot, unless NO_SLOT) nor a global.
    CallNamed {
        name: u32,
        slot: u16,
        argc: u32,
    },
    /// Pop the callee (top of stack), then argc arguments; push result.
    CallValue(u32),
    /// Pop a value, apply a unary operator.
    Unary(UnOp),
    /// Pop rhs then lhs, apply a (non-short-circuit) binary operator.
    Binary(BinOp),
    /// Pop; jump when falsy.
    JumpIfFalse(u32),
    /// Jump when falsy, keeping the value (the `and` short-circuit).
    JumpIfFalseKeep(u32),
    /// Jump when truthy, keeping the value (the `or` short-circuit).
    JumpIfTrueKeep(u32),
    Jump(u32),
    Pop,
    /// Return the top of stack from this function.
    Return,
    /// Push `funcs[i]` closed over the current globals, seeding its
    /// compiled-code cache so later calls skip compilation.
    MakeFunc(u32),
    /// Import module `names[n]`, push the module value.
    Import(u32),
    /// Declare the listed slots `global` for the rest of this activation.
    Global(Box<[u16]>),
    /// Pop an iterable, push a materialized iterator (list snapshot, dict
    /// keys, or string characters — the tree-walker's `iterable_items`).
    MakeIter,
    /// Push the iterator's next item, or pop the iterator and jump.
    IterNext(u32),
    /// Pop the top iterator (compiled `break` inside a `for`).
    PopIter,
    /// Raise a fixed control-flow error.
    Raise(RaiseKind),

    // ---- fused superinstructions ----
    //
    // Emitted by the compiler's peephole pass over adjacent instructions
    // whose interior is not a jump target. Each is semantically identical
    // to the sequence it replaces (same evaluation order, same errors);
    // they exist because dispatch itself — one indirect branch per
    // instruction — dominates the cost of simple operations.
    /// `LoadLocal a; LoadLocal b; Binary op` — push `binary(slots[a], slots[b])`.
    BinaryLL {
        op: BinOp,
        a: u16,
        b: u16,
    },
    /// `LoadLocal a; Const c; Binary op` — push `binary(slots[a], consts[c])`.
    BinaryLC {
        op: BinOp,
        a: u16,
        c: u32,
    },
    /// `LoadLocal s; Binary op` — pop lhs, push `binary(lhs, slots[s])`.
    BinarySL {
        op: BinOp,
        s: u16,
    },
    /// `Const c; Binary op` — pop lhs, push `binary(lhs, consts[c])`.
    BinarySC {
        op: BinOp,
        c: u32,
    },
    /// `IterNext t; StoreLocal slot` — the `for`-loop head in one step.
    ForIter {
        target: u32,
        slot: u16,
    },
    /// `LoadLocal s; Return`.
    ReturnLocal(u16),
    /// `Const c; Return`.
    ReturnConst(u32),
}

/// One compiled function body (or the module top level, when `def` is
/// `None`). Self-contained: all pools an instruction indexes are here.
#[derive(Debug)]
pub struct CompiledFn {
    /// The source definition, kept so the VM can build `Value::Func`
    /// objects (pickle interop, arity recovery) — `None` only for the
    /// module top level, which never becomes a value.
    pub def: Option<Rc<FuncDef>>,
    pub name: Rc<str>,
    pub n_params: u16,
    /// Total local slots (parameters occupy the first `n_params`).
    pub n_slots: u16,
    /// Slot index → source name, for global fallback and error messages.
    pub slot_names: Vec<Rc<str>>,
    /// Interned names still resolved dynamically at runtime.
    pub names: Vec<Rc<str>>,
    /// Literal pool. Only leaf values (none/bool/int/float/str) ever
    /// appear here, so cloning a constant is at most an `Rc` bump.
    pub consts: Vec<Value>,
    /// Nested function literals (`def`s and lambdas) in body order.
    pub funcs: Vec<Rc<CompiledFn>>,
    pub code: Vec<Instr>,
}

/// A compiled module: the top-level code (whose `funcs` table carries every
/// function defined in it) plus the digest of the source it came from —
/// the content address under which `vine-data` stores and workers dedup
/// the image.
#[derive(Debug)]
pub struct CompiledModule {
    pub top: Rc<CompiledFn>,
    pub source_digest: ContentHash,
}

impl CompiledModule {
    /// Serialize for shipping/content-addressing. The digest is *not*
    /// encoded — it names the bytes, it does not travel inside them.
    pub fn to_bytes(&self) -> Vec<u8> {
        to_bytes(&self.top)
    }
}

// ---------- disassembly ----------

/// Render a compiled function (and, recursively, everything it defines) as
/// stable text. Golden tests pin this output so encoding changes are
/// reviewed, not accidental.
pub fn disassemble(f: &CompiledFn) -> String {
    let mut out = String::new();
    disasm_one(f, &mut out);
    out
}

fn disasm_one(f: &CompiledFn, out: &mut String) {
    let _ = writeln!(
        out,
        "fn {}(params={}, slots={}{})",
        f.name,
        f.n_params,
        f.n_slots,
        if f.slot_names.is_empty() {
            String::new()
        } else {
            format!(
                " [{}]",
                f.slot_names
                    .iter()
                    .map(|s| s.as_ref())
                    .collect::<Vec<_>>()
                    .join(" ")
            )
        }
    );
    for (i, instr) in f.code.iter().enumerate() {
        let _ = writeln!(out, "  {i:4} {}", render_instr(f, instr));
    }
    for nested in &f.funcs {
        disasm_one(nested, out);
    }
}

fn render_instr(f: &CompiledFn, instr: &Instr) -> String {
    let name = |n: u32| -> &str { &f.names[n as usize] };
    let slot = |s: u16| -> String {
        if s == NO_SLOT {
            "-".into()
        } else {
            format!("{s}:{}", f.slot_names[s as usize])
        }
    };
    match instr {
        Instr::Const(i) => format!(
            "const      {} ; {}",
            i,
            render_const(&f.consts[*i as usize])
        ),
        Instr::MakeList(n) => format!("make_list  {n}"),
        Instr::MakeDict(n) => format!("make_dict  {n}"),
        Instr::CheckStrKey => "check_key".into(),
        Instr::LoadLocal(s) => format!("load_loc   {}", slot(*s)),
        Instr::StoreLocal(s) => format!("store_loc  {}", slot(*s)),
        Instr::LoadGlobal(n) => format!("load_glb   {}", name(*n)),
        Instr::StoreGlobal(n) => format!("store_glb  {}", name(*n)),
        Instr::LoadAttr(n) => format!("load_attr  {}", name(*n)),
        Instr::Index => "index".into(),
        Instr::StoreIndex => "store_idx".into(),
        Instr::CallNamed {
            name: n,
            slot: s,
            argc,
        } => {
            format!("call_named {} argc={} slot={}", name(*n), argc, slot(*s))
        }
        Instr::CallValue(argc) => format!("call_value argc={argc}"),
        Instr::Unary(op) => format!("unary      {op:?}"),
        Instr::Binary(op) => format!("binary     {op:?}"),
        Instr::JumpIfFalse(t) => format!("jf         -> {t}"),
        Instr::JumpIfFalseKeep(t) => format!("jf_keep    -> {t}"),
        Instr::JumpIfTrueKeep(t) => format!("jt_keep    -> {t}"),
        Instr::Jump(t) => format!("jump       -> {t}"),
        Instr::Pop => "pop".into(),
        Instr::Return => "return".into(),
        Instr::MakeFunc(i) => format!("make_fn    {} ; {}", i, f.funcs[*i as usize].name),
        Instr::Import(n) => format!("import     {}", name(*n)),
        Instr::Global(slots) => format!(
            "global     [{}]",
            slots.iter().map(|s| slot(*s)).collect::<Vec<_>>().join(" ")
        ),
        Instr::MakeIter => "make_iter".into(),
        Instr::IterNext(t) => format!("iter_next  -> {t}"),
        Instr::PopIter => "pop_iter".into(),
        Instr::Raise(k) => format!("raise      {}", k.message()),
        Instr::BinaryLL { op, a, b } => {
            format!("binary_ll  {op:?} {} {}", slot(*a), slot(*b))
        }
        Instr::BinaryLC { op, a, c } => format!(
            "binary_lc  {op:?} {} {} ; {}",
            slot(*a),
            c,
            render_const(&f.consts[*c as usize])
        ),
        Instr::BinarySL { op, s } => format!("binary_sl  {op:?} {}", slot(*s)),
        Instr::BinarySC { op, c } => format!(
            "binary_sc  {op:?} {} ; {}",
            c,
            render_const(&f.consts[*c as usize])
        ),
        Instr::ForIter { target, slot: s } => format!("for_iter   {} -> {target}", slot(*s)),
        Instr::ReturnLocal(s) => format!("ret_loc    {}", slot(*s)),
        Instr::ReturnConst(c) => {
            format!(
                "ret_const  {} ; {}",
                c,
                render_const(&f.consts[*c as usize])
            )
        }
    }
}

fn render_const(v: &Value) -> String {
    match v {
        Value::Str(s) => format!("{s:?}"),
        other => other.to_string(),
    }
}

// ---------- byte serialization ----------

const MAGIC: &[u8; 4] = b"VBC2";

mod op {
    pub const CONST: u8 = 0;
    pub const MAKE_LIST: u8 = 1;
    pub const MAKE_DICT: u8 = 2;
    pub const CHECK_STR_KEY: u8 = 3;
    pub const LOAD_LOCAL: u8 = 4;
    pub const STORE_LOCAL: u8 = 5;
    pub const LOAD_GLOBAL: u8 = 6;
    pub const STORE_GLOBAL: u8 = 7;
    pub const LOAD_ATTR: u8 = 8;
    pub const INDEX: u8 = 9;
    pub const STORE_INDEX: u8 = 10;
    pub const CALL_NAMED: u8 = 11;
    pub const CALL_VALUE: u8 = 12;
    pub const UNARY: u8 = 13;
    pub const BINARY: u8 = 14;
    pub const JUMP_IF_FALSE: u8 = 15;
    pub const JUMP_IF_FALSE_KEEP: u8 = 16;
    pub const JUMP_IF_TRUE_KEEP: u8 = 17;
    pub const JUMP: u8 = 18;
    pub const POP: u8 = 19;
    pub const RETURN: u8 = 20;
    pub const MAKE_FUNC: u8 = 21;
    pub const IMPORT: u8 = 22;
    pub const GLOBAL: u8 = 23;
    pub const MAKE_ITER: u8 = 24;
    pub const ITER_NEXT: u8 = 25;
    pub const POP_ITER: u8 = 26;
    pub const RAISE: u8 = 27;
    pub const BINARY_LL: u8 = 28;
    pub const BINARY_LC: u8 = 29;
    pub const BINARY_SL: u8 = 30;
    pub const BINARY_SC: u8 = 31;
    pub const FOR_ITER: u8 = 32;
    pub const RETURN_LOCAL: u8 = 33;
    pub const RETURN_CONST: u8 = 34;
}

mod const_tag {
    pub const NONE: u8 = 0;
    pub const BOOL: u8 = 1;
    pub const INT: u8 = 2;
    pub const FLOAT: u8 = 3;
    pub const STR: u8 = 4;
}

fn binop_code(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Div => 3,
        BinOp::Mod => 4,
        BinOp::Eq => 5,
        BinOp::Ne => 6,
        BinOp::Lt => 7,
        BinOp::Le => 8,
        BinOp::Gt => 9,
        BinOp::Ge => 10,
        // never emitted: lowered to short-circuit jumps
        BinOp::And => 11,
        BinOp::Or => 12,
    }
}

fn binop_from(code: u8) -> Result<BinOp> {
    Ok(match code {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::Div,
        4 => BinOp::Mod,
        5 => BinOp::Eq,
        6 => BinOp::Ne,
        7 => BinOp::Lt,
        8 => BinOp::Le,
        9 => BinOp::Gt,
        10 => BinOp::Ge,
        11 => BinOp::And,
        12 => BinOp::Or,
        other => return Err(bad(format!("binary opcode {other}"))),
    })
}

fn bad(what: impl std::fmt::Display) -> VineError {
    VineError::Lang(format!("invalid compiled image: {what}"))
}

struct Writer(Vec<u8>);

impl Writer {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.0.extend_from_slice(s.as_bytes());
    }
    fn bytes(&mut self, b: &[u8]) {
        self.u32(b.len() as u32);
        self.0.extend_from_slice(b);
    }
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.data.len() - self.pos < n {
            return Err(bad("truncated"));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn str(&mut self) -> Result<String> {
        let n = self.u32()? as usize;
        let s = self.take(n)?;
        String::from_utf8(s.to_vec()).map_err(|_| bad("non-utf8 string"))
    }
    fn blob(&mut self) -> Result<&'a [u8]> {
        let n = self.u32()? as usize;
        self.take(n)
    }
}

/// Encode a compiled function tree as bytes (the wire/cache form of a
/// compiled image).
pub fn to_bytes(f: &CompiledFn) -> Vec<u8> {
    let mut w = Writer(Vec::with_capacity(256));
    w.0.extend_from_slice(MAGIC);
    write_fn(&mut w, f);
    w.0
}

fn write_fn(w: &mut Writer, f: &CompiledFn) {
    match &f.def {
        Some(def) => {
            w.u8(1);
            w.bytes(&crate::pickle::serialize_funcdef(def));
        }
        None => w.u8(0),
    }
    w.str(&f.name);
    w.u16(f.n_params);
    w.u16(f.n_slots);
    w.u32(f.slot_names.len() as u32);
    for s in &f.slot_names {
        w.str(s);
    }
    w.u32(f.names.len() as u32);
    for s in &f.names {
        w.str(s);
    }
    w.u32(f.consts.len() as u32);
    for c in &f.consts {
        match c {
            Value::None => w.u8(const_tag::NONE),
            Value::Bool(b) => {
                w.u8(const_tag::BOOL);
                w.u8(*b as u8);
            }
            Value::Int(v) => {
                w.u8(const_tag::INT);
                w.u64(*v as u64);
            }
            Value::Float(v) => {
                w.u8(const_tag::FLOAT);
                w.u64(v.to_bits());
            }
            Value::Str(s) => {
                w.u8(const_tag::STR);
                w.str(s);
            }
            other => unreachable!("non-leaf constant {other:?} in pool"),
        }
    }
    w.u32(f.funcs.len() as u32);
    for nested in &f.funcs {
        write_fn(w, nested);
    }
    w.u32(f.code.len() as u32);
    for instr in &f.code {
        write_instr(w, instr);
    }
}

fn write_instr(w: &mut Writer, instr: &Instr) {
    match instr {
        Instr::Const(i) => {
            w.u8(op::CONST);
            w.u32(*i);
        }
        Instr::MakeList(n) => {
            w.u8(op::MAKE_LIST);
            w.u32(*n);
        }
        Instr::MakeDict(n) => {
            w.u8(op::MAKE_DICT);
            w.u32(*n);
        }
        Instr::CheckStrKey => w.u8(op::CHECK_STR_KEY),
        Instr::LoadLocal(s) => {
            w.u8(op::LOAD_LOCAL);
            w.u16(*s);
        }
        Instr::StoreLocal(s) => {
            w.u8(op::STORE_LOCAL);
            w.u16(*s);
        }
        Instr::LoadGlobal(n) => {
            w.u8(op::LOAD_GLOBAL);
            w.u32(*n);
        }
        Instr::StoreGlobal(n) => {
            w.u8(op::STORE_GLOBAL);
            w.u32(*n);
        }
        Instr::LoadAttr(n) => {
            w.u8(op::LOAD_ATTR);
            w.u32(*n);
        }
        Instr::Index => w.u8(op::INDEX),
        Instr::StoreIndex => w.u8(op::STORE_INDEX),
        Instr::CallNamed { name, slot, argc } => {
            w.u8(op::CALL_NAMED);
            w.u32(*name);
            w.u16(*slot);
            w.u32(*argc);
        }
        Instr::CallValue(argc) => {
            w.u8(op::CALL_VALUE);
            w.u32(*argc);
        }
        Instr::Unary(op_) => {
            w.u8(op::UNARY);
            w.u8(match op_ {
                UnOp::Neg => 0,
                UnOp::Not => 1,
            });
        }
        Instr::Binary(op_) => {
            w.u8(op::BINARY);
            w.u8(binop_code(*op_));
        }
        Instr::JumpIfFalse(t) => {
            w.u8(op::JUMP_IF_FALSE);
            w.u32(*t);
        }
        Instr::JumpIfFalseKeep(t) => {
            w.u8(op::JUMP_IF_FALSE_KEEP);
            w.u32(*t);
        }
        Instr::JumpIfTrueKeep(t) => {
            w.u8(op::JUMP_IF_TRUE_KEEP);
            w.u32(*t);
        }
        Instr::Jump(t) => {
            w.u8(op::JUMP);
            w.u32(*t);
        }
        Instr::Pop => w.u8(op::POP),
        Instr::Return => w.u8(op::RETURN),
        Instr::MakeFunc(i) => {
            w.u8(op::MAKE_FUNC);
            w.u32(*i);
        }
        Instr::Import(n) => {
            w.u8(op::IMPORT);
            w.u32(*n);
        }
        Instr::Global(slots) => {
            w.u8(op::GLOBAL);
            w.u16(slots.len() as u16);
            for s in slots.iter() {
                w.u16(*s);
            }
        }
        Instr::MakeIter => w.u8(op::MAKE_ITER),
        Instr::IterNext(t) => {
            w.u8(op::ITER_NEXT);
            w.u32(*t);
        }
        Instr::PopIter => w.u8(op::POP_ITER),
        Instr::Raise(k) => {
            w.u8(op::RAISE);
            w.u8(match k {
                RaiseKind::BreakContinueOutsideLoop => 0,
                RaiseKind::ReturnOutsideFunction => 1,
            });
        }
        Instr::BinaryLL { op: op_, a, b } => {
            w.u8(op::BINARY_LL);
            w.u8(binop_code(*op_));
            w.u16(*a);
            w.u16(*b);
        }
        Instr::BinaryLC { op: op_, a, c } => {
            w.u8(op::BINARY_LC);
            w.u8(binop_code(*op_));
            w.u16(*a);
            w.u32(*c);
        }
        Instr::BinarySL { op: op_, s } => {
            w.u8(op::BINARY_SL);
            w.u8(binop_code(*op_));
            w.u16(*s);
        }
        Instr::BinarySC { op: op_, c } => {
            w.u8(op::BINARY_SC);
            w.u8(binop_code(*op_));
            w.u32(*c);
        }
        Instr::ForIter { target, slot } => {
            w.u8(op::FOR_ITER);
            w.u32(*target);
            w.u16(*slot);
        }
        Instr::ReturnLocal(s) => {
            w.u8(op::RETURN_LOCAL);
            w.u16(*s);
        }
        Instr::ReturnConst(c) => {
            w.u8(op::RETURN_CONST);
            w.u32(*c);
        }
    }
}

/// Decode a compiled image produced by [`to_bytes`]. Validates structure
/// (indices are checked lazily by the VM's pool bounds).
pub fn from_bytes(data: &[u8]) -> Result<Rc<CompiledFn>> {
    let mut r = Reader { data, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(bad("bad magic"));
    }
    let f = read_fn(&mut r)?;
    if r.pos != data.len() {
        return Err(bad("trailing bytes"));
    }
    Ok(f)
}

fn read_fn(r: &mut Reader) -> Result<Rc<CompiledFn>> {
    let def = match r.u8()? {
        0 => None,
        1 => Some(crate::pickle::deserialize_funcdef(r.blob()?)?),
        other => return Err(bad(format!("def tag {other}"))),
    };
    let name: Rc<str> = Rc::from(r.str()?.as_str());
    let n_params = r.u16()?;
    let n_slots = r.u16()?;
    let n = r.u32()? as usize;
    let mut slot_names = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        slot_names.push(Rc::from(r.str()?.as_str()));
    }
    if slot_names.len() != n_slots as usize {
        return Err(bad("slot table size mismatch"));
    }
    let n = r.u32()? as usize;
    let mut names = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        names.push(Rc::from(r.str()?.as_str()));
    }
    let n = r.u32()? as usize;
    let mut consts = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        consts.push(match r.u8()? {
            const_tag::NONE => Value::None,
            const_tag::BOOL => Value::Bool(r.u8()? != 0),
            const_tag::INT => Value::Int(r.u64()? as i64),
            const_tag::FLOAT => Value::Float(f64::from_bits(r.u64()?)),
            const_tag::STR => Value::str(r.str()?),
            other => return Err(bad(format!("const tag {other}"))),
        });
    }
    let n = r.u32()? as usize;
    let mut funcs = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        funcs.push(read_fn(r)?);
    }
    let n = r.u32()? as usize;
    let mut code = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        code.push(read_instr(r)?);
    }
    Ok(Rc::new(CompiledFn {
        def,
        name,
        n_params,
        n_slots,
        slot_names,
        names,
        consts,
        funcs,
        code,
    }))
}

fn read_instr(r: &mut Reader) -> Result<Instr> {
    Ok(match r.u8()? {
        op::CONST => Instr::Const(r.u32()?),
        op::MAKE_LIST => Instr::MakeList(r.u32()?),
        op::MAKE_DICT => Instr::MakeDict(r.u32()?),
        op::CHECK_STR_KEY => Instr::CheckStrKey,
        op::LOAD_LOCAL => Instr::LoadLocal(r.u16()?),
        op::STORE_LOCAL => Instr::StoreLocal(r.u16()?),
        op::LOAD_GLOBAL => Instr::LoadGlobal(r.u32()?),
        op::STORE_GLOBAL => Instr::StoreGlobal(r.u32()?),
        op::LOAD_ATTR => Instr::LoadAttr(r.u32()?),
        op::INDEX => Instr::Index,
        op::STORE_INDEX => Instr::StoreIndex,
        op::CALL_NAMED => Instr::CallNamed {
            name: r.u32()?,
            slot: r.u16()?,
            argc: r.u32()?,
        },
        op::CALL_VALUE => Instr::CallValue(r.u32()?),
        op::UNARY => Instr::Unary(match r.u8()? {
            0 => UnOp::Neg,
            1 => UnOp::Not,
            other => return Err(bad(format!("unary opcode {other}"))),
        }),
        op::BINARY => Instr::Binary(binop_from(r.u8()?)?),
        op::JUMP_IF_FALSE => Instr::JumpIfFalse(r.u32()?),
        op::JUMP_IF_FALSE_KEEP => Instr::JumpIfFalseKeep(r.u32()?),
        op::JUMP_IF_TRUE_KEEP => Instr::JumpIfTrueKeep(r.u32()?),
        op::JUMP => Instr::Jump(r.u32()?),
        op::POP => Instr::Pop,
        op::RETURN => Instr::Return,
        op::MAKE_FUNC => Instr::MakeFunc(r.u32()?),
        op::IMPORT => Instr::Import(r.u32()?),
        op::GLOBAL => {
            let n = r.u16()? as usize;
            let mut slots = Vec::with_capacity(n.min(256));
            for _ in 0..n {
                slots.push(r.u16()?);
            }
            Instr::Global(slots.into_boxed_slice())
        }
        op::MAKE_ITER => Instr::MakeIter,
        op::ITER_NEXT => Instr::IterNext(r.u32()?),
        op::POP_ITER => Instr::PopIter,
        op::BINARY_LL => Instr::BinaryLL {
            op: binop_from(r.u8()?)?,
            a: r.u16()?,
            b: r.u16()?,
        },
        op::BINARY_LC => Instr::BinaryLC {
            op: binop_from(r.u8()?)?,
            a: r.u16()?,
            c: r.u32()?,
        },
        op::BINARY_SL => Instr::BinarySL {
            op: binop_from(r.u8()?)?,
            s: r.u16()?,
        },
        op::BINARY_SC => Instr::BinarySC {
            op: binop_from(r.u8()?)?,
            c: r.u32()?,
        },
        op::FOR_ITER => Instr::ForIter {
            target: r.u32()?,
            slot: r.u16()?,
        },
        op::RETURN_LOCAL => Instr::ReturnLocal(r.u16()?),
        op::RETURN_CONST => Instr::ReturnConst(r.u32()?),
        op::RAISE => Instr::Raise(match r.u8()? {
            0 => RaiseKind::BreakContinueOutsideLoop,
            1 => RaiseKind::ReturnOutsideFunction,
            other => return Err(bad(format!("raise kind {other}"))),
        }),
        other => Err(bad(format!("opcode {other}")))?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile_src(src: &str) -> CompiledModule {
        let prog = crate::parse(src).unwrap();
        crate::compile::compile_module(&prog, src)
    }

    #[test]
    fn roundtrip_preserves_code() {
        let m = compile_src(
            r#"
            def f(x) {
                s = 0
                for i in range(x) {
                    if i % 2 == 0 { continue }
                    s = s + i
                }
                return s
            }
            table = {"a": 1.5, "b": f(10)}
            "#,
        );
        let bytes = m.to_bytes();
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(disassemble(&m.top), disassemble(&back));
    }

    #[test]
    fn corrupt_images_are_rejected() {
        let m = compile_src("x = 1\n");
        let bytes = m.to_bytes();
        assert!(from_bytes(&bytes[..bytes.len() - 1]).is_err(), "truncated");
        let mut garbled = bytes.clone();
        garbled[0] = b'X';
        assert!(from_bytes(&garbled).is_err(), "bad magic");
        assert!(from_bytes(&[]).is_err(), "empty");
    }

    #[test]
    fn digest_is_source_content_address() {
        let a = compile_src("x = 1\n");
        let b = compile_src("x = 1\n");
        let c = compile_src("x = 2\n");
        assert_eq!(a.source_digest, b.source_digest);
        assert_ne!(a.source_digest, c.source_digest);
    }
}
