//! Automatic context detection — the paper's future work, implemented.
//!
//! The paper deliberately scopes this out: "this paper doesn't aim at
//! automating context hoisting as in the compiler literature: it provides
//! the supporting mechanisms for users or other systems to do so. Thus,
//! while automatic context detection is a promising idea, it is out of
//! scope" (§2.1.3), and its future work asks for "a seamless discovery of
//! high-level contexts among invocations to the same function, with
//! necessary code, data, and dependencies packaged automatically without
//! the need for user intervention" (§6).
//!
//! This module is that seamless discovery, by static analysis of a module:
//! given the work function(s) a user wants to invoke remotely, classify
//! every module-level statement as **hoistable context** (deterministic
//! setup the function only reads — the loop-invariant code of the
//! compiler analogy) or **per-invocation residue**, and emit a synthesized
//! `context_setup` function plus the import set. The result plugs
//! directly into a `LibrarySpec`.
//!
//! The analysis is conservative: a global that any work function *writes*
//! is state the invocations mutate, so its defining statements are NOT
//! hoisted (they must re-run per fork / stay out of the shared context);
//! statements calling `eval`/`exec` or functions we cannot see are treated
//! as effectful and kept in original order within the hoisted prefix only
//! if every name they touch is itself hoistable.

use crate::ast::{walk_exprs_in, Expr, FuncDef, Program, Stmt, StmtKind, Target};
use crate::inspect::{format_funcdef, format_program};
use std::collections::BTreeSet;
use std::rc::Rc;
use vine_core::{Result, VineError};

/// The outcome of automatic context discovery.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscoveredContext {
    /// Synthesized `context_setup` source: the hoistable module-level
    /// statements wrapped in a function that publishes their bindings via
    /// `global`.
    pub setup_source: String,
    /// Names the setup publishes into the namespace.
    pub provides: Vec<String>,
    /// Module-level statements that could NOT be hoisted (they write
    /// state the work functions also write, or depend on such state).
    pub residue: Vec<String>,
    /// Modules the context needs installed (import scan over the hoisted
    /// statements and the work functions).
    pub imports: Vec<String>,
    /// Source of the work functions themselves plus every helper function
    /// they transitively call.
    pub code_source: String,
}

/// Names a statement defines at module level.
pub fn defined_names(stmt: &Stmt) -> Vec<String> {
    match &stmt.kind {
        StmtKind::Import(name) => vec![name.clone()],
        StmtKind::FuncDef(f) => vec![f.name.clone()],
        StmtKind::Assign(Target::Var(name), _) => vec![name.clone()],
        _ => Vec::new(),
    }
}

/// Free variable names an expression reads.
pub fn expr_reads(e: &Expr, out: &mut BTreeSet<String>) {
    walk_exprs_in(e, &mut |x| {
        if let Expr::Var(name) = x {
            out.insert(name.clone());
        }
    });
}

/// Names a statement (transitively, through nested blocks) reads.
pub fn stmt_reads(stmt: &Stmt, out: &mut BTreeSet<String>) {
    match &stmt.kind {
        StmtKind::Import(_) | StmtKind::Break | StmtKind::Continue | StmtKind::Global(_) => {}
        StmtKind::FuncDef(f) => {
            // a function definition "reads" its free variables at call time;
            // conservatively collect everything its body mentions
            for s in &f.body {
                stmt_reads(s, out);
            }
            for p in &f.params {
                out.remove(p);
            }
        }
        StmtKind::Assign(target, e) => {
            if let Target::Index(obj, idx) = target {
                expr_reads(obj, out);
                expr_reads(idx, out);
            }
            expr_reads(e, out);
        }
        StmtKind::If(arms, els) => {
            for (c, body) in arms {
                expr_reads(c, out);
                for s in body {
                    stmt_reads(s, out);
                }
            }
            if let Some(body) = els {
                for s in body {
                    stmt_reads(s, out);
                }
            }
        }
        StmtKind::While(c, body) => {
            expr_reads(c, out);
            for s in body {
                stmt_reads(s, out);
            }
        }
        StmtKind::For(var, iter, body) => {
            expr_reads(iter, out);
            for s in body {
                stmt_reads(s, out);
            }
            out.remove(var);
        }
        StmtKind::Return(Some(e)) | StmtKind::Expr(e) => expr_reads(e, out),
        StmtKind::Return(None) => {}
    }
}

/// Global names a function writes (assignments to names it declared
/// `global`, directly or in nested blocks).
pub fn function_global_writes(def: &FuncDef) -> BTreeSet<String> {
    let mut declared = BTreeSet::new();
    crate::ast::walk_stmts(&def.body, &mut |s| {
        if let StmtKind::Global(names) = &s.kind {
            declared.extend(names.iter().cloned());
        }
    });
    let mut written = BTreeSet::new();
    crate::ast::walk_stmts(&def.body, &mut |s| {
        if let StmtKind::Assign(Target::Var(name), _) = &s.kind {
            if declared.contains(name) {
                written.insert(name.clone());
            }
        }
        // index-assignments into a global container mutate it too
        if let StmtKind::Assign(Target::Index(Expr::Var(name), _), _) = &s.kind {
            if declared.contains(name) {
                written.insert(name.clone());
            }
        }
    });
    written
}

/// Discover the reusable context of `work_functions` within `module_src`.
pub fn discover(module_src: &str, work_functions: &[&str]) -> Result<DiscoveredContext> {
    let prog: Program = crate::parse(module_src)?;

    // locate the work functions and the helpers they transitively call
    let mut funcs: Vec<Rc<FuncDef>> = Vec::new();
    for stmt in &prog {
        if let StmtKind::FuncDef(f) = &stmt.kind {
            funcs.push(Rc::clone(f));
        }
    }
    let find = |name: &str| -> Result<Rc<FuncDef>> {
        funcs
            .iter()
            .find(|f| f.name == name)
            .cloned()
            .ok_or_else(|| VineError::Lang(format!("no function '{name}' in module")))
    };

    // transitive closure of called helper functions
    let mut needed: Vec<Rc<FuncDef>> = Vec::new();
    let mut queue: Vec<Rc<FuncDef>> = work_functions
        .iter()
        .map(|n| find(n))
        .collect::<Result<_>>()?;
    let mut seen: BTreeSet<String> = BTreeSet::new();
    while let Some(f) = queue.pop() {
        if !seen.insert(f.name.clone()) {
            continue;
        }
        let mut reads = BTreeSet::new();
        stmt_reads(&Stmt::dummy(StmtKind::FuncDef(Rc::clone(&f))), &mut reads);
        for name in &reads {
            if let Ok(helper) = find(name) {
                queue.push(helper);
            }
        }
        needed.push(f);
    }

    // names the work set mutates: their defining statements cannot hoist
    let mut mutated: BTreeSet<String> = BTreeSet::new();
    for f in &needed {
        mutated.extend(function_global_writes(f));
    }

    // walk module-level statements in order; hoist those that only define
    // or read non-mutated, already-hoistable names
    let mut hoistable_names: BTreeSet<String> = BTreeSet::new();
    let mut hoisted: Vec<Stmt> = Vec::new();
    let mut residue: Vec<String> = Vec::new();
    let mut imports: BTreeSet<String> = BTreeSet::new();

    for stmt in &prog {
        if let StmtKind::FuncDef(f) = &stmt.kind {
            // function definitions travel as code, not as context setup
            hoistable_names.insert(f.name.clone());
            continue;
        }
        let defines = defined_names(stmt);
        let mut reads = BTreeSet::new();
        stmt_reads(stmt, &mut reads);

        let touches_mutated = defines
            .iter()
            .chain(reads.iter())
            .any(|n| mutated.contains(n));
        // every module-level name it reads must itself be hoisted (builtins
        // and locals are not module-level defines, so only check names some
        // earlier statement defined)
        let unhoisted_dep = reads.iter().any(|n| {
            prog.iter().any(|s| defined_names(s).contains(n)) && !hoistable_names.contains(n)
        });
        if touches_mutated || unhoisted_dep {
            residue.push(format_program(&vec![stmt.clone()]).trim_end().to_string());
            continue;
        }
        if let StmtKind::Import(m) = &stmt.kind {
            imports.insert(m.clone());
        }
        hoistable_names.extend(defines.iter().cloned());
        hoisted.push(stmt.clone());
    }

    // imports inside the needed functions are context too
    for f in &needed {
        imports.extend(crate::inspect::scan_function_imports(f));
    }

    // synthesize context_setup: global declarations + hoisted statements
    let provides: Vec<String> = hoisted
        .iter()
        .flat_map(defined_names)
        .filter(|n| !imports.contains(n))
        .collect();
    // everything the setup binds — including imported modules, which the
    // work functions must see in the *global* namespace — is declared
    // `global` so it survives the setup function's return
    let mut published: Vec<String> = hoisted.iter().flat_map(defined_names).collect();
    published.sort();
    published.dedup();
    let setup = FuncDef::new("context_setup", vec![], {
        let mut body = Vec::new();
        if !published.is_empty() {
            body.push(Stmt::dummy(StmtKind::Global(published)));
        }
        body.extend(hoisted.iter().cloned());
        body
    });

    // the code artifact: every needed function, in module order
    let mut code_source = String::new();
    for f in funcs.iter().filter(|f| seen.contains(&f.name)) {
        code_source.push_str(&format_funcdef(f));
        code_source.push('\n');
    }

    Ok(DiscoveredContext {
        setup_source: format_funcdef(&setup),
        provides,
        residue,
        imports: imports.into_iter().collect(),
        code_source,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interp;

    const MODULE: &str = r#"
        import nn
        import mathx

        model_path = "resnet50.bin"
        model_dim = 64
        model = nn.load_model(4, model_dim)
        request_count = 0

        def preprocess(img) {
            return img % model_dim
        }

        def infer(img) {
            global request_count
            request_count = request_count + 1
            return nn.forward(model, preprocess(img))
        }
    "#;

    #[test]
    fn hoists_deterministic_setup() {
        let ctx = discover(MODULE, &["infer"]).unwrap();
        // the model build and its parameters hoist...
        assert!(ctx.provides.contains(&"model".to_string()), "{ctx:?}");
        assert!(ctx.provides.contains(&"model_dim".to_string()));
        assert!(ctx.provides.contains(&"model_path".to_string()));
        // ...but the mutable request counter does not
        assert!(!ctx.provides.contains(&"request_count".to_string()));
        assert_eq!(ctx.residue.len(), 1, "{:?}", ctx.residue);
        assert!(ctx.residue[0].contains("request_count"));
    }

    #[test]
    fn collects_imports_and_helpers() {
        let ctx = discover(MODULE, &["infer"]).unwrap();
        assert!(ctx.imports.contains(&"nn".to_string()));
        // mathx is imported at module level and hoistable
        assert!(ctx.imports.contains(&"mathx".to_string()));
        // the transitive helper travels with the work function
        assert!(ctx.code_source.contains("def preprocess"));
        assert!(ctx.code_source.contains("def infer"));
    }

    #[test]
    fn synthesized_setup_actually_runs() {
        let ctx = discover(MODULE, &["infer"]).unwrap();
        let mut interp = Interp::with_registry(vine_lang_test_registry());
        interp.exec_source(&ctx.setup_source).unwrap();
        interp.exec_source(&ctx.code_source).unwrap();
        interp.exec_source("context_setup()").unwrap();
        // the context is live: infer works and mutable state starts fresh
        interp.set_global("request_count", crate::Value::Int(0));
        let out = interp
            .call_global("infer", &[crate::Value::Int(5)])
            .unwrap();
        assert!(matches!(out, crate::Value::Int(_)));
        assert_eq!(
            interp.get_global("request_count").unwrap(),
            crate::Value::Int(1)
        );
        // and the hoisted model is in the namespace, set up exactly once
        assert!(interp.get_global("model").is_some());
    }

    fn vine_lang_test_registry() -> crate::ModuleRegistry {
        use crate::modules::native;
        let mut reg = crate::ModuleRegistry::new();
        reg.register_native("nn", || {
            vec![
                native("load_model", |args| {
                    let layers = args[0].as_int()?;
                    Ok(crate::Value::Int(layers * 1000))
                }),
                native("forward", |args| {
                    Ok(crate::Value::Int(args[0].as_int()? + args[1].as_int()?))
                }),
            ]
        });
        reg.register_native("mathx", Vec::new);
        reg
    }

    #[test]
    fn statement_depending_on_residue_is_residue() {
        let src = r#"
            def bump() {
                global counter
                counter = counter + 1
            }
            counter = 0
            derived = counter + 10
            stable = 5
        "#;
        let ctx = discover(src, &["bump"]).unwrap();
        assert!(!ctx.provides.contains(&"counter".to_string()));
        assert!(
            !ctx.provides.contains(&"derived".to_string()),
            "reads a non-hoistable name"
        );
        assert!(ctx.provides.contains(&"stable".to_string()));
        assert_eq!(ctx.residue.len(), 2);
    }

    #[test]
    fn container_mutation_counts_as_write() {
        let src = r#"
            cache = {}
            def memo(k, v) {
                global cache
                cache[k] = v
                return cache[k]
            }
        "#;
        let ctx = discover(src, &["memo"]).unwrap();
        assert!(
            !ctx.provides.contains(&"cache".to_string()),
            "index-assignment into a global is a mutation: {ctx:?}"
        );
    }

    #[test]
    fn unknown_function_errors() {
        assert!(discover(MODULE, &["missing"]).is_err());
    }

    #[test]
    fn pure_module_hoists_everything() {
        let src = r#"
            import mathx
            table = [1, 2, 3]
            def lookup(i) { return table[i] }
        "#;
        let ctx = discover(src, &["lookup"]).unwrap();
        assert_eq!(ctx.provides, vec!["table".to_string()]);
        assert!(ctx.residue.is_empty());
        // mathx is unused by `lookup` but module-level imports are cheap to
        // keep: they hoist with the rest
        assert!(ctx.imports.contains(&"mathx".to_string()));
    }
}
