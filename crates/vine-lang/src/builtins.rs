//! Built-in functions available in every interpreter without imports.
//!
//! Builtins are resolved *after* user definitions, so scripts can shadow
//! them. `eval`/`exec` deserve note: they create functions with no source
//! form — the case that forces the discover mechanism down the
//! serialization path (paper §2.2.1: "functions that result from dynamic
//! execution of a given string").

use crate::interp::Interp;
use crate::value::{Tensor, Value};
use vine_core::{Result, VineError};

/// Every name [`call_builtin`] dispatches, for static analysis: a free
/// variable with one of these names resolves without any definition in
/// scope. Must stay in sync with the dispatch table below (a test checks).
pub const BUILTIN_NAMES: &[&str] = &[
    "len", "range", "print", "push", "pop", "keys", "has_key", "str", "int", "float", "abs", "min",
    "max", "sum", "sqrt", "floor", "ceil", "pow", "contains", "sorted", "join", "split", "type",
    "zeros", "tensor", "eval", "exec",
];

/// Is `name` a builtin? (Scripts may still shadow it with a definition.)
pub fn is_builtin(name: &str) -> bool {
    BUILTIN_NAMES.contains(&name)
}

/// What calling a builtin can do, for static analysis. The dataflow engine
/// (`vine-flow`) consults this table so pure builtins (`len`, `range`,
/// string/math ops) do not count as opaque effectful calls that would block
/// hoisting a statement into reusable context.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BuiltinEffect {
    /// Deterministic function of its arguments; touches nothing else.
    Pure,
    /// Mutates its first argument in place (`push`, `pop`) but nothing
    /// beyond it — the effect is confined to objects the caller handed in.
    MutatesArg,
    /// Produces observable output (`print`); reordering it past other
    /// statements changes what the user sees.
    Io,
    /// Executes dynamic code (`eval`/`exec`): anything can happen — the ⊤
    /// of the effect lattice. Statements reaching this never hoist.
    Dynamic,
}

/// Effect classification of a builtin, or `None` when `name` is not a
/// builtin at all. Must stay in sync with [`BUILTIN_NAMES`] (a test checks).
pub fn builtin_effect(name: &str) -> Option<BuiltinEffect> {
    Some(match name {
        "push" | "pop" => BuiltinEffect::MutatesArg,
        "print" => BuiltinEffect::Io,
        "eval" | "exec" => BuiltinEffect::Dynamic,
        n if is_builtin(n) => BuiltinEffect::Pure,
        _ => return None,
    })
}

fn arity(name: &str, args: &[Value], want: usize) -> Result<()> {
    if args.len() != want {
        return Err(VineError::Lang(format!(
            "{name}() takes {want} argument(s), got {}",
            args.len()
        )));
    }
    Ok(())
}

/// Dispatch a builtin by name. Returns `Ok(None)` when `name` is not a
/// builtin (the caller then resolves it as an ordinary variable).
pub fn call_builtin(interp: &mut Interp, name: &str, args: &[Value]) -> Result<Option<Value>> {
    let v = match name {
        "len" => {
            arity(name, args, 1)?;
            Some(Value::Int(match &args[0] {
                Value::Str(s) => s.chars().count() as i64,
                Value::Bytes(b) => b.len() as i64,
                Value::List(l) => l.borrow().len() as i64,
                Value::Dict(d) => d.borrow().len() as i64,
                Value::Tensor(t) => t.len() as i64,
                other => return Err(VineError::Lang(format!("len() of {}", other.type_name()))),
            }))
        }
        "range" => {
            let (start, stop) = match args.len() {
                1 => (0, args[0].as_int()?),
                2 => (args[0].as_int()?, args[1].as_int()?),
                n => {
                    return Err(VineError::Lang(format!(
                        "range() takes 1 or 2 arguments, got {n}"
                    )))
                }
            };
            Some(Value::list((start..stop).map(Value::Int).collect()))
        }
        "print" => {
            let line = args
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(" ");
            interp.output.push(line);
            Some(Value::None)
        }
        "push" => {
            arity(name, args, 2)?;
            match &args[0] {
                Value::List(l) => {
                    l.borrow_mut().push(args[1].clone());
                    Some(Value::None)
                }
                other => return Err(VineError::Lang(format!("push() on {}", other.type_name()))),
            }
        }
        "pop" => {
            arity(name, args, 1)?;
            match &args[0] {
                Value::List(l) => Some(
                    l.borrow_mut()
                        .pop()
                        .ok_or_else(|| VineError::Lang("pop() from empty list".into()))?,
                ),
                other => return Err(VineError::Lang(format!("pop() on {}", other.type_name()))),
            }
        }
        "keys" => {
            arity(name, args, 1)?;
            match &args[0] {
                Value::Dict(d) => Some(Value::list(
                    d.borrow().keys().map(|k| Value::str(k.clone())).collect(),
                )),
                other => return Err(VineError::Lang(format!("keys() on {}", other.type_name()))),
            }
        }
        "has_key" => {
            arity(name, args, 2)?;
            match &args[0] {
                Value::Dict(d) => Some(Value::Bool(d.borrow().contains_key(args[1].as_str()?))),
                other => {
                    return Err(VineError::Lang(format!(
                        "has_key() on {}",
                        other.type_name()
                    )))
                }
            }
        }
        "str" => {
            arity(name, args, 1)?;
            Some(Value::str(args[0].to_string()))
        }
        "int" => {
            arity(name, args, 1)?;
            Some(Value::Int(match &args[0] {
                Value::Int(v) => *v,
                Value::Float(v) => *v as i64,
                Value::Bool(b) => *b as i64,
                Value::Str(s) => s
                    .trim()
                    .parse()
                    .map_err(|_| VineError::Lang(format!("int() cannot parse '{s}'")))?,
                other => return Err(VineError::Lang(format!("int() of {}", other.type_name()))),
            }))
        }
        "float" => {
            arity(name, args, 1)?;
            Some(Value::Float(match &args[0] {
                Value::Str(s) => s
                    .trim()
                    .parse()
                    .map_err(|_| VineError::Lang(format!("float() cannot parse '{s}'")))?,
                other => other.as_float()?,
            }))
        }
        "abs" => {
            arity(name, args, 1)?;
            Some(match &args[0] {
                Value::Int(v) => Value::Int(v.abs()),
                other => Value::Float(other.as_float()?.abs()),
            })
        }
        "min" | "max" => {
            if args.is_empty() {
                return Err(VineError::Lang(format!("{name}() of no arguments")));
            }
            let items: Vec<Value> = if args.len() == 1 {
                match &args[0] {
                    Value::List(l) => l.borrow().clone(),
                    other => vec![other.clone()],
                }
            } else {
                args.to_vec()
            };
            if items.is_empty() {
                return Err(VineError::Lang(format!("{name}() of empty list")));
            }
            let mut best = items[0].as_float()?;
            let mut best_idx = 0;
            for (i, item) in items.iter().enumerate().skip(1) {
                let v = item.as_float()?;
                let better = if name == "min" { v < best } else { v > best };
                if better {
                    best = v;
                    best_idx = i;
                }
            }
            Some(items[best_idx].clone())
        }
        "sum" => {
            arity(name, args, 1)?;
            match &args[0] {
                Value::List(l) => {
                    let items = l.borrow();
                    let mut acc_i: i64 = 0;
                    let mut acc_f: f64 = 0.0;
                    let mut any_float = false;
                    for item in items.iter() {
                        match item {
                            Value::Int(v) => {
                                acc_i = acc_i.checked_add(*v).ok_or_else(|| {
                                    VineError::Lang("integer overflow in sum()".into())
                                })?
                            }
                            other => {
                                any_float = true;
                                acc_f += other.as_float()?;
                            }
                        }
                    }
                    Some(if any_float {
                        Value::Float(acc_f + acc_i as f64)
                    } else {
                        Value::Int(acc_i)
                    })
                }
                Value::Tensor(t) => Some(Value::Float(t.data.iter().sum())),
                other => return Err(VineError::Lang(format!("sum() of {}", other.type_name()))),
            }
        }
        "sqrt" => {
            arity(name, args, 1)?;
            let x = args[0].as_float()?;
            if x < 0.0 {
                return Err(VineError::Lang("sqrt() of negative number".into()));
            }
            Some(Value::Float(x.sqrt()))
        }
        "floor" => {
            arity(name, args, 1)?;
            Some(Value::Int(args[0].as_float()?.floor() as i64))
        }
        "ceil" => {
            arity(name, args, 1)?;
            Some(Value::Int(args[0].as_float()?.ceil() as i64))
        }
        "pow" => {
            arity(name, args, 2)?;
            match (&args[0], &args[1]) {
                (Value::Int(a), Value::Int(b)) if *b >= 0 => Some(Value::Int(
                    a.checked_pow(
                        (*b).try_into()
                            .map_err(|_| VineError::Lang("pow() exponent too large".into()))?,
                    )
                    .ok_or_else(|| VineError::Lang("integer overflow in pow()".into()))?,
                )),
                _ => Some(Value::Float(args[0].as_float()?.powf(args[1].as_float()?))),
            }
        }
        "contains" => {
            arity(name, args, 2)?;
            Some(Value::Bool(match &args[0] {
                Value::List(l) => l.borrow().iter().any(|v| v == &args[1]),
                Value::Str(s) => s.contains(args[1].as_str()?),
                Value::Dict(d) => d.borrow().contains_key(args[1].as_str()?),
                other => {
                    return Err(VineError::Lang(format!(
                        "contains() on {}",
                        other.type_name()
                    )))
                }
            }))
        }
        "sorted" => {
            arity(name, args, 1)?;
            match &args[0] {
                Value::List(l) => {
                    let mut items = l.borrow().clone();
                    let mut failed = None;
                    items.sort_by(|a, b| match (a.as_float(), b.as_float()) {
                        (Ok(x), Ok(y)) => x.partial_cmp(&y).unwrap_or(std::cmp::Ordering::Equal),
                        _ => match (a, b) {
                            (Value::Str(x), Value::Str(y)) => x.cmp(y),
                            _ => {
                                failed = Some(VineError::Lang(
                                    "sorted() of mixed non-numeric values".into(),
                                ));
                                std::cmp::Ordering::Equal
                            }
                        },
                    });
                    if let Some(e) = failed {
                        return Err(e);
                    }
                    Some(Value::list(items))
                }
                other => {
                    return Err(VineError::Lang(format!(
                        "sorted() of {}",
                        other.type_name()
                    )))
                }
            }
        }
        "join" => {
            arity(name, args, 2)?;
            let sep = args[0].as_str()?;
            match &args[1] {
                Value::List(l) => {
                    let parts: Vec<String> = l.borrow().iter().map(|v| v.to_string()).collect();
                    Some(Value::str(parts.join(sep)))
                }
                other => return Err(VineError::Lang(format!("join() of {}", other.type_name()))),
            }
        }
        "split" => {
            arity(name, args, 2)?;
            let s = args[0].as_str()?;
            let sep = args[1].as_str()?;
            Some(Value::list(
                s.split(sep).map(|p| Value::str(p.to_string())).collect(),
            ))
        }
        "type" => {
            arity(name, args, 1)?;
            Some(Value::str(args[0].type_name()))
        }
        "zeros" => {
            arity(name, args, 1)?;
            let shape = shape_from(&args[0])?;
            Some(Value::tensor(Tensor::zeros(shape)))
        }
        "tensor" => {
            arity(name, args, 1)?;
            match &args[0] {
                Value::List(l) => {
                    let data: Result<Vec<f64>> = l.borrow().iter().map(|v| v.as_float()).collect();
                    let data = data?;
                    let n = data.len();
                    Some(Value::tensor(Tensor::new(vec![n], data)?))
                }
                other => {
                    return Err(VineError::Lang(format!(
                        "tensor() of {}",
                        other.type_name()
                    )))
                }
            }
        }
        "eval" => {
            arity(name, args, 1)?;
            let src = args[0].as_str()?.to_string();
            Some(interp.eval_source(&src)?)
        }
        "exec" => {
            arity(name, args, 1)?;
            let src = args[0].as_str()?.to_string();
            interp.exec_source(&src)?;
            Some(Value::None)
        }
        _ => None,
    };
    Ok(v)
}

fn shape_from(v: &Value) -> Result<Vec<usize>> {
    match v {
        Value::Int(n) => {
            Ok(vec![usize::try_from(*n).map_err(|_| {
                VineError::Lang("negative tensor dimension".into())
            })?])
        }
        Value::List(l) => l
            .borrow()
            .iter()
            .map(|d| {
                usize::try_from(d.as_int()?)
                    .map_err(|_| VineError::Lang("negative tensor dimension".into()))
            })
            .collect(),
        other => Err(VineError::Lang(format!(
            "invalid tensor shape: {}",
            other.type_name()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(src: &str) -> Value {
        let mut interp = Interp::new();
        interp.exec_source(&format!("result = {src}")).unwrap();
        interp.get_global("result").unwrap()
    }

    fn eval_err(src: &str) -> String {
        let mut interp = Interp::new();
        interp
            .exec_source(&format!("result = {src}"))
            .unwrap_err()
            .to_string()
    }

    #[test]
    fn len_of_everything() {
        assert_eq!(eval("len([1,2,3])"), Value::Int(3));
        assert_eq!(eval("len(\"hello\")"), Value::Int(5));
        assert_eq!(eval("len({\"a\": 1})"), Value::Int(1));
        assert_eq!(eval("len(zeros(7))"), Value::Int(7));
        assert!(eval_err("len(5)").contains("len() of int"));
    }

    #[test]
    fn range_forms() {
        assert_eq!(
            eval("range(3)"),
            Value::list(vec![Value::Int(0), Value::Int(1), Value::Int(2)])
        );
        assert_eq!(
            eval("range(2, 5)"),
            Value::list(vec![Value::Int(2), Value::Int(3), Value::Int(4)])
        );
        assert_eq!(eval("range(5, 2)"), Value::list(vec![]));
    }

    #[test]
    fn math_builtins() {
        assert_eq!(eval("abs(-3)"), Value::Int(3));
        assert_eq!(eval("abs(-3.5)"), Value::Float(3.5));
        assert_eq!(eval("sqrt(16.0)"), Value::Float(4.0));
        assert_eq!(eval("floor(2.9)"), Value::Int(2));
        assert_eq!(eval("ceil(2.1)"), Value::Int(3));
        assert_eq!(eval("pow(2, 10)"), Value::Int(1024));
        assert_eq!(eval("pow(2.0, 0.5)"), Value::Float(2f64.powf(0.5)));
        assert!(eval_err("sqrt(-1.0)").contains("negative"));
    }

    #[test]
    fn min_max_sum() {
        assert_eq!(eval("min([3, 1, 2])"), Value::Int(1));
        assert_eq!(eval("max(3, 1, 2)"), Value::Int(3));
        assert_eq!(eval("sum([1, 2, 3])"), Value::Int(6));
        assert_eq!(eval("sum([1, 2.5])"), Value::Float(3.5));
        assert!(eval_err("min([])").contains("empty"));
    }

    #[test]
    fn string_builtins() {
        assert_eq!(eval("join(\",\", [1, 2])"), Value::str("1,2"));
        assert_eq!(
            eval("split(\"a,b\", \",\")"),
            Value::list(vec![Value::str("a"), Value::str("b")])
        );
        assert_eq!(eval("contains(\"hello\", \"ell\")"), Value::Bool(true));
        assert_eq!(eval("int(\" 42 \")"), Value::Int(42));
        assert_eq!(eval("float(\"2.5\")"), Value::Float(2.5));
        assert!(eval_err("int(\"xyz\")").contains("cannot parse"));
    }

    #[test]
    fn sorted_builtin() {
        assert_eq!(
            eval("sorted([3, 1, 2])"),
            Value::list(vec![Value::Int(1), Value::Int(2), Value::Int(3)])
        );
        assert_eq!(
            eval("sorted([\"b\", \"a\"])"),
            Value::list(vec![Value::str("a"), Value::str("b")])
        );
    }

    #[test]
    fn tensor_builtins() {
        assert_eq!(eval("len(zeros([2, 3]))"), Value::Int(6));
        assert_eq!(eval("sum(tensor([1, 2, 3]))"), Value::Float(6.0));
        assert_eq!(eval("tensor([1.5, 2.5])[1]"), Value::Float(2.5));
    }

    #[test]
    fn print_captures_output() {
        let mut interp = Interp::new();
        interp.exec_source("print(\"a\", 1, [2])").unwrap();
        assert_eq!(interp.output, vec!["a 1 [2]"]);
    }

    #[test]
    fn eval_builtin_dynamic_code() {
        assert_eq!(eval("eval(\"2 + 3\")"), Value::Int(5));
    }

    #[test]
    fn exec_builtin_defines_functions_dynamically() {
        // the paper's "functions that result from dynamic execution of a
        // given string" — these have no source file to inspect
        let mut interp = Interp::new();
        interp
            .exec_source("exec(\"def dyn(x) { return x * 7 }\")\ny = dyn(6)")
            .unwrap();
        assert_eq!(interp.get_global("y").unwrap(), Value::Int(42));
    }

    #[test]
    fn type_builtin() {
        assert_eq!(eval("type(3)"), Value::str("int"));
        assert_eq!(eval("type([])"), Value::str("list"));
        assert_eq!(eval("type(none)"), Value::str("none"));
    }

    #[test]
    fn has_key_and_keys() {
        assert_eq!(eval("has_key({\"a\": 1}, \"a\")"), Value::Bool(true));
        assert_eq!(eval("has_key({\"a\": 1}, \"b\")"), Value::Bool(false));
        assert_eq!(
            eval("keys({\"b\": 2, \"a\": 1})"),
            Value::list(vec![Value::str("a"), Value::str("b")])
        );
    }

    #[test]
    fn pop_and_push() {
        assert_eq!(eval("pop([1, 2, 3])"), Value::Int(3));
        assert!(eval_err("pop([])").contains("empty"));
    }

    #[test]
    fn builtin_names_match_dispatch_table() {
        let mut interp = Interp::new();
        for name in BUILTIN_NAMES {
            // every listed name must dispatch (an Ok(Some) or an arity/type
            // error) — Ok(None) would mean the list has drifted from the table
            let dispatched = match call_builtin(&mut interp, name, &[]) {
                Ok(Some(_)) => true,
                Ok(None) => false,
                Err(_) => true,
            };
            assert!(dispatched, "'{name}' listed but not dispatched");
            assert!(is_builtin(name));
        }
        assert!(!is_builtin("model"));
        assert!(!is_builtin("context_setup"));
    }

    #[test]
    fn effect_table_covers_every_builtin() {
        for name in BUILTIN_NAMES {
            assert!(
                builtin_effect(name).is_some(),
                "'{name}' has no effect classification"
            );
        }
        assert_eq!(builtin_effect("len"), Some(BuiltinEffect::Pure));
        assert_eq!(builtin_effect("range"), Some(BuiltinEffect::Pure));
        assert_eq!(builtin_effect("push"), Some(BuiltinEffect::MutatesArg));
        assert_eq!(builtin_effect("print"), Some(BuiltinEffect::Io));
        assert_eq!(builtin_effect("eval"), Some(BuiltinEffect::Dynamic));
        assert_eq!(builtin_effect("exec"), Some(BuiltinEffect::Dynamic));
        assert_eq!(builtin_effect("context_setup"), None);
    }
}
