//! Abstract syntax tree for vinescript.
//!
//! The AST is the unit the paper's discover mechanism operates on: source
//! extraction produces it via the parser, import scanning walks it
//! ([`crate::inspect::scan_imports`]), and the serializer
//! ([`crate::pickle`]) encodes it byte-for-byte so functions without a
//! source form can still be shipped to workers.

use std::rc::Rc;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnOp {
    Neg,
    Not,
}

#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    None,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    List(Vec<Expr>),
    /// Dict literal; keys are expressions evaluating to strings.
    Dict(Vec<(Expr, Expr)>),
    Var(String),
    /// `object.attr` — module member access.
    Attr(Box<Expr>, String),
    Index(Box<Expr>, Box<Expr>),
    Call(Box<Expr>, Vec<Expr>),
    Unary(UnOp, Box<Expr>),
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Anonymous function: `fn (x, y) { ... }`. Has no extractable source
    /// inside a larger expression, so it must travel serialized — exactly
    /// the case the paper's cloudpickle path exists for.
    Lambda(Rc<FuncDef>),
}

/// Assignment target.
#[derive(Clone, Debug, PartialEq)]
pub enum Target {
    Var(String),
    Index(Expr, Expr),
}

#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    Import(String),
    FuncDef(Rc<FuncDef>),
    Assign(Target, Expr),
    /// `x += e` / `x -= e` desugared at parse time into Assign.
    Global(Vec<String>),
    If(Vec<(Expr, Vec<Stmt>)>, Option<Vec<Stmt>>),
    While(Expr, Vec<Stmt>),
    For(String, Expr, Vec<Stmt>),
    Return(Option<Expr>),
    Break,
    Continue,
    Expr(Expr),
}

/// A function definition: the code object of vinescript.
#[derive(Clone, Debug, PartialEq)]
pub struct FuncDef {
    /// Empty string for lambdas.
    pub name: String,
    pub params: Vec<String>,
    pub body: Vec<Stmt>,
}

pub type Program = Vec<Stmt>;

impl FuncDef {
    pub fn is_lambda(&self) -> bool {
        self.name.is_empty()
    }
}

/// Walk every statement in a program (pre-order), including nested blocks
/// and function bodies. The traversal backbone for import scanning and
/// other static analyses.
pub fn walk_stmts<'a>(stmts: &'a [Stmt], visit: &mut dyn FnMut(&'a Stmt)) {
    for s in stmts {
        visit(s);
        match s {
            Stmt::FuncDef(f) => walk_stmts(&f.body, visit),
            Stmt::If(arms, els) => {
                for (_, body) in arms {
                    walk_stmts(body, visit);
                }
                if let Some(e) = els {
                    walk_stmts(e, visit);
                }
            }
            Stmt::While(_, body) | Stmt::For(_, _, body) => walk_stmts(body, visit),
            Stmt::Assign(_, e) | Stmt::Expr(e) | Stmt::Return(Some(e)) => {
                walk_exprs_in(e, &mut |expr| {
                    if let Expr::Lambda(f) = expr {
                        walk_stmts(&f.body, visit);
                    }
                });
            }
            _ => {}
        }
    }
}

/// Walk an expression tree pre-order.
pub fn walk_exprs_in<'a>(e: &'a Expr, visit: &mut dyn FnMut(&'a Expr)) {
    visit(e);
    match e {
        Expr::List(items) => {
            for it in items {
                walk_exprs_in(it, visit);
            }
        }
        Expr::Dict(pairs) => {
            for (k, v) in pairs {
                walk_exprs_in(k, visit);
                walk_exprs_in(v, visit);
            }
        }
        Expr::Attr(obj, _) => walk_exprs_in(obj, visit),
        Expr::Index(obj, idx) => {
            walk_exprs_in(obj, visit);
            walk_exprs_in(idx, visit);
        }
        Expr::Call(f, args) => {
            walk_exprs_in(f, visit);
            for a in args {
                walk_exprs_in(a, visit);
            }
        }
        Expr::Unary(_, x) => walk_exprs_in(x, visit),
        Expr::Binary(_, a, b) => {
            walk_exprs_in(a, visit);
            walk_exprs_in(b, visit);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_visits_nested_function_bodies() {
        let inner = Stmt::Import("nn".into());
        let f = FuncDef {
            name: "f".into(),
            params: vec![],
            body: vec![inner],
        };
        let prog = vec![Stmt::FuncDef(Rc::new(f))];
        let mut imports = Vec::new();
        walk_stmts(&prog, &mut |s| {
            if let Stmt::Import(m) = s {
                imports.push(m.clone());
            }
        });
        assert_eq!(imports, vec!["nn".to_string()]);
    }

    #[test]
    fn walk_visits_lambda_bodies_in_expressions() {
        let lambda = Expr::Lambda(Rc::new(FuncDef {
            name: String::new(),
            params: vec!["x".into()],
            body: vec![Stmt::Import("mathx".into())],
        }));
        let prog = vec![Stmt::Assign(Target::Var("g".into()), lambda)];
        let mut imports = Vec::new();
        walk_stmts(&prog, &mut |s| {
            if let Stmt::Import(m) = s {
                imports.push(m.clone());
            }
        });
        assert_eq!(imports, vec!["mathx".to_string()]);
    }

    #[test]
    fn lambda_detection() {
        let f = FuncDef {
            name: String::new(),
            params: vec![],
            body: vec![],
        };
        assert!(f.is_lambda());
    }
}
