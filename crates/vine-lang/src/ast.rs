//! Abstract syntax tree for vinescript.
//!
//! The AST is the unit the paper's discover mechanism operates on: source
//! extraction produces it via the parser, import scanning walks it
//! ([`crate::inspect::scan_imports`]), and the serializer
//! ([`crate::pickle`]) encodes it byte-for-byte so functions without a
//! source form can still be shipped to workers.
//!
//! Statements and function definitions carry byte-offset [`Span`]s into
//! their source text so static analysis ([`vine-lint`]) and error messages
//! can point at real locations. Spans are *metadata*: they never
//! participate in AST equality or in the pickle encoding, so a reformatted
//! program compares equal to the original and serialized code objects stay
//! bit-identical to the pre-span format.

use std::rc::Rc;

/// A half-open byte range `[start, end)` into the source text a node was
/// parsed from.
///
/// Equality is intentionally vacuous: two spans always compare equal (and
/// hash identically), so `#[derive(PartialEq)]` on AST nodes compares
/// *structure only*. A program that is parsed, pretty-printed, and parsed
/// again compares equal to the original even though every span moved.
#[derive(Clone, Copy, Debug, Eq)]
pub struct Span {
    pub start: u32,
    pub end: u32,
}

impl Span {
    /// The span of synthesized nodes (deserialized code objects, generated
    /// `context_setup` functions): no source position.
    pub const DUMMY: Span = Span { start: 0, end: 0 };

    pub fn new(start: usize, end: usize) -> Span {
        Span {
            start: start as u32,
            end: end.max(start) as u32,
        }
    }

    /// True for spans of synthesized nodes that have no source location.
    pub fn is_dummy(&self) -> bool {
        self.start == 0 && self.end == 0
    }

    /// 1-based (line, column) of the span start within `src`. Columns count
    /// bytes from the line start, which is exact for the ASCII-only lexical
    /// grammar.
    pub fn line_col(&self, src: &str) -> (u32, u32) {
        let upto = &src.as_bytes()[..(self.start as usize).min(src.len())];
        let line = 1 + upto.iter().filter(|b| **b == b'\n').count() as u32;
        let col = 1 + upto.iter().rev().take_while(|b| **b != b'\n').count() as u32;
        (line, col)
    }

    /// The source text this span covers.
    pub fn slice<'a>(&self, src: &'a str) -> &'a str {
        let start = (self.start as usize).min(src.len());
        let end = (self.end as usize).min(src.len()).max(start);
        &src[start..end]
    }
}

impl PartialEq for Span {
    fn eq(&self, _: &Span) -> bool {
        true
    }
}

impl std::hash::Hash for Span {
    fn hash<H: std::hash::Hasher>(&self, _: &mut H) {}
}

impl Default for Span {
    fn default() -> Span {
        Span::DUMMY
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnOp {
    Neg,
    Not,
}

#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    None,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    List(Vec<Expr>),
    /// Dict literal; keys are expressions evaluating to strings.
    Dict(Vec<(Expr, Expr)>),
    Var(String),
    /// `object.attr` — module member access.
    Attr(Box<Expr>, String),
    Index(Box<Expr>, Box<Expr>),
    Call(Box<Expr>, Vec<Expr>),
    Unary(UnOp, Box<Expr>),
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Anonymous function: `fn (x, y) { ... }`. Has no extractable source
    /// inside a larger expression, so it must travel serialized — exactly
    /// the case the paper's cloudpickle path exists for.
    Lambda(Rc<FuncDef>),
}

/// Assignment target.
#[derive(Clone, Debug, PartialEq)]
pub enum Target {
    Var(String),
    Index(Expr, Expr),
}

/// A statement: what it does ([`StmtKind`]) plus where it came from.
#[derive(Clone, Debug, PartialEq)]
pub struct Stmt {
    pub kind: StmtKind,
    pub span: Span,
}

impl Stmt {
    pub fn new(kind: StmtKind, span: Span) -> Stmt {
        Stmt { kind, span }
    }

    /// A synthesized statement with no source location.
    pub fn dummy(kind: StmtKind) -> Stmt {
        Stmt {
            kind,
            span: Span::DUMMY,
        }
    }
}

impl From<StmtKind> for Stmt {
    fn from(kind: StmtKind) -> Stmt {
        Stmt::dummy(kind)
    }
}

#[derive(Clone, Debug, PartialEq)]
pub enum StmtKind {
    Import(String),
    FuncDef(Rc<FuncDef>),
    Assign(Target, Expr),
    /// `x += e` / `x -= e` desugared at parse time into Assign.
    Global(Vec<String>),
    If(Vec<(Expr, Vec<Stmt>)>, Option<Vec<Stmt>>),
    While(Expr, Vec<Stmt>),
    For(String, Expr, Vec<Stmt>),
    Return(Option<Expr>),
    Break,
    Continue,
    Expr(Expr),
}

/// A function definition: the code object of vinescript.
#[derive(Clone, Debug, PartialEq)]
pub struct FuncDef {
    /// Empty string for lambdas.
    pub name: String,
    pub params: Vec<String>,
    pub body: Vec<Stmt>,
    /// Source span of the whole definition ([`Span::DUMMY`] when
    /// synthesized or deserialized).
    pub span: Span,
}

pub type Program = Vec<Stmt>;

impl FuncDef {
    pub fn new(name: impl Into<String>, params: Vec<String>, body: Vec<Stmt>) -> FuncDef {
        FuncDef {
            name: name.into(),
            params,
            body,
            span: Span::DUMMY,
        }
    }

    pub fn is_lambda(&self) -> bool {
        self.name.is_empty()
    }
}

/// Walk every statement in a program (pre-order), including nested blocks
/// and function bodies. The traversal backbone for import scanning and
/// other static analyses.
pub fn walk_stmts<'a>(stmts: &'a [Stmt], visit: &mut dyn FnMut(&'a Stmt)) {
    for s in stmts {
        visit(s);
        match &s.kind {
            StmtKind::FuncDef(f) => walk_stmts(&f.body, visit),
            StmtKind::If(arms, els) => {
                for (_, body) in arms {
                    walk_stmts(body, visit);
                }
                if let Some(e) = els {
                    walk_stmts(e, visit);
                }
            }
            StmtKind::While(_, body) | StmtKind::For(_, _, body) => walk_stmts(body, visit),
            StmtKind::Assign(_, e) | StmtKind::Expr(e) | StmtKind::Return(Some(e)) => {
                walk_exprs_in(e, &mut |expr| {
                    if let Expr::Lambda(f) = expr {
                        walk_stmts(&f.body, visit);
                    }
                });
            }
            _ => {}
        }
    }
}

/// Walk an expression tree pre-order.
pub fn walk_exprs_in<'a>(e: &'a Expr, visit: &mut dyn FnMut(&'a Expr)) {
    visit(e);
    match e {
        Expr::List(items) => {
            for it in items {
                walk_exprs_in(it, visit);
            }
        }
        Expr::Dict(pairs) => {
            for (k, v) in pairs {
                walk_exprs_in(k, visit);
                walk_exprs_in(v, visit);
            }
        }
        Expr::Attr(obj, _) => walk_exprs_in(obj, visit),
        Expr::Index(obj, idx) => {
            walk_exprs_in(obj, visit);
            walk_exprs_in(idx, visit);
        }
        Expr::Call(f, args) => {
            walk_exprs_in(f, visit);
            for a in args {
                walk_exprs_in(a, visit);
            }
        }
        Expr::Unary(_, x) => walk_exprs_in(x, visit),
        Expr::Binary(_, a, b) => {
            walk_exprs_in(a, visit);
            walk_exprs_in(b, visit);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_visits_nested_function_bodies() {
        let inner = Stmt::dummy(StmtKind::Import("nn".into()));
        let f = FuncDef::new("f", vec![], vec![inner]);
        let prog = vec![Stmt::dummy(StmtKind::FuncDef(Rc::new(f)))];
        let mut imports = Vec::new();
        walk_stmts(&prog, &mut |s| {
            if let StmtKind::Import(m) = &s.kind {
                imports.push(m.clone());
            }
        });
        assert_eq!(imports, vec!["nn".to_string()]);
    }

    #[test]
    fn walk_visits_lambda_bodies_in_expressions() {
        let lambda = Expr::Lambda(Rc::new(FuncDef::new(
            "",
            vec!["x".into()],
            vec![Stmt::dummy(StmtKind::Import("mathx".into()))],
        )));
        let prog = vec![Stmt::dummy(StmtKind::Assign(
            Target::Var("g".into()),
            lambda,
        ))];
        let mut imports = Vec::new();
        walk_stmts(&prog, &mut |s| {
            if let StmtKind::Import(m) = &s.kind {
                imports.push(m.clone());
            }
        });
        assert_eq!(imports, vec!["mathx".to_string()]);
    }

    #[test]
    fn lambda_detection() {
        let f = FuncDef::new("", vec![], vec![]);
        assert!(f.is_lambda());
    }

    #[test]
    fn spans_do_not_affect_equality() {
        let a = Stmt::new(StmtKind::Break, Span::new(10, 15));
        let b = Stmt::dummy(StmtKind::Break);
        assert_eq!(a, b);
        assert_ne!(a.span.start, b.span.start);
    }

    #[test]
    fn span_line_col() {
        let src = "x = 1\ny = 2\n  z = 3";
        let span = Span::new(src.find('z').unwrap(), src.len());
        assert_eq!(span.line_col(src), (3, 3));
        assert_eq!(span.slice(src), "z = 3");
        assert_eq!(Span::new(0, 1).line_col(src), (1, 1));
    }
}
