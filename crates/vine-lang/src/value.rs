//! Runtime values.
//!
//! Values are reference-counted and **not thread-safe** by design: a library
//! process owns its interpreter and namespace outright, and anything that
//! crosses a worker/library/manager boundary does so *serialized* — exactly
//! as in the paper, where results are serialized to files in the
//! invocation's sandbox (§3.4 step 4).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;
use vine_core::{Result, VineError};

use crate::ast::FuncDef;

/// A dense row-major f64 tensor — the stand-in for NumPy arrays / model
/// parameter blobs in the LNNI application.
#[derive(Clone, Debug, PartialEq)]
pub struct Tensor {
    pub shape: Vec<usize>,
    pub data: Rc<Vec<f64>>,
}

impl Tensor {
    pub fn new(shape: Vec<usize>, data: Vec<f64>) -> Result<Tensor> {
        let expect: usize = shape.iter().product();
        if expect != data.len() {
            return Err(VineError::Lang(format!(
                "tensor shape {:?} wants {} elements, got {}",
                shape,
                expect,
                data.len()
            )));
        }
        Ok(Tensor {
            shape,
            data: Rc::new(data),
        })
    }

    pub fn zeros(shape: Vec<usize>) -> Tensor {
        let n: usize = shape.iter().product();
        Tensor {
            shape,
            data: Rc::new(vec![0.0; n]),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// A user-defined function *object*: code plus a handle to the global
/// namespace of the interpreter that defined it. Invocations of the same
/// function share that namespace — this is the in-memory context the
/// paper's L3 level retains and reuses.
pub struct Function {
    pub def: Rc<FuncDef>,
    /// The defining interpreter's globals. Functions read module-level
    /// state (e.g. a model registered by `context_setup`) through this.
    pub globals: Rc<RefCell<BTreeMap<String, Value>>>,
    /// Parameter names interned once at construction, so every call binds
    /// arguments with `Rc` clones instead of fresh `String` allocations.
    pub param_names: Vec<Rc<str>>,
    /// Lazily attached bytecode (see [`crate::compile`]); filled on first
    /// VM call, or pre-seeded when the function comes from a shipped
    /// compiled image, so repeat invocations never recompile.
    pub compiled: RefCell<Option<Rc<crate::bytecode::CompiledFn>>>,
}

impl Function {
    pub fn new(def: Rc<FuncDef>, globals: Rc<RefCell<BTreeMap<String, Value>>>) -> Function {
        let param_names = def.params.iter().map(|p| Rc::from(p.as_str())).collect();
        Function {
            def,
            globals,
            param_names,
            compiled: RefCell::new(None),
        }
    }
}

impl fmt::Debug for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<function {}>", display_fn_name(&self.def))
    }
}

fn display_fn_name(def: &FuncDef) -> &str {
    if def.name.is_empty() {
        "<lambda>"
    } else {
        &def.name
    }
}

/// A native (Rust-implemented) function, the mechanism behind "software
/// dependencies": imported modules expose these.
pub struct NativeFunc {
    pub name: String,
    #[allow(clippy::type_complexity)]
    pub f: Box<dyn Fn(&[Value]) -> Result<Value>>,
}

impl fmt::Debug for NativeFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<native {}>", self.name)
    }
}

/// An imported module: a named bag of members.
#[derive(Debug)]
pub struct ModuleObj {
    pub name: String,
    /// Shared by `Rc` with the defining interpreter's globals for source
    /// modules, so module functions that mutate their own module-level
    /// state stay visible through attribute reads — and importing never
    /// clones the whole namespace.
    pub members: Rc<RefCell<BTreeMap<String, Value>>>,
}

/// Any vinescript value.
#[derive(Clone, Debug)]
pub enum Value {
    None,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(Rc<str>),
    Bytes(Rc<Vec<u8>>),
    List(Rc<RefCell<Vec<Value>>>),
    Dict(Rc<RefCell<BTreeMap<String, Value>>>),
    Tensor(Rc<Tensor>),
    Func(Rc<Function>),
    Native(Rc<NativeFunc>),
    Module(Rc<ModuleObj>),
}

impl Value {
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(Rc::from(s.into().into_boxed_str()))
    }

    pub fn list(items: Vec<Value>) -> Value {
        Value::List(Rc::new(RefCell::new(items)))
    }

    pub fn dict(pairs: impl IntoIterator<Item = (String, Value)>) -> Value {
        Value::Dict(Rc::new(RefCell::new(pairs.into_iter().collect())))
    }

    pub fn tensor(t: Tensor) -> Value {
        Value::Tensor(Rc::new(t))
    }

    pub fn type_name(&self) -> &'static str {
        match self {
            Value::None => "none",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "str",
            Value::Bytes(_) => "bytes",
            Value::List(_) => "list",
            Value::Dict(_) => "dict",
            Value::Tensor(_) => "tensor",
            Value::Func(_) => "function",
            Value::Native(_) => "native function",
            Value::Module(_) => "module",
        }
    }

    pub fn truthy(&self) -> bool {
        match self {
            Value::None => false,
            Value::Bool(b) => *b,
            Value::Int(v) => *v != 0,
            Value::Float(v) => *v != 0.0,
            Value::Str(s) => !s.is_empty(),
            Value::Bytes(b) => !b.is_empty(),
            Value::List(l) => !l.borrow().is_empty(),
            Value::Dict(d) => !d.borrow().is_empty(),
            Value::Tensor(t) => !t.is_empty(),
            Value::Func(_) | Value::Native(_) | Value::Module(_) => true,
        }
    }

    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(v) => Ok(*v),
            Value::Bool(b) => Ok(*b as i64),
            other => Err(VineError::Lang(format!(
                "expected int, got {}",
                other.type_name()
            ))),
        }
    }

    pub fn as_float(&self) -> Result<f64> {
        match self {
            Value::Float(v) => Ok(*v),
            Value::Int(v) => Ok(*v as f64),
            Value::Bool(b) => Ok(*b as i64 as f64),
            other => Err(VineError::Lang(format!(
                "expected float, got {}",
                other.type_name()
            ))),
        }
    }

    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(VineError::Lang(format!(
                "expected str, got {}",
                other.type_name()
            ))),
        }
    }

    pub fn as_tensor(&self) -> Result<&Rc<Tensor>> {
        match self {
            Value::Tensor(t) => Ok(t),
            other => Err(VineError::Lang(format!(
                "expected tensor, got {}",
                other.type_name()
            ))),
        }
    }

    /// Structure-preserving deep copy. This is how the live runtime models
    /// `fork`: the child library gets its own copy of the namespace
    /// (copy-on-write in a real fork; a deep clone here) so mutations don't
    /// leak back into the shared context (§2.1.4).
    pub fn deep_clone(&self) -> Value {
        match self {
            Value::List(l) => Value::list(l.borrow().iter().map(Value::deep_clone).collect()),
            Value::Dict(d) => Value::Dict(Rc::new(RefCell::new(
                d.borrow()
                    .iter()
                    .map(|(k, v)| (k.clone(), v.deep_clone()))
                    .collect(),
            ))),
            // tensors are immutable: sharing the Rc is semantically a copy
            other => other.clone(),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        use Value::*;
        match (self, other) {
            (None, None) => true,
            (Bool(a), Bool(b)) => a == b,
            (Int(a), Int(b)) => a == b,
            (Float(a), Float(b)) => a == b,
            (Int(a), Float(b)) | (Float(b), Int(a)) => *a as f64 == *b,
            (Str(a), Str(b)) => a == b,
            (Bytes(a), Bytes(b)) => a == b,
            (List(a), List(b)) => *a.borrow() == *b.borrow(),
            (Dict(a), Dict(b)) => *a.borrow() == *b.borrow(),
            (Tensor(a), Tensor(b)) => a == b,
            (Func(a), Func(b)) => Rc::ptr_eq(a, b),
            (Native(a), Native(b)) => Rc::ptr_eq(a, b),
            (Module(a), Module(b)) => Rc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::None => write!(f, "none"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Value::Str(s) => write!(f, "{s}"),
            Value::Bytes(b) => write!(f, "<bytes len={}>", b.len()),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, it) in items.borrow().iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{it}")?;
                }
                write!(f, "]")
            }
            Value::Dict(d) => {
                write!(f, "{{")?;
                for (i, (k, v)) in d.borrow().iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                write!(f, "}}")
            }
            Value::Tensor(t) => write!(f, "<tensor {:?}>", t.shape),
            Value::Func(func) => write!(f, "{func:?}"),
            Value::Native(n) => write!(f, "{n:?}"),
            Value::Module(m) => write!(f, "<module {}>", m.name),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(!Value::None.truthy());
        assert!(!Value::Int(0).truthy());
        assert!(Value::Int(3).truthy());
        assert!(!Value::str("").truthy());
        assert!(Value::str("x").truthy());
        assert!(!Value::list(vec![]).truthy());
        assert!(Value::list(vec![Value::None]).truthy());
    }

    #[test]
    fn numeric_cross_type_equality() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert_ne!(Value::Int(2), Value::Float(2.5));
        assert_ne!(Value::Int(2), Value::str("2"));
    }

    #[test]
    fn tensor_shape_validation() {
        assert!(Tensor::new(vec![2, 3], vec![0.0; 6]).is_ok());
        assert!(Tensor::new(vec![2, 3], vec![0.0; 5]).is_err());
        let z = Tensor::zeros(vec![4, 4]);
        assert_eq!(z.len(), 16);
    }

    #[test]
    fn deep_clone_isolates_mutation() {
        let original = Value::list(vec![Value::Int(1), Value::list(vec![Value::Int(2)])]);
        let copy = original.deep_clone();
        if let Value::List(items) = &original {
            if let Value::List(inner) = &items.borrow()[1] {
                inner.borrow_mut().push(Value::Int(99));
            }
        }
        // the copy must not see the mutation
        if let Value::List(items) = &copy {
            if let Value::List(inner) = &items.borrow()[1] {
                assert_eq!(inner.borrow().len(), 1);
            } else {
                panic!("expected inner list");
            }
        } else {
            panic!("expected list");
        }
    }

    #[test]
    fn shallow_clone_shares_mutation() {
        let original = Value::list(vec![Value::Int(1)]);
        let alias = original.clone();
        if let Value::List(items) = &original {
            items.borrow_mut().push(Value::Int(2));
        }
        if let Value::List(items) = &alias {
            assert_eq!(items.borrow().len(), 2);
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::Float(2.5).to_string(), "2.5");
        assert_eq!(
            Value::list(vec![Value::Int(1), Value::str("a")]).to_string(),
            "[1, a]"
        );
        assert_eq!(
            Value::dict([("k".to_string(), Value::Int(1))]).to_string(),
            "{k: 1}"
        );
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::Bool(true).as_int().unwrap(), 1);
        assert_eq!(Value::Int(3).as_float().unwrap(), 3.0);
        assert!(Value::str("x").as_int().is_err());
        assert_eq!(Value::from("hi").as_str().unwrap(), "hi");
    }
}
