//! # vine-lang
//!
//! A small dynamically-typed embedded language ("vinescript") that plays the
//! role Python plays in the paper: **functions are data**. The paper ships
//! Python functions to workers by extracting their source with `inspect` or
//! serializing their code objects with cloudpickle (§3.2); vine-lang
//! provides the same two paths natively in Rust:
//!
//! * [`inspect::extract_source`] — slice a named function's text out of its
//!   defining module (the `inspect` analogue);
//! * [`pickle`] — serialize any function *object* (including lambdas and
//!   dynamically `eval`-ed functions that have no source form) to bytes and
//!   reconstruct it elsewhere (the cloudpickle analogue);
//! * [`inspect::scan_imports`] — walk a function's AST collecting the
//!   modules it imports (the Poncho dependency-discovery analogue);
//! * [`autocontext::discover`] — *beyond the paper*: the §6 future-work
//!   item, automatic context detection — classify module-level setup as
//!   hoistable context vs per-invocation state and synthesize the
//!   `context_setup` function without user intervention.
//!
//! The language is deliberately boring: `def` functions, `global`
//! declarations (how context setup publishes state to later invocations,
//! paper Fig 4), `import`, control flow, lists/dicts/tensors, and a native
//! module registry for "software dependencies".
//!
//! ## Example
//!
//! ```
//! use vine_lang::interp::Interp;
//!
//! let mut interp = Interp::new();
//! interp.exec_source(
//!     r#"
//!     def context_setup(n) {
//!         global model
//!         model = n * 100
//!     }
//!     def infer(x) {
//!         return model + x
//!     }
//!     context_setup(7)
//!     "#,
//! ).unwrap();
//! let out = interp.call_global("infer", &[5i64.into()]).unwrap();
//! assert_eq!(out, 705i64.into());
//! ```

pub mod ast;
pub mod autocontext;
pub mod builtins;
pub mod bytecode;
pub mod compile;
pub mod inspect;
pub mod interp;
pub mod lexer;
pub mod modules;
pub mod parser;
pub mod pickle;
pub mod value;
pub(crate) mod vm;

pub use ast::{BinOp, Expr, FuncDef, Program, Span, Stmt, StmtKind, Target, UnOp};
pub use bytecode::{CompiledFn, CompiledModule};
pub use compile::{compile_module, compile_program};
pub use interp::{Engine, Interp};
pub use modules::ModuleRegistry;
pub use value::Value;

/// Parse source text into a program.
pub fn parse(src: &str) -> vine_core::Result<Program> {
    let tokens = lexer::lex(src)?;
    parser::parse_program(&tokens)
}
