//! The stack VM: a dispatch loop over [`Instr`] that runs *against* an
//! [`Interp`] — it borrows the interpreter's globals, module registry,
//! output capture, step budget, and builtin dispatch, so VM execution and
//! tree-walking are two engines over one runtime state and can be compared
//! bit-for-bit (the differential proptest in `tests/vm_differential.rs`
//! holds them to identical results, prints, globals, and error strings).
//!
//! Calls re-enter through [`Interp::call_value`], which dispatches by the
//! interpreter's engine — so VM code calling a function compiled from a
//! dynamically `exec`-ed definition, or `eval`/`exec` builtins re-entering
//! the interpreter, all stay on one engine without special cases.

use crate::builtins;
use crate::bytecode::{CompiledFn, Instr, NO_SLOT};
use crate::interp::{binary_op, unary_op, Interp};
use crate::value::{Function, Value};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use vine_core::{Result, VineError};

/// Execute module-level compiled code. All its names are globals, so no
/// slot frame is needed.
pub(crate) fn run_toplevel(interp: &mut Interp, top: &CompiledFn) -> Result<()> {
    let mut slots: Vec<Option<Value>> = Vec::new();
    execute(interp, top, &mut slots).map(|_| ())
}

/// Execute a compiled function body. The caller has already swapped the
/// interpreter's globals to the function's defining namespace and checked
/// arity.
pub(crate) fn run_function(
    interp: &mut Interp,
    code: &CompiledFn,
    args: &[Value],
) -> Result<Value> {
    debug_assert_eq!(args.len(), code.n_params as usize);
    let mut slots = interp.take_slot_buf();
    slots.resize(code.n_slots as usize, None);
    for (slot, arg) in slots.iter_mut().zip(args.iter()) {
        *slot = Some(arg.clone());
    }
    let result = execute(interp, code, &mut slots);
    interp.put_slot_buf(slots);
    result
}

fn execute(interp: &mut Interp, f: &CompiledFn, slots: &mut [Option<Value>]) -> Result<Value> {
    let mut stack = interp.take_stack_buf();
    let result = dispatch(interp, f, slots, &mut stack);
    interp.put_stack_buf(stack);
    result
}

fn undefined(name: &str) -> VineError {
    VineError::Lang(format!("undefined variable: {name}"))
}

/// Non-faulting int×int operations, inlined into the dispatch loop.
/// Returns `None` for anything that can fail or needs the shared
/// implementation's exact behavior (overflow, division, modulo).
#[inline(always)]
fn int_fast_op(op: crate::ast::BinOp, a: i64, b: i64) -> Option<Value> {
    use crate::ast::BinOp::*;
    match op {
        Add => a.checked_add(b).map(Value::Int),
        Sub => a.checked_sub(b).map(Value::Int),
        Mul => a.checked_mul(b).map(Value::Int),
        Eq => Some(Value::Bool(a == b)),
        Ne => Some(Value::Bool(a != b)),
        Lt => Some(Value::Bool(a < b)),
        Le => Some(Value::Bool(a <= b)),
        Gt => Some(Value::Bool(a > b)),
        Ge => Some(Value::Bool(a >= b)),
        _ => None,
    }
}

/// Apply a binary op to two owned operands. Destructuring the int×int
/// case by value lets the compiler drop the drop-glue entirely on the
/// hot path; everything else goes through the shared tree-walker-exact
/// [`binary_op`].
#[inline(always)]
fn binary_owned(op: crate::ast::BinOp, l: Value, r: Value) -> Result<Value> {
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => match int_fast_op(op, a, b) {
            Some(v) => Ok(v),
            None => binary_op(op, &Value::Int(a), &Value::Int(b)),
        },
        (l, r) => binary_op(op, &l, &r),
    }
}

/// Clone a constant-pool value. The compiler only ever puts leaf values
/// (none/bool/int/float/str) in the pool, so this is a copy or one `Rc`
/// bump — spelled out so it inlines as a small switch instead of the
/// generic `Value::clone` glue.
#[inline(always)]
fn clone_const(v: &Value) -> Value {
    match v {
        Value::None => Value::None,
        Value::Bool(b) => Value::Bool(*b),
        Value::Int(i) => Value::Int(*i),
        Value::Float(x) => Value::Float(*x),
        Value::Str(s) => Value::Str(Rc::clone(s)),
        other => other.clone(),
    }
}

/// Read a slot exactly like the `LoadLocal` arm: bound local wins, a
/// `global`-redeclared or unbound slot falls back to the globals map,
/// and a miss there is the tree-walker's `undefined variable` error.
#[inline(always)]
fn load_slot(
    interp: &Interp,
    f: &CompiledFn,
    slots: &[Option<Value>],
    global_decls: &[u16],
    s: u16,
) -> Result<Value> {
    if global_decls.is_empty() || !global_decls.contains(&s) {
        if let Some(v) = &slots[s as usize] {
            return Ok(v.clone());
        }
    }
    load_slot_global(interp, f, s)
}

#[cold]
fn load_slot_global(interp: &Interp, f: &CompiledFn, s: u16) -> Result<Value> {
    let name = &f.slot_names[s as usize];
    interp
        .globals
        .borrow()
        .get(&**name)
        .cloned()
        .ok_or_else(|| undefined(name))
}

/// Write a slot exactly like the `StoreLocal` arm.
#[inline(always)]
fn store_slot(
    interp: &Interp,
    f: &CompiledFn,
    slots: &mut [Option<Value>],
    global_decls: &[u16],
    s: u16,
    v: Value,
) {
    if global_decls.contains(&s) {
        interp.set_global_fast(&f.slot_names[s as usize], v);
    } else {
        slots[s as usize] = Some(v);
    }
}

fn dispatch(
    interp: &mut Interp,
    f: &CompiledFn,
    slots: &mut [Option<Value>],
    stack: &mut Vec<Value>,
) -> Result<Value> {
    // slots flipped to global backing by an executed `global` statement;
    // almost always empty, so a linear scan beats any set
    let mut global_decls: Vec<u16> = Vec::new();
    // materialized `for` iterators (not values, so not on the data stack)
    let mut iters: Vec<(Vec<Value>, usize)> = Vec::new();
    let code = &f.code[..];
    let mut ip = 0usize;
    loop {
        let Some(instr) = code.get(ip) else {
            // module-level code runs off the end; functions end in Return
            return Ok(Value::None);
        };
        match instr {
            Instr::Const(i) => stack.push(clone_const(&f.consts[*i as usize])),
            Instr::MakeList(n) => {
                let items = stack.split_off(stack.len() - *n as usize);
                stack.push(Value::list(items));
            }
            Instr::MakeDict(n) => {
                let kv = stack.split_off(stack.len() - 2 * *n as usize);
                let mut map = BTreeMap::new();
                let mut it = kv.into_iter();
                while let Some(k) = it.next() {
                    let v = it.next().expect("compiler pushes key/value pairs");
                    map.insert(k.as_str()?.to_string(), v);
                }
                stack.push(Value::Dict(Rc::new(RefCell::new(map))));
            }
            Instr::CheckStrKey => {
                let v = stack.last().expect("dict key on stack");
                if !matches!(v, Value::Str(_)) {
                    return Err(VineError::Lang(format!(
                        "expected str, got {}",
                        v.type_name()
                    )));
                }
            }
            Instr::LoadLocal(s) => {
                let v = load_slot(interp, f, slots, &global_decls, *s)?;
                stack.push(v);
            }
            Instr::StoreLocal(s) => {
                let v = stack.pop().expect("value to store");
                store_slot(interp, f, slots, &global_decls, *s, v);
            }
            Instr::LoadGlobal(n) => {
                let name = &f.names[*n as usize];
                let v = interp
                    .globals
                    .borrow()
                    .get(&**name)
                    .cloned()
                    .ok_or_else(|| undefined(name))?;
                stack.push(v);
            }
            Instr::StoreGlobal(n) => {
                let v = stack.pop().expect("value to store");
                interp.set_global_fast(&f.names[*n as usize], v);
            }
            Instr::LoadAttr(n) => {
                let obj = stack.pop().expect("attr object");
                let attr = &f.names[*n as usize];
                match obj {
                    Value::Module(m) => {
                        let v = m.members.borrow().get(&**attr).cloned().ok_or_else(|| {
                            VineError::Lang(format!("module {} has no member {attr}", m.name))
                        })?;
                        stack.push(v);
                    }
                    other => {
                        return Err(VineError::Lang(format!(
                            "{} has no attributes",
                            other.type_name()
                        )))
                    }
                }
            }
            Instr::Index => {
                let idx = stack.pop().expect("index");
                let obj = stack.pop().expect("container");
                stack.push(interp.index_get(&obj, &idx)?);
            }
            Instr::StoreIndex => {
                let idx = stack.pop().expect("index");
                let obj = stack.pop().expect("container");
                let value = stack.pop().expect("value to store");
                interp.index_assign(&obj, &idx, value)?;
            }
            Instr::CallNamed { name, slot, argc } => {
                interp.tick()?;
                let base = stack.len() - *argc as usize;
                let nm = &f.names[*name as usize];
                let local = if *slot != NO_SLOT && !global_decls.contains(slot) {
                    slots[*slot as usize].clone()
                } else {
                    None
                };
                // the tree-walker's shadowing rule: a builtin fires only
                // when the name resolves to neither a local nor a global
                let shadowed = local.is_some() || interp.globals.borrow().contains_key(&**nm);
                let r = if !shadowed {
                    builtins::call_builtin(interp, nm, &stack[base..])?
                } else {
                    None
                };
                let r = match r {
                    Some(r) => r,
                    None => {
                        let callee = match local {
                            Some(v) => v,
                            None => interp
                                .globals
                                .borrow()
                                .get(&**nm)
                                .cloned()
                                .ok_or_else(|| undefined(nm))?,
                        };
                        interp.call_value(&callee, &stack[base..])?
                    }
                };
                stack.truncate(base);
                stack.push(r);
            }
            Instr::CallValue(argc) => {
                interp.tick()?;
                let callee = stack.pop().expect("callee");
                let base = stack.len() - *argc as usize;
                let r = interp.call_value(&callee, &stack[base..])?;
                stack.truncate(base);
                stack.push(r);
            }
            Instr::Unary(op) => {
                let v = stack.pop().expect("unary operand");
                stack.push(unary_op(*op, &v)?);
            }
            Instr::Binary(op) => {
                let r = stack.pop().expect("rhs");
                let l = stack.pop().expect("lhs");
                stack.push(binary_owned(*op, l, r)?);
            }
            Instr::BinaryLL { op, a, b } => {
                let l = load_slot(interp, f, slots, &global_decls, *a)?;
                let r = load_slot(interp, f, slots, &global_decls, *b)?;
                stack.push(binary_owned(*op, l, r)?);
            }
            Instr::BinaryLC { op, a, c } => {
                let l = load_slot(interp, f, slots, &global_decls, *a)?;
                let r = clone_const(&f.consts[*c as usize]);
                stack.push(binary_owned(*op, l, r)?);
            }
            Instr::BinarySL { op, s } => {
                let l = stack.pop().expect("lhs");
                let r = load_slot(interp, f, slots, &global_decls, *s)?;
                stack.push(binary_owned(*op, l, r)?);
            }
            Instr::BinarySC { op, c } => {
                let l = stack.pop().expect("lhs");
                let r = clone_const(&f.consts[*c as usize]);
                stack.push(binary_owned(*op, l, r)?);
            }
            Instr::JumpIfFalse(t) => {
                if !stack.pop().expect("condition").truthy() {
                    ip = *t as usize;
                    continue;
                }
            }
            Instr::JumpIfFalseKeep(t) => {
                if !stack.last().expect("operand").truthy() {
                    ip = *t as usize;
                    continue;
                }
            }
            Instr::JumpIfTrueKeep(t) => {
                if stack.last().expect("operand").truthy() {
                    ip = *t as usize;
                    continue;
                }
            }
            Instr::Jump(t) => {
                if (*t as usize) <= ip {
                    interp.tick()?;
                }
                ip = *t as usize;
                continue;
            }
            Instr::Pop => {
                stack.pop();
            }
            Instr::Return => {
                return Ok(stack.pop().expect("return value"));
            }
            Instr::ReturnLocal(s) => {
                return load_slot(interp, f, slots, &global_decls, *s);
            }
            Instr::ReturnConst(c) => {
                return Ok(clone_const(&f.consts[*c as usize]));
            }
            Instr::MakeFunc(i) => {
                let cf = &f.funcs[*i as usize];
                let def = Rc::clone(cf.def.as_ref().expect("function literal carries its def"));
                interp.cache_compiled(&def, cf);
                let func = Function::new(def, Rc::clone(&interp.globals));
                *func.compiled.borrow_mut() = Some(Rc::clone(cf));
                stack.push(Value::Func(Rc::new(func)));
            }
            Instr::Import(n) => {
                let name = f.names[*n as usize].to_string();
                stack.push(interp.import_module(&name)?);
            }
            Instr::Global(list) => {
                for s in list.iter() {
                    if !global_decls.contains(s) {
                        global_decls.push(*s);
                    }
                }
            }
            Instr::MakeIter => {
                let v = stack.pop().expect("iterable");
                let items: Vec<Value> = match v {
                    Value::List(items) => items.borrow().clone(),
                    Value::Dict(d) => d.borrow().keys().map(|k| Value::str(k.clone())).collect(),
                    Value::Str(s) => s.chars().map(|c| Value::str(c.to_string())).collect(),
                    other => {
                        return Err(VineError::Lang(format!(
                            "{} is not iterable",
                            other.type_name()
                        )))
                    }
                };
                iters.push((items, 0));
            }
            Instr::IterNext(t) => {
                interp.tick()?;
                let (items, pos) = iters.last_mut().expect("active iterator");
                if *pos < items.len() {
                    let v = std::mem::replace(&mut items[*pos], Value::None);
                    *pos += 1;
                    stack.push(v);
                } else {
                    iters.pop();
                    ip = *t as usize;
                    continue;
                }
            }
            Instr::ForIter { target, slot } => {
                interp.tick()?;
                let (items, pos) = iters.last_mut().expect("active iterator");
                if *pos < items.len() {
                    let v = std::mem::replace(&mut items[*pos], Value::None);
                    *pos += 1;
                    store_slot(interp, f, slots, &global_decls, *slot, v);
                } else {
                    iters.pop();
                    ip = *target as usize;
                    continue;
                }
            }
            Instr::PopIter => {
                iters.pop();
            }
            Instr::Raise(k) => {
                return Err(VineError::Lang(k.message().to_string()));
            }
        }
        ip += 1;
    }
}
