//! "vinepickle": binary serialization of values and function code objects.
//!
//! The cloudpickle analogue (paper §3.2): when a function has no
//! recoverable source form — lambdas, `exec`-generated functions, functions
//! received through layers of software — the discover mechanism serializes
//! its *code object* (the AST) to bytes, ships the bytes, and the worker
//! reconstructs the function there. Arguments and results travel the same
//! way (§3.4: the library "serializes the result into a result file in the
//! invocation's sandbox").
//!
//! The format is a tagged byte stream with a 4-byte magic header `VPK1`.
//! All integers are little-endian.

use crate::ast::{BinOp, Expr, FuncDef, Stmt, StmtKind, Target, UnOp};
use crate::value::{Function, Tensor, Value};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use vine_core::{Result, VineError};

const MAGIC: &[u8; 4] = b"VPK1";

// ---------- writer ----------

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Writer {
        Writer {
            buf: MAGIC.to_vec(),
        }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn bytes(&mut self, b: &[u8]) {
        self.u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }
}

// ---------- reader ----------

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

fn derr(msg: impl std::fmt::Display) -> VineError {
    VineError::Serialization(format!("vinepickle: {msg}"))
}

impl<'a> Reader<'a> {
    fn new(data: &'a [u8]) -> Result<Reader<'a>> {
        if data.len() < 4 || &data[..4] != MAGIC {
            return Err(derr("bad magic header"));
        }
        Ok(Reader { data, pos: 4 })
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.data.len() {
            return Err(derr("truncated input"));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| derr("invalid utf-8 in string"))
    }

    fn bytes(&mut self) -> Result<Vec<u8>> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    fn finished(&self) -> bool {
        self.pos == self.data.len()
    }
}

// ---------- value encoding ----------

mod tag {
    pub const NONE: u8 = 0;
    pub const BOOL: u8 = 1;
    pub const INT: u8 = 2;
    pub const FLOAT: u8 = 3;
    pub const STR: u8 = 4;
    pub const BYTES: u8 = 5;
    pub const LIST: u8 = 6;
    pub const DICT: u8 = 7;
    pub const TENSOR: u8 = 8;
    pub const FUNC: u8 = 9;
}

fn write_value(w: &mut Writer, v: &Value) -> Result<()> {
    match v {
        Value::None => w.u8(tag::NONE),
        Value::Bool(b) => {
            w.u8(tag::BOOL);
            w.u8(*b as u8);
        }
        Value::Int(x) => {
            w.u8(tag::INT);
            w.i64(*x);
        }
        Value::Float(x) => {
            w.u8(tag::FLOAT);
            w.f64(*x);
        }
        Value::Str(s) => {
            w.u8(tag::STR);
            w.str(s);
        }
        Value::Bytes(b) => {
            w.u8(tag::BYTES);
            w.bytes(b);
        }
        Value::List(items) => {
            w.u8(tag::LIST);
            let items = items.borrow();
            w.u32(items.len() as u32);
            for item in items.iter() {
                write_value(w, item)?;
            }
        }
        Value::Dict(d) => {
            w.u8(tag::DICT);
            let d = d.borrow();
            w.u32(d.len() as u32);
            for (k, val) in d.iter() {
                w.str(k);
                write_value(w, val)?;
            }
        }
        Value::Tensor(t) => {
            w.u8(tag::TENSOR);
            w.u32(t.shape.len() as u32);
            for d in &t.shape {
                w.u32(*d as u32);
            }
            for x in t.data.iter() {
                w.f64(*x);
            }
        }
        Value::Func(f) => {
            w.u8(tag::FUNC);
            write_funcdef(w, &f.def);
        }
        Value::Native(n) => {
            return Err(VineError::Serialization(format!(
                "cannot serialize native function '{}' (ship the module instead)",
                n.name
            )))
        }
        Value::Module(m) => {
            return Err(VineError::Serialization(format!(
                "cannot serialize module '{}' (declare it as a dependency instead)",
                m.name
            )))
        }
    }
    Ok(())
}

fn read_value(r: &mut Reader, globals: &Rc<RefCell<BTreeMap<String, Value>>>) -> Result<Value> {
    let t = r.u8()?;
    Ok(match t {
        tag::NONE => Value::None,
        tag::BOOL => Value::Bool(r.u8()? != 0),
        tag::INT => Value::Int(r.i64()?),
        tag::FLOAT => Value::Float(r.f64()?),
        tag::STR => Value::str(r.str()?),
        tag::BYTES => Value::Bytes(Rc::new(r.bytes()?)),
        tag::LIST => {
            let n = r.u32()? as usize;
            let mut items = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                items.push(read_value(r, globals)?);
            }
            Value::list(items)
        }
        tag::DICT => {
            let n = r.u32()? as usize;
            let mut d = BTreeMap::new();
            for _ in 0..n {
                let k = r.str()?;
                let v = read_value(r, globals)?;
                d.insert(k, v);
            }
            Value::Dict(Rc::new(RefCell::new(d)))
        }
        tag::TENSOR => {
            let ndim = r.u32()? as usize;
            if ndim > 64 {
                return Err(derr("tensor rank too large"));
            }
            let mut shape = Vec::with_capacity(ndim);
            for _ in 0..ndim {
                shape.push(r.u32()? as usize);
            }
            let n: usize = shape.iter().product();
            // guard against bogus lengths before allocating
            if r.data.len() - r.pos < n * 8 {
                return Err(derr("truncated tensor data"));
            }
            let mut data = Vec::with_capacity(n);
            for _ in 0..n {
                data.push(r.f64()?);
            }
            Value::Tensor(Rc::new(Tensor {
                shape,
                data: Rc::new(data),
            }))
        }
        tag::FUNC => {
            let def = read_funcdef(r)?;
            Value::Func(Rc::new(Function::new(Rc::new(def), Rc::clone(globals))))
        }
        other => return Err(derr(format!("unknown value tag {other}"))),
    })
}

// ---------- AST encoding ----------

mod etag {
    pub const NONE: u8 = 0;
    pub const BOOL: u8 = 1;
    pub const INT: u8 = 2;
    pub const FLOAT: u8 = 3;
    pub const STR: u8 = 4;
    pub const LIST: u8 = 5;
    pub const DICT: u8 = 6;
    pub const VAR: u8 = 7;
    pub const ATTR: u8 = 8;
    pub const INDEX: u8 = 9;
    pub const CALL: u8 = 10;
    pub const UNARY: u8 = 11;
    pub const BINARY: u8 = 12;
    pub const LAMBDA: u8 = 13;
}

mod stag {
    pub const IMPORT: u8 = 0;
    pub const FUNCDEF: u8 = 1;
    pub const ASSIGN_VAR: u8 = 2;
    pub const ASSIGN_INDEX: u8 = 3;
    pub const GLOBAL: u8 = 4;
    pub const IF: u8 = 5;
    pub const WHILE: u8 = 6;
    pub const FOR: u8 = 7;
    pub const RETURN: u8 = 8;
    pub const RETURN_NONE: u8 = 9;
    pub const BREAK: u8 = 10;
    pub const CONTINUE: u8 = 11;
    pub const EXPR: u8 = 12;
}

fn binop_code(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Div => 3,
        BinOp::Mod => 4,
        BinOp::Eq => 5,
        BinOp::Ne => 6,
        BinOp::Lt => 7,
        BinOp::Le => 8,
        BinOp::Gt => 9,
        BinOp::Ge => 10,
        BinOp::And => 11,
        BinOp::Or => 12,
    }
}

fn binop_from(code: u8) -> Result<BinOp> {
    Ok(match code {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::Div,
        4 => BinOp::Mod,
        5 => BinOp::Eq,
        6 => BinOp::Ne,
        7 => BinOp::Lt,
        8 => BinOp::Le,
        9 => BinOp::Gt,
        10 => BinOp::Ge,
        11 => BinOp::And,
        12 => BinOp::Or,
        other => return Err(derr(format!("unknown binop {other}"))),
    })
}

fn write_expr(w: &mut Writer, e: &Expr) {
    match e {
        Expr::None => w.u8(etag::NONE),
        Expr::Bool(b) => {
            w.u8(etag::BOOL);
            w.u8(*b as u8);
        }
        Expr::Int(v) => {
            w.u8(etag::INT);
            w.i64(*v);
        }
        Expr::Float(v) => {
            w.u8(etag::FLOAT);
            w.f64(*v);
        }
        Expr::Str(s) => {
            w.u8(etag::STR);
            w.str(s);
        }
        Expr::List(items) => {
            w.u8(etag::LIST);
            w.u32(items.len() as u32);
            for i in items {
                write_expr(w, i);
            }
        }
        Expr::Dict(pairs) => {
            w.u8(etag::DICT);
            w.u32(pairs.len() as u32);
            for (k, v) in pairs {
                write_expr(w, k);
                write_expr(w, v);
            }
        }
        Expr::Var(name) => {
            w.u8(etag::VAR);
            w.str(name);
        }
        Expr::Attr(obj, attr) => {
            w.u8(etag::ATTR);
            write_expr(w, obj);
            w.str(attr);
        }
        Expr::Index(obj, idx) => {
            w.u8(etag::INDEX);
            write_expr(w, obj);
            write_expr(w, idx);
        }
        Expr::Call(f, args) => {
            w.u8(etag::CALL);
            write_expr(w, f);
            w.u32(args.len() as u32);
            for a in args {
                write_expr(w, a);
            }
        }
        Expr::Unary(op, inner) => {
            w.u8(etag::UNARY);
            w.u8(matches!(op, UnOp::Not) as u8);
            write_expr(w, inner);
        }
        Expr::Binary(op, l, r) => {
            w.u8(etag::BINARY);
            w.u8(binop_code(*op));
            write_expr(w, l);
            write_expr(w, r);
        }
        Expr::Lambda(def) => {
            w.u8(etag::LAMBDA);
            write_funcdef(w, def);
        }
    }
}

fn read_expr(r: &mut Reader) -> Result<Expr> {
    let t = r.u8()?;
    Ok(match t {
        etag::NONE => Expr::None,
        etag::BOOL => Expr::Bool(r.u8()? != 0),
        etag::INT => Expr::Int(r.i64()?),
        etag::FLOAT => Expr::Float(r.f64()?),
        etag::STR => Expr::Str(r.str()?),
        etag::LIST => {
            let n = r.u32()? as usize;
            let mut items = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                items.push(read_expr(r)?);
            }
            Expr::List(items)
        }
        etag::DICT => {
            let n = r.u32()? as usize;
            let mut pairs = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                let k = read_expr(r)?;
                let v = read_expr(r)?;
                pairs.push((k, v));
            }
            Expr::Dict(pairs)
        }
        etag::VAR => Expr::Var(r.str()?),
        etag::ATTR => {
            let obj = read_expr(r)?;
            let attr = r.str()?;
            Expr::Attr(Box::new(obj), attr)
        }
        etag::INDEX => {
            let obj = read_expr(r)?;
            let idx = read_expr(r)?;
            Expr::Index(Box::new(obj), Box::new(idx))
        }
        etag::CALL => {
            let f = read_expr(r)?;
            let n = r.u32()? as usize;
            let mut args = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                args.push(read_expr(r)?);
            }
            Expr::Call(Box::new(f), args)
        }
        etag::UNARY => {
            let op = if r.u8()? != 0 { UnOp::Not } else { UnOp::Neg };
            Expr::Unary(op, Box::new(read_expr(r)?))
        }
        etag::BINARY => {
            let op = binop_from(r.u8()?)?;
            let l = read_expr(r)?;
            let rhs = read_expr(r)?;
            Expr::Binary(op, Box::new(l), Box::new(rhs))
        }
        etag::LAMBDA => Expr::Lambda(Rc::new(read_funcdef(r)?)),
        other => return Err(derr(format!("unknown expr tag {other}"))),
    })
}

fn write_stmts(w: &mut Writer, stmts: &[Stmt]) {
    w.u32(stmts.len() as u32);
    for s in stmts {
        write_stmt(w, s);
    }
}

fn read_stmts(r: &mut Reader) -> Result<Vec<Stmt>> {
    let n = r.u32()? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        out.push(read_stmt(r)?);
    }
    Ok(out)
}

// NOTE: spans are deliberately NOT serialized. The wire format (and thus
// content digests of serialized code objects) is identical to the
// pre-span encoding; deserialized statements come back with Span::DUMMY.
fn write_stmt(w: &mut Writer, s: &Stmt) {
    match &s.kind {
        StmtKind::Import(name) => {
            w.u8(stag::IMPORT);
            w.str(name);
        }
        StmtKind::FuncDef(def) => {
            w.u8(stag::FUNCDEF);
            write_funcdef(w, def);
        }
        StmtKind::Assign(Target::Var(name), e) => {
            w.u8(stag::ASSIGN_VAR);
            w.str(name);
            write_expr(w, e);
        }
        StmtKind::Assign(Target::Index(obj, idx), e) => {
            w.u8(stag::ASSIGN_INDEX);
            write_expr(w, obj);
            write_expr(w, idx);
            write_expr(w, e);
        }
        StmtKind::Global(names) => {
            w.u8(stag::GLOBAL);
            w.u32(names.len() as u32);
            for n in names {
                w.str(n);
            }
        }
        StmtKind::If(arms, els) => {
            w.u8(stag::IF);
            w.u32(arms.len() as u32);
            for (cond, body) in arms {
                write_expr(w, cond);
                write_stmts(w, body);
            }
            match els {
                Some(body) => {
                    w.u8(1);
                    write_stmts(w, body);
                }
                None => w.u8(0),
            }
        }
        StmtKind::While(cond, body) => {
            w.u8(stag::WHILE);
            write_expr(w, cond);
            write_stmts(w, body);
        }
        StmtKind::For(var, iter, body) => {
            w.u8(stag::FOR);
            w.str(var);
            write_expr(w, iter);
            write_stmts(w, body);
        }
        StmtKind::Return(Some(e)) => {
            w.u8(stag::RETURN);
            write_expr(w, e);
        }
        StmtKind::Return(None) => w.u8(stag::RETURN_NONE),
        StmtKind::Break => w.u8(stag::BREAK),
        StmtKind::Continue => w.u8(stag::CONTINUE),
        StmtKind::Expr(e) => {
            w.u8(stag::EXPR);
            write_expr(w, e);
        }
    }
}

fn read_stmt(r: &mut Reader) -> Result<Stmt> {
    let t = r.u8()?;
    let kind = match t {
        stag::IMPORT => StmtKind::Import(r.str()?),
        stag::FUNCDEF => StmtKind::FuncDef(Rc::new(read_funcdef(r)?)),
        stag::ASSIGN_VAR => {
            let name = r.str()?;
            let e = read_expr(r)?;
            StmtKind::Assign(Target::Var(name), e)
        }
        stag::ASSIGN_INDEX => {
            let obj = read_expr(r)?;
            let idx = read_expr(r)?;
            let e = read_expr(r)?;
            StmtKind::Assign(Target::Index(obj, idx), e)
        }
        stag::GLOBAL => {
            let n = r.u32()? as usize;
            let mut names = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                names.push(r.str()?);
            }
            StmtKind::Global(names)
        }
        stag::IF => {
            let n = r.u32()? as usize;
            let mut arms = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                let cond = read_expr(r)?;
                let body = read_stmts(r)?;
                arms.push((cond, body));
            }
            let els = if r.u8()? != 0 {
                Some(read_stmts(r)?)
            } else {
                None
            };
            StmtKind::If(arms, els)
        }
        stag::WHILE => {
            let cond = read_expr(r)?;
            let body = read_stmts(r)?;
            StmtKind::While(cond, body)
        }
        stag::FOR => {
            let var = r.str()?;
            let iter = read_expr(r)?;
            let body = read_stmts(r)?;
            StmtKind::For(var, iter, body)
        }
        stag::RETURN => StmtKind::Return(Some(read_expr(r)?)),
        stag::RETURN_NONE => StmtKind::Return(None),
        stag::BREAK => StmtKind::Break,
        stag::CONTINUE => StmtKind::Continue,
        stag::EXPR => StmtKind::Expr(read_expr(r)?),
        other => return Err(derr(format!("unknown stmt tag {other}"))),
    };
    Ok(Stmt::dummy(kind))
}

fn write_funcdef(w: &mut Writer, def: &FuncDef) {
    w.str(&def.name);
    w.u32(def.params.len() as u32);
    for p in &def.params {
        w.str(p);
    }
    write_stmts(w, &def.body);
}

fn read_funcdef(r: &mut Reader) -> Result<FuncDef> {
    let name = r.str()?;
    let n = r.u32()? as usize;
    let mut params = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        params.push(r.str()?);
    }
    let body = read_stmts(r)?;
    Ok(FuncDef::new(name, params, body))
}

// ---------- public API ----------

/// Serialize a value (arguments, results, or whole function objects).
pub fn serialize_value(v: &Value) -> Result<Vec<u8>> {
    let mut w = Writer::new();
    write_value(&mut w, v)?;
    Ok(w.buf)
}

/// Deserialize a value, binding any contained functions to `globals` (the
/// namespace of the interpreter reconstructing them).
pub fn deserialize_value(
    data: &[u8],
    globals: &Rc<RefCell<BTreeMap<String, Value>>>,
) -> Result<Value> {
    let mut r = Reader::new(data)?;
    let v = read_value(&mut r, globals)?;
    if !r.finished() {
        return Err(derr("trailing bytes after value"));
    }
    Ok(v)
}

/// Serialize a bare function code object.
pub fn serialize_funcdef(def: &FuncDef) -> Vec<u8> {
    let mut w = Writer::new();
    write_funcdef(&mut w, def);
    w.buf
}

/// Deserialize a bare function code object.
pub fn deserialize_funcdef(data: &[u8]) -> Result<Rc<FuncDef>> {
    let mut r = Reader::new(data)?;
    let def = read_funcdef(&mut r)?;
    if !r.finished() {
        return Err(derr("trailing bytes after function"));
    }
    Ok(Rc::new(def))
}

/// Serialize an argument vector as one blob (what a `FunctionCall` ships).
pub fn serialize_args(args: &[Value]) -> Result<Vec<u8>> {
    serialize_value(&Value::list(args.to_vec()))
}

/// Deserialize an argument blob back into a vector.
pub fn deserialize_args(
    data: &[u8],
    globals: &Rc<RefCell<BTreeMap<String, Value>>>,
) -> Result<Vec<Value>> {
    match deserialize_value(data, globals)? {
        Value::List(items) => Ok(items.borrow().clone()),
        other => Err(derr(format!(
            "argument blob is {}, expected list",
            other.type_name()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interp;

    fn fresh_globals() -> Rc<RefCell<BTreeMap<String, Value>>> {
        Rc::new(RefCell::new(BTreeMap::new()))
    }

    fn roundtrip(v: &Value) -> Value {
        let blob = serialize_value(v).unwrap();
        deserialize_value(&blob, &fresh_globals()).unwrap()
    }

    #[test]
    fn roundtrip_primitives() {
        for v in [
            Value::None,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(-42),
            Value::Int(i64::MAX),
            Value::Float(3.15),
            Value::Float(f64::NEG_INFINITY),
            Value::str("hello \u{1F600} world"),
            Value::Bytes(Rc::new(vec![0, 255, 128])),
        ] {
            assert_eq!(roundtrip(&v), v);
        }
    }

    #[test]
    fn roundtrip_nested_containers() {
        let v = Value::list(vec![
            Value::Int(1),
            Value::dict([
                ("a".to_string(), Value::list(vec![Value::Float(2.5)])),
                ("b".to_string(), Value::None),
            ]),
        ]);
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn roundtrip_tensor() {
        let t = Tensor::new(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let v = Value::tensor(t);
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn roundtrip_function_and_execute() {
        // define, serialize, reconstruct in a *different* interpreter, call
        let mut a = Interp::new();
        a.exec_source("def f(x) { return x * x + 1 }").unwrap();
        let f = a.get_global("f").unwrap();
        let blob = serialize_value(&f).unwrap();

        let mut b = Interp::new();
        let g = deserialize_value(&blob, &b.globals).unwrap();
        assert_eq!(b.call_value(&g, &[Value::Int(6)]).unwrap(), Value::Int(37));
    }

    #[test]
    fn reconstructed_function_uses_new_globals() {
        // a shipped function must read the *worker's* globals (where context
        // setup ran), not its origin's
        let mut origin = Interp::new();
        origin
            .exec_source("model = 1\ndef infer(x) { return model + x }")
            .unwrap();
        let blob = serialize_value(&origin.get_global("infer").unwrap()).unwrap();

        let mut worker = Interp::new();
        worker.set_global("model", Value::Int(1000));
        let f = deserialize_value(&blob, &worker.globals).unwrap();
        assert_eq!(
            worker.call_value(&f, &[Value::Int(1)]).unwrap(),
            Value::Int(1001)
        );
    }

    #[test]
    fn roundtrip_lambda() {
        let mut a = Interp::new();
        a.exec_source("g = fn (x, y) { return x - y }").unwrap();
        let blob = serialize_value(&a.get_global("g").unwrap()).unwrap();
        let mut b = Interp::new();
        let g = deserialize_value(&blob, &b.globals).unwrap();
        assert_eq!(
            b.call_value(&g, &[Value::Int(10), Value::Int(4)]).unwrap(),
            Value::Int(6)
        );
    }

    #[test]
    fn roundtrip_function_with_all_statement_forms() {
        let src = r#"
            def kitchen_sink(n) {
                import mathx
                global acc
                acc = 0
                xs = [1, 2, 3]
                xs[0] = {"k": none}
                if n > 0 { acc += n } elif n < 0 { acc -= n } else { acc = 0 }
                for i in range(n) {
                    if i == 2 { continue }
                    if i > 5 { break }
                    acc += i
                }
                while false { }
                h = fn (z) { return z }
                return not (acc == 0) and acc >= -1 or acc <= 100
            }
        "#;
        let prog = crate::parse(src).unwrap();
        let def = match &prog[0].kind {
            StmtKind::FuncDef(d) => Rc::clone(d),
            other => panic!("unexpected {other:?}"),
        };
        let blob = serialize_funcdef(&def);
        let back = deserialize_funcdef(&blob).unwrap();
        assert_eq!(*back, *def);
    }

    #[test]
    fn modules_and_natives_refuse_serialization() {
        let mut reg = crate::modules::ModuleRegistry::new();
        reg.register_native("m", || {
            vec![crate::modules::native("f", |_| Ok(Value::None))]
        });
        let mut interp = Interp::with_registry(reg);
        interp.exec_source("import m\ng = m.f").unwrap();
        let module = interp.get_global("m").unwrap();
        let native = interp.get_global("g").unwrap();
        assert!(serialize_value(&module).is_err());
        assert!(serialize_value(&native).is_err());
    }

    #[test]
    fn args_blob_roundtrip() {
        let args = vec![Value::Int(1), Value::str("x"), Value::list(vec![])];
        let blob = serialize_args(&args).unwrap();
        let back = deserialize_args(&blob, &fresh_globals()).unwrap();
        assert_eq!(back, args);
    }

    #[test]
    fn corrupt_input_is_rejected_not_panicking() {
        // bad magic
        assert!(deserialize_value(b"XXXX", &fresh_globals()).is_err());
        // empty
        assert!(deserialize_value(b"", &fresh_globals()).is_err());
        // truncations of a valid blob must all fail gracefully
        let blob = serialize_value(&Value::list(vec![
            Value::Int(5),
            Value::str("hello"),
            Value::tensor(Tensor::zeros(vec![4])),
        ]))
        .unwrap();
        for cut in 0..blob.len() {
            let _ = deserialize_value(&blob[..cut], &fresh_globals());
        }
        // flipping the value tag byte to garbage must error
        let mut bad = blob.clone();
        bad[4] = 200;
        assert!(deserialize_value(&bad, &fresh_globals()).is_err());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut blob = serialize_value(&Value::Int(1)).unwrap();
        blob.push(0);
        assert!(deserialize_value(&blob, &fresh_globals()).is_err());
    }

    #[test]
    fn bogus_tensor_length_does_not_overallocate() {
        // craft: magic + TENSOR tag + ndim=1 + dim=u32::MAX, no data
        let mut blob = MAGIC.to_vec();
        blob.push(tag::TENSOR);
        blob.extend_from_slice(&1u32.to_le_bytes());
        blob.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(deserialize_value(&blob, &fresh_globals()).is_err());
    }
}
