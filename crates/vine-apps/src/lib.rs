//! # vine-apps
//!
//! The two applications of the paper's evaluation (§4.1):
//!
//! * [`lnni`] — **Large-Scale Neural Network Inference**: 10k–100k
//!   invocations, each running 16–1,600 inferences on a pretrained
//!   ResNet50-class model. The function context is a 572 MB packed / 3.1 GB
//!   unpacked environment plus ~230 MB of model parameters that must be
//!   loaded and built into a model object before inferring.
//! * [`examol`] — **ExaMol**: active-learning molecular design combining
//!   PM7 semi-empirical simulations with ML training and inference,
//!   ~10k tasks steered by a Colmena-style feedback loop.
//!
//! Each application exists in two forms that share the same function
//! sources:
//!
//! * a **live** form — real vine-lang functions plus native modules
//!   ([`modules`]) executed by the threaded runtime at laptop scale;
//! * a **simulated** form — a [`vine_sim::Workload`] with
//!   [`vine_core::task::WorkProfile`]s calibrated to Tables 2/4/5, run at
//!   full paper scale by the discrete-event simulator.

pub mod examol;
pub mod lnni;
pub mod modules;

pub use examol::{ExaMolConfig, ExaMolWorkload};
pub use lnni::{LnniConfig, LnniWorkload};
