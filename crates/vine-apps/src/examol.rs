//! ExaMol — active-learning molecular design (paper §4.1.2).
//!
//! "ExaMol implements workflows to explore materials design through a
//! combination of quantum chemistry and machine learning tasks ... a
//! single-objective optimization of ionization potential through an active
//! learning approach ... PM7 calculations with OpenMOPAC to gather new
//! data concurrently with training or inference tasks implemented with
//! Scikit-Learn and RDKit ... The total number of tasks is around 10k."
//!
//! ## Calibration (Fig 6b)
//!
//! ExaMol is *worker-bound*, not manager-bound: 10k tasks at 150 workers ×
//! 8 slots (4-core tasks, §4.2) finish in 4,600 s (L1) / 3,364 s (L2),
//! implying a mean occupied-slot time of ≈ 552 s (L1) / 404 s (L2). The
//! L1→L2 difference is per-task context reload over the shared filesystem.
//! With simulations ≈ 430 s, training ≈ 300 s and inference ≈ 60 s of pure
//! execution on the reference machine, the mix below lands in those bands.
//! The 26.9% improvement then *emerges* from removing shared-FS traffic.
//!
//! The environment (Scikit-Learn + RDKit + OpenMOPAC + Colmena) has no
//! published size; DESIGN.md records the assumption: 121 packages, 460 MB
//! packed, 2.6 GB unpacked.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use vine_core::config::ReuseLevel;
use vine_core::context::{ContextSpec, FileRef, LibrarySpec, SetupSpec};
use vine_core::ids::{FileId, InvocationId, TaskId};
use vine_core::resources::Resources;
use vine_core::task::{FunctionCall, TaskSpec, UnitId, WorkProfile, WorkUnit};
use vine_env::catalog;
use vine_sim::Workload;

/// The three ExaMol task types and their execution cost on the reference
/// machine (4 cores × 5.4 GFLOPS = 21.6 GFLOPS).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskType {
    /// PM7 quantum-chemistry calculation (~430 s cluster-mean).
    Simulate,
    /// Model retraining on accumulated results (~300 s cluster-mean).
    Train,
    /// Batch inference steering the next simulations (~60 s cluster-mean).
    Infer,
}

impl TaskType {
    /// Execution cost in GFLOP. Reference-machine seconds × 21.6 GFLOPS
    /// (4 cores × 5.4); the *cluster-mean* slot time is ≈ 1.76× the
    /// reference (machine mix E[5.4/rating] = 1.30 × full-occupancy
    /// interference 1.35), so 245 s-ref simulations average ≈ 430 s of
    /// occupied slot across the cluster — the Fig 6b calibration point.
    pub fn exec_gflop(self) -> f64 {
        match self {
            TaskType::Simulate => 245.0 * 21.6,
            TaskType::Train => 170.0 * 21.6,
            TaskType::Infer => 34.0 * 21.6,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            TaskType::Simulate => "simulate",
            TaskType::Train => "train",
            TaskType::Infer => "infer",
        }
    }
}

/// Per-task context costs: deserializing task objects, loading the search
/// dataset, warming the chem stack (paid per task at L1/L2, once per
/// library at the L3 extension level).
pub const EXAMOL_CONTEXT_GFLOP: f64 = 170.0; // ≈ 7.9 s on 4 ref cores
pub const EXAMOL_DATASET_BYTES: u64 = 120_000_000;
/// L1 shared-FS traffic: the chem stack's import storm is heavier than
/// LNNI's (RDKit/Scikit-Learn pull thousands of files).
pub const EXAMOL_L1_OPS: f64 = 4_000.0;
pub const EXAMOL_L1_READ_BYTES: u64 = 350_000_000;
/// PM7 writes scratch files continuously; at L1 that I/O lands on the
/// shared filesystem and slows the whole computation (the paper's L2
/// "removes the shared file system as a possible I/O bottleneck").
pub const EXAMOL_L1_EXEC_SLOWDOWN: f64 = 1.35;

/// The ExaMol task functions as vine-lang source (live runtime form).
pub const EXAMOL_SOURCE: &str = r#"
import chem

def context_setup(seed_molecules) {
    global known_xs, known_ys
    known_xs = []
    known_ys = []
    for m in range(seed_molecules) {
        push(known_xs, float(m))
        push(known_ys, chem.simulate(m, 200))
    }
}

def simulate(molecule, steps) {
    return chem.simulate(molecule, steps)
}

def train() {
    return chem.train(known_xs, known_ys)
}

def infer(model, candidates) {
    best = 0
    best_score = -1000000.0
    for m in candidates {
        score = chem.predict(model, float(m))
        if score > best_score {
            best_score = score
            best = m
        }
    }
    return best
}
"#;

/// ExaMol experiment parameters.
#[derive(Clone, Debug)]
pub struct ExaMolConfig {
    pub total_tasks: u64,
    pub level: ReuseLevel,
    pub seed: u64,
    /// Tasks submitted before any result returns (the steering system
    /// keeps roughly this many in flight).
    pub initial_batch: u64,
}

impl ExaMolConfig {
    /// Fig 6b: ~10k tasks.
    pub fn paper(level: ReuseLevel) -> ExaMolConfig {
        ExaMolConfig {
            total_tasks: 10_000,
            level,
            seed: 0x6578616d,
            initial_batch: 1_500,
        }
    }
}

/// Colmena-style steering: an initial burst of simulations, then one new
/// task per completion (type drawn from the calibrated mix) until the
/// budget is spent — a feedback loop, not a static DAG (§2.1.1).
pub struct ExaMolWorkload {
    pub cfg: ExaMolConfig,
    env: FileRef,
    dataset: FileRef,
    submitted: u64,
    rng: ChaCha8Rng,
}

impl ExaMolWorkload {
    pub fn new(cfg: ExaMolConfig) -> ExaMolWorkload {
        let reg = catalog::standard_registry();
        let res =
            vine_env::resolve(&reg, &catalog::examol_requirements()).expect("catalog resolves");
        let archive = vine_env::pack("examol-env", &res);
        let env = FileRef::new(
            FileId(10),
            "examol-env.tar.zst",
            archive.hash,
            archive.packed_bytes,
        )
        .packed(archive.unpacked_bytes);
        let dataset = FileRef::new(
            FileId(11),
            "molecule-search-space.bin",
            vine_core::ids::ContentHash::of_str("examol-dataset-v1"),
            EXAMOL_DATASET_BYTES,
        );
        let rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        ExaMolWorkload {
            cfg,
            env,
            dataset,
            submitted: 0,
            rng,
        }
    }

    fn draw_type(&mut self) -> TaskType {
        // the steering mix: mostly simulations, periodic retraining,
        // steering inference in between
        let x: f64 = self.rng.gen();
        if x < 0.82 {
            TaskType::Simulate
        } else if x < 0.90 {
            TaskType::Train
        } else {
            TaskType::Infer
        }
    }

    fn profile(&self, ty: TaskType) -> WorkProfile {
        let (context_gflop, context_read) = if self.cfg.level == ReuseLevel::L3 {
            (0.0, 0)
        } else {
            (EXAMOL_CONTEXT_GFLOP, EXAMOL_DATASET_BYTES)
        };
        WorkProfile {
            exec_gflop: ty.exec_gflop(),
            context_gflop,
            context_read_bytes: context_read,
            output_bytes: 50_000,
            sharedfs_ops: EXAMOL_L1_OPS,
            sharedfs_read_bytes: EXAMOL_L1_READ_BYTES,
            l1_exec_slowdown: EXAMOL_L1_EXEC_SLOWDOWN,
        }
    }

    fn next_unit(&mut self, ty: TaskType) -> WorkUnit {
        let i = self.submitted;
        self.submitted += 1;
        match self.cfg.level {
            // L3 is our extension beyond the paper ("L3 is not supported
            // yet for ExaMol", §4.2) — see the ablation bench
            ReuseLevel::L3 => {
                let mut call =
                    FunctionCall::new(InvocationId(i), "examol", ty.name(), vec![0u8; 48]);
                call.resources = Resources::examol_invocation();
                call.profile = self.profile(ty);
                WorkUnit::Call(call)
            }
            level => {
                let mut task = TaskSpec::new(TaskId(i), format!("examol-{}", ty.name()));
                task.function = Some(ty.name().into());
                task.resources = Resources::examol_invocation();
                task.profile = self.profile(ty);
                task.inputs = match level {
                    ReuseLevel::L1 => vec![
                        self.env.clone().from_shared_fs().uncached(),
                        self.dataset.clone().from_shared_fs().uncached(),
                    ],
                    _ => vec![self.env.clone(), self.dataset.clone()],
                };
                WorkUnit::Task(task)
            }
        }
    }
}

impl Workload for ExaMolWorkload {
    fn libraries(&self) -> Vec<(LibrarySpec, WorkProfile)> {
        if self.cfg.level != ReuseLevel::L3 {
            return Vec::new();
        }
        let mut spec = LibrarySpec::new("examol");
        spec.functions = vec!["simulate".into(), "train".into(), "infer".into()];
        spec.resources = Some(Resources::examol_invocation());
        spec.slots = Some(1);
        spec.context = ContextSpec {
            environment: Some(self.env.clone()),
            data: vec![self.dataset.clone()],
            setup: Some(SetupSpec {
                function: "context_setup".into(),
                args_blob: vec![0u8; 8],
            }),
            ..Default::default()
        };
        let setup = WorkProfile {
            exec_gflop: 0.0,
            context_gflop: EXAMOL_CONTEXT_GFLOP,
            context_read_bytes: EXAMOL_DATASET_BYTES,
            ..WorkProfile::zero()
        };
        vec![(spec, setup)]
    }

    fn initial_units(&mut self) -> Vec<WorkUnit> {
        let n = self.cfg.initial_batch.min(self.cfg.total_tasks);
        (0..n).map(|_| self.next_unit(TaskType::Simulate)).collect()
    }

    fn on_complete(&mut self, _unit: UnitId, _success: bool) -> Vec<WorkUnit> {
        if self.submitted < self.cfg.total_tasks {
            let ty = self.draw_type();
            vec![self.next_unit(ty)]
        } else {
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_calibrated() {
        let mut w = ExaMolWorkload::new(ExaMolConfig {
            total_tasks: 10_000,
            level: ReuseLevel::L2,
            seed: 7,
            initial_batch: 0,
        });
        let mut sim = 0;
        let mut train = 0;
        let mut infer = 0;
        for _ in 0..10_000 {
            match w.draw_type() {
                TaskType::Simulate => sim += 1,
                TaskType::Train => train += 1,
                TaskType::Infer => infer += 1,
            }
        }
        assert!((7_900..8_500).contains(&sim), "sim {sim}");
        assert!((600..1_000).contains(&train), "train {train}");
        assert!((800..1_200).contains(&infer), "infer {infer}");
        // cluster-mean occupied-slot time lands in the Fig 6b band
        // (~400 s at L2): reference seconds × 1.76 cluster factor
        let mean_exec: f64 =
            (sim as f64 * 245.0 + train as f64 * 170.0 + infer as f64 * 34.0) / 10_000.0 * 1.76;
        assert!((370.0..420.0).contains(&mean_exec), "mean exec {mean_exec}");
    }

    #[test]
    fn feedback_loop_respects_budget() {
        let mut w = ExaMolWorkload::new(ExaMolConfig {
            total_tasks: 20,
            level: ReuseLevel::L2,
            seed: 7,
            initial_batch: 8,
        });
        let initial = w.initial_units();
        assert_eq!(initial.len(), 8);
        let mut total = initial.len();
        // every completion triggers at most one new submission, stopping
        // at the budget
        for i in 0..40 {
            let more = w.on_complete(UnitId::Task(TaskId(i)), true);
            total += more.len();
        }
        assert_eq!(total, 20);
    }

    #[test]
    fn initial_batch_is_simulations() {
        let mut w = ExaMolWorkload::new(ExaMolConfig {
            total_tasks: 10,
            level: ReuseLevel::L1,
            seed: 7,
            initial_batch: 5,
        });
        for u in w.initial_units() {
            let WorkUnit::Task(t) = u else { panic!() };
            assert_eq!(t.function.as_deref(), Some("simulate"));
            assert!(t
                .inputs
                .iter()
                .all(|f| f.source == vine_core::context::FileSource::SharedFs));
        }
    }

    #[test]
    fn l3_extension_produces_calls() {
        let mut w = ExaMolWorkload::new(ExaMolConfig {
            total_tasks: 3,
            level: ReuseLevel::L3,
            seed: 7,
            initial_batch: 3,
        });
        assert_eq!(w.libraries().len(), 1);
        let libs = w.libraries();
        assert_eq!(libs[0].0.functions.len(), 3, "one library, three functions");
        for u in w.initial_units() {
            assert!(matches!(u, WorkUnit::Call(_)));
        }
    }

    #[test]
    fn examol_source_parses_and_runs() {
        let prog = vine_lang::parse(EXAMOL_SOURCE).unwrap();
        assert_eq!(
            vine_lang::inspect::scan_imports(&prog),
            vec!["chem".to_string()]
        );
        let mut interp = vine_lang::Interp::with_registry(crate::modules::full_registry());
        interp.exec_source(EXAMOL_SOURCE).unwrap();
        interp
            .exec_source(
                r#"
                context_setup(6)
                m = train()
                best = infer(m, [10, 11, 12])
                e = simulate(best, 100)
                "#,
            )
            .unwrap();
        let best = interp.get_global("best").unwrap().as_int().unwrap();
        assert!((10..=12).contains(&best));
        assert!(matches!(
            interp.get_global("e").unwrap(),
            vine_lang::Value::Float(_)
        ));
    }

    #[test]
    fn env_assumption_sizes() {
        let w = ExaMolWorkload::new(ExaMolConfig::paper(ReuseLevel::L2));
        assert_eq!(w.env.size_bytes, catalog::EXAMOL_PACKED_BYTES);
        assert_eq!(w.env.materialized_bytes(), catalog::EXAMOL_UNPACKED_BYTES);
    }
}
