//! LNNI — Large-Scale Neural Network Inference (paper §4.1.1).
//!
//! "The LNNI application runs 10k to 100k inference invocations, each of
//! which runs 16 to 1,600 inferences, on a pretrained ResNet50 model."
//!
//! ## Calibration (Tables 2, 4, 5)
//!
//! On the reference machine (EPYC 7543, 5.4 GFLOPS/core, invocations on
//! 2 cores = 10.8 GFLOPS):
//!
//! * 16 inferences execute in 3.079 s (Table 5, L3-Invoc exec) ⇒
//!   [`EXEC_GFLOP_PER_16_INFERENCES`] = 3.079 × 10.8 ≈ 33.3;
//! * rebuilding the model object per invocation costs ≈ 2.0 s at L1/L2
//!   (Table 5: L2 exec 5.05 s − L3 exec 3.08 s): ≈ 0.42 s re-reading
//!   [`MODEL_PARAMS_BYTES`] from an uncontended disk plus
//!   [`CONTEXT_GFLOP`] ≈ 14.2 of model building (1.3 s on 2 ref cores);
//! * the library's one-time setup is 2.729 s (Table 5, L3-Library
//!   overhead) = 0.45 s interpreter boot + 0.66 s parameter read +
//!   [`SETUP_GFLOP`] ≈ 17.5 of model building on the library's 2 cores
//!   (1.62 s).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use vine_core::config::ReuseLevel;
use vine_core::context::{ContextSpec, FileRef, LibrarySpec, SetupSpec};
use vine_core::ids::{FileId, InvocationId, TaskId};
use vine_core::resources::Resources;
use vine_core::task::{FunctionCall, TaskSpec, WorkProfile, WorkUnit};
use vine_env::catalog;
use vine_sim::Workload;

/// GFLOP of the invocation-distinct part per 16 inferences.
pub const EXEC_GFLOP_PER_16_INFERENCES: f64 = 33.3;
/// GFLOP of per-invocation context rebuild at L1/L2 (model build).
pub const CONTEXT_GFLOP: f64 = 14.2;
/// GFLOP of the library's one-time context setup at L3 (model build plus
/// first-use warming).
pub const SETUP_GFLOP: f64 = 17.5;
/// Serialized model parameters staged to each worker.
pub const MODEL_PARAMS_BYTES: u64 = 230_000_000;
/// Metadata ops per L1 task start: the Python import storm over NFS.
pub const L1_IMPORT_OPS: f64 = 1_500.0;
/// Shared-FS bytes per L1 task beyond the parameter read (package files,
/// shared objects). Calibrated so L1's mean runtime reproduces Table 4's
/// 21.59 s: ~110 MB + 230 MB of parameters at the latency-bound ~36 MB/s
/// per-client rate ≈ 9.5 s, plus 1,500 ops ≈ 4.5 s, plus compute.
pub const L1_SHAREDFS_READ_BYTES: u64 = 110_000_000;

/// The LNNI functions as vine-lang source — what the live runtime ships.
/// `context_setup` follows the paper's Fig 4 pattern: load parameters,
/// build the model, publish it to the global namespace.
pub const LNNI_SOURCE: &str = r#"
import nn

def context_setup(layers, dim) {
    global model
    model = nn.load_model(layers, dim)
}

def infer(first_image, count) {
    classes = []
    for img in range(first_image, first_image + count) {
        push(classes, nn.forward(model, img))
    }
    return classes
}
"#;

/// The same application as a user would *naively* write it (the paper's §6
/// future-work premise): expensive setup inline at module level, no
/// hand-written `context_setup`, mutable serving state mixed in. This is
/// the input to context discovery — `vine_lang::autocontext::discover`
/// (syntactic) and `vine_flow::discover` (dataflow) both split it, and
/// `repro analyze` reports how much each manages to hoist.
pub const LNNI_USER_SOURCE: &str = r#"
import nn

model_layers = 3
model_dim = 24
model = nn.load_model(model_layers, model_dim)
labels = []
for c in range(model_layers) {
    push(labels, "class_" + str(c))
}
served = 0
capacity = served + 4096

def classify(img) {
    global served
    served = served + 1
    return labels[nn.forward(model, img) % len(labels)]
}

def remaining() {
    return capacity - served
}
"#;

/// How L3 libraries are sized (the §3.5.2 strategy choice; an ablation
/// target in DESIGN.md).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LibraryStrategy {
    /// One library per invocation slot: 2 cores, 1 slot, 16 instances per
    /// worker. Matches the paper's LNNI deployment (Fig 10's ~2,000
    /// deployed libraries on 150 workers).
    PerSlot,
    /// One whole-worker library with 16 invocation slots — the §3.5.2
    /// default ("a library by default takes all resources of a worker").
    WholeWorker,
}

/// LNNI experiment parameters.
#[derive(Clone, Debug)]
pub struct LnniConfig {
    pub invocations: u64,
    /// 16, 160, or 1,600 in the paper (Fig 8).
    pub inferences_per_invocation: u64,
    pub level: ReuseLevel,
    pub seed: u64,
    pub library_strategy: LibraryStrategy,
}

impl LnniConfig {
    /// Fig 6a / Fig 7 / Table 4: 100k invocations × 16 inferences.
    pub fn paper_100k(level: ReuseLevel) -> LnniConfig {
        LnniConfig {
            invocations: 100_000,
            inferences_per_invocation: 16,
            level,
            seed: 0x6c6e6e69,
            library_strategy: LibraryStrategy::PerSlot,
        }
    }

    /// Fig 8 / Fig 9: 10k invocations.
    pub fn paper_10k(level: ReuseLevel, inferences: u64) -> LnniConfig {
        LnniConfig {
            invocations: 10_000,
            inferences_per_invocation: inferences,
            level,
            seed: 0x6c6e6e69,
            library_strategy: LibraryStrategy::PerSlot,
        }
    }
}

/// The LNNI workload for the simulator.
pub struct LnniWorkload {
    pub cfg: LnniConfig,
    env: FileRef,
    params: FileRef,
}

impl LnniWorkload {
    pub fn new(cfg: LnniConfig) -> LnniWorkload {
        // the real environment from the package substrate: 144 packages,
        // 572 MB packed, 3.1 GB unpacked (vine-env calibration tests pin
        // these to the paper's numbers)
        let reg = catalog::standard_registry();
        let res = vine_env::resolve(&reg, &catalog::lnni_requirements()).expect("catalog resolves");
        let archive = vine_env::pack("lnni-env", &res);
        let env = FileRef::new(
            FileId(1),
            "lnni-env.tar.zst",
            archive.hash,
            archive.packed_bytes,
        )
        .packed(archive.unpacked_bytes);

        let params = FileRef::new(
            FileId(2),
            "resnet50-params.bin",
            vine_core::ids::ContentHash::of_str("resnet50-pretrained-v1"),
            MODEL_PARAMS_BYTES,
        );
        LnniWorkload { cfg, env, params }
    }

    fn scale(&self) -> f64 {
        self.cfg.inferences_per_invocation as f64 / 16.0
    }

    /// The per-invocation work profile at this configuration.
    pub fn profile(&self, for_level: ReuseLevel) -> WorkProfile {
        let exec_gflop = EXEC_GFLOP_PER_16_INFERENCES * self.scale();
        match for_level {
            // context cost paid by the library, not the invocation
            ReuseLevel::L3 => WorkProfile {
                exec_gflop,
                context_gflop: 0.0,
                context_read_bytes: 0,
                output_bytes: 16 * self.cfg.inferences_per_invocation,
                ..WorkProfile::zero()
            },
            _ => WorkProfile {
                exec_gflop,
                context_gflop: CONTEXT_GFLOP,
                context_read_bytes: MODEL_PARAMS_BYTES,
                output_bytes: 16 * self.cfg.inferences_per_invocation,
                sharedfs_ops: L1_IMPORT_OPS,
                sharedfs_read_bytes: L1_SHAREDFS_READ_BYTES,
                ..WorkProfile::zero()
            },
        }
    }

    fn unit(&self, i: u64) -> WorkUnit {
        match self.cfg.level {
            ReuseLevel::L3 => {
                let mut call = FunctionCall::new(
                    InvocationId(i),
                    "lnni",
                    "infer",
                    // args: (first_image, count) — 16 bytes either way; the
                    // blob length is all the simulator needs
                    vec![0u8; 32],
                );
                call.resources = Resources::lnni_invocation();
                call.profile = self.profile(ReuseLevel::L3);
                WorkUnit::Call(call)
            }
            level => {
                let mut task = TaskSpec::new(TaskId(i), "lnni-infer");
                task.function = Some("infer".into());
                task.resources = Resources::lnni_invocation();
                task.profile = self.profile(level);
                match level {
                    ReuseLevel::L1 => {
                        // everything pulled from the shared filesystem,
                        // nothing cached (§4.2 L1)
                        task.inputs = vec![
                            self.env.clone().from_shared_fs().uncached(),
                            self.params.clone().from_shared_fs().uncached(),
                        ];
                    }
                    _ => {
                        // staged once, cached on local disk (§4.2 L2)
                        task.inputs = vec![self.env.clone(), self.params.clone()];
                    }
                }
                WorkUnit::Task(task)
            }
        }
    }
}

impl Workload for LnniWorkload {
    fn libraries(&self) -> Vec<(LibrarySpec, WorkProfile)> {
        if self.cfg.level != ReuseLevel::L3 {
            return Vec::new();
        }
        // per-slot libraries: each owns one invocation's worth of
        // resources and serves one invocation at a time. This mirrors the
        // paper's LNNI deployment, where the deployed-library count ramps
        // to ~2,000 on 150 workers (Fig 10) — one library per active slot,
        // not one per worker.
        let mut spec = LibrarySpec::new("lnni");
        spec.functions = vec!["infer".into()];
        match self.cfg.library_strategy {
            LibraryStrategy::PerSlot => {
                spec.resources = Some(Resources::lnni_invocation());
                spec.slots = Some(1);
            }
            LibraryStrategy::WholeWorker => {
                spec.resources = None; // whole worker
                spec.slots = None; // derived: 16 for LNNI invocations
            }
        }
        spec.context = ContextSpec {
            environment: Some(self.env.clone()),
            data: vec![self.params.clone()],
            setup: Some(SetupSpec {
                function: "context_setup".into(),
                args_blob: vec![0u8; 16],
            }),
            ..Default::default()
        };
        let setup_profile = WorkProfile {
            exec_gflop: 0.0,
            context_gflop: SETUP_GFLOP,
            context_read_bytes: MODEL_PARAMS_BYTES,
            ..WorkProfile::zero()
        };
        vec![(spec, setup_profile)]
    }

    fn initial_units(&mut self) -> Vec<WorkUnit> {
        // deterministic shuffle-free burst: LNNI submits everything up
        // front (a "full non-overlapping sweep", §2.1.1)
        let mut rng = ChaCha8Rng::seed_from_u64(self.cfg.seed);
        let _ = rng.gen::<u64>();
        (0..self.cfg.invocations).map(|i| self.unit(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vine_core::context::FileSource;

    #[test]
    fn env_matches_paper_numbers() {
        let w = LnniWorkload::new(LnniConfig::paper_10k(ReuseLevel::L3, 16));
        assert_eq!(w.env.size_bytes, catalog::LNNI_PACKED_BYTES);
        assert_eq!(w.env.materialized_bytes(), catalog::LNNI_UNPACKED_BYTES);
    }

    #[test]
    fn exec_time_matches_table5_on_reference_machine() {
        // 33.3 GFLOP / (2 cores × 5.4 GFLOPS) = 3.08 s (Table 5: 3.079 s)
        let secs = EXEC_GFLOP_PER_16_INFERENCES / (2.0 * 5.4);
        assert!((secs - 3.079).abs() < 0.05, "{secs}");
        // context rebuild ≈ 2.0 s (Table 5: L2 exec − L3 exec):
        // uncontended param read + model build
        let ctx = CONTEXT_GFLOP / (2.0 * 5.4) + MODEL_PARAMS_BYTES as f64 / 3.5e8;
        assert!((ctx - 2.0).abs() < 0.05, "{ctx}");
    }

    #[test]
    fn l1_units_pull_from_shared_fs() {
        let mut w = LnniWorkload::new(LnniConfig {
            invocations: 3,
            inferences_per_invocation: 16,
            level: ReuseLevel::L1,
            seed: 1,
            library_strategy: LibraryStrategy::PerSlot,
        });
        let units = w.initial_units();
        assert_eq!(units.len(), 3);
        for u in &units {
            let WorkUnit::Task(t) = u else {
                panic!("L1 wraps invocations as tasks")
            };
            assert!(t
                .inputs
                .iter()
                .all(|f| f.source == FileSource::SharedFs && !f.cache));
            assert!(t.profile.context_gflop > 0.0);
        }
        assert!(w.libraries().is_empty(), "no libraries below L3");
    }

    #[test]
    fn l2_units_cache_inputs() {
        let mut w = LnniWorkload::new(LnniConfig {
            invocations: 2,
            inferences_per_invocation: 16,
            level: ReuseLevel::L2,
            seed: 1,
            library_strategy: LibraryStrategy::PerSlot,
        });
        for u in w.initial_units() {
            let WorkUnit::Task(t) = u else { panic!() };
            assert!(t.inputs.iter().all(|f| f.cache && f.peer_transfer));
        }
    }

    #[test]
    fn l3_units_are_calls_with_library() {
        let mut w = LnniWorkload::new(LnniConfig {
            invocations: 2,
            inferences_per_invocation: 16,
            level: ReuseLevel::L3,
            seed: 1,
            library_strategy: LibraryStrategy::PerSlot,
        });
        let libs = w.libraries();
        assert_eq!(libs.len(), 1);
        let (spec, setup) = &libs[0];
        assert_eq!(spec.slots, Some(1), "per-slot libraries (Fig 10)");
        assert!(spec.context.setup.is_some());
        assert_eq!(setup.context_read_bytes, MODEL_PARAMS_BYTES);
        for u in w.initial_units() {
            let WorkUnit::Call(c) = u else {
                panic!("L3 submits invocations")
            };
            assert_eq!(c.library, "lnni");
            assert_eq!(c.profile.context_gflop, 0.0, "context paid by library");
            assert!(c.args_blob.len() < 100, "invocations ship args only");
        }
    }

    #[test]
    fn inference_scaling_multiplies_exec_only() {
        let w16 = LnniWorkload::new(LnniConfig::paper_10k(ReuseLevel::L2, 16));
        let w1600 = LnniWorkload::new(LnniConfig::paper_10k(ReuseLevel::L2, 1600));
        let p16 = w16.profile(ReuseLevel::L2);
        let p1600 = w1600.profile(ReuseLevel::L2);
        assert!((p1600.exec_gflop / p16.exec_gflop - 100.0).abs() < 1e-9);
        assert_eq!(p16.context_gflop, p1600.context_gflop);
        assert_eq!(p16.context_read_bytes, p1600.context_read_bytes);
    }

    #[test]
    fn lnni_source_parses_and_discovers() {
        let prog = vine_lang::parse(LNNI_SOURCE).unwrap();
        let imports = vine_lang::inspect::scan_imports(&prog);
        assert_eq!(imports, vec!["nn".to_string()]);
        let src = vine_lang::inspect::extract_source(LNNI_SOURCE, "infer").unwrap();
        assert!(src.contains("nn.forward"));
        assert!(vine_lang::inspect::extract_source(LNNI_SOURCE, "context_setup").is_some());
    }

    #[test]
    fn lnni_source_runs_end_to_end() {
        let mut interp = vine_lang::Interp::with_registry(crate::modules::full_registry());
        interp.exec_source(LNNI_SOURCE).unwrap();
        interp
            .exec_source("context_setup(2, 8)\nresult = infer(0, 4)")
            .unwrap();
        let vine_lang::Value::List(items) = interp.get_global("result").unwrap() else {
            panic!("expected class list");
        };
        assert_eq!(items.borrow().len(), 4);
    }
}
