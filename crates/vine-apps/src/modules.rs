//! Native modules the applications import — the "software dependencies"
//! their environments install.
//!
//! * [`nn_module`] — a dense neural-network stand-in for the
//!   TensorFlow/Keras stack LNNI uses: `load_model` is the expensive
//!   context-setup step (builds all layer weights), `forward` is the
//!   per-inference compute.
//! * [`chem_module`] — PM7-flavoured molecular "simulation", plus tiny
//!   train/infer helpers, standing in for OpenMOPAC/Scikit-Learn/RDKit.
//!
//! All functions are deterministic (weights and energies derive from
//! index-based formulas), so live-runtime results are reproducible and
//! testable.

use std::rc::Rc;
use vine_core::VineError;
use vine_lang::modules::{native, ModuleRegistry};
use vine_lang::value::{NativeFunc, Tensor, Value};

/// Deterministic pseudo-random weight for position (layer, i).
fn weight_at(layer: usize, i: usize) -> f64 {
    // splitmix-style hash → (-0.5, 0.5)
    let mut x = (layer as u64).wrapping_mul(0x9e3779b97f4a7c15) ^ (i as u64);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58476d1ce4e5b9);
    x ^= x >> 27;
    (x as f64 / u64::MAX as f64) - 0.5
}

/// The `nn` module: `load_model(layers, dim)`, `forward(model, input_id)`,
/// `classes(model)`.
pub fn nn_module() -> Vec<(String, Rc<NativeFunc>)> {
    vec![
        // load_model(layers, dim) -> model (a dict of weight tensors).
        // This is the reusable-context part: building it is O(layers·dim²).
        native("load_model", |args| {
            if args.len() != 2 {
                return Err(VineError::Lang("load_model(layers, dim)".into()));
            }
            let layers = args[0].as_int()?.max(1) as usize;
            let dim = args[1].as_int()?.max(1) as usize;
            let mut model = std::collections::BTreeMap::new();
            for l in 0..layers {
                let mut data = Vec::with_capacity(dim * dim);
                for i in 0..dim * dim {
                    data.push(weight_at(l, i));
                }
                model.insert(
                    format!("w{l}"),
                    Value::tensor(Tensor::new(vec![dim, dim], data).expect("square")),
                );
            }
            model.insert("layers".into(), Value::Int(layers as i64));
            model.insert("dim".into(), Value::Int(dim as i64));
            Ok(Value::dict(model))
        }),
        // forward(model, input_id) -> predicted class (argmax of the final
        // activation). Input is synthesized deterministically from its id.
        native("forward", |args| {
            if args.len() != 2 {
                return Err(VineError::Lang("forward(model, input_id)".into()));
            }
            let model = match &args[0] {
                Value::Dict(d) => d.borrow().clone(),
                other => {
                    return Err(VineError::Lang(format!(
                        "forward: model must be dict, got {}",
                        other.type_name()
                    )))
                }
            };
            let input_id = args[1].as_int()?;
            let layers = model
                .get("layers")
                .ok_or_else(|| VineError::Lang("model missing 'layers'".into()))?
                .as_int()? as usize;
            let dim = model
                .get("dim")
                .ok_or_else(|| VineError::Lang("model missing 'dim'".into()))?
                .as_int()? as usize;
            // input vector derived from the id
            let mut x: Vec<f64> = (0..dim)
                .map(|i| weight_at(usize::MAX, i ^ input_id as usize))
                .collect();
            for l in 0..layers {
                let w = model
                    .get(&format!("w{l}"))
                    .ok_or_else(|| VineError::Lang(format!("model missing w{l}")))?;
                let w = w.as_tensor()?;
                let mut y = vec![0.0; dim];
                for (r, yr) in y.iter_mut().enumerate() {
                    let row = &w.data[r * dim..(r + 1) * dim];
                    let mut acc = 0.0;
                    for (a, b) in row.iter().zip(&x) {
                        acc += a * b;
                    }
                    // ReLU keeps activations bounded-ish and nonlinear
                    *yr = acc.max(0.0);
                }
                x = y;
            }
            let class = x
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i as i64)
                .unwrap_or(0);
            Ok(Value::Int(class))
        }),
    ]
}

/// Deterministic "PM7 energy" for a molecule id at a given effort.
fn pm7_energy(molecule: i64, steps: i64) -> f64 {
    let mut e = 0.0f64;
    let mut state = molecule as f64 * 0.618_033_988;
    for s in 0..steps.max(1) {
        state = (state * 1.000_001 + s as f64 * 1e-7).sin();
        e += state * state;
    }
    -(e / steps.max(1) as f64) * 10.0 - (molecule % 97) as f64 * 0.01
}

/// The `chem` module: `simulate(molecule, steps)`, `train(xs, ys)`,
/// `predict(model, molecule)`.
pub fn chem_module() -> Vec<(String, Rc<NativeFunc>)> {
    vec![
        // simulate(molecule, steps) -> ionization-potential-ish energy
        native("simulate", |args| {
            if args.len() != 2 {
                return Err(VineError::Lang("simulate(molecule, steps)".into()));
            }
            Ok(Value::Float(pm7_energy(
                args[0].as_int()?,
                args[1].as_int()?,
            )))
        }),
        // train(xs, ys) -> model (least-squares slope/intercept on
        // (molecule id, energy) pairs — a stand-in for sklearn fitting)
        native("train", |args| {
            if args.len() != 2 {
                return Err(VineError::Lang("train(xs, ys)".into()));
            }
            let (xs, ys) = match (&args[0], &args[1]) {
                (Value::List(a), Value::List(b)) => (a.borrow().clone(), b.borrow().clone()),
                _ => return Err(VineError::Lang("train expects two lists".into())),
            };
            if xs.len() != ys.len() || xs.is_empty() {
                return Err(VineError::Lang("train: mismatched or empty data".into()));
            }
            let n = xs.len() as f64;
            let mut sx = 0.0;
            let mut sy = 0.0;
            let mut sxx = 0.0;
            let mut sxy = 0.0;
            for (x, y) in xs.iter().zip(&ys) {
                let (x, y) = (x.as_float()?, y.as_float()?);
                sx += x;
                sy += y;
                sxx += x * x;
                sxy += x * y;
            }
            let denom = (n * sxx - sx * sx).abs().max(1e-12);
            let slope = (n * sxy - sx * sy) / denom;
            let intercept = (sy - slope * sx) / n;
            Ok(Value::dict([
                ("slope".to_string(), Value::Float(slope)),
                ("intercept".to_string(), Value::Float(intercept)),
            ]))
        }),
        // predict(model, molecule) -> estimated energy
        native("predict", |args| {
            if args.len() != 2 {
                return Err(VineError::Lang("predict(model, molecule)".into()));
            }
            let model = match &args[0] {
                Value::Dict(d) => d.borrow().clone(),
                _ => return Err(VineError::Lang("predict: model must be dict".into())),
            };
            let slope = model
                .get("slope")
                .ok_or_else(|| VineError::Lang("model missing slope".into()))?
                .as_float()?;
            let intercept = model
                .get("intercept")
                .ok_or_else(|| VineError::Lang("model missing intercept".into()))?
                .as_float()?;
            let x = args[1].as_float()?;
            Ok(Value::Float(slope * x + intercept))
        }),
    ]
}

/// Registry with both application stacks plus a `mathx` utility module —
/// what a worker's activated environment exposes to vine-lang.
pub fn full_registry() -> ModuleRegistry {
    let mut reg = ModuleRegistry::new();
    reg.register_native("nn", nn_module);
    reg.register_native("chem", chem_module);
    reg.register_native("mathx", || {
        vec![
            native("hypot", |args| {
                if args.len() != 2 {
                    return Err(VineError::Lang("hypot(a, b)".into()));
                }
                Ok(Value::Float(args[0].as_float()?.hypot(args[1].as_float()?)))
            }),
            native("clamp", |args| {
                if args.len() != 3 {
                    return Err(VineError::Lang("clamp(x, lo, hi)".into()));
                }
                let (x, lo, hi) = (
                    args[0].as_float()?,
                    args[1].as_float()?,
                    args[2].as_float()?,
                );
                Ok(Value::Float(x.clamp(lo, hi)))
            }),
        ]
    });
    reg
}

#[cfg(test)]
mod tests {
    use super::*;
    use vine_lang::Interp;

    fn interp() -> Interp {
        Interp::with_registry(full_registry())
    }

    #[test]
    fn load_model_and_forward_are_deterministic() {
        let mut i1 = interp();
        i1.exec_source(
            "import nn\nm = nn.load_model(3, 16)\nc1 = nn.forward(m, 7)\nc2 = nn.forward(m, 7)\nc3 = nn.forward(m, 8)",
        )
        .unwrap();
        let c1 = i1.get_global("c1").unwrap();
        let c2 = i1.get_global("c2").unwrap();
        assert_eq!(c1, c2, "same input → same class");
        // a fresh interpreter reproduces the same result (determinism
        // across "workers")
        let mut i2 = interp();
        i2.exec_source("import nn\nm = nn.load_model(3, 16)\nc1 = nn.forward(m, 7)")
            .unwrap();
        assert_eq!(i2.get_global("c1").unwrap(), c1);
    }

    #[test]
    fn forward_classes_in_range() {
        let mut i = interp();
        i.exec_source(
            r#"
            import nn
            m = nn.load_model(2, 10)
            classes = []
            for img in range(20) { push(classes, nn.forward(m, img)) }
            "#,
        )
        .unwrap();
        if let vine_lang::Value::List(items) = i.get_global("classes").unwrap() {
            let items = items.borrow();
            assert_eq!(items.len(), 20);
            for c in items.iter() {
                let c = c.as_int().unwrap();
                assert!((0..10).contains(&c), "class {c}");
            }
            // not all the same class (the model actually discriminates)
            let first = items[0].as_int().unwrap();
            assert!(items.iter().any(|c| c.as_int().unwrap() != first));
        } else {
            panic!("expected list");
        }
    }

    #[test]
    fn bad_model_arguments_error() {
        let mut i = interp();
        let e = i.exec_source("import nn\nnn.forward(5, 1)").unwrap_err();
        assert!(e.to_string().contains("must be dict"));
        let e = i.exec_source("import nn\nnn.load_model(2)").unwrap_err();
        assert!(e.to_string().contains("load_model"));
    }

    #[test]
    fn simulate_is_deterministic_and_varies_by_molecule() {
        let mut i = interp();
        i.exec_source(
            "import chem\na = chem.simulate(10, 1000)\nb = chem.simulate(10, 1000)\nc = chem.simulate(11, 1000)",
        )
        .unwrap();
        let a = i.get_global("a").unwrap();
        assert_eq!(a, i.get_global("b").unwrap());
        assert_ne!(a, i.get_global("c").unwrap());
    }

    #[test]
    fn train_predict_recovers_linear_data() {
        let mut i = interp();
        i.exec_source(
            r#"
            import chem
            xs = [1.0, 2.0, 3.0, 4.0]
            ys = [3.0, 5.0, 7.0, 9.0]
            m = chem.train(xs, ys)
            p = chem.predict(m, 10.0)
            "#,
        )
        .unwrap();
        let p = i.get_global("p").unwrap().as_float().unwrap();
        assert!((p - 21.0).abs() < 1e-9, "p {p}");
    }

    #[test]
    fn train_rejects_bad_input() {
        let mut i = interp();
        assert!(i
            .exec_source("import chem\nchem.train([1], [1, 2])")
            .is_err());
        assert!(i.exec_source("import chem\nchem.train([], [])").is_err());
    }

    #[test]
    fn mathx_helpers() {
        let mut i = interp();
        i.exec_source("import mathx\nh = mathx.hypot(3.0, 4.0)\nc = mathx.clamp(7.0, 0.0, 5.0)")
            .unwrap();
        assert_eq!(i.get_global("h").unwrap(), vine_lang::Value::Float(5.0));
        assert_eq!(i.get_global("c").unwrap(), vine_lang::Value::Float(5.0));
    }
}
