//! # vine-manager
//!
//! The manager: the single coordinator that registers libraries, admits
//! workers, schedules work units, and handles faults (paper §3.5.2).
//!
//! Scheduling policy, from the paper:
//!
//! * the manager "sequentially checks a hash ring of connected workers" for
//!   one that can host a library instance or an invocation ([`ring`]);
//! * it "holds on to that worker and sends as many invocations as available
//!   slots the library currently has";
//! * a library instance is a special task that "by itself doesn't do any
//!   actual work", so when an invocation of *another* library needs room,
//!   the manager "instructs the worker to remove that [empty] library and
//!   reclaim resources" ([`Decision::EvictLibrary`]).
//!
//! [`Manager`] is — like [`vine_worker::WorkerState`] — a pure state
//! machine: [`Manager::next_decision`] emits [`Decision`]s and applies
//! their bookkeeping immediately; the execution substrate (simulator or
//! live runtime) attaches time and I/O and feeds back completion events.
//!
//! For federated deployments, the same core embeds as a [`Shard`] — N of
//! them run side by side, each owning a worker partition — behind a
//! [`ShardRouter`] front-end that hashes each submission's
//! function-context digest onto a virtual-node ring of shards ([`router`]).

pub mod index;
pub mod manager;
pub mod reference;
pub mod ring;
pub mod router;
pub mod shard;

pub use manager::{Decision, Manager, Placement};
pub use ring::HashRing;
pub use router::{ShardRouter, SHARD_VNODES};
pub use shard::{Shard, ShardLoad};
