//! One scheduling shard of a federated deployment.
//!
//! The refactor behind federated sharding: the scheduling core
//! ([`Manager`] — queues, `FitIndex`, placement ring, requeue) is already
//! a pure state machine, so a *shard* is that core embedded behind a
//! [`ShardId`] plus the counters the routing tier reports. N shards run
//! side by side — each owns a disjoint partition of the workers and sees
//! only the submissions the router hashes to it — and a single shard
//! driven with the same event sequence is decision-for-decision identical
//! to a standalone `Manager` (pinned by `tests/differential.rs`).

use crate::manager::{Decision, Manager, Placement};
use vine_core::context::LibrarySpec;
use vine_core::ids::{ContentHash, LibraryInstanceId, ShardId, WorkerId};
use vine_core::resources::Resources;
use vine_core::task::{UnitId, WorkUnit};
use vine_core::Result;

/// A point-in-time load summary of one shard — what travels in the
/// `ShardStats` routing message and fills the `repro route` stderr table.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardLoad {
    pub shard: ShardId,
    pub workers: usize,
    /// Units accepted from the router since the shard started.
    pub routed: u64,
    /// Units completed (successfully or not).
    pub finished: u64,
    /// Units re-admitted after a worker or shard loss.
    pub requeued: u64,
    pub queued: usize,
    pub running: usize,
}

/// An embeddable scheduling shard: a [`Manager`] core plus federation
/// identity and load counters.
#[derive(Default)]
pub struct Shard {
    id: ShardId,
    core: Manager,
    routed: u64,
    finished: u64,
    requeued: u64,
}

impl Shard {
    pub fn new(id: ShardId) -> Shard {
        Shard {
            id,
            core: Manager::new(),
            routed: 0,
            finished: 0,
            requeued: 0,
        }
    }

    pub fn id(&self) -> ShardId {
        self.id
    }

    /// The embedded scheduling core, for calls not mirrored here.
    pub fn core(&self) -> &Manager {
        &self.core
    }

    pub fn core_mut(&mut self) -> &mut Manager {
        &mut self.core
    }

    pub fn load(&self) -> ShardLoad {
        ShardLoad {
            shard: self.id,
            workers: self.core.worker_count(),
            routed: self.routed,
            finished: self.finished,
            requeued: self.requeued,
            queued: self.core.queued(),
            running: self.core.running_count(),
        }
    }

    // ---- delegated scheduling API (same shapes as `Manager`) ----------

    pub fn register_library(&mut self, spec: LibrarySpec) {
        self.core.register_library(spec);
    }

    pub fn library_spec(&self, name: &str) -> Option<&LibrarySpec> {
        self.core.library_spec(name)
    }

    pub fn worker_joined(&mut self, id: WorkerId, resources: Resources) {
        self.core.worker_joined(id, resources);
    }

    /// A worker left this shard's partition (disconnect, failure, or a
    /// rebalance moving it to another shard). Returns the in-flight units
    /// the router must re-route — the existing `worker_left` requeue path
    /// is exactly the cross-shard one.
    pub fn worker_left(&mut self, id: WorkerId) -> Vec<UnitId> {
        self.core.worker_left(id)
    }

    pub fn worker_count(&self) -> usize {
        self.core.worker_count()
    }

    pub fn holders_of(&self, hash: ContentHash) -> impl Iterator<Item = WorkerId> + '_ {
        self.core.holders_of(hash)
    }

    pub fn submit(&mut self, unit: WorkUnit) {
        self.routed += 1;
        self.core.submit(unit);
    }

    pub fn requeue(&mut self, unit: WorkUnit) {
        self.requeued += 1;
        self.core.requeue(unit);
    }

    pub fn pending(&self) -> usize {
        self.core.pending()
    }

    pub fn queued(&self) -> usize {
        self.core.queued()
    }

    pub fn running_count(&self) -> usize {
        self.core.running_count()
    }

    pub fn is_idle(&self) -> bool {
        self.core.is_idle()
    }

    pub fn next_decision(&mut self) -> Option<Decision> {
        self.core.next_decision()
    }

    pub fn library_ready(&mut self, worker: WorkerId, instance: LibraryInstanceId) -> Result<()> {
        self.core.library_ready(worker, instance)
    }

    pub fn library_startup_failed(
        &mut self,
        worker: WorkerId,
        instance: LibraryInstanceId,
    ) -> Result<()> {
        self.core.library_startup_failed(worker, instance)
    }

    pub fn unit_finished(&mut self, unit: UnitId) -> Result<Placement> {
        self.finished += 1;
        self.core.unit_finished(unit)
    }

    pub fn evict_instance(&mut self, worker: WorkerId, instance: LibraryInstanceId) -> Result<()> {
        self.core.evict_instance(worker, instance)
    }

    pub fn instances(&self) -> impl Iterator<Item = (WorkerId, &vine_worker::LibraryInstance)> {
        self.core.instances()
    }

    pub fn placement_of(&self, unit: UnitId) -> Option<Placement> {
        self.core.placement_of(unit)
    }
}
