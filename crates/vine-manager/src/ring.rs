//! Consistent hash ring of connected workers (§3.5.2).
//!
//! Library placement walks the ring starting at the hash of the library's
//! name, so different libraries start their searches at different workers
//! (spreading contexts across the cluster) while the same library's
//! placements stay stable as long as membership is stable.

use vine_core::ids::{ContentHash, WorkerId};

/// A hash ring over workers.
#[derive(Debug, Default, Clone)]
pub struct HashRing {
    /// Sorted (point, worker) pairs.
    points: Vec<(u64, WorkerId)>,
}

fn worker_point(w: WorkerId) -> u64 {
    (ContentHash::of_str(&format!("ring-worker-{}", w.0)).0 >> 64) as u64
}

/// Ring position where the search for `key` begins.
pub fn key_point(key: &str) -> u64 {
    (ContentHash::of_str(key).0 >> 64) as u64
}

impl HashRing {
    pub fn new() -> HashRing {
        HashRing::default()
    }

    pub fn add(&mut self, w: WorkerId) {
        let p = worker_point(w);
        if let Err(idx) = self.points.binary_search(&(p, w)) {
            self.points.insert(idx, (p, w));
        }
    }

    pub fn remove(&mut self, w: WorkerId) {
        let p = worker_point(w);
        if let Ok(idx) = self.points.binary_search(&(p, w)) {
            self.points.remove(idx);
        }
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The sorted (point, worker) pairs — the ring order that
    /// [`HashRing::walk`] traverses. Indexes built over the ring (e.g. the
    /// manager's first-fit index) mirror this slice.
    pub fn points(&self) -> &[(u64, WorkerId)] {
        &self.points
    }

    /// Index into [`HashRing::points`] where the search for `key` begins.
    pub fn start_index(&self, key: &str) -> usize {
        match self
            .points
            .binary_search_by(|(p, _)| p.cmp(&key_point(key)))
        {
            Ok(i) | Err(i) => i % self.points.len().max(1),
        }
    }

    /// All workers in ring order, starting at the first point ≥
    /// `key_point(key)` and wrapping around — the §3.5.2 sequential check.
    pub fn walk(&self, key: &str) -> impl Iterator<Item = WorkerId> + '_ {
        let start = self.start_index(key);
        self.points
            .iter()
            .cycle()
            .skip(start)
            .take(self.points.len())
            .map(|(_, w)| *w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: u32) -> HashRing {
        let mut r = HashRing::new();
        for i in 0..n {
            r.add(WorkerId(i));
        }
        r
    }

    #[test]
    fn walk_visits_every_worker_exactly_once() {
        let r = ring(20);
        let mut seen: Vec<WorkerId> = r.walk("lnni").collect();
        assert_eq!(seen.len(), 20);
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 20);
    }

    #[test]
    fn walk_is_deterministic_and_key_dependent() {
        let r = ring(20);
        let a: Vec<WorkerId> = r.walk("lnni").collect();
        let b: Vec<WorkerId> = r.walk("lnni").collect();
        assert_eq!(a, b);
        let c: Vec<WorkerId> = r.walk("examol").collect();
        // different keys generally start elsewhere (holds for these keys)
        assert_ne!(a[0], c[0]);
    }

    #[test]
    fn membership_changes() {
        let mut r = ring(5);
        assert_eq!(r.len(), 5);
        r.remove(WorkerId(3));
        assert_eq!(r.len(), 4);
        assert!(r.walk("k").all(|w| w != WorkerId(3)));
        // removing twice is harmless
        r.remove(WorkerId(3));
        assert_eq!(r.len(), 4);
        // re-adding restores it
        r.add(WorkerId(3));
        assert_eq!(r.len(), 5);
        // double add is idempotent
        r.add(WorkerId(3));
        assert_eq!(r.len(), 5);
    }

    #[test]
    fn empty_ring_walks_nothing() {
        let r = HashRing::new();
        assert_eq!(r.walk("k").count(), 0);
        assert!(r.is_empty());
    }

    #[test]
    fn removal_preserves_other_start_points() {
        // consistent hashing: removing one worker shifts only keys that
        // started at it
        let mut r = ring(50);
        let starts_before: Vec<WorkerId> = (0..100)
            .map(|i| r.walk(&format!("key-{i}")).next().unwrap())
            .collect();
        r.remove(WorkerId(17));
        let mut moved = 0;
        for (i, before) in starts_before.iter().enumerate() {
            let after = r.walk(&format!("key-{i}")).next().unwrap();
            if after != *before {
                moved += 1;
                assert_eq!(
                    *before,
                    WorkerId(17),
                    "only keys on the removed worker move"
                );
            }
        }
        assert!(moved <= 10, "moved {moved} of 100");
    }
}
