//! Consistent hash ring of connected workers (§3.5.2).
//!
//! Library placement walks the ring starting at the hash of the library's
//! name, so different libraries start their searches at different workers
//! (spreading contexts across the cluster) while the same library's
//! placements stay stable as long as membership is stable.
//!
//! The ring optionally places each member at several **virtual nodes**
//! ([`HashRing::with_replicas`]). The manager's library-placement ring
//! keeps the default of one point per worker — its placements are pinned
//! bit-identical by the repro experiments — while the shard router runs
//! with ≥64 vnodes so a handful of shards still split the key space
//! evenly (see `router.rs`).

use vine_core::ids::{ContentHash, WorkerId};

/// A hash ring over workers.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Sorted (point, worker) pairs; each worker appears `replicas` times.
    points: Vec<(u64, WorkerId)>,
    replicas: u32,
}

impl Default for HashRing {
    fn default() -> HashRing {
        HashRing::new()
    }
}

/// Stack formatter for ring point strings. Point hashing runs on every
/// placement decision, so it must not heap-allocate — but replica 0 must
/// hash the exact bytes `format!("ring-worker-{}", w.0)` produced before
/// vnodes existed, keeping existing placements bit-identical.
struct PointBuf {
    buf: [u8; 64],
    len: usize,
}

impl PointBuf {
    fn new() -> PointBuf {
        PointBuf {
            buf: [0; 64],
            len: 0,
        }
    }

    fn push_bytes(&mut self, s: &[u8]) {
        self.buf[self.len..self.len + s.len()].copy_from_slice(s);
        self.len += s.len();
    }

    fn push_u64(&mut self, mut n: u64) {
        let mut digits = [0u8; 20];
        let mut i = digits.len();
        loop {
            i -= 1;
            digits[i] = b'0' + (n % 10) as u8;
            n /= 10;
            if n == 0 {
                break;
            }
        }
        self.push_bytes(&digits[i..]);
    }

    fn point(&self) -> u64 {
        (ContentHash::of_bytes(&self.buf[..self.len]).0 >> 64) as u64
    }
}

/// Ring position of `w`'s `replica`-th virtual node. Replica 0 hashes the
/// same bytes the pre-vnode ring did.
pub(crate) fn member_point(prefix: &[u8], id: u64, replica: u32) -> u64 {
    let mut b = PointBuf::new();
    b.push_bytes(prefix);
    b.push_u64(id);
    if replica > 0 {
        b.push_bytes(b"#");
        b.push_u64(replica as u64);
    }
    b.point()
}

fn worker_point(w: WorkerId, replica: u32) -> u64 {
    member_point(b"ring-worker-", w.0 as u64, replica)
}

/// Ring position where the search for `key` begins.
pub fn key_point(key: &str) -> u64 {
    (ContentHash::of_str(key).0 >> 64) as u64
}

impl HashRing {
    /// One point per worker — the manager's library-placement default.
    pub fn new() -> HashRing {
        HashRing::with_replicas(1)
    }

    /// A ring that places each worker at `replicas` virtual nodes.
    pub fn with_replicas(replicas: u32) -> HashRing {
        assert!(replicas >= 1, "a ring member needs at least one point");
        HashRing {
            points: Vec::new(),
            replicas,
        }
    }

    pub fn replicas(&self) -> u32 {
        self.replicas
    }

    pub fn add(&mut self, w: WorkerId) {
        for r in 0..self.replicas {
            let p = worker_point(w, r);
            if let Err(idx) = self.points.binary_search(&(p, w)) {
                self.points.insert(idx, (p, w));
            }
        }
    }

    pub fn remove(&mut self, w: WorkerId) {
        for r in 0..self.replicas {
            let p = worker_point(w, r);
            if let Ok(idx) = self.points.binary_search(&(p, w)) {
                self.points.remove(idx);
            }
        }
    }

    /// Number of points on the ring (`members × replicas`).
    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The sorted (point, worker) pairs — the ring order that
    /// [`HashRing::walk`] traverses. Indexes built over the ring (e.g. the
    /// manager's first-fit index) mirror this slice.
    pub fn points(&self) -> &[(u64, WorkerId)] {
        &self.points
    }

    /// Index into [`HashRing::points`] where the search for `key` begins.
    pub fn start_index(&self, key: &str) -> usize {
        self.start_index_at(key_point(key))
    }

    /// Like [`HashRing::start_index`] but from a precomputed ring
    /// position — lets callers that already hold a [`ContentHash`] route
    /// without building a key string.
    pub fn start_index_at(&self, point: u64) -> usize {
        match self.points.binary_search_by(|(p, _)| p.cmp(&point)) {
            Ok(i) | Err(i) => i % self.points.len().max(1),
        }
    }

    /// All workers in ring order, starting at the first point ≥
    /// `key_point(key)` and wrapping around — the §3.5.2 sequential check.
    /// With vnodes, each worker is yielded once, at its first point
    /// encountered.
    pub fn walk(&self, key: &str) -> impl Iterator<Item = WorkerId> + '_ {
        self.walk_from(key_point(key))
    }

    /// [`HashRing::walk`] from a precomputed ring position.
    pub fn walk_from(&self, point: u64) -> impl Iterator<Item = WorkerId> + '_ {
        let start = self.start_index_at(point);
        let mut seen: Vec<WorkerId> = Vec::new();
        self.points
            .iter()
            .cycle()
            .skip(start)
            .take(self.points.len())
            .filter_map(move |(_, w)| {
                if seen.contains(w) {
                    None
                } else {
                    seen.push(*w);
                    Some(*w)
                }
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: u32) -> HashRing {
        let mut r = HashRing::new();
        for i in 0..n {
            r.add(WorkerId(i));
        }
        r
    }

    #[test]
    fn walk_visits_every_worker_exactly_once() {
        let r = ring(20);
        let mut seen: Vec<WorkerId> = r.walk("lnni").collect();
        assert_eq!(seen.len(), 20);
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 20);
    }

    #[test]
    fn walk_is_deterministic_and_key_dependent() {
        let r = ring(20);
        let a: Vec<WorkerId> = r.walk("lnni").collect();
        let b: Vec<WorkerId> = r.walk("lnni").collect();
        assert_eq!(a, b);
        let c: Vec<WorkerId> = r.walk("examol").collect();
        // different keys generally start elsewhere (holds for these keys)
        assert_ne!(a[0], c[0]);
    }

    #[test]
    fn membership_changes() {
        let mut r = ring(5);
        assert_eq!(r.len(), 5);
        r.remove(WorkerId(3));
        assert_eq!(r.len(), 4);
        assert!(r.walk("k").all(|w| w != WorkerId(3)));
        // removing twice is harmless
        r.remove(WorkerId(3));
        assert_eq!(r.len(), 4);
        // re-adding restores it
        r.add(WorkerId(3));
        assert_eq!(r.len(), 5);
        // double add is idempotent
        r.add(WorkerId(3));
        assert_eq!(r.len(), 5);
    }

    #[test]
    fn empty_ring_walks_nothing() {
        let r = HashRing::new();
        assert_eq!(r.walk("k").count(), 0);
        assert!(r.is_empty());
    }

    #[test]
    fn removal_preserves_other_start_points() {
        // consistent hashing: removing one worker shifts only keys that
        // started at it
        let mut r = ring(50);
        let starts_before: Vec<WorkerId> = (0..100)
            .map(|i| r.walk(&format!("key-{i}")).next().unwrap())
            .collect();
        r.remove(WorkerId(17));
        let mut moved = 0;
        for (i, before) in starts_before.iter().enumerate() {
            let after = r.walk(&format!("key-{i}")).next().unwrap();
            if after != *before {
                moved += 1;
                assert_eq!(
                    *before,
                    WorkerId(17),
                    "only keys on the removed worker move"
                );
            }
        }
        assert!(moved <= 10, "moved {moved} of 100");
    }

    #[test]
    fn replica_zero_points_match_pre_vnode_ring() {
        // the bit-identity anchor: replicas=1 places every worker exactly
        // where the format!-based ring did
        for w in [0u32, 1, 9, 10, 99, 12345, u32::MAX] {
            let legacy = (ContentHash::of_str(&format!("ring-worker-{w}")).0 >> 64) as u64;
            assert_eq!(worker_point(WorkerId(w), 0), legacy);
        }
    }

    #[test]
    fn vnode_ring_contains_replicas_and_dedups_walk() {
        let mut r = HashRing::with_replicas(64);
        for i in 0..4 {
            r.add(WorkerId(i));
        }
        assert_eq!(r.len(), 4 * 64);
        let seen: Vec<WorkerId> = r.walk("some-key").collect();
        assert_eq!(seen.len(), 4, "walk yields each member once");
        r.remove(WorkerId(2));
        assert_eq!(r.len(), 3 * 64);
        assert!(r.walk("some-key").all(|w| w != WorkerId(2)));
    }

    #[test]
    fn vnodes_balance_key_ownership() {
        // with 64 vnodes, 4 members own reasonably even key shares —
        // the property the shard router depends on
        let mut r = HashRing::with_replicas(64);
        for i in 0..4 {
            r.add(WorkerId(i));
        }
        let mut counts = [0usize; 4];
        for i in 0..4000 {
            let w = r.walk(&format!("key-{i}")).next().unwrap();
            counts[w.0 as usize] += 1;
        }
        for (i, c) in counts.iter().enumerate() {
            assert!((400..=2200).contains(c), "member {i} owns {c} of 4000 keys");
        }
    }
}
