//! Incremental placement indexes over the worker ring.
//!
//! The scheduler's placement rule (§3.5.2) is "walk the hash ring from the
//! key's point and take the first worker that fits". Done literally that is
//! an O(workers) scan per decision — the dominant cost at paper scale once
//! the cluster fills up. [`FitIndex`] answers the same query in O(log n):
//!
//! * a segment tree over the ring-ordered workers stores the component-wise
//!   **maximum** of each subtree's available [`Resources`]. A subtree whose
//!   maximum cannot fit the request contains no fitting worker, so whole
//!   ring arcs are pruned at once; descending left-first yields exactly the
//!   first fitting worker in walk order.
//! * a sorted set of *fully free* workers (available == total) answers the
//!   whole-worker-library query ("first completely idle worker from this
//!   point"), which cannot be phrased against a single request vector
//!   because each worker's own total is the request.
//!
//! Both structures are maintained by the [`crate::Manager`] at every point
//! a worker's availability changes; membership changes rebuild in O(n)
//! (worker joins/leaves are rare next to scheduling decisions).

use std::collections::{BTreeMap, BTreeSet};
use vine_core::ids::WorkerId;
use vine_core::resources::Resources;

/// First-fit-by-ring-order index. Leaves mirror [`crate::HashRing::points`].
#[derive(Debug, Default)]
pub struct FitIndex {
    /// Ring-ordered (point, worker) leaves, identical to the ring's points.
    leaves: Vec<(u64, WorkerId)>,
    pos: BTreeMap<WorkerId, usize>,
    /// Available resources per leaf.
    avail: Vec<Resources>,
    /// Segment tree of component-wise maxima (1-indexed, recursive layout).
    tree: Vec<Resources>,
    /// Fully free workers (available == total) in ring order.
    free: BTreeSet<(u64, WorkerId)>,
}

impl FitIndex {
    pub fn new() -> FitIndex {
        FitIndex::default()
    }

    /// Rebuild from the ring's point list; `lookup` returns each worker's
    /// (available, total).
    pub fn rebuild(
        &mut self,
        points: &[(u64, WorkerId)],
        mut lookup: impl FnMut(WorkerId) -> (Resources, Resources),
    ) {
        self.leaves = points.to_vec();
        self.pos = self
            .leaves
            .iter()
            .enumerate()
            .map(|(i, (_, w))| (*w, i))
            .collect();
        self.avail = Vec::with_capacity(self.leaves.len());
        self.free.clear();
        for &(p, w) in &self.leaves {
            let (avail, total) = lookup(w);
            if avail == total {
                self.free.insert((p, w));
            }
            self.avail.push(avail);
        }
        let n = self.leaves.len();
        self.tree = vec![Resources::ZERO; 4 * n.max(1)];
        if n > 0 {
            self.build(1, 0, n);
        }
    }

    fn build(&mut self, node: usize, nl: usize, nr: usize) {
        if nr - nl == 1 {
            self.tree[node] = self.avail[nl];
            return;
        }
        let mid = (nl + nr) / 2;
        self.build(2 * node, nl, mid);
        self.build(2 * node + 1, mid, nr);
        self.tree[node] = self.tree[2 * node].max(&self.tree[2 * node + 1]);
    }

    /// A worker's availability changed.
    pub fn update(&mut self, worker: WorkerId, avail: Resources, total: Resources) {
        let Some(&i) = self.pos.get(&worker) else {
            return;
        };
        self.avail[i] = avail;
        let pair = self.leaves[i];
        if avail == total {
            self.free.insert(pair);
        } else {
            self.free.remove(&pair);
        }
        self.point_update(1, 0, self.leaves.len(), i);
    }

    fn point_update(&mut self, node: usize, nl: usize, nr: usize, i: usize) {
        if nr - nl == 1 {
            self.tree[node] = self.avail[nl];
            return;
        }
        let mid = (nl + nr) / 2;
        if i < mid {
            self.point_update(2 * node, nl, mid, i);
        } else {
            self.point_update(2 * node + 1, mid, nr, i);
        }
        self.tree[node] = self.tree[2 * node].max(&self.tree[2 * node + 1]);
    }

    /// First worker in ring order from leaf `start` (wrapping) whose
    /// available resources fit `want` — identical to
    /// `ring.walk(key).find(|w| avail[w].can_fit(want))`.
    pub fn first_fit(&self, start: usize, want: &Resources) -> Option<WorkerId> {
        let n = self.leaves.len();
        if n == 0 {
            return None;
        }
        let start = start % n;
        self.range_first(1, 0, n, start, n, want)
            .or_else(|| self.range_first(1, 0, n, 0, start, want))
            .map(|i| self.leaves[i].1)
    }

    fn range_first(
        &self,
        node: usize,
        nl: usize,
        nr: usize,
        l: usize,
        r: usize,
        want: &Resources,
    ) -> Option<usize> {
        if r <= nl || nr <= l || !self.tree[node].can_fit(want) {
            return None;
        }
        if nr - nl == 1 {
            return Some(nl);
        }
        let mid = (nl + nr) / 2;
        self.range_first(2 * node, nl, mid, l, r, want)
            .or_else(|| self.range_first(2 * node + 1, mid, nr, l, r, want))
    }

    /// First *fully free* worker in ring order from leaf `start`, wrapping —
    /// the whole-worker-library placement query.
    pub fn first_free(&self, start: usize) -> Option<WorkerId> {
        let n = self.leaves.len();
        if n == 0 {
            return None;
        }
        let from = self.leaves[start % n];
        self.free
            .range(from..)
            .next()
            .or_else(|| self.free.range(..from).next())
            .map(|&(_, w)| w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn points(n: u32) -> Vec<(u64, WorkerId)> {
        // arbitrary distinct points; sorted as the ring keeps them
        let mut v: Vec<(u64, WorkerId)> = (0..n)
            .map(|i| {
                (
                    u64::from(i).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                    WorkerId(i),
                )
            })
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn first_fit_matches_linear_scan() {
        let pts = points(13);
        let mut avail: BTreeMap<WorkerId, Resources> = BTreeMap::new();
        for (i, (_, w)) in pts.iter().enumerate() {
            avail.insert(
                *w,
                Resources::new(i as u32 % 5, 1024 * (i as u64 % 3), 4096),
            );
        }
        let total = Resources::new(8, 4096, 4096);
        let mut idx = FitIndex::new();
        idx.rebuild(&pts, |w| (avail[&w], total));
        let want = Resources::new(2, 1024, 0);
        for start in 0..pts.len() {
            let linear = (0..pts.len())
                .map(|k| pts[(start + k) % pts.len()].1)
                .find(|w| avail[w].can_fit(&want));
            assert_eq!(idx.first_fit(start, &want), linear, "start {start}");
        }
    }

    #[test]
    fn update_moves_workers_in_and_out_of_free_set() {
        let pts = points(4);
        let total = Resources::new(4, 100, 100);
        let mut idx = FitIndex::new();
        idx.rebuild(&pts, |_| (total, total));
        // everyone free: the first from any start is that leaf itself
        for (s, pt) in pts.iter().enumerate() {
            assert_eq!(idx.first_free(s), Some(pt.1));
        }
        // occupy leaf 1
        idx.update(pts[1].1, Resources::new(1, 50, 50), total);
        assert_eq!(idx.first_free(1), Some(pts[2].1));
        assert_eq!(idx.first_fit(1, &Resources::new(4, 0, 0)), Some(pts[2].1));
        assert_eq!(idx.first_fit(1, &Resources::new(1, 10, 10)), Some(pts[1].1));
        // release it again
        idx.update(pts[1].1, total, total);
        assert_eq!(idx.first_free(1), Some(pts[1].1));
    }

    #[test]
    fn empty_index_finds_nothing() {
        let idx = FitIndex::new();
        assert_eq!(idx.first_fit(0, &Resources::ZERO), None);
        assert_eq!(idx.first_free(0), None);
    }

    #[test]
    fn max_bound_prunes_but_leaf_check_is_exact() {
        // component-wise max across two workers can fit a request neither
        // worker fits alone — the descent must reject both at the leaves
        let pts = points(2);
        let mut idx = FitIndex::new();
        let a = Resources::new(8, 0, 0);
        let b = Resources::new(0, 8192, 0);
        let total = Resources::new(8, 8192, 0);
        let avail = BTreeMap::from([(pts[0].1, a), (pts[1].1, b)]);
        idx.rebuild(&pts, |w| (avail[&w], total));
        assert_eq!(idx.first_fit(0, &Resources::new(8, 8192, 0)), None);
        assert_eq!(idx.first_fit(0, &Resources::new(8, 0, 0)), Some(pts[0].1));
    }
}
