//! The manager state machine.
//!
//! Scheduling is driven by [`Manager::next_decision`], which at paper scale
//! is called hundreds of thousands of times per run — once per decision
//! *and* once per wake that finds nothing to do. Every query it makes is
//! therefore backed by an incrementally-maintained index instead of a scan:
//!
//! * `unknown_pending` — libraries with queued calls but no registered
//!   spec (step 1, fail-fast);
//! * `dispatchable` — libraries with queued calls *and* a ready instance
//!   with a free slot (step 2);
//! * `demand_over` — libraries whose queue length exceeds their promised
//!   slot supply (steps 4 and 5);
//! * [`crate::index::FitIndex`] — first-fit worker lookup in ring order
//!   (steps 3 and 4), replacing the O(workers) ring walk;
//! * `file_holders` — reverse content-hash → workers index, so the
//!   substrate's peer-source selection does not scan every worker cache.
//!
//! All indexes are derived state: `reindex_lib` recomputes a library's
//! membership from the ground-truth maps whenever one of its inputs
//! changes, so decision *order* is bit-identical to the retained
//! scan-based reference in [`crate::reference`] (property-tested in
//! `tests/differential.rs`).

use crate::index::FitIndex;
use crate::ring::HashRing;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;
use vine_core::context::{FileRef, LibrarySpec};
use vine_core::ids::{ContentHash, LibraryInstanceId, WorkerId};
use vine_core::resources::Resources;
use vine_core::task::{FunctionCall, TaskSpec, UnitId, WorkUnit};
use vine_core::{Result, VineError};
use vine_worker::WorkerState;

/// Where a running unit lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Placement {
    pub worker: WorkerId,
    pub library: Option<LibraryInstanceId>,
}

/// A scheduling decision. Bookkeeping is applied by the manager the moment
/// the decision is emitted; the substrate realizes it with time and I/O.
#[derive(Clone, Debug, PartialEq)]
pub enum Decision {
    /// Stage `missing` files to `worker`, then boot a library instance and
    /// run its context setup. The instance is `Starting` until the
    /// substrate reports [`Manager::library_ready`]. The spec is shared
    /// (specs carry the whole context file list; installs must not deep-
    /// clone it).
    InstallLibrary {
        worker: WorkerId,
        instance: LibraryInstanceId,
        spec: Arc<LibrarySpec>,
        missing: Vec<FileRef>,
    },
    /// Remove an empty library to reclaim resources for another library's
    /// work (§3.5.2).
    EvictLibrary {
        worker: WorkerId,
        instance: LibraryInstanceId,
        library_name: String,
    },
    /// Send an invocation to a ready library instance (§3.4 step 3).
    DispatchCall {
        worker: WorkerId,
        library: LibraryInstanceId,
        call: FunctionCall,
    },
    /// Send a stateless task to a worker, staging `missing` cacheable
    /// inputs first. Entries whose staging failed worker-side (cache full)
    /// are flagged `cache: false` — the file still moves, but into the
    /// sandbox only.
    DispatchTask {
        worker: WorkerId,
        task: TaskSpec,
        missing: Vec<FileRef>,
    },
    /// A unit is unschedulable forever (e.g. unknown library).
    Fail { unit: UnitId, error: String },
}

/// Per-library index of instances with free slots.
type SlotIndex = BTreeMap<String, BTreeMap<(WorkerId, LibraryInstanceId), u32>>;

/// The manager.
pub struct Manager {
    specs: BTreeMap<String, Arc<LibrarySpec>>,
    pub workers: BTreeMap<WorkerId, WorkerState>,
    ring: HashRing,
    /// First-fit worker lookup mirroring `ring` (kept in sync with every
    /// change to a worker's `available`).
    fit: FitIndex,
    queue_tasks: VecDeque<TaskSpec>,
    queue_calls: BTreeMap<String, VecDeque<FunctionCall>>,
    /// Total calls across `queue_calls` (so `pending` is O(1)).
    queued_calls: usize,
    running: BTreeMap<UnitId, Placement>,
    /// Ready instances with free slots, per library.
    ready_slots: SlotIndex,
    /// Slots promised per library: all slots of Starting instances plus
    /// free slots of Ready ones. Controls when another instance is worth
    /// installing.
    pending_supply: BTreeMap<String, i64>,
    instance_owner: BTreeMap<LibraryInstanceId, WorkerId>,
    next_instance: u64,
    /// Completed units (telemetry).
    pub completed: u64,
    /// Libraries with queued calls and no registered spec.
    unknown_pending: BTreeSet<String>,
    /// Libraries with queued calls and a ready free slot.
    dispatchable: BTreeSet<String>,
    /// Libraries with queued calls exceeding promised supply.
    demand_over: BTreeSet<String>,
    /// Workers that ever staged each file. Superset of current holders
    /// (caches evict internally); [`Manager::holders_of`] verifies against
    /// the actual cache.
    file_holders: BTreeMap<ContentHash, BTreeSet<WorkerId>>,
}

impl Default for Manager {
    fn default() -> Self {
        Self::new()
    }
}

impl Manager {
    pub fn new() -> Manager {
        Manager {
            specs: BTreeMap::new(),
            workers: BTreeMap::new(),
            ring: HashRing::new(),
            fit: FitIndex::new(),
            queue_tasks: VecDeque::new(),
            queue_calls: BTreeMap::new(),
            queued_calls: 0,
            running: BTreeMap::new(),
            ready_slots: BTreeMap::new(),
            pending_supply: BTreeMap::new(),
            instance_owner: BTreeMap::new(),
            next_instance: 0,
            completed: 0,
            unknown_pending: BTreeSet::new(),
            dispatchable: BTreeSet::new(),
            demand_over: BTreeSet::new(),
            file_holders: BTreeMap::new(),
        }
    }

    /// Register a library template (`manager.install_library` in Fig 5).
    pub fn register_library(&mut self, spec: LibrarySpec) {
        let name = spec.name.clone();
        self.specs.insert(name.clone(), Arc::new(spec));
        self.reindex_lib(&name);
    }

    pub fn library_spec(&self, name: &str) -> Option<&LibrarySpec> {
        self.specs.get(name).map(|s| s.as_ref())
    }

    // ---- index maintenance ----

    /// Recompute `name`'s membership in the scheduling indexes from the
    /// ground-truth maps. Called whenever its queue, spec, slots, or
    /// supply change.
    fn reindex_lib(&mut self, name: &str) {
        let qlen = self.queue_calls.get(name).map_or(0, |q| q.len());
        let known = self.specs.contains_key(name);
        let has_slot = self.ready_slots.get(name).is_some_and(|m| !m.is_empty());
        let supply = self.pending_supply.get(name).copied().unwrap_or(0);
        Self::set_membership(&mut self.unknown_pending, name, qlen > 0 && !known);
        Self::set_membership(&mut self.dispatchable, name, qlen > 0 && has_slot);
        Self::set_membership(
            &mut self.demand_over,
            name,
            qlen > 0 && known && (qlen as i64) > supply,
        );
    }

    fn set_membership(set: &mut BTreeSet<String>, name: &str, member: bool) {
        if member {
            if !set.contains(name) {
                set.insert(name.to_string());
            }
        } else {
            set.remove(name);
        }
    }

    /// A worker's availability changed; refresh the first-fit index.
    fn refresh_fit(&mut self, worker: WorkerId) {
        if let Some(ws) = self.workers.get(&worker) {
            self.fit.update(worker, ws.available, ws.total);
        }
    }

    /// Ring membership changed; rebuild the first-fit index.
    fn rebuild_fit(&mut self) {
        let workers = &self.workers;
        self.fit.rebuild(self.ring.points(), |w| {
            let ws = &workers[&w];
            (ws.available, ws.total)
        });
    }

    // ---- membership ----

    pub fn worker_joined(&mut self, id: WorkerId, resources: Resources) {
        self.workers.insert(id, WorkerState::new(id, resources));
        self.ring.add(id);
        self.rebuild_fit();
    }

    /// A worker died or disconnected. Its running units are requeued (at
    /// the front — they have waited longest) and returned so the substrate
    /// can cancel in-flight activity.
    pub fn worker_left(&mut self, id: WorkerId) -> Vec<UnitId> {
        self.ring.remove(id);
        let Some(state) = self.workers.remove(&id) else {
            self.rebuild_fit();
            return Vec::new();
        };
        // drop instance bookkeeping
        let mut touched: Vec<String> = Vec::new();
        for (iid, inst) in &state.libraries {
            self.instance_owner.remove(iid);
            if let Some(m) = self.ready_slots.get_mut(&inst.spec.name) {
                m.remove(&(id, *iid));
            }
            // Starting instances count all their slots as free, so this
            // reclaims exactly what the install promised
            let supply = self
                .pending_supply
                .entry(inst.spec.name.clone())
                .or_insert(0);
            *supply -= i64::from(inst.free_slots());
            touched.push(inst.spec.name.clone());
        }
        for name in touched {
            self.reindex_lib(&name);
        }
        // the holders index never resurrects a dead worker (holders_of
        // verifies liveness anyway, but keep the sets tight)
        self.file_holders.retain(|_, ws| {
            ws.remove(&id);
            !ws.is_empty()
        });
        self.rebuild_fit();
        // requeue its running units
        let lost: Vec<UnitId> = self
            .running
            .iter()
            .filter(|(_, p)| p.worker == id)
            .map(|(u, _)| *u)
            .collect();
        for unit in &lost {
            self.running.remove(unit);
        }
        lost
    }

    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Workers currently holding `hash` in cache, ascending by id — backed
    /// by the reverse file index, verified against the live cache (workers
    /// evict internally, so the index alone is a superset).
    pub fn holders_of(&self, hash: ContentHash) -> impl Iterator<Item = WorkerId> + '_ {
        self.file_holders
            .get(&hash)
            .into_iter()
            .flatten()
            .copied()
            .filter(move |w| {
                self.workers
                    .get(w)
                    .is_some_and(|ws| ws.cache.contains(hash))
            })
    }

    // ---- submission ----

    pub fn submit(&mut self, unit: WorkUnit) {
        match unit {
            WorkUnit::Task(t) => self.queue_tasks.push_back(t),
            WorkUnit::Call(c) => {
                let lib = c.library.clone();
                self.queue_calls
                    .entry(lib.clone())
                    .or_default()
                    .push_back(c);
                self.queued_calls += 1;
                self.reindex_lib(&lib);
            }
        }
    }

    /// Requeue a unit at the front (fault recovery).
    pub fn requeue(&mut self, unit: WorkUnit) {
        match unit {
            WorkUnit::Task(t) => self.queue_tasks.push_front(t),
            WorkUnit::Call(c) => {
                let lib = c.library.clone();
                self.queue_calls
                    .entry(lib.clone())
                    .or_default()
                    .push_front(c);
                self.queued_calls += 1;
                self.reindex_lib(&lib);
            }
        }
    }

    /// Units waiting + running (drives the paper's scale-dependent manager
    /// bookkeeping cost).
    pub fn pending(&self) -> usize {
        self.queue_tasks.len() + self.queued_calls + self.running.len()
    }

    pub fn queued(&self) -> usize {
        self.queue_tasks.len() + self.queued_calls
    }

    pub fn running_count(&self) -> usize {
        self.running.len()
    }

    pub fn is_idle(&self) -> bool {
        self.queued() == 0 && self.running.is_empty()
    }

    // ---- scheduling ----

    /// Produce the next scheduling decision, applying its bookkeeping.
    /// Returns `None` when nothing can progress until an event arrives.
    pub fn next_decision(&mut self) -> Option<Decision> {
        // 1. unknown-library calls fail fast
        if let Some(d) = self.fail_unknown_library() {
            return Some(d);
        }
        // 2. dispatch a call into an existing free slot
        if let Some(d) = self.dispatch_call() {
            return Some(d);
        }
        // 3. dispatch a stateless task
        if let Some(d) = self.dispatch_task() {
            return Some(d);
        }
        // 4. install more library instances where demand exceeds supply
        if let Some(d) = self.install_library() {
            return Some(d);
        }
        // 5. evict an empty library blocking another library's demand
        self.evict_for_demand()
    }

    fn fail_unknown_library(&mut self) -> Option<Decision> {
        let lib = self.unknown_pending.first()?.clone();
        let call = self.queue_calls.get_mut(&lib).unwrap().pop_front().unwrap();
        self.queued_calls -= 1;
        self.reindex_lib(&lib);
        Some(Decision::Fail {
            unit: UnitId::Call(call.id),
            error: format!("unknown library: {lib}"),
        })
    }

    fn dispatch_call(&mut self) -> Option<Decision> {
        // the first library (BTreeSet order: deterministic, same as the
        // name-ordered scan it replaces) with both queued calls and a free
        // slot
        let lib_name = self.dispatchable.first()?.clone();
        let key = *self.ready_slots[&lib_name]
            .keys()
            .next()
            .expect("dispatchable index promised a free slot");
        let (worker, instance) = key;
        let call = self
            .queue_calls
            .get_mut(&lib_name)
            .unwrap()
            .pop_front()
            .unwrap();
        self.queued_calls -= 1;

        let w = self
            .workers
            .get_mut(&worker)
            .expect("indexed worker exists");
        w.begin_call(instance, &call)
            .expect("slot index promised a free slot");
        self.consume_slot(&lib_name, worker, instance);
        *self.pending_supply.entry(lib_name.clone()).or_insert(0) -= 1;
        self.reindex_lib(&lib_name);
        self.running.insert(
            UnitId::Call(call.id),
            Placement {
                worker,
                library: Some(instance),
            },
        );
        Some(Decision::DispatchCall {
            worker,
            library: instance,
            call,
        })
    }

    fn dispatch_task(&mut self) -> Option<Decision> {
        let task = self.queue_tasks.front()?;
        let worker = self
            .fit
            .first_fit(self.ring.start_index(&task.name), &task.resources)?;
        let task = self.queue_tasks.pop_front().unwrap();
        let w = self.workers.get_mut(&worker).unwrap();
        // stage cacheable inputs into the view-cache optimistically: the
        // decision's `missing` list is what the substrate must move
        let mut missing: Vec<FileRef> = task
            .inputs
            .iter()
            .filter(|f| f.cache && !w.cache.contains(f.hash))
            .cloned()
            .collect();
        let mut arrived: Vec<ContentHash> = Vec::new();
        for f in &mut missing {
            if w.file_arrived(f.hash, f.materialized_bytes()).is_err() {
                // cache thrashing: the worker cannot hold this file, so the
                // staged copy goes straight into the sandbox — mark it
                // uncacheable in the decision so the substrate (and any
                // retry) does not keep treating it as a future cache hit
                f.cache = false;
            } else {
                arrived.push(f.hash);
            }
        }
        w.begin_task(&task).expect("resources were checked");
        for h in arrived {
            self.file_holders.entry(h).or_default().insert(worker);
        }
        self.refresh_fit(worker);
        self.running.insert(
            UnitId::Task(task.id),
            Placement {
                worker,
                library: None,
            },
        );
        Some(Decision::DispatchTask {
            worker,
            task,
            missing,
        })
    }

    fn demand_exceeding_supply(&self) -> Option<String> {
        self.demand_over.first().cloned()
    }

    fn install_library(&mut self) -> Option<Decision> {
        let lib_name = self.demand_exceeding_supply()?;
        let spec = Arc::clone(&self.specs[&lib_name]);
        let per_invocation = self.queue_calls[&lib_name]
            .front()
            .map(|c| c.resources)
            .unwrap_or_default();

        // whole-worker libraries (spec.resources == None) need a fully
        // free worker; sized libraries need their allocation to fit
        let start = self.ring.start_index(&lib_name);
        let worker = match spec.resources {
            Some(r) => self.fit.first_fit(start, &r),
            None => self.fit.first_free(start),
        }?;

        let instance = LibraryInstanceId(self.next_instance);
        self.next_instance += 1;

        let w = self.workers.get_mut(&worker).unwrap();
        let missing: Vec<FileRef> = spec
            .context
            .files()
            .filter(|f| !w.cache.contains(f.hash))
            .cloned()
            .collect();
        let mut arrived: Vec<ContentHash> = Vec::new();
        let mut staged_ok = true;
        for f in spec.context.files() {
            if w.file_arrived(f.hash, f.materialized_bytes()).is_err() {
                staged_ok = false;
                break;
            }
            arrived.push(f.hash);
        }
        for h in arrived {
            self.file_holders.entry(h).or_default().insert(worker);
        }
        if !staged_ok {
            return None;
        }
        let w = self.workers.get_mut(&worker).unwrap();
        let inst = w
            .install_library(instance, Arc::clone(&spec), &per_invocation)
            .ok()?;
        let slots = inst.slots;
        self.refresh_fit(worker);
        self.instance_owner.insert(instance, worker);
        *self.pending_supply.entry(lib_name.clone()).or_insert(0) += i64::from(slots);
        self.reindex_lib(&lib_name);
        Some(Decision::InstallLibrary {
            worker,
            instance,
            spec,
            missing,
        })
    }

    fn evict_for_demand(&mut self) -> Option<Decision> {
        // eviction only ever helps when a *different* library's instance
        // could be holding resources — with a single registered library
        // the scan below can never find a victim, so skip it (hot path:
        // this runs on every manager wake while demand is queued)
        if self.specs.len() < 2 {
            return None;
        }
        let needy = self.demand_exceeding_supply()?;
        // find an empty instance of a *different* library
        let victim = self.workers.values().find_map(|w| {
            w.empty_libraries().into_iter().find_map(|iid| {
                let inst = &w.libraries[&iid];
                if inst.spec.name != needy {
                    Some((w.id, iid, inst.spec.name.clone()))
                } else {
                    None
                }
            })
        })?;
        let (worker, instance, library_name) = victim;
        self.remove_instance(worker, instance)
            .expect("victim instance exists and is empty");
        Some(Decision::EvictLibrary {
            worker,
            instance,
            library_name,
        })
    }

    fn consume_slot(&mut self, lib: &str, worker: WorkerId, instance: LibraryInstanceId) {
        if let Some(slots) = self.ready_slots.get_mut(lib) {
            if let Some(free) = slots.get_mut(&(worker, instance)) {
                *free -= 1;
                if *free == 0 {
                    slots.remove(&(worker, instance));
                }
            }
        }
    }

    fn return_slot(&mut self, lib: &str, worker: WorkerId, instance: LibraryInstanceId) {
        *self
            .ready_slots
            .entry(lib.to_string())
            .or_default()
            .entry((worker, instance))
            .or_insert(0) += 1;
    }

    fn remove_instance(
        &mut self,
        worker: WorkerId,
        instance: LibraryInstanceId,
    ) -> Result<vine_worker::LibraryInstance> {
        let w = self
            .workers
            .get_mut(&worker)
            .ok_or_else(|| VineError::Protocol(format!("no worker {worker}")))?;
        let inst = w.remove_library(instance)?;
        let name = inst.spec.name.clone();
        self.refresh_fit(worker);
        self.instance_owner.remove(&instance);
        if let Some(m) = self.ready_slots.get_mut(&name) {
            m.remove(&(worker, instance));
        }
        *self.pending_supply.entry(name.clone()).or_insert(0) -= i64::from(inst.free_slots());
        self.reindex_lib(&name);
        Ok(inst)
    }

    // ---- substrate events ----

    /// The substrate finished booting a library and its context setup
    /// succeeded (§3.4 step 2).
    pub fn library_ready(&mut self, worker: WorkerId, instance: LibraryInstanceId) -> Result<()> {
        let w = self
            .workers
            .get_mut(&worker)
            .ok_or_else(|| VineError::Protocol(format!("no worker {worker}")))?;
        w.library_ready(instance)?;
        let inst = &w.libraries[&instance];
        let name = inst.spec.name.clone();
        let slots = inst.slots;
        self.ready_slots
            .entry(name.clone())
            .or_default()
            .insert((worker, instance), slots);
        self.reindex_lib(&name);
        Ok(())
    }

    /// Context setup failed; the instance is removed and its resources
    /// reclaimed.
    pub fn library_startup_failed(
        &mut self,
        worker: WorkerId,
        instance: LibraryInstanceId,
    ) -> Result<()> {
        let w = self
            .workers
            .get_mut(&worker)
            .ok_or_else(|| VineError::Protocol(format!("no worker {worker}")))?;
        w.library_failed(instance)?;
        self.remove_instance(worker, instance)?;
        Ok(())
    }

    /// A dispatched unit finished (successfully or not); frees its slot or
    /// resources.
    pub fn unit_finished(&mut self, unit: UnitId) -> Result<Placement> {
        let placement = self
            .running
            .remove(&unit)
            .ok_or_else(|| VineError::Protocol(format!("{unit:?} is not running")))?;
        let w = self
            .workers
            .get_mut(&placement.worker)
            .ok_or_else(|| VineError::Protocol(format!("no worker {}", placement.worker)))?;
        match (unit, placement.library) {
            (UnitId::Call(id), Some(lib)) => {
                w.finish_call(lib, id)?;
                let name = w.libraries[&lib].spec.name.clone();
                self.return_slot(&name, placement.worker, lib);
                *self.pending_supply.entry(name.clone()).or_insert(0) += 1;
                self.reindex_lib(&name);
            }
            (UnitId::Task(id), _) => {
                w.finish_task(id)?;
                self.refresh_fit(placement.worker);
            }
            (UnitId::Call(id), None) => {
                return Err(VineError::Internal(format!(
                    "call {id} ran without a library"
                )))
            }
        }
        self.completed += 1;
        Ok(placement)
    }

    /// Explicitly remove an idle library (application-driven uninstall).
    pub fn evict_instance(&mut self, worker: WorkerId, instance: LibraryInstanceId) -> Result<()> {
        self.remove_instance(worker, instance).map(|_| ())
    }

    /// All deployed instances (telemetry for Figs 10 & 11).
    pub fn instances(&self) -> impl Iterator<Item = (WorkerId, &vine_worker::LibraryInstance)> {
        self.workers
            .values()
            .flat_map(|w| w.libraries.values().map(move |l| (w.id, l)))
    }

    pub fn placement_of(&self, unit: UnitId) -> Option<Placement> {
        self.running.get(&unit).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vine_core::context::ContextSpec;
    use vine_core::ids::{ContentHash, FileId, InvocationId, TaskId};

    fn lnni_spec() -> LibrarySpec {
        let mut spec = LibrarySpec::new("lnni");
        spec.functions = vec!["infer".into()];
        spec.context = ContextSpec {
            environment: Some(FileRef::new(
                FileId(1),
                "env.tar",
                ContentHash::of_str("env"),
                572,
            )),
            ..Default::default()
        };
        spec
    }

    fn call(i: u64) -> WorkUnit {
        let mut c = FunctionCall::new(InvocationId(i), "lnni", "infer", vec![]);
        c.resources = Resources::lnni_invocation();
        WorkUnit::Call(c)
    }

    fn manager_with_workers(n: u32) -> Manager {
        let mut m = Manager::new();
        m.register_library(lnni_spec());
        for i in 0..n {
            m.worker_joined(WorkerId(i), Resources::paper_worker());
        }
        m
    }

    /// Drive decisions, immediately acking installs as ready.
    fn drain(m: &mut Manager) -> Vec<Decision> {
        let mut out = Vec::new();
        while let Some(d) = m.next_decision() {
            if let Decision::InstallLibrary {
                worker, instance, ..
            } = &d
            {
                m.library_ready(*worker, *instance).unwrap();
            }
            out.push(d);
            if out.len() > 10_000 {
                panic!("runaway decision loop");
            }
        }
        out
    }

    #[test]
    fn install_then_dispatch_flow() {
        let mut m = manager_with_workers(1);
        m.submit(call(1));
        // first decision: install (no instance exists)
        let d = m.next_decision().unwrap();
        let (worker, instance) = match &d {
            Decision::InstallLibrary {
                worker,
                instance,
                missing,
                ..
            } => {
                assert_eq!(missing.len(), 1, "env must be staged");
                (*worker, *instance)
            }
            other => panic!("expected install, got {other:?}"),
        };
        // the call cannot dispatch while the library is Starting
        assert!(m.next_decision().is_none());
        m.library_ready(worker, instance).unwrap();
        match m.next_decision().unwrap() {
            Decision::DispatchCall { library, call, .. } => {
                assert_eq!(library, instance);
                assert_eq!(call.id, InvocationId(1));
            }
            other => panic!("expected dispatch, got {other:?}"),
        }
        assert_eq!(m.running_count(), 1);
        m.unit_finished(UnitId::Call(InvocationId(1))).unwrap();
        assert_eq!(m.completed, 1);
        assert!(m.is_idle());
    }

    #[test]
    fn second_install_reuses_cached_files() {
        let mut m = manager_with_workers(1);
        m.submit(call(1));
        let decisions = drain(&mut m);
        m.unit_finished(UnitId::Call(InvocationId(1))).unwrap();
        let Decision::InstallLibrary {
            worker, instance, ..
        } = &decisions[0]
        else {
            panic!()
        };
        // evict, then demand again: the env file is already cached
        m.evict_instance(*worker, *instance).unwrap();
        m.submit(call(2));
        match m.next_decision().unwrap() {
            Decision::InstallLibrary { missing, .. } => {
                assert!(missing.is_empty(), "env already on worker");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn slots_fill_one_worker_before_installing_more() {
        let mut m = manager_with_workers(4);
        for i in 0..16 {
            m.submit(call(i));
        }
        let decisions = drain(&mut m);
        let installs = decisions
            .iter()
            .filter(|d| matches!(d, Decision::InstallLibrary { .. }))
            .count();
        let dispatches = decisions
            .iter()
            .filter(|d| matches!(d, Decision::DispatchCall { .. }))
            .count();
        // 16 calls fit in one whole-worker library with 16 slots
        assert_eq!(installs, 1);
        assert_eq!(dispatches, 16);
    }

    #[test]
    fn demand_spreads_across_workers() {
        let mut m = manager_with_workers(4);
        for i in 0..64 {
            m.submit(call(i));
        }
        let decisions = drain(&mut m);
        let installs: Vec<WorkerId> = decisions
            .iter()
            .filter_map(|d| match d {
                Decision::InstallLibrary { worker, .. } => Some(*worker),
                _ => None,
            })
            .collect();
        assert_eq!(installs.len(), 4, "64 calls need 4 × 16 slots");
        let mut unique = installs.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 4, "one instance per worker");
        assert_eq!(m.running_count(), 64);
    }

    #[test]
    fn completion_frees_slot_for_next_call() {
        let mut m = manager_with_workers(1);
        for i in 0..17 {
            m.submit(call(i));
        }
        drain(&mut m);
        assert_eq!(m.running_count(), 16);
        assert_eq!(m.queued(), 1);
        m.unit_finished(UnitId::Call(InvocationId(0))).unwrap();
        match m.next_decision().unwrap() {
            Decision::DispatchCall { call, .. } => assert_eq!(call.id, InvocationId(16)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_library_fails_fast() {
        let mut m = manager_with_workers(1);
        m.submit(WorkUnit::Call(FunctionCall::new(
            InvocationId(9),
            "ghost",
            "f",
            vec![],
        )));
        match m.next_decision().unwrap() {
            Decision::Fail { unit, error } => {
                assert_eq!(unit, UnitId::Call(InvocationId(9)));
                assert!(error.contains("ghost"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn empty_library_evicted_for_other_demand() {
        let mut m = manager_with_workers(1);
        // fill the worker with an idle lnni library
        m.submit(call(1));
        drain(&mut m);
        m.unit_finished(UnitId::Call(InvocationId(1))).unwrap();

        // now demand for a different whole-worker library arrives
        let mut other = LibrarySpec::new("examol");
        other.functions = vec!["simulate".into()];
        m.register_library(other);
        m.submit(WorkUnit::Call(FunctionCall::new(
            InvocationId(2),
            "examol",
            "simulate",
            vec![],
        )));

        let decisions = drain(&mut m);
        assert!(
            matches!(&decisions[0], Decision::EvictLibrary { library_name, .. } if library_name == "lnni"),
            "{decisions:?}"
        );
        assert!(
            matches!(&decisions[1], Decision::InstallLibrary { spec, .. } if spec.name == "examol")
        );
        assert!(matches!(&decisions[2], Decision::DispatchCall { .. }));
    }

    #[test]
    fn busy_library_not_evicted() {
        let mut m = manager_with_workers(1);
        m.submit(call(1));
        drain(&mut m); // lnni running invocation 1

        let mut other = LibrarySpec::new("examol");
        other.functions = vec!["simulate".into()];
        m.register_library(other);
        m.submit(WorkUnit::Call(FunctionCall::new(
            InvocationId(2),
            "examol",
            "simulate",
            vec![],
        )));
        // lnni is busy: nothing can progress
        assert!(m.next_decision().is_none());
        // once idle, eviction unblocks examol
        m.unit_finished(UnitId::Call(InvocationId(1))).unwrap();
        let decisions = drain(&mut m);
        assert!(decisions
            .iter()
            .any(|d| matches!(d, Decision::EvictLibrary { .. })));
    }

    #[test]
    fn task_dispatch_and_finish() {
        let mut m = manager_with_workers(2);
        let mut t = TaskSpec::new(TaskId(1), "wrapped-f");
        t.resources = Resources::lnni_invocation();
        t.inputs = vec![FileRef::new(
            FileId(5),
            "data",
            ContentHash::of_str("data"),
            100,
        )];
        m.submit(WorkUnit::Task(t.clone()));
        match m.next_decision().unwrap() {
            Decision::DispatchTask { missing, .. } => assert_eq!(missing.len(), 1),
            other => panic!("{other:?}"),
        }
        m.unit_finished(UnitId::Task(TaskId(1))).unwrap();

        // second task with the same input: now cached on that worker (the
        // ring walk for the same task name lands on the same worker)
        let mut t2 = t.clone();
        t2.id = TaskId(2);
        m.submit(WorkUnit::Task(t2));
        match m.next_decision().unwrap() {
            Decision::DispatchTask { missing, .. } => {
                assert!(missing.is_empty(), "input cached from task 1");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn worker_loss_requeues_running_units() {
        let mut m = manager_with_workers(1);
        for i in 0..4 {
            m.submit(call(i));
        }
        drain(&mut m);
        assert_eq!(m.running_count(), 4);
        let lost = m.worker_left(WorkerId(0));
        assert_eq!(lost.len(), 4);
        assert_eq!(m.worker_count(), 0);
        assert_eq!(m.running_count(), 0);
        // with no workers nothing schedules
        for unit in lost {
            if let UnitId::Call(id) = unit {
                m.requeue(call(id.0));
            }
        }
        assert!(m.next_decision().is_none());
        // a replacement worker picks the work back up
        m.worker_joined(WorkerId(1), Resources::paper_worker());
        let decisions = drain(&mut m);
        assert_eq!(
            decisions
                .iter()
                .filter(|d| matches!(d, Decision::DispatchCall { .. }))
                .count(),
            4
        );
    }

    #[test]
    fn library_startup_failure_reclaims_resources() {
        let mut m = manager_with_workers(1);
        m.submit(call(1));
        let d = m.next_decision().unwrap();
        let Decision::InstallLibrary {
            worker, instance, ..
        } = d
        else {
            panic!()
        };
        m.library_startup_failed(worker, instance).unwrap();
        assert_eq!(m.workers[&worker].available, Resources::paper_worker());
        // demand still queued: the manager tries again
        match m.next_decision().unwrap() {
            Decision::InstallLibrary { .. } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn pending_counts() {
        let mut m = manager_with_workers(1);
        assert_eq!(m.pending(), 0);
        m.submit(call(1));
        m.submit(call(2));
        assert_eq!(m.pending(), 2);
        drain(&mut m);
        assert_eq!(m.queued(), 0);
        assert_eq!(m.pending(), 2, "running units still pending");
    }

    #[test]
    fn telemetry_instances_and_share() {
        let mut m = manager_with_workers(2);
        for i in 0..20 {
            m.submit(call(i));
        }
        drain(&mut m);
        for i in 0..20 {
            // finish only those actually dispatched
            if m.placement_of(UnitId::Call(InvocationId(i))).is_some() {
                m.unit_finished(UnitId::Call(InvocationId(i))).unwrap();
            }
        }
        let served: u64 = m.instances().map(|(_, l)| l.served).sum();
        assert_eq!(served, m.completed);
        assert!(m.instances().count() >= 1);
    }

    #[test]
    fn staging_failure_marks_file_uncacheable() {
        // worker whose disk (= cache capacity) is 1 MB: a 2 MB input can
        // never be cached, but the task itself fits
        let mut m = Manager::new();
        m.worker_joined(WorkerId(0), Resources::new(32, 64 * 1024, 1));
        let mut t = TaskSpec::new(TaskId(1), "big-input");
        t.resources = Resources::new(1, 1024, 0);
        t.inputs = vec![FileRef::new(
            FileId(9),
            "blob",
            ContentHash::of_str("blob"),
            2 * 1024 * 1024,
        )];
        assert!(t.inputs[0].cache, "input starts cacheable");
        m.submit(WorkUnit::Task(t));
        match m.next_decision().unwrap() {
            Decision::DispatchTask {
                worker, missing, ..
            } => {
                assert_eq!(missing.len(), 1, "the blob must still be staged");
                assert!(
                    !missing[0].cache,
                    "staging failure must mark the file uncacheable"
                );
                assert!(
                    !m.workers[&worker].cache.contains(missing[0].hash),
                    "the cache rejected it"
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn holders_index_tracks_staged_files() {
        let mut m = manager_with_workers(2);
        let mut t = TaskSpec::new(TaskId(1), "wrapped-f");
        t.resources = Resources::lnni_invocation();
        let hash = ContentHash::of_str("data");
        t.inputs = vec![FileRef::new(FileId(5), "data", hash, 100)];
        m.submit(WorkUnit::Task(t));
        let Some(Decision::DispatchTask { worker, .. }) = m.next_decision() else {
            panic!()
        };
        assert_eq!(m.holders_of(hash).collect::<Vec<_>>(), vec![worker]);
        // removing the worker removes it from the index
        m.worker_left(worker);
        assert_eq!(m.holders_of(hash).count(), 0);
    }
}
