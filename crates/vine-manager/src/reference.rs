//! Retained scan-based scheduler, kept as the correctness oracle.
//!
//! [`NaiveManager`] is the pre-index implementation of the manager's
//! scheduling policy: every query in `next_decision` is a linear scan over
//! the ground-truth maps (queues, slot table, ring walk over all workers).
//! It is deliberately *not* optimized — its value is that the policy is
//! spelled out directly, with no derived state that could drift.
//!
//! Two things depend on it:
//!
//! * `tests/differential.rs` drives it and [`crate::Manager`] through
//!   identical randomized operation sequences and asserts the two emit
//!   identical decision sequences;
//! * the `repro perf` self-benchmark measures the indexed manager's
//!   speedup against it.
//!
//! Behavior matches [`crate::Manager`] exactly, including the
//! staging-failure rule (a file the worker's cache rejects is flagged
//! `cache: false` in the emitted decision).

use crate::manager::{Decision, Placement};
use crate::ring::HashRing;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;
use vine_core::context::{FileRef, LibrarySpec};
use vine_core::ids::{LibraryInstanceId, WorkerId};
use vine_core::resources::Resources;
use vine_core::task::{FunctionCall, TaskSpec, UnitId, WorkUnit};
use vine_core::{Result, VineError};
use vine_worker::WorkerState;

/// Per-library index of instances with free slots.
type SlotIndex = BTreeMap<String, BTreeMap<(WorkerId, LibraryInstanceId), u32>>;

/// The scan-based reference manager. Same policy as [`crate::Manager`],
/// O(libraries + workers) per decision.
pub struct NaiveManager {
    specs: BTreeMap<String, Arc<LibrarySpec>>,
    pub workers: BTreeMap<WorkerId, WorkerState>,
    ring: HashRing,
    queue_tasks: VecDeque<TaskSpec>,
    queue_calls: BTreeMap<String, VecDeque<FunctionCall>>,
    running: BTreeMap<UnitId, Placement>,
    ready_slots: SlotIndex,
    pending_supply: BTreeMap<String, i64>,
    instance_owner: BTreeMap<LibraryInstanceId, WorkerId>,
    next_instance: u64,
    pub completed: u64,
}

impl Default for NaiveManager {
    fn default() -> Self {
        Self::new()
    }
}

impl NaiveManager {
    pub fn new() -> NaiveManager {
        NaiveManager {
            specs: BTreeMap::new(),
            workers: BTreeMap::new(),
            ring: HashRing::new(),
            queue_tasks: VecDeque::new(),
            queue_calls: BTreeMap::new(),
            running: BTreeMap::new(),
            ready_slots: BTreeMap::new(),
            pending_supply: BTreeMap::new(),
            instance_owner: BTreeMap::new(),
            next_instance: 0,
            completed: 0,
        }
    }

    pub fn register_library(&mut self, spec: LibrarySpec) {
        self.specs.insert(spec.name.clone(), Arc::new(spec));
    }

    pub fn worker_joined(&mut self, id: WorkerId, resources: Resources) {
        self.workers.insert(id, WorkerState::new(id, resources));
        self.ring.add(id);
    }

    pub fn worker_left(&mut self, id: WorkerId) -> Vec<UnitId> {
        self.ring.remove(id);
        let Some(state) = self.workers.remove(&id) else {
            return Vec::new();
        };
        for (iid, inst) in &state.libraries {
            self.instance_owner.remove(iid);
            if let Some(m) = self.ready_slots.get_mut(&inst.spec.name) {
                m.remove(&(id, *iid));
            }
            let supply = self
                .pending_supply
                .entry(inst.spec.name.clone())
                .or_insert(0);
            *supply -= i64::from(inst.free_slots());
        }
        let lost: Vec<UnitId> = self
            .running
            .iter()
            .filter(|(_, p)| p.worker == id)
            .map(|(u, _)| *u)
            .collect();
        for unit in &lost {
            self.running.remove(unit);
        }
        lost
    }

    pub fn submit(&mut self, unit: WorkUnit) {
        match unit {
            WorkUnit::Task(t) => self.queue_tasks.push_back(t),
            WorkUnit::Call(c) => self
                .queue_calls
                .entry(c.library.clone())
                .or_default()
                .push_back(c),
        }
    }

    pub fn requeue(&mut self, unit: WorkUnit) {
        match unit {
            WorkUnit::Task(t) => self.queue_tasks.push_front(t),
            WorkUnit::Call(c) => self
                .queue_calls
                .entry(c.library.clone())
                .or_default()
                .push_front(c),
        }
    }

    pub fn pending(&self) -> usize {
        self.queue_tasks.len()
            + self.queue_calls.values().map(|q| q.len()).sum::<usize>()
            + self.running.len()
    }

    pub fn queued(&self) -> usize {
        self.queue_tasks.len() + self.queue_calls.values().map(|q| q.len()).sum::<usize>()
    }

    pub fn running_count(&self) -> usize {
        self.running.len()
    }

    pub fn is_idle(&self) -> bool {
        self.queued() == 0 && self.running.is_empty()
    }

    pub fn next_decision(&mut self) -> Option<Decision> {
        if let Some(d) = self.fail_unknown_library() {
            return Some(d);
        }
        if let Some(d) = self.dispatch_call() {
            return Some(d);
        }
        if let Some(d) = self.dispatch_task() {
            return Some(d);
        }
        if let Some(d) = self.install_library() {
            return Some(d);
        }
        self.evict_for_demand()
    }

    fn fail_unknown_library(&mut self) -> Option<Decision> {
        let lib = self
            .queue_calls
            .iter()
            .find(|(lib, q)| !q.is_empty() && !self.specs.contains_key(*lib))
            .map(|(lib, _)| lib.clone())?;
        let call = self.queue_calls.get_mut(&lib).unwrap().pop_front().unwrap();
        Some(Decision::Fail {
            unit: UnitId::Call(call.id),
            error: format!("unknown library: {lib}"),
        })
    }

    fn dispatch_call(&mut self) -> Option<Decision> {
        let (lib_name, key) = self.ready_slots.iter().find_map(|(name, slots)| {
            let has_queue = self.queue_calls.get(name).is_some_and(|q| !q.is_empty());
            if has_queue {
                slots.keys().next().map(|k| (name.clone(), *k))
            } else {
                None
            }
        })?;
        let (worker, instance) = key;
        let call = self
            .queue_calls
            .get_mut(&lib_name)
            .unwrap()
            .pop_front()
            .unwrap();

        let w = self
            .workers
            .get_mut(&worker)
            .expect("indexed worker exists");
        w.begin_call(instance, &call)
            .expect("slot index promised a free slot");
        self.consume_slot(&lib_name, worker, instance);
        *self.pending_supply.entry(lib_name).or_insert(0) -= 1;
        self.running.insert(
            UnitId::Call(call.id),
            Placement {
                worker,
                library: Some(instance),
            },
        );
        Some(Decision::DispatchCall {
            worker,
            library: instance,
            call,
        })
    }

    fn dispatch_task(&mut self) -> Option<Decision> {
        let task = self.queue_tasks.front()?;
        let worker = self
            .ring
            .walk(&task.name)
            .find(|w| self.workers[w].available.can_fit(&task.resources))?;
        let task = self.queue_tasks.pop_front().unwrap();
        let w = self.workers.get_mut(&worker).unwrap();
        let mut missing: Vec<FileRef> = task
            .inputs
            .iter()
            .filter(|f| f.cache && !w.cache.contains(f.hash))
            .cloned()
            .collect();
        for f in &mut missing {
            if w.file_arrived(f.hash, f.materialized_bytes()).is_err() {
                // cache thrashing: the worker cannot hold this file — mark
                // it uncacheable in the decision (same rule as Manager)
                f.cache = false;
            }
        }
        w.begin_task(&task).expect("resources were checked");
        self.running.insert(
            UnitId::Task(task.id),
            Placement {
                worker,
                library: None,
            },
        );
        Some(Decision::DispatchTask {
            worker,
            task,
            missing,
        })
    }

    fn demand_exceeding_supply(&self) -> Option<String> {
        self.queue_calls.iter().find_map(|(name, q)| {
            let supply = self.pending_supply.get(name).copied().unwrap_or(0);
            if !q.is_empty() && (q.len() as i64) > supply && self.specs.contains_key(name) {
                Some(name.clone())
            } else {
                None
            }
        })
    }

    fn install_library(&mut self) -> Option<Decision> {
        let lib_name = self.demand_exceeding_supply()?;
        let spec = Arc::clone(&self.specs[&lib_name]);
        let per_invocation = self.queue_calls[&lib_name]
            .front()
            .map(|c| c.resources)
            .unwrap_or_default();

        let worker = self.ring.walk(&lib_name).find(|w| {
            let ws = &self.workers[w];
            let want = spec.resources.unwrap_or(ws.total);
            ws.available.can_fit(&want)
        })?;

        let instance = LibraryInstanceId(self.next_instance);
        self.next_instance += 1;

        let w = self.workers.get_mut(&worker).unwrap();
        let missing: Vec<FileRef> = spec
            .context
            .files()
            .filter(|f| !w.cache.contains(f.hash))
            .cloned()
            .collect();
        for f in spec.context.files() {
            w.file_arrived(f.hash, f.materialized_bytes()).ok()?;
        }
        let inst = w
            .install_library(instance, Arc::clone(&spec), &per_invocation)
            .ok()?;
        let slots = inst.slots;
        self.instance_owner.insert(instance, worker);
        *self.pending_supply.entry(lib_name).or_insert(0) += i64::from(slots);
        Some(Decision::InstallLibrary {
            worker,
            instance,
            spec,
            missing,
        })
    }

    fn evict_for_demand(&mut self) -> Option<Decision> {
        if self.specs.len() < 2 {
            return None;
        }
        let needy = self.demand_exceeding_supply()?;
        let victim = self.workers.values().find_map(|w| {
            w.empty_libraries().into_iter().find_map(|iid| {
                let inst = &w.libraries[&iid];
                if inst.spec.name != needy {
                    Some((w.id, iid, inst.spec.name.clone()))
                } else {
                    None
                }
            })
        })?;
        let (worker, instance, library_name) = victim;
        self.remove_instance(worker, instance)
            .expect("victim instance exists and is empty");
        Some(Decision::EvictLibrary {
            worker,
            instance,
            library_name,
        })
    }

    fn consume_slot(&mut self, lib: &str, worker: WorkerId, instance: LibraryInstanceId) {
        if let Some(slots) = self.ready_slots.get_mut(lib) {
            if let Some(free) = slots.get_mut(&(worker, instance)) {
                *free -= 1;
                if *free == 0 {
                    slots.remove(&(worker, instance));
                }
            }
        }
    }

    fn return_slot(&mut self, lib: &str, worker: WorkerId, instance: LibraryInstanceId) {
        *self
            .ready_slots
            .entry(lib.to_string())
            .or_default()
            .entry((worker, instance))
            .or_insert(0) += 1;
    }

    fn remove_instance(
        &mut self,
        worker: WorkerId,
        instance: LibraryInstanceId,
    ) -> Result<vine_worker::LibraryInstance> {
        let w = self
            .workers
            .get_mut(&worker)
            .ok_or_else(|| VineError::Protocol(format!("no worker {worker}")))?;
        let inst = w.remove_library(instance)?;
        self.instance_owner.remove(&instance);
        if let Some(m) = self.ready_slots.get_mut(&inst.spec.name) {
            m.remove(&(worker, instance));
        }
        *self
            .pending_supply
            .entry(inst.spec.name.clone())
            .or_insert(0) -= i64::from(inst.free_slots());
        Ok(inst)
    }

    pub fn library_ready(&mut self, worker: WorkerId, instance: LibraryInstanceId) -> Result<()> {
        let w = self
            .workers
            .get_mut(&worker)
            .ok_or_else(|| VineError::Protocol(format!("no worker {worker}")))?;
        w.library_ready(instance)?;
        let inst = &w.libraries[&instance];
        let name = inst.spec.name.clone();
        let slots = inst.slots;
        self.ready_slots
            .entry(name)
            .or_default()
            .insert((worker, instance), slots);
        Ok(())
    }

    pub fn library_startup_failed(
        &mut self,
        worker: WorkerId,
        instance: LibraryInstanceId,
    ) -> Result<()> {
        let w = self
            .workers
            .get_mut(&worker)
            .ok_or_else(|| VineError::Protocol(format!("no worker {worker}")))?;
        w.library_failed(instance)?;
        self.remove_instance(worker, instance)?;
        Ok(())
    }

    pub fn unit_finished(&mut self, unit: UnitId) -> Result<Placement> {
        let placement = self
            .running
            .remove(&unit)
            .ok_or_else(|| VineError::Protocol(format!("{unit:?} is not running")))?;
        let w = self
            .workers
            .get_mut(&placement.worker)
            .ok_or_else(|| VineError::Protocol(format!("no worker {}", placement.worker)))?;
        match (unit, placement.library) {
            (UnitId::Call(id), Some(lib)) => {
                w.finish_call(lib, id)?;
                let name = w.libraries[&lib].spec.name.clone();
                self.return_slot(&name, placement.worker, lib);
                *self.pending_supply.entry(name).or_insert(0) += 1;
            }
            (UnitId::Task(id), _) => {
                w.finish_task(id)?;
            }
            (UnitId::Call(id), None) => {
                return Err(VineError::Internal(format!(
                    "call {id} ran without a library"
                )))
            }
        }
        self.completed += 1;
        Ok(placement)
    }

    pub fn evict_instance(&mut self, worker: WorkerId, instance: LibraryInstanceId) -> Result<()> {
        self.remove_instance(worker, instance).map(|_| ())
    }

    pub fn placement_of(&self, unit: UnitId) -> Option<Placement> {
        self.running.get(&unit).copied()
    }
}
