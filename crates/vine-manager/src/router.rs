//! The routing tier over N scheduling shards (federated sharding).
//!
//! A thin front-end hashes each submission's **function-context digest**
//! ([`LibrarySpec::routing_digest`]) onto a consistent ring of shards, so
//! every invocation of a hot function lands on the shard where that
//! function's libraries — and the context they retain — already live.
//! Workers are assigned to shards by the same ring, so shard join/leave
//! moves only ~W/N workers and ~K/N keys; everything a departing shard
//! had in flight is requeued through the shards' existing `worker_left`
//! path and re-routed.
//!
//! This type is the pure state machine both substrates share: the
//! simulator drives it directly (`vine_sim::sharded`), and the live
//! `repro route` process wraps it in TCP framing (`vine-proto`'s
//! `Route`/`ShardJoin`/`ShardLeave`/`ShardStats` messages).

use std::collections::BTreeMap;

use crate::ring::HashRing;
use vine_core::context::LibrarySpec;
use vine_core::ids::{ContentHash, ShardId, WorkerId};
use vine_core::task::{UnitId, WorkUnit};

/// Virtual nodes per shard on the routing ring. Shard counts are small
/// (single digits), so without vnodes one arc of the ring could easily
/// own half the key space; 64 points per shard keeps the split even
/// (satellite: "the shard router uses ≥64 vnodes").
pub const SHARD_VNODES: u32 = 64;

/// The routing front-end's state: shard membership ring, per-library
/// routing digests, and the in-flight ledger used to re-route work when a
/// shard dies.
pub struct ShardRouter {
    /// Ring members are shards; the member id namespace is private to
    /// each ring, so reusing the worker-keyed [`HashRing`] (and its vnode
    /// support) for shard ids is safe — the point-string prefix is just a
    /// salt.
    ring: HashRing,
    shards: Vec<ShardId>,
    /// Library name → function-context digest, recorded at registration.
    digests: BTreeMap<String, ContentHash>,
    /// Units routed but not yet completed, per shard — what must be
    /// re-routed if that shard leaves.
    outstanding: BTreeMap<ShardId, BTreeMap<UnitId, WorkUnit>>,
    routed: u64,
    rerouted: u64,
}

impl Default for ShardRouter {
    fn default() -> ShardRouter {
        ShardRouter::new()
    }
}

impl ShardRouter {
    pub fn new() -> ShardRouter {
        ShardRouter::with_vnodes(SHARD_VNODES)
    }

    pub fn with_vnodes(vnodes: u32) -> ShardRouter {
        ShardRouter {
            ring: HashRing::with_replicas(vnodes),
            shards: Vec::new(),
            digests: BTreeMap::new(),
            outstanding: BTreeMap::new(),
            routed: 0,
            rerouted: 0,
        }
    }

    pub fn shard_joined(&mut self, s: ShardId) {
        if !self.shards.contains(&s) {
            self.shards.push(s);
            self.shards.sort_unstable();
            self.ring.add(WorkerId(s.0));
            self.outstanding.entry(s).or_default();
        }
    }

    /// Remove a shard and surrender its in-flight units (in unit-id
    /// order) for re-routing onto the survivors.
    pub fn shard_left(&mut self, s: ShardId) -> Vec<WorkUnit> {
        self.shards.retain(|x| *x != s);
        self.ring.remove(WorkerId(s.0));
        let orphans = self.outstanding.remove(&s).unwrap_or_default();
        self.rerouted += orphans.len() as u64;
        orphans.into_values().collect()
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    pub fn shards(&self) -> impl Iterator<Item = ShardId> + '_ {
        self.shards.iter().copied()
    }

    /// Record a library registration; its routing digest decides which
    /// shard every future invocation of the library lands on.
    pub fn register_library(&mut self, spec: &LibrarySpec) {
        self.digests
            .insert(spec.name.clone(), spec.routing_digest());
    }

    /// The ring position a unit routes from: the registered
    /// function-context digest for calls, the task name for stateless
    /// tasks (same-named tasks share cacheable inputs, so they co-locate).
    fn routing_point(&self, unit: &WorkUnit) -> u64 {
        let digest = match unit {
            WorkUnit::Call(c) => self
                .digests
                .get(&c.library)
                .copied()
                .unwrap_or_else(|| ContentHash::of_str(&c.library)),
            WorkUnit::Task(t) => ContentHash::of_str(&t.name),
        };
        (digest.0 >> 64) as u64
    }

    /// Which shard a unit routes to (None with no shards joined).
    pub fn shard_for_unit(&self, unit: &WorkUnit) -> Option<ShardId> {
        self.ring
            .walk_from(self.routing_point(unit))
            .next()
            .map(|w| ShardId(w.0))
    }

    /// Which shard owns a worker. Workers ride the same consistent ring
    /// (hashed by id), so shard membership changes move only ~W/N of
    /// them.
    pub fn shard_for_worker(&self, w: WorkerId) -> Option<ShardId> {
        let point = crate::ring::member_point(b"route-worker-", w.0 as u64, 0);
        self.ring.walk_from(point).next().map(|s| ShardId(s.0))
    }

    /// Assign every worker to its shard. Every joined shard appears in
    /// the result, even with an empty partition.
    pub fn partition(&self, workers: &[WorkerId]) -> BTreeMap<ShardId, Vec<WorkerId>> {
        let mut parts: BTreeMap<ShardId, Vec<WorkerId>> =
            self.shards.iter().map(|s| (*s, Vec::new())).collect();
        for &w in workers {
            if let Some(s) = self.shard_for_worker(w) {
                parts.entry(s).or_default().push(w);
            }
        }
        parts
    }

    /// Route a unit: pick its shard, remember it as in-flight there.
    pub fn route(&mut self, unit: WorkUnit) -> Option<ShardId> {
        let shard = self.shard_for_unit(&unit)?;
        self.routed += 1;
        self.outstanding
            .entry(shard)
            .or_default()
            .insert(unit.id(), unit);
        Some(shard)
    }

    /// A routed unit completed; clear it from the in-flight ledger.
    pub fn unit_done(&mut self, shard: ShardId, unit: UnitId) -> Option<WorkUnit> {
        self.outstanding.get_mut(&shard)?.remove(&unit)
    }

    pub fn outstanding(&self, shard: ShardId) -> usize {
        self.outstanding.get(&shard).map_or(0, |m| m.len())
    }

    /// Units routed since construction (re-routes count again).
    pub fn routed(&self) -> u64 {
        self.routed
    }

    /// Units orphaned by shard departures and surrendered for re-routing.
    pub fn rerouted(&self) -> u64 {
        self.rerouted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vine_core::ids::InvocationId;
    use vine_core::task::FunctionCall;

    fn call(i: u64, lib: &str) -> WorkUnit {
        WorkUnit::Call(FunctionCall::new(InvocationId(i), lib, "f", vec![]))
    }

    fn router(n: u32) -> ShardRouter {
        let mut r = ShardRouter::new();
        for s in 0..n {
            r.shard_joined(ShardId(s));
        }
        r
    }

    #[test]
    fn same_library_routes_to_same_shard() {
        let r = router(4);
        let s0 = r.shard_for_unit(&call(0, "lnni")).unwrap();
        for i in 1..50 {
            assert_eq!(r.shard_for_unit(&call(i, "lnni")).unwrap(), s0);
        }
    }

    #[test]
    fn libraries_spread_across_shards() {
        let r = router(4);
        let mut seen: Vec<ShardId> = (0..64)
            .map(|i| r.shard_for_unit(&call(0, &format!("lib-{i}"))).unwrap())
            .collect();
        seen.sort_unstable();
        seen.dedup();
        assert!(seen.len() >= 3, "64 libraries hit only {:?}", seen);
    }

    #[test]
    fn registered_digest_overrides_name_hash() {
        let mut r = router(4);
        let mut spec = LibrarySpec::new("lnni");
        spec.functions = vec!["f".into()];
        r.register_library(&spec);
        // registered or not, routing is still deterministic per library
        let s = r.shard_for_unit(&call(0, "lnni")).unwrap();
        assert_eq!(r.shard_for_unit(&call(1, "lnni")).unwrap(), s);
    }

    #[test]
    fn single_shard_takes_everything() {
        let r = router(1);
        for i in 0..20 {
            assert_eq!(
                r.shard_for_unit(&call(i, &format!("lib-{i}"))).unwrap(),
                ShardId(0)
            );
        }
        let workers: Vec<WorkerId> = (0..10).map(WorkerId).collect();
        let parts = r.partition(&workers);
        assert_eq!(parts[&ShardId(0)].len(), 10);
    }

    #[test]
    fn shard_left_surrenders_outstanding_in_unit_order() {
        let mut r = router(2);
        let mut routed_to: BTreeMap<ShardId, Vec<u64>> = BTreeMap::new();
        for i in 0..40 {
            let u = call(i, &format!("lib-{}", i % 8));
            let s = r.route(u).unwrap();
            routed_to.entry(s).or_default().push(i);
        }
        let victim = ShardId(0);
        let orphans = r.shard_left(victim);
        assert_eq!(orphans.len(), routed_to.get(&victim).map_or(0, |v| v.len()));
        assert_eq!(r.rerouted(), orphans.len() as u64);
        // all orphans re-route onto the survivor
        for u in orphans {
            assert_eq!(r.route(u), Some(ShardId(1)));
        }
    }

    #[test]
    fn unit_done_clears_ledger() {
        let mut r = router(1);
        let u = call(7, "lnni");
        let id = u.id();
        let s = r.route(u).unwrap();
        assert_eq!(r.outstanding(s), 1);
        let back = r.unit_done(s, id).unwrap();
        assert_eq!(back.id(), id);
        assert_eq!(r.outstanding(s), 0);
    }

    #[test]
    fn worker_partition_covers_all_workers_disjointly() {
        let r = router(4);
        let workers: Vec<WorkerId> = (0..100).map(WorkerId).collect();
        let parts = r.partition(&workers);
        assert_eq!(parts.len(), 4);
        let mut all: Vec<WorkerId> = parts.values().flatten().copied().collect();
        assert_eq!(all.len(), 100);
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 100, "partitions are disjoint");
    }
}
