//! Differential property test: the indexed [`Manager`] must emit the exact
//! same decision sequence as the retained scan-based [`NaiveManager`]
//! reference on arbitrary workloads.
//!
//! Each case generates a random op script — call/task submissions across
//! several libraries (including one that is never registered), install
//! acks and startup failures, completion waves, worker joins and losses
//! with requeues, and explicit evictions — and interprets it against both
//! managers in lockstep, asserting every decision, lost-unit list, and
//! placement is identical. This is what licenses the index rewrite: the
//! indexes are pure accelerations, not policy changes.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use std::collections::{BTreeMap, VecDeque};
use vine_core::context::{ContextSpec, FileRef, LibrarySpec};
use vine_core::ids::{ContentHash, FileId, InvocationId, LibraryInstanceId, TaskId, WorkerId};
use vine_core::resources::Resources;
use vine_core::task::{FunctionCall, TaskSpec, UnitId, WorkUnit};
use vine_manager::manager::{Decision, Manager};
use vine_manager::reference::NaiveManager;

#[derive(Clone, Debug)]
enum Op {
    /// Queue `count` calls to library `lib` (lib == GHOST is unregistered).
    SubmitCalls { lib: usize, count: usize },
    /// Queue a task whose name, resources, and input files derive from
    /// `seed` (some inputs are larger than small workers' caches).
    SubmitTask { seed: u64 },
    /// Take up to `limit` decisions from both managers, comparing each.
    Drain { limit: usize },
    /// Acknowledge all Starting instances; those matching `fail_mask`
    /// report startup failure instead.
    Ack { fail_mask: u64 },
    /// Finish the `count` oldest running units.
    Finish { count: usize },
    /// Connect a new worker with seed-derived resources (some have tiny
    /// disks so staging fails and the uncacheable path triggers).
    Join { seed: u64 },
    /// Disconnect an existing worker and requeue its lost units.
    Leave { pick: usize },
    /// Explicitly evict a ready instance.
    Evict { pick: usize },
}

const LIBS: usize = 4;
const GHOST: usize = LIBS; // submitted but never registered → Fail path

fn file(i: usize) -> FileRef {
    // pool of shared inputs; sizes straddle the small-disk cache capacity
    // (1 MB disk = 1 MiB cache) so some stagings fail on some workers
    let size = match i % 4 {
        0 => 64 * 1024,
        1 => 512 * 1024,
        2 => 3 * 1024 * 1024,
        _ => 9 * 1024 * 1024,
    };
    let mut f = FileRef::new(
        FileId(i as u64 + 100),
        format!("file{i}"),
        ContentHash::of_str(&format!("file{i}")),
        size,
    );
    if i % 5 == 4 {
        f = f.uncached();
    }
    f
}

fn library(i: usize) -> LibrarySpec {
    let mut spec = LibrarySpec::new(format!("lib{i}"));
    spec.functions = vec!["f".into()];
    match i % 4 {
        // whole-worker library with an environment to stage
        0 => {
            spec.context.environment = Some(file(2));
        }
        // fixed-size library with data files
        1 => {
            spec.resources = Some(Resources::new(4, 2048, 8));
            spec.context = ContextSpec {
                environment: Some(file(1)),
                data: vec![file(0)],
                ..Default::default()
            };
        }
        // contextless, explicit slot count
        2 => {
            spec.resources = Some(Resources::new(2, 1024, 4));
            spec.slots = Some(3);
        }
        // big environment: install staging fails on small-disk workers
        _ => {
            spec.resources = Some(Resources::new(2, 1024, 4));
            spec.context.environment = Some(file(3));
        }
    }
    spec
}

fn worker_resources(seed: u64) -> Resources {
    let cores = 2 + (seed % 7) as u32 * 2;
    let mem = 4096 + (seed % 5) * 2048;
    // every third worker gets a disk smaller than the large pool files
    let disk = if seed.is_multiple_of(3) {
        1 + seed % 4
    } else {
        64
    };
    Resources::new(cores, mem, disk)
}

fn task(id: u64, seed: u64) -> TaskSpec {
    let mut t = TaskSpec::new(TaskId(id), format!("t{}", seed % 7));
    t.resources = Resources::new(1 + (seed % 4) as u32, 256 + (seed % 3) * 512, 1);
    for i in 0..6 {
        if seed >> i & 1 == 1 {
            t.inputs.push(file(i));
        }
    }
    t
}

fn call(id: u64, lib: usize) -> FunctionCall {
    let mut c = FunctionCall::new(InvocationId(id), format!("lib{lib}"), "f", vec![]);
    c.resources = Resources::new(1, 512, 1);
    c
}

/// Both managers driven in lockstep plus the bookkeeping the substrate
/// would normally hold (running units for completions, instances for acks).
struct Harness {
    idx: Manager,
    naive: NaiveManager,
    running: VecDeque<UnitId>,
    units: BTreeMap<UnitId, WorkUnit>,
    starting: Vec<(WorkerId, LibraryInstanceId)>,
    ready: Vec<(WorkerId, LibraryInstanceId)>,
    workers: Vec<WorkerId>,
    next_worker: u32,
    next_unit: u64,
}

impl Harness {
    fn new() -> Harness {
        let mut h = Harness {
            idx: Manager::new(),
            naive: NaiveManager::new(),
            running: VecDeque::new(),
            units: BTreeMap::new(),
            starting: Vec::new(),
            ready: Vec::new(),
            workers: Vec::new(),
            next_worker: 0,
            next_unit: 0,
        };
        for i in 0..LIBS {
            h.idx.register_library(library(i));
            h.naive.register_library(library(i));
        }
        h.join(41);
        h.join(7);
        h
    }

    fn join(&mut self, seed: u64) {
        let id = WorkerId(self.next_worker);
        self.next_worker += 1;
        let r = worker_resources(seed);
        self.idx.worker_joined(id, r);
        self.naive.worker_joined(id, r);
        self.workers.push(id);
    }

    fn submit(&mut self, unit: WorkUnit) {
        let id = match &unit {
            WorkUnit::Task(t) => UnitId::Task(t.id),
            WorkUnit::Call(c) => UnitId::Call(c.id),
        };
        self.units.insert(id, unit.clone());
        self.idx.submit(unit.clone());
        self.naive.submit(unit);
    }

    fn track(&mut self, d: &Decision) {
        match d {
            Decision::InstallLibrary {
                worker, instance, ..
            } => self.starting.push((*worker, *instance)),
            Decision::EvictLibrary {
                worker, instance, ..
            } => {
                self.ready.retain(|e| e != &(*worker, *instance));
                self.starting.retain(|e| e != &(*worker, *instance));
            }
            Decision::DispatchCall { call, .. } => {
                self.running.push_back(UnitId::Call(call.id));
            }
            Decision::DispatchTask { task, .. } => {
                self.running.push_back(UnitId::Task(task.id));
            }
            Decision::Fail { unit, .. } => {
                self.units.remove(unit);
            }
        }
    }
}

fn run_script(ops: &[Op]) -> Result<(), TestCaseError> {
    let mut h = Harness::new();
    for op in ops {
        match op {
            Op::SubmitCalls { lib, count } => {
                for _ in 0..*count {
                    h.next_unit += 1;
                    let c = call(h.next_unit, *lib);
                    h.submit(WorkUnit::Call(c));
                }
            }
            Op::SubmitTask { seed } => {
                h.next_unit += 1;
                let t = task(h.next_unit, *seed);
                h.submit(WorkUnit::Task(t));
            }
            Op::Drain { limit } => {
                for _ in 0..*limit {
                    let a = h.idx.next_decision();
                    let b = h.naive.next_decision();
                    prop_assert_eq!(&a, &b);
                    let Some(d) = a else { break };
                    h.track(&d);
                }
            }
            Op::Ack { fail_mask } => {
                for (w, inst) in std::mem::take(&mut h.starting) {
                    if fail_mask >> (inst.0 % 61) & 1 == 1 {
                        let ra = h.idx.library_startup_failed(w, inst);
                        let rb = h.naive.library_startup_failed(w, inst);
                        prop_assert_eq!(ra.is_ok(), rb.is_ok());
                    } else {
                        let ra = h.idx.library_ready(w, inst);
                        let rb = h.naive.library_ready(w, inst);
                        prop_assert_eq!(ra.is_ok(), rb.is_ok());
                        h.ready.push((w, inst));
                    }
                }
            }
            Op::Finish { count } => {
                for _ in 0..*count {
                    let Some(u) = h.running.pop_front() else {
                        break;
                    };
                    let pa = h.idx.unit_finished(u);
                    let pb = h.naive.unit_finished(u);
                    prop_assert_eq!(pa.as_ref().ok(), pb.as_ref().ok());
                    prop_assert_eq!(pa.is_ok(), pb.is_ok());
                    h.units.remove(&u);
                }
            }
            Op::Join { seed } => h.join(*seed),
            Op::Leave { pick } => {
                if h.workers.len() <= 1 {
                    continue; // keep at least one worker connected
                }
                let w = h.workers.remove(pick % h.workers.len());
                let la = h.idx.worker_left(w);
                let lb = h.naive.worker_left(w);
                prop_assert_eq!(&la, &lb);
                h.starting.retain(|(ww, _)| *ww != w);
                h.ready.retain(|(ww, _)| *ww != w);
                for lost in la {
                    h.running.retain(|u| *u != lost);
                    // the substrate requeues lost units (run.rs fail_worker)
                    if let Some(unit) = h.units.get(&lost).cloned() {
                        h.idx.requeue(unit.clone());
                        h.naive.requeue(unit);
                    }
                }
            }
            Op::Evict { pick } => {
                if h.ready.is_empty() {
                    continue;
                }
                let (w, inst) = h.ready[pick % h.ready.len()];
                let ra = h.idx.evict_instance(w, inst);
                let rb = h.naive.evict_instance(w, inst);
                prop_assert_eq!(ra.is_ok(), rb.is_ok());
                if ra.is_ok() {
                    h.ready.retain(|e| e != &(w, inst));
                }
            }
        }
    }
    // final exhaustive drain: everything still schedulable must match
    loop {
        let a = h.idx.next_decision();
        let b = h.naive.next_decision();
        prop_assert_eq!(&a, &b);
        let Some(d) = a else { break };
        h.track(&d);
    }
    prop_assert_eq!(h.idx.pending(), h.naive.pending());
    prop_assert_eq!(h.idx.queued(), h.naive.queued());
    prop_assert_eq!(h.idx.running_count(), h.naive.running_count());
    Ok(())
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..=GHOST, 1usize..12).prop_map(|(lib, count)| Op::SubmitCalls { lib, count }),
        any::<u64>().prop_map(|seed| Op::SubmitTask { seed }),
        (1usize..24).prop_map(|limit| Op::Drain { limit }),
        any::<u64>().prop_map(|fail_mask| Op::Ack { fail_mask }),
        (1usize..8).prop_map(|count| Op::Finish { count }),
        any::<u64>().prop_map(|seed| Op::Join { seed }),
        (0usize..64).prop_map(|pick| Op::Leave { pick }),
        (0usize..64).prop_map(|pick| Op::Evict { pick }),
    ]
}

/// The generated scripts must actually exercise the decision paths —
/// guard against the property passing vacuously on empty drains.
#[test]
fn scripts_reach_every_decision_kind() {
    let ops = vec![
        Op::SubmitCalls { lib: 0, count: 8 },
        Op::SubmitCalls { lib: 1, count: 6 },
        Op::SubmitCalls {
            lib: GHOST,
            count: 2,
        },
        Op::SubmitTask { seed: 0b101011 },
        Op::SubmitTask { seed: 0b011100 },
        Op::Drain { limit: 20 },
        Op::Ack { fail_mask: 0 },
        Op::Drain { limit: 20 },
        Op::Finish { count: 4 },
        Op::Join { seed: 3 },
        Op::Leave { pick: 0 },
        Op::Drain { limit: 20 },
    ];
    // the interpreter itself must accept the script...
    run_script(&ops).unwrap();
    // ...and replaying it must hit install/dispatch/fail decision kinds
    let mut h = Harness::new();
    let mut kinds = [0usize; 5];
    for op in &ops {
        if let Op::Drain { limit } = op {
            for _ in 0..*limit {
                let Some(d) = h.idx.next_decision() else {
                    break;
                };
                assert_eq!(Some(&d), h.naive.next_decision().as_ref());
                kinds[match &d {
                    Decision::InstallLibrary { .. } => 0,
                    Decision::DispatchCall { .. } => 1,
                    Decision::DispatchTask { .. } => 2,
                    Decision::Fail { .. } => 3,
                    Decision::EvictLibrary { .. } => 4,
                }] += 1;
                h.track(&d);
            }
        } else {
            apply_non_drain(&mut h, op);
        }
    }
    assert!(kinds[0] > 0, "no installs: {kinds:?}");
    assert!(kinds[1] > 0, "no call dispatches: {kinds:?}");
    assert!(kinds[2] > 0, "no task dispatches: {kinds:?}");
    assert!(kinds[3] > 0, "no failures: {kinds:?}");
}

/// Apply a non-Drain op to the harness (smoke-test helper mirroring
/// `run_script`'s interpreter, minus the assertions).
fn apply_non_drain(h: &mut Harness, op: &Op) {
    match op {
        Op::SubmitCalls { lib, count } => {
            for _ in 0..*count {
                h.next_unit += 1;
                let c = call(h.next_unit, *lib);
                h.submit(WorkUnit::Call(c));
            }
        }
        Op::SubmitTask { seed } => {
            h.next_unit += 1;
            let t = task(h.next_unit, *seed);
            h.submit(WorkUnit::Task(t));
        }
        Op::Ack { fail_mask } => {
            for (w, inst) in std::mem::take(&mut h.starting) {
                if fail_mask >> (inst.0 % 61) & 1 == 1 {
                    let _ = h.idx.library_startup_failed(w, inst);
                    let _ = h.naive.library_startup_failed(w, inst);
                } else {
                    let _ = h.idx.library_ready(w, inst);
                    let _ = h.naive.library_ready(w, inst);
                    h.ready.push((w, inst));
                }
            }
        }
        Op::Finish { count } => {
            for _ in 0..*count {
                let Some(u) = h.running.pop_front() else {
                    break;
                };
                let _ = h.idx.unit_finished(u);
                let _ = h.naive.unit_finished(u);
                h.units.remove(&u);
            }
        }
        Op::Join { seed } => h.join(*seed),
        Op::Leave { pick } => {
            if h.workers.len() > 1 {
                let w = h.workers.remove(pick % h.workers.len());
                let la = h.idx.worker_left(w);
                let _ = h.naive.worker_left(w);
                h.starting.retain(|(ww, _)| *ww != w);
                h.ready.retain(|(ww, _)| *ww != w);
                for lost in la {
                    h.running.retain(|u| *u != lost);
                    if let Some(unit) = h.units.get(&lost).cloned() {
                        h.idx.requeue(unit.clone());
                        h.naive.requeue(unit);
                    }
                }
            }
        }
        Op::Evict { pick } => {
            if !h.ready.is_empty() {
                let (w, inst) = h.ready[pick % h.ready.len()];
                let ra = h.idx.evict_instance(w, inst);
                let _ = h.naive.evict_instance(w, inst);
                if ra.is_ok() {
                    h.ready.retain(|e| e != &(w, inst));
                }
            }
        }
        Op::Drain { .. } => unreachable!(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn indexed_manager_matches_naive_reference(
        ops in prop::collection::vec(arb_op(), 0..48),
    ) {
        run_script(&ops)?;
    }
}
