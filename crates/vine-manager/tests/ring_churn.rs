//! Rebalance-churn properties of the consistent ring and the shard
//! router: membership changes move only the keys they must (~K/N), never
//! strand a key or a worker without an owner, and a departing shard
//! surrenders exactly its in-flight ledger for re-routing.

use proptest::prelude::*;
use std::collections::BTreeMap;
use vine_core::ids::{InvocationId, ShardId, WorkerId};
use vine_core::task::{FunctionCall, WorkUnit};
use vine_manager::{HashRing, ShardRouter};

const KEYS: u64 = 512;

/// Owner of every probe key under the current membership.
fn owners(ring: &HashRing) -> Vec<Option<WorkerId>> {
    (0..KEYS)
        .map(|k| ring.walk(&format!("churn-key-{k}")).next())
        .collect()
}

fn vnode_ring(members: &[u32], vnodes: u32) -> HashRing {
    let mut ring = HashRing::with_replicas(vnodes);
    for &m in members {
        ring.add(WorkerId(m));
    }
    ring
}

fn arb_members() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0u32..64, 2..10).prop_map(|mut v| {
        v.sort_unstable();
        v.dedup();
        v
    })
}

proptest! {
    /// Adding one member moves keys only *onto* the newcomer — every key
    /// that does not land there keeps its previous owner — and the moved
    /// share stays near K/(N+1).
    #[test]
    fn join_moves_only_a_fair_share_onto_the_newcomer(
        members in arb_members(),
        newcomer in 64u32..96,
        vnodes in prop_oneof![Just(16u32), Just(32), Just(64)],
    ) {
        let mut ring = vnode_ring(&members, vnodes);
        let before = owners(&ring);
        ring.add(WorkerId(newcomer));
        let after = owners(&ring);

        let mut moved = 0u64;
        for (b, a) in before.iter().zip(&after) {
            if a != b {
                prop_assert_eq!(*a, Some(WorkerId(newcomer)));
                moved += 1;
            }
        }
        let ideal = KEYS / (members.len() as u64 + 1);
        prop_assert!(moved <= ideal * 3,
            "join remapped {} keys; ideal share is {}", moved, ideal);
    }

    /// Removing one member moves keys only *off* the departed — survivors
    /// keep every key they already owned — and nothing is orphaned.
    #[test]
    fn leave_moves_only_the_departed_members_keys(
        members in arb_members(),
        pick in 0usize..4096,
        vnodes in prop_oneof![Just(16u32), Just(32), Just(64)],
    ) {
        let mut ring = vnode_ring(&members, vnodes);
        let victim = WorkerId(members[pick % members.len()]);
        let before = owners(&ring);
        ring.remove(victim);
        let after = owners(&ring);

        for (b, a) in before.iter().zip(&after) {
            prop_assert!(a.is_some(), "a key was orphaned by a leave");
            if *b != Some(victim) {
                prop_assert_eq!(a, b);
            } else {
                prop_assert_ne!(*a, Some(victim));
            }
        }
    }

    /// Under arbitrary shard join/leave churn, the router's worker
    /// partition always covers the whole fleet disjointly, with every
    /// joined shard present.
    #[test]
    fn worker_partition_survives_membership_churn(
        churn in prop::collection::vec((0u32..8, any::<bool>()), 1..24),
        fleet in 8usize..64,
    ) {
        let mut sr = ShardRouter::new();
        let mut live: Vec<u32> = Vec::new();
        for (s, join) in churn {
            if join {
                sr.shard_joined(ShardId(s));
                if !live.contains(&s) { live.push(s); }
            } else if live.len() > 1 && live.contains(&s) {
                sr.shard_left(ShardId(s));
                live.retain(|x| *x != s);
            }
        }
        if live.is_empty() {
            sr.shard_joined(ShardId(0));
            live.push(0);
        }

        let workers: Vec<WorkerId> = (0..fleet as u32).map(WorkerId).collect();
        let parts = sr.partition(&workers);
        prop_assert_eq!(parts.len(), live.len());
        let mut seen: Vec<WorkerId> = parts.values().flatten().copied().collect();
        prop_assert_eq!(seen.len(), fleet);
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len(), fleet);
    }

    /// A departing shard surrenders exactly its in-flight ledger, and
    /// re-routing lands every orphan on a surviving shard.
    #[test]
    fn shard_leave_surrenders_exactly_its_ledger(
        shards in 2u32..8,
        libs in 1u32..24,
        n in 16u64..200,
        pick in 0usize..4096,
    ) {
        let mut sr = ShardRouter::new();
        for s in 0..shards {
            sr.shard_joined(ShardId(s));
        }
        let mut ledger: BTreeMap<ShardId, u64> = BTreeMap::new();
        for i in 0..n {
            let unit = WorkUnit::Call(FunctionCall::new(
                InvocationId(i), format!("churn-lib-{}", i % libs as u64), "f", vec![]));
            let owner = sr.route(unit).expect("shards joined");
            *ledger.entry(owner).or_default() += 1;
        }
        let victim = ShardId((pick % shards as usize) as u32);
        let expected = ledger.get(&victim).copied().unwrap_or(0);
        let orphans = sr.shard_left(victim);
        prop_assert_eq!(orphans.len() as u64, expected);
        prop_assert_eq!(sr.rerouted(), expected);
        for unit in orphans {
            let again = sr.route(unit).expect("survivors remain");
            prop_assert_ne!(again, victim);
        }
        // conservation: every unit is outstanding on exactly one live shard
        let total: usize = sr.shards().map(|s| sr.outstanding(s)).sum();
        prop_assert_eq!(total as u64, n);
    }
}
