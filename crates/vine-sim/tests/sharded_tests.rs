//! Federated-sharding simulation tests: the single-shard differential
//! (a federation of one is bit-identical to the standalone simulator),
//! routing completeness, context-locality of placement, and fault
//! forwarding.

use vine_core::config::ReuseLevel;
use vine_core::context::{ContextSpec, FileRef, LibrarySpec};
use vine_core::ids::{ContentHash, FileId, InvocationId};
use vine_core::resources::Resources;
use vine_core::task::{FunctionCall, WorkProfile, WorkUnit};
use vine_sim::sharded::completed_unit_ids;
use vine_sim::{simulate, simulate_sharded, SimConfig, Workload};

/// A static L3 workload spread over many distinct libraries — the shape
/// the routing tier is built for (each library's context digest picks its
/// shard).
struct Fleet {
    libs: u32,
    count: u64,
}

impl Fleet {
    fn lib_name(l: u32) -> String {
        format!("fleet-lib-{l}")
    }

    fn params(l: u32) -> FileRef {
        FileRef::new(
            FileId(100 + l as u64),
            format!("params-{l}.bin"),
            ContentHash::of_str(&format!("fleet-params-{l}")),
            5_000_000,
        )
    }
}

impl Workload for Fleet {
    fn libraries(&self) -> Vec<(LibrarySpec, WorkProfile)> {
        (0..self.libs)
            .map(|l| {
                let mut spec = LibrarySpec::new(Self::lib_name(l));
                spec.functions = vec!["work".into()];
                spec.resources = Some(Resources::lnni_invocation());
                spec.slots = Some(1);
                spec.context = ContextSpec {
                    data: vec![Self::params(l)],
                    ..Default::default()
                };
                let setup = WorkProfile {
                    context_gflop: 5.0,
                    context_read_bytes: 5_000_000,
                    ..WorkProfile::zero()
                };
                (spec, setup)
            })
            .collect()
    }

    fn initial_units(&mut self) -> Vec<WorkUnit> {
        (0..self.count)
            .map(|i| {
                let mut call = FunctionCall::new(
                    InvocationId(i),
                    Self::lib_name(i as u32 % self.libs),
                    "work",
                    vec![0u8; 32],
                );
                call.resources = Resources::lnni_invocation();
                call.profile = WorkProfile {
                    exec_gflop: 8.0,
                    output_bytes: 256,
                    ..WorkProfile::zero()
                };
                WorkUnit::Call(call)
            })
            .collect()
    }
}

#[test]
fn single_shard_federation_is_bit_identical_to_standalone() {
    let cfg = SimConfig::paper(ReuseLevel::L3, 8);
    let base = simulate(
        cfg.clone(),
        &mut Fleet {
            libs: 8,
            count: 300,
        },
    );
    let fed = simulate_sharded(
        &cfg,
        1,
        &mut Fleet {
            libs: 8,
            count: 300,
        },
    );
    assert_eq!(fed.shards.len(), 1);
    assert_eq!(fed.workers, vec![8]);
    let solo = &fed.shards[0];
    assert_eq!(
        solo.trace, base.trace,
        "federation of one must not perturb the schedule"
    );
    assert_eq!(solo.events, base.events);
    assert_eq!(solo.failed_units, base.failed_units);
    assert_eq!(fed.completed, 300);
}

#[test]
fn federation_completes_every_unit_exactly_once() {
    let cfg = SimConfig::paper(ReuseLevel::L3, 16);
    let fed = simulate_sharded(
        &cfg,
        4,
        &mut Fleet {
            libs: 32,
            count: 400,
        },
    );
    assert_eq!(fed.shards.len(), 4);
    assert_eq!(fed.failed, 0);
    let ids = completed_unit_ids(&fed);
    assert_eq!(ids.len(), 400, "nothing lost, nothing duplicated");
    assert_eq!(ids, (0..400).map(InvocationId).collect::<Vec<_>>());
    assert_eq!(
        fed.workers.iter().sum::<usize>(),
        16,
        "workers partition the fleet"
    );
    assert!(fed.workers.iter().all(|&w| w > 0));
}

#[test]
fn routing_concentrates_each_library_on_one_shard() {
    let cfg = SimConfig::paper(ReuseLevel::L3, 16);
    let fed = simulate_sharded(
        &cfg,
        4,
        &mut Fleet {
            libs: 24,
            count: 240,
        },
    );
    // a library's instances deploy only on the shard its context digest
    // hashed to — the "context concentrates where it already lives" policy
    let mut owner: std::collections::BTreeMap<String, usize> = Default::default();
    for (s, shard) in fed.shards.iter().enumerate() {
        for lib in &shard.trace.libraries {
            let prev = owner.insert(lib.library_name.clone(), s);
            assert!(
                prev.is_none_or(|p| p == s),
                "{} deployed on two shards",
                lib.library_name
            );
        }
    }
    // and with 24 libraries on 4 shards, more than one shard does work
    let busy = fed
        .shards
        .iter()
        .filter(|s| !s.trace.invocations.is_empty())
        .count();
    assert!(busy >= 2, "routing sent everything to {busy} shard(s)");
}

#[test]
fn fleet_worker_failure_is_forwarded_to_the_owning_shard() {
    let mut cfg = SimConfig::paper(ReuseLevel::L3, 8);
    // kill fleet workers 0 and 5 mid-run; whichever shards own them must
    // requeue in-flight work on their surviving partition
    cfg.fail_workers = vec![(60.0, 0), (60.0, 5)];
    let fed = simulate_sharded(
        &cfg,
        2,
        &mut Fleet {
            libs: 12,
            count: 200,
        },
    );
    assert_eq!(fed.completed, 200, "failures must not lose units");
    assert_eq!(completed_unit_ids(&fed).len(), 200);
}
