//! End-to-end simulator tests on a small synthetic workload.

use vine_core::config::ReuseLevel;
use vine_core::context::{ContextSpec, FileRef, LibrarySpec};
use vine_core::ids::{ContentHash, FileId, InvocationId, TaskId};
use vine_core::resources::Resources;
use vine_core::task::{FunctionCall, TaskSpec, UnitId, WorkProfile, WorkUnit};
use vine_sim::{simulate, simulate_reference, SimConfig, Workload};

/// A synthetic function-centric workload runnable at any reuse level.
struct Synthetic {
    level: ReuseLevel,
    count: u64,
    exec_gflop: f64,
    /// Follow-up units to submit per completion (tests dynamic workloads).
    chain: u64,
    chained: u64,
    next_id: u64,
}

impl Synthetic {
    fn new(level: ReuseLevel, count: u64) -> Synthetic {
        Synthetic {
            level,
            count,
            exec_gflop: 30.0, // ~ 2.8 s on a 5.4 GFLOPS core pair
            chain: 0,
            chained: 0,
            next_id: 0,
        }
    }

    fn env_file() -> FileRef {
        FileRef::new(
            FileId(1),
            "env.tar.zst",
            ContentHash::of_str("synthetic-env"),
            572_000_000,
        )
        .packed(3_100_000_000)
    }

    fn params_file(level: ReuseLevel) -> FileRef {
        let f = FileRef::new(
            FileId(2),
            "model-params.bin",
            ContentHash::of_str("synthetic-params"),
            230_000_000,
        );
        if level == ReuseLevel::L1 {
            f.from_shared_fs().uncached()
        } else {
            f
        }
    }

    fn profile(&self) -> WorkProfile {
        WorkProfile {
            exec_gflop: self.exec_gflop,
            context_gflop: 22.0, // model build ≈ 2 s on the reference pair
            context_read_bytes: 230_000_000,
            output_bytes: 1_000,
            sharedfs_ops: 1_500.0,
            sharedfs_read_bytes: 110_000_000,
            l1_exec_slowdown: 1.0,
        }
    }

    fn make_unit(&self, i: u64) -> WorkUnit {
        match self.level {
            ReuseLevel::L3 => {
                let mut call = FunctionCall::new(InvocationId(i), "synlib", "work", vec![0u8; 64]);
                call.resources = Resources::lnni_invocation();
                call.profile = WorkProfile {
                    // the context part is paid by the library, not the call
                    context_gflop: 0.0,
                    context_read_bytes: 0,
                    ..self.profile()
                };
                WorkUnit::Call(call)
            }
            level => {
                let mut task = TaskSpec::new(TaskId(i), "wrapped-work");
                task.resources = Resources::lnni_invocation();
                task.profile = self.profile();
                task.inputs = vec![Self::params_file(level)];
                if level == ReuseLevel::L2 {
                    task.inputs.push(Self::env_file());
                }
                WorkUnit::Task(task)
            }
        }
    }
}

impl Workload for Synthetic {
    fn libraries(&self) -> Vec<(LibrarySpec, WorkProfile)> {
        if self.level != ReuseLevel::L3 {
            return Vec::new();
        }
        let mut spec = LibrarySpec::new("synlib");
        spec.functions = vec!["work".into()];
        spec.context = ContextSpec {
            environment: Some(Self::env_file()),
            data: vec![Self::params_file(ReuseLevel::L3)],
            ..Default::default()
        };
        let setup = WorkProfile {
            exec_gflop: 0.0,
            context_gflop: 22.0,
            context_read_bytes: 230_000_000,
            ..WorkProfile::zero()
        };
        vec![(spec, setup)]
    }

    fn initial_units(&mut self) -> Vec<WorkUnit> {
        self.next_id = self.count;
        (0..self.count).map(|i| self.make_unit(i)).collect()
    }

    fn on_complete(&mut self, _unit: UnitId, _success: bool) -> Vec<WorkUnit> {
        if self.chained < self.chain {
            self.chained += 1;
            let id = self.next_id;
            self.next_id += 1;
            vec![self.make_unit(id)]
        } else {
            Vec::new()
        }
    }
}

fn quick_config(level: ReuseLevel, workers: usize) -> SimConfig {
    SimConfig::paper(level, workers)
}

#[test]
fn l3_completes_all_units() {
    let mut w = Synthetic::new(ReuseLevel::L3, 200);
    let r = simulate(quick_config(ReuseLevel::L3, 4), &mut w);
    assert_eq!(r.trace.invocations.len(), 200);
    assert_eq!(r.failed_units, 0);
    assert!(!r.trace.libraries.is_empty());
    assert!(r.makespan.as_secs_f64() > 0.0);
}

#[test]
fn l1_and_l2_complete_all_units() {
    for level in [ReuseLevel::L1, ReuseLevel::L2] {
        let mut w = Synthetic::new(level, 100);
        let r = simulate(quick_config(level, 4), &mut w);
        assert_eq!(r.trace.invocations.len(), 100, "{level}");
        assert_eq!(r.failed_units, 0);
    }
}

#[test]
fn reuse_levels_order_as_in_paper() {
    // the headline result: L1 > L2 > L3 execution time (Fig 6a). The gap
    // comes from contention, so the load must be deep enough per worker
    // for shared-FS sharing and repeated context reloads to bite.
    let mut times = Vec::new();
    for level in ReuseLevel::ALL {
        let mut w = Synthetic::new(level, 1500);
        let r = simulate(quick_config(level, 8), &mut w);
        times.push((level, r.makespan.as_secs_f64()));
    }
    assert!(
        times[0].1 > times[1].1 && times[1].1 > times[2].1,
        "expected L1 > L2 > L3, got {times:?}"
    );
    // and the L1→L3 gap is large (paper: 94.5% at full scale)
    assert!(
        times[2].1 < times[0].1 * 0.5,
        "L3 should be far faster: {times:?}"
    );
}

#[test]
fn determinism_same_seed_same_trace() {
    let run = || {
        let mut w = Synthetic::new(ReuseLevel::L3, 120);
        simulate(quick_config(ReuseLevel::L3, 4), &mut w)
    };
    let a = run();
    let b = run();
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.trace.invocations.len(), b.trace.invocations.len());
    for (x, y) in a.trace.invocations.iter().zip(&b.trace.invocations) {
        assert_eq!(x.finished, y.finished);
        assert_eq!(x.worker, y.worker);
    }
}

#[test]
fn different_seed_different_jitter() {
    let mut w1 = Synthetic::new(ReuseLevel::L3, 120);
    let a = simulate(quick_config(ReuseLevel::L3, 4), &mut w1);
    let mut cfg = quick_config(ReuseLevel::L3, 4);
    cfg.seed ^= 0xdead;
    let mut w2 = Synthetic::new(ReuseLevel::L3, 120);
    let b = simulate(cfg, &mut w2);
    assert_ne!(a.makespan, b.makespan);
}

#[test]
fn library_share_values_accumulate() {
    let mut w = Synthetic::new(ReuseLevel::L3, 200);
    let r = simulate(quick_config(ReuseLevel::L3, 2), &mut w);
    let served: u64 = r.trace.libraries.iter().map(|l| l.served).sum();
    assert_eq!(served, 200, "every completion credited to a library");
    // far fewer libraries than invocations: that is the whole point
    assert!(r.trace.libraries.len() <= 4);
}

#[test]
fn phases_populated_per_level() {
    // L3 calls: tiny overheads, real exec; L2 tasks: real library overhead
    let mut w = Synthetic::new(ReuseLevel::L3, 50);
    let r = simulate(quick_config(ReuseLevel::L3, 2), &mut w);
    let m = r.trace.mean_phases();
    assert!(m.exec.as_secs_f64() > 1.0, "exec {:?}", m.exec);
    assert!(
        m.library_overhead.as_secs_f64() < 0.01,
        "L3 per-call library overhead must be sub-10ms: {:?}",
        m.library_overhead
    );

    let mut w = Synthetic::new(ReuseLevel::L2, 50);
    let r = simulate(quick_config(ReuseLevel::L2, 2), &mut w);
    let m = r.trace.mean_phases();
    assert!(
        m.library_overhead.as_secs_f64() > 0.3,
        "L2 pays deserialization + context build per task: {:?}",
        m.library_overhead
    );
}

#[test]
fn dynamic_workload_chains_submissions() {
    let mut w = Synthetic::new(ReuseLevel::L3, 20);
    w.chain = 30;
    let r = simulate(quick_config(ReuseLevel::L3, 2), &mut w);
    assert_eq!(r.trace.invocations.len(), 50, "20 initial + 30 chained");
}

#[test]
fn worker_failure_recovers_work() {
    let mut cfg = quick_config(ReuseLevel::L3, 3);
    // kill worker 0 mid-run (after startup ≈ 20 s, during execution)
    cfg.fail_workers = vec![(60.0, 0)];
    let mut w = Synthetic::new(ReuseLevel::L3, 150);
    let r = simulate(cfg, &mut w);
    assert_eq!(
        r.trace.invocations.len(),
        150,
        "all units must eventually complete despite the failure"
    );
    // no completion is attributed to the dead worker after its death
    let death = vine_core::SimTime::from_secs_f64(60.0);
    for rec in &r.trace.invocations {
        if rec.worker == vine_core::ids::WorkerId(0) {
            assert!(rec.finished <= death);
        }
    }
    // its library record is closed out
    for lib in &r.trace.libraries {
        if lib.worker == vine_core::ids::WorkerId(0) {
            assert_eq!(lib.removed, Some(death));
        }
    }
}

#[test]
fn more_workers_speed_up_worker_bound_load() {
    // long invocations (worker-bound): 3 workers beat 1
    let make = || {
        let mut w = Synthetic::new(ReuseLevel::L3, 60);
        w.exec_gflop = 300.0;
        w
    };
    let r1 = simulate(quick_config(ReuseLevel::L3, 1), &mut make());
    let r3 = simulate(quick_config(ReuseLevel::L3, 3), &mut make());
    assert!(
        r3.makespan.as_secs_f64() < r1.makespan.as_secs_f64() * 0.6,
        "1w {} vs 3w {}",
        r1.makespan,
        r3.makespan
    );
}

#[test]
fn app_start_waits_for_95_percent() {
    let mut w = Synthetic::new(ReuseLevel::L3, 10);
    let r = simulate(quick_config(ReuseLevel::L3, 20), &mut w);
    // workers connect around 19-21 s
    let s = r.app_start.as_secs_f64();
    assert!((18.0..22.0).contains(&s), "app start {s}");
}

/// Run the same workload through the dense-layout driver and the retained
/// pre-overhaul reference driver and demand *identical* results: every
/// record of the trace, the makespan, the failure count, and even the
/// popped-event count. This is what licenses the slab/dense-pool layout —
/// it is a layout change, not a behavior change.
fn assert_drivers_agree(cfg: SimConfig, make: impl Fn() -> Synthetic, what: &str) {
    let a = simulate(cfg.clone(), &mut make());
    let b = simulate_reference(cfg, &mut make());
    assert_eq!(a.trace, b.trace, "{what}: trace diverged");
    assert_eq!(a.makespan, b.makespan, "{what}: makespan diverged");
    assert_eq!(a.app_start, b.app_start, "{what}: app_start diverged");
    assert_eq!(a.end, b.end, "{what}: end diverged");
    assert_eq!(
        a.failed_units, b.failed_units,
        "{what}: failed_units diverged"
    );
    assert_eq!(a.events, b.events, "{what}: event count diverged");
}

#[test]
fn dense_driver_matches_reference_per_level() {
    for level in ReuseLevel::ALL {
        assert_drivers_agree(
            quick_config(level, 6),
            || Synthetic::new(level, 400),
            &format!("{level}"),
        );
    }
}

#[test]
fn dense_driver_matches_reference_with_chaining() {
    // dynamic submission exercises submit_times bookkeeping under reuse
    assert_drivers_agree(
        quick_config(ReuseLevel::L3, 3),
        || {
            let mut w = Synthetic::new(ReuseLevel::L3, 40);
            w.chain = 120;
            w
        },
        "chained",
    );
}

#[test]
fn dense_driver_matches_reference_under_failures() {
    // worker deaths exercise the per-worker job index (cancel + requeue
    // order) and slab slot reuse; stagger two deaths so requeued units
    // land on survivors and one death hits an already-shrunk cluster
    for level in [ReuseLevel::L2, ReuseLevel::L3] {
        let mut cfg = quick_config(level, 4);
        cfg.fail_workers = vec![(55.0, 0), (140.0, 2)];
        assert_drivers_agree(cfg, || Synthetic::new(level, 300), &format!("fail-{level}"));
    }
}

#[test]
fn dense_driver_matches_reference_colocated() {
    assert_drivers_agree(
        SimConfig::colocated(ReuseLevel::L3),
        || Synthetic::new(ReuseLevel::L3, 150),
        "colocated",
    );
}

#[test]
fn shared_fs_contention_hurts_l1_at_scale() {
    // per-invocation L1 runtimes degrade once concurrent readers push the
    // shared filesystem past its aggregate saturation point (~291 clients
    // at the latency-bound 36 MB/s per-client rate); below that point the
    // per-client cap is binding and runtimes are flat
    let mut w_small = Synthetic::new(ReuseLevel::L1, 96);
    let r_small = simulate(quick_config(ReuseLevel::L1, 2), &mut w_small); // 32 slots
    let mut w_big = Synthetic::new(ReuseLevel::L1, 3_000);
    let r_big = simulate(quick_config(ReuseLevel::L1, 50), &mut w_big); // 800 slots
    let mean_small = r_small.trace.runtime_stats().mean;
    let mean_big = r_big.trace.runtime_stats().mean;
    // degradation is mild until the cluster is deeply oversubscribed (the
    // manager's dispatch rate itself limits reader concurrency — the same
    // self-limiting the paper's Fig 9 discussion observes), so assert a
    // consistent direction rather than a large factor
    assert!(
        mean_big > mean_small + 0.5,
        "L1 runtime should degrade past FS saturation: {mean_small} vs {mean_big}"
    );
}
