//! The retained *old-shape* simulation driver: every piece of driver state
//! keyed through `BTreeMap`s, exactly as the event core looked before the
//! dense-layout overhaul in [`crate::run`].
//!
//! This module is the simulator analogue of `vine_manager::reference`: a
//! frozen baseline that
//!
//! * anchors **differential tests** — [`simulate_reference`] must produce a
//!   bit-identical [`SimResult`] (trace, timings, event count) to
//!   [`crate::simulate`] on any workload, which pins the overhaul to "data
//!   layout only, no arithmetic or ordering changes";
//! * gives `repro perf --sim` its **baseline leg**, so the events/sec
//!   speedup in `BENCH_sim.json` is measured against the genuine
//!   pre-overhaul shape rather than a strawman.
//!
//! Deliberately preserved inefficiencies (they *are* the baseline):
//! `jobs`/`pools`/`active_flows` map lookups on every event, a full-map
//! scan in `fail_worker`, an unboundedly growing `submit_times`, a
//! per-call `Vec<ContentHash>` allocation in `pick_source`, and a fluid
//! pool that stores flows in a `BTreeMap` with a collect-then-remove
//! completion sweep.

use crate::cluster::assign_gflops;
use crate::engine::EventQueue;
use crate::run::{SimConfig, SimResult, Workload};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::{BTreeMap, VecDeque};
use vine_core::context::FileSource;
use vine_core::ids::{ContentHash, InvocationId, LibraryInstanceId, WorkerId};
use vine_core::task::{UnitId, WorkProfile, WorkUnit};
use vine_core::time::{SimDuration, SimTime};
use vine_core::trace::{InvocationRecord, LibraryRecord, PhaseBreakdown, Trace};
use vine_manager::{Decision, Manager};

/// Identifier of a flow within a pool.
type FlowId = u64;

#[derive(Debug, Clone)]
struct Flow {
    remaining: f64,
    /// Original transfer size (scales the completion tolerance).
    amount: f64,
}

/// The pre-overhaul fluid pool: flows in a `BTreeMap`, completion as a
/// collect-then-remove double pass, next-completion as a full-map fold.
/// Same arithmetic as [`crate::engine::FluidPool`], different layout.
#[derive(Debug)]
struct NaiveFluidPool {
    capacity: f64,
    per_flow_cap: f64,
    flows: BTreeMap<FlowId, Flow>,
    last_advance: SimTime,
    epoch: u64,
}

const EPS_ABS: f64 = 1e-6;
const EPS_REL: f64 = 1e-9;

impl NaiveFluidPool {
    fn new(capacity: f64, per_flow_cap: f64) -> NaiveFluidPool {
        NaiveFluidPool {
            capacity: capacity.max(1e-9),
            per_flow_cap: per_flow_cap.max(1e-9),
            flows: BTreeMap::new(),
            last_advance: SimTime::ZERO,
            epoch: 0,
        }
    }

    fn rate(&self) -> f64 {
        if self.flows.is_empty() {
            return self.per_flow_cap;
        }
        (self.capacity / self.flows.len() as f64).min(self.per_flow_cap)
    }

    fn active(&self) -> usize {
        self.flows.len()
    }

    fn advance(&mut self, now: SimTime) {
        let dt = now.since(self.last_advance).as_secs_f64();
        if dt > 0.0 && !self.flows.is_empty() {
            let done = self.rate() * dt;
            for f in self.flows.values_mut() {
                f.remaining = (f.remaining - done).max(0.0);
            }
        }
        self.last_advance = now;
    }

    fn eps(amount: f64) -> f64 {
        EPS_ABS + EPS_REL * amount
    }

    fn add(&mut self, now: SimTime, id: FlowId, amount: f64) {
        self.advance(now);
        self.epoch += 1;
        self.flows.insert(
            id,
            Flow {
                remaining: amount.max(0.0),
                amount: amount.max(0.0),
            },
        );
    }

    fn take_completed(&mut self, now: SimTime) -> Vec<FlowId> {
        self.advance(now);
        let done: Vec<FlowId> = self
            .flows
            .iter()
            .filter(|(_, f)| f.remaining <= Self::eps(f.amount))
            .map(|(id, _)| *id)
            .collect();
        if !done.is_empty() {
            self.epoch += 1;
            for id in &done {
                self.flows.remove(id);
            }
        }
        done
    }

    fn cancel(&mut self, now: SimTime, id: FlowId) -> bool {
        self.advance(now);
        let existed = self.flows.remove(&id).is_some();
        if existed {
            self.epoch += 1;
        }
        existed
    }

    fn next_completion(&self, now: SimTime) -> Option<SimTime> {
        let min_remaining = self
            .flows
            .values()
            .map(|f| f.remaining)
            .fold(f64::INFINITY, f64::min);
        if min_remaining.is_infinite() {
            return None;
        }
        let secs = min_remaining / self.rate();
        Some(now + SimDuration::from_secs_f64(secs.max(0.0)) + SimDuration::from_micros(1))
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum PoolKey {
    SharedBw,
    SharedIops,
    Disk(WorkerId),
    /// Outbound link; 0 = manager, w+1 = worker w.
    Uplink(u32),
}

fn uplink_of_worker(w: WorkerId) -> PoolKey {
    PoolKey::Uplink(w.0 + 1)
}
const MANAGER_UPLINK: PoolKey = PoolKey::Uplink(0);

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Transfer,
    Worker,
    Library,
    Exec,
}

#[derive(Clone, Debug)]
enum StepKind {
    Fixed(SimDuration),
    Flow { pool: PoolKey, amount: f64 },
}

#[derive(Clone, Debug)]
struct Step {
    kind: StepKind,
    phase: Phase,
}

#[derive(Debug)]
enum JobKind {
    Call {
        id: InvocationId,
        library: LibraryInstanceId,
        submitted: SimTime,
    },
    Task {
        id: vine_core::ids::TaskId,
        submitted: SimTime,
    },
    Install {
        instance: LibraryInstanceId,
        library_name: String,
    },
}

#[derive(Debug)]
struct Job {
    kind: JobKind,
    worker: WorkerId,
    steps: VecDeque<Step>,
    current: Option<Step>,
    step_started: SimTime,
    dispatched: SimTime,
    phases: PhaseBreakdown,
    /// Original unit for requeueing on worker loss.
    unit: Option<WorkUnit>,
}

enum Ev {
    WorkerConnect(WorkerId),
    WorkerFail(WorkerId),
    MgrWake,
    PoolCheck { key: PoolKey, epoch: u64 },
    JobStep { job: u64 },
}

struct Driver<'w> {
    cfg: SimConfig,
    q: EventQueue<Ev>,
    pools: BTreeMap<PoolKey, NaiveFluidPool>,
    mgr: Manager,
    jobs: BTreeMap<u64, Job>,
    next_job: u64,
    gflops: Vec<f64>,
    rng: ChaCha8Rng,
    trace: Trace,
    lib_records: BTreeMap<LibraryInstanceId, usize>,
    setup_profiles: BTreeMap<String, WorkProfile>,
    submit_times: BTreeMap<UnitId, SimTime>,
    mgr_free_at: SimTime,
    mgr_wake_at: Option<SimTime>,
    app_start: Option<SimTime>,
    connected: usize,
    end: SimTime,
    failed_units: u64,
    events: u64,
    workload: &'w mut dyn Workload,
    /// (job, pool) of each job's active flow, for cancellation.
    active_flows: BTreeMap<u64, PoolKey>,
}

/// Run a workload to completion on the retained pre-overhaul driver.
pub fn simulate_reference(cfg: SimConfig, workload: &mut dyn Workload) -> SimResult {
    let mut mgr = Manager::new();
    let mut setup_profiles = BTreeMap::new();
    for (spec, profile) in workload.libraries() {
        setup_profiles.insert(spec.name.clone(), profile);
        mgr.register_library(spec);
    }

    let gflops = assign_gflops(&cfg.groups, cfg.workers, cfg.seed);

    let mut pools = BTreeMap::new();
    let c = &cfg.cost;
    pools.insert(
        PoolKey::SharedBw,
        NaiveFluidPool::new(c.sharedfs_bytes_per_sec, c.sharedfs_client_bytes_per_sec),
    );
    pools.insert(
        PoolKey::SharedIops,
        NaiveFluidPool::new(c.sharedfs_iops, c.sharedfs_client_iops),
    );
    let mgr_link = if cfg.colocated {
        c.loopback_bytes_per_sec
    } else {
        c.nic_bytes_per_sec
    };
    pools.insert(MANAGER_UPLINK, NaiveFluidPool::new(mgr_link, mgr_link));
    for w in 0..cfg.workers {
        let wid = WorkerId(w as u32);
        pools.insert(
            PoolKey::Disk(wid),
            NaiveFluidPool::new(c.disk_bytes_per_sec, c.disk_bytes_per_sec),
        );
        pools.insert(
            uplink_of_worker(wid),
            NaiveFluidPool::new(c.nic_bytes_per_sec, c.nic_bytes_per_sec),
        );
    }

    let mut driver = Driver {
        q: EventQueue::new(),
        pools,
        mgr,
        jobs: BTreeMap::new(),
        next_job: 0,
        gflops,
        rng: ChaCha8Rng::seed_from_u64(cfg.seed),
        trace: Trace::default(),
        lib_records: BTreeMap::new(),
        setup_profiles,
        submit_times: BTreeMap::new(),
        mgr_free_at: SimTime::ZERO,
        mgr_wake_at: None,
        app_start: None,
        connected: 0,
        end: SimTime::ZERO,
        failed_units: 0,
        events: 0,
        workload,
        active_flows: BTreeMap::new(),
        cfg,
    };
    driver.run()
}

impl<'w> Driver<'w> {
    fn run(&mut self) -> SimResult {
        // workers begin connecting at t=0; startup ≈ 20 s each (Table 2)
        for w in 0..self.cfg.workers {
            let jitter = 1.0 + self.rng.gen_range(-0.05..0.05);
            let at = SimTime::ZERO + self.cfg.cost.worker_startup * jitter;
            self.q.schedule(at, Ev::WorkerConnect(WorkerId(w as u32)));
        }
        for (secs, idx) in self.cfg.fail_workers.clone() {
            self.q.schedule(
                SimTime::from_secs_f64(secs),
                Ev::WorkerFail(WorkerId(idx as u32)),
            );
        }
        // units are known at submit time (before workers connect)
        for unit in self.workload.initial_units() {
            self.submit_unit(unit, SimTime::ZERO);
        }

        while let Some((t, ev)) = self.q.pop() {
            self.events += 1;
            match ev {
                Ev::WorkerConnect(w) => {
                    self.mgr.worker_joined(w, self.cfg.worker_resources);
                    self.connected += 1;
                    let threshold = (self.cfg.workers as f64 * 0.95).ceil() as usize;
                    if self.connected >= threshold && self.app_start.is_none() {
                        self.app_start = Some(t);
                    }
                    self.wake_mgr(t);
                }
                Ev::WorkerFail(w) => self.fail_worker(t, w),
                Ev::MgrWake => {
                    self.mgr_wake_at = None;
                    self.mgr_step(t);
                }
                Ev::PoolCheck { key, epoch } => {
                    let pool = self.pools.get_mut(&key).expect("pool exists");
                    if pool.epoch != epoch {
                        continue; // stale
                    }
                    let done = pool.take_completed(t);
                    for job in done {
                        self.active_flows.remove(&job);
                        self.job_step_done(t, job);
                    }
                    self.touch_pool(key, t);
                }
                Ev::JobStep { job } => self.job_step_done(t, job),
            }
        }

        let app_start = self.app_start.unwrap_or(SimTime::ZERO);
        let makespan = self.end.since(app_start);
        self.trace.makespan = makespan;
        SimResult {
            trace: std::mem::take(&mut self.trace),
            app_start,
            end: self.end,
            failed_units: self.failed_units,
            makespan,
            events: self.events,
        }
    }

    fn submit_unit(&mut self, unit: WorkUnit, t: SimTime) {
        let id = match &unit {
            WorkUnit::Task(task) => UnitId::Task(task.id),
            WorkUnit::Call(c) => UnitId::Call(c.id),
        };
        self.submit_times.insert(id, t);
        self.mgr.submit(unit);
    }

    fn wake_mgr(&mut self, t: SimTime) {
        let at = t.max(self.mgr_free_at);
        match self.mgr_wake_at {
            Some(existing) if existing <= at => {}
            _ => {
                self.mgr_wake_at = Some(at);
                self.q.schedule(at, Ev::MgrWake);
            }
        }
    }

    /// One manager service cycle; see `crate::run::Driver::mgr_step` for the
    /// batching argument (identical here).
    fn mgr_step(&mut self, t: SimTime) {
        if t < self.mgr_free_at {
            self.wake_mgr(self.mgr_free_at);
            return;
        }
        loop {
            let Some(d) = self.mgr.next_decision() else {
                return; // idle until the next state-changing event
            };
            let cost = self.decision_cost(&d);
            self.mgr_free_at = self.mgr_free_at.max(t) + cost;
            self.realize(d, self.mgr_free_at);
            if self
                .q
                .peek_time()
                .is_some_and(|next| next <= self.mgr_free_at)
            {
                self.wake_mgr(self.mgr_free_at);
                return;
            }
        }
    }

    fn decision_cost(&self, d: &Decision) -> SimDuration {
        let c = &self.cfg.cost;
        match d {
            Decision::DispatchTask { task, missing, .. } => {
                let l1_style = task.inputs.iter().any(|f| f.source == FileSource::SharedFs);
                c.task_dispatch_cost(!l1_style && missing.is_empty(), self.mgr.pending())
            }
            Decision::DispatchCall { .. } => c.call_dispatch_cost(self.mgr.pending()),
            Decision::InstallLibrary { .. } | Decision::EvictLibrary { .. } => {
                c.mgr_library_install
            }
            Decision::Fail { .. } => SimDuration::from_millis(1),
        }
    }

    fn realize(&mut self, d: Decision, start: SimTime) {
        let c = self.cfg.cost.clone();
        match d {
            Decision::Fail { unit, error: _ } => {
                self.failed_units += 1;
                let more = self.workload.on_complete(unit, false);
                for u in more {
                    self.submit_unit(u, start);
                }
            }
            Decision::EvictLibrary { instance, .. } => {
                if let Some(idx) = self.lib_records.get(&instance) {
                    self.trace.libraries[*idx].removed = Some(start);
                }
            }
            Decision::DispatchCall {
                worker,
                library,
                call,
            } => {
                let mut steps = VecDeque::new();
                steps.push_back(Step {
                    kind: StepKind::Fixed(c.net_latency),
                    phase: Phase::Transfer,
                });
                let mut worker_overhead = c.call_sandbox_setup + c.invocation_handoff;
                let mode = call.exec_mode.unwrap_or(vine_core::task::ExecMode::Direct);
                if mode == vine_core::task::ExecMode::Fork {
                    worker_overhead += c.fork_overhead;
                }
                steps.push_back(Step {
                    kind: StepKind::Fixed(worker_overhead),
                    phase: Phase::Worker,
                });
                steps.push_back(Step {
                    kind: StepKind::Fixed(c.call_args_deserialize),
                    phase: Phase::Library,
                });
                steps.push_back(Step {
                    kind: StepKind::Fixed(self.compute_time(
                        worker,
                        call.profile.exec_gflop,
                        call.resources.cores,
                    )),
                    phase: Phase::Exec,
                });
                let submitted = self.submit_times[&UnitId::Call(call.id)];
                self.start_job(
                    start,
                    Job {
                        kind: JobKind::Call {
                            id: call.id,
                            library,
                            submitted,
                        },
                        worker,
                        steps,
                        current: None,
                        step_started: start,
                        dispatched: start,
                        phases: PhaseBreakdown::default(),
                        unit: Some(WorkUnit::Call(call)),
                    },
                );
            }
            Decision::DispatchTask {
                worker,
                task,
                missing,
            } => {
                let mut steps = VecDeque::new();
                // stage cacheable inputs from the manager or a peer
                let staged: u64 = missing.iter().map(|f| f.size_bytes).sum();
                if staged > 0 {
                    let src = self.pick_source(worker, &missing);
                    steps.push_back(Step {
                        kind: StepKind::Flow {
                            pool: src,
                            amount: staged as f64,
                        },
                        phase: Phase::Transfer,
                    });
                } else {
                    steps.push_back(Step {
                        kind: StepKind::Fixed(c.net_latency),
                        phase: Phase::Transfer,
                    });
                }
                // unpack freshly staged archives
                let unpack: u64 = missing
                    .iter()
                    .filter(|f| f.unpacked_bytes > 0)
                    .map(|f| f.unpacked_bytes)
                    .sum();
                let mut worker_fixed = c.sandbox_setup;
                if unpack > 0 {
                    worker_fixed += SimDuration::for_transfer(unpack, c.env_unpack_bytes_per_sec);
                }
                steps.push_back(Step {
                    kind: StepKind::Fixed(worker_fixed),
                    phase: Phase::Worker,
                });
                let l1_style = task.inputs.iter().any(|f| f.source == FileSource::SharedFs);
                if l1_style {
                    // the import storm and context read both hit the
                    // shared filesystem (volumes are workload-specific)
                    if task.profile.sharedfs_ops > 0.0 {
                        steps.push_back(Step {
                            kind: StepKind::Flow {
                                pool: PoolKey::SharedIops,
                                amount: task.profile.sharedfs_ops,
                            },
                            phase: Phase::Worker,
                        });
                    }
                    let bytes = task.profile.sharedfs_read_bytes + task.profile.context_read_bytes;
                    if bytes > 0 {
                        steps.push_back(Step {
                            kind: StepKind::Flow {
                                pool: PoolKey::SharedBw,
                                amount: bytes as f64,
                            },
                            phase: Phase::Worker,
                        });
                    }
                }
                // see crate::run for the phase-attribution rationale
                let mut lib_fixed = c.task_wrapper_overhead;
                if !task.inputs.is_empty() || task.profile.context_read_bytes > 0 {
                    lib_fixed += c.invocation_deserialize;
                }
                steps.push_back(Step {
                    kind: StepKind::Fixed(lib_fixed),
                    phase: Phase::Library,
                });
                if !l1_style && task.profile.context_read_bytes > 0 {
                    steps.push_back(Step {
                        kind: StepKind::Flow {
                            pool: PoolKey::Disk(worker),
                            amount: task.profile.context_read_bytes as f64,
                        },
                        phase: Phase::Exec,
                    });
                }
                if task.profile.context_gflop > 0.0 {
                    steps.push_back(Step {
                        kind: StepKind::Fixed(self.compute_time(
                            worker,
                            task.profile.context_gflop,
                            task.resources.cores,
                        )),
                        phase: Phase::Exec,
                    });
                }
                let mut exec =
                    self.compute_time(worker, task.profile.exec_gflop, task.resources.cores);
                if l1_style {
                    exec = exec * task.profile.l1_exec_slowdown.max(1.0);
                }
                steps.push_back(Step {
                    kind: StepKind::Fixed(exec),
                    phase: Phase::Exec,
                });
                let submitted = self.submit_times[&UnitId::Task(task.id)];
                self.start_job(
                    start,
                    Job {
                        kind: JobKind::Task {
                            id: task.id,
                            submitted,
                        },
                        worker,
                        steps,
                        current: None,
                        step_started: start,
                        dispatched: start,
                        phases: PhaseBreakdown::default(),
                        unit: Some(WorkUnit::Task(task)),
                    },
                );
            }
            Decision::InstallLibrary {
                worker,
                instance,
                spec,
                missing,
            } => {
                let mut steps = VecDeque::new();
                let staged: u64 = missing.iter().map(|f| f.size_bytes).sum();
                if staged > 0 {
                    let src = self.pick_source(worker, &missing);
                    steps.push_back(Step {
                        kind: StepKind::Flow {
                            pool: src,
                            amount: staged as f64,
                        },
                        phase: Phase::Transfer,
                    });
                }
                let unpack: u64 = missing
                    .iter()
                    .filter(|f| f.unpacked_bytes > 0)
                    .map(|f| f.unpacked_bytes)
                    .sum();
                if unpack > 0 {
                    steps.push_back(Step {
                        kind: StepKind::Fixed(SimDuration::for_transfer(
                            unpack,
                            c.env_unpack_bytes_per_sec,
                        )),
                        phase: Phase::Worker,
                    });
                }
                steps.push_back(Step {
                    kind: StepKind::Fixed(c.library_boot),
                    phase: Phase::Library,
                });
                let profile = self
                    .setup_profiles
                    .get(&spec.name)
                    .copied()
                    .unwrap_or_default();
                if profile.context_read_bytes > 0 {
                    steps.push_back(Step {
                        kind: StepKind::Flow {
                            pool: PoolKey::Disk(worker),
                            amount: profile.context_read_bytes as f64,
                        },
                        phase: Phase::Library,
                    });
                }
                if profile.context_gflop > 0.0 {
                    let cores = spec
                        .resources
                        .map(|r| r.cores)
                        .unwrap_or(self.cfg.worker_resources.cores)
                        .max(1);
                    steps.push_back(Step {
                        kind: StepKind::Fixed(self.compute_time(
                            worker,
                            profile.context_gflop,
                            cores.min(4),
                        )),
                        phase: Phase::Library,
                    });
                }
                self.start_job(
                    start,
                    Job {
                        kind: JobKind::Install {
                            instance,
                            library_name: spec.name.clone(),
                        },
                        worker,
                        steps,
                        current: None,
                        step_started: start,
                        dispatched: start,
                        phases: PhaseBreakdown::default(),
                        unit: None,
                    },
                );
            }
        }
    }

    /// Pick the uplink pool to stage `missing` from (pre-overhaul version:
    /// allocates a scratch `Vec<ContentHash>` on every call).
    fn pick_source(&self, dest: WorkerId, missing: &[vine_core::context::FileRef]) -> PoolKey {
        if !self.cfg.peer_transfer {
            return MANAGER_UPLINK;
        }
        let hashes: Vec<ContentHash> = missing.iter().map(|f| f.hash).collect();
        let Some((first, rest)) = hashes.split_first() else {
            return MANAGER_UPLINK;
        };
        let mut best: Option<(usize, PoolKey)> = None;
        for wid in self.mgr.holders_of(*first) {
            if wid == dest {
                continue;
            }
            let ws = &self.mgr.workers[&wid];
            if rest.iter().all(|h| ws.cache.contains(*h)) {
                let key = uplink_of_worker(wid);
                let load = self.pools[&key].active();
                if best.is_none_or(|(l, _)| load < l) {
                    best = Some((load, key));
                }
            }
        }
        match best {
            // only offload to a peer that isn't already saturated worse
            // than the manager
            Some((load, key)) if load <= self.pools[&MANAGER_UPLINK].active() + 2 => key,
            _ => MANAGER_UPLINK,
        }
    }

    /// Modeled compute duration; identical to `crate::run`.
    fn compute_time(&mut self, worker: WorkerId, gflop: f64, cores: u32) -> SimDuration {
        if gflop <= 0.0 {
            return SimDuration::ZERO;
        }
        let rating = self
            .gflops
            .get(worker.0 as usize)
            .copied()
            .unwrap_or(self.cfg.cost.reference_gflops);
        let base = gflop / (rating * f64::from(cores.max(1)));
        let occupancy = self
            .mgr
            .workers
            .get(&worker)
            .map(|w| w.occupancy())
            .unwrap_or(0.0);
        let contention = 1.0 + occupancy * (self.cfg.cost.full_occupancy_slowdown - 1.0);
        let jitter = (self.rng.gen_range(-0.08f64..0.08)).exp();
        let p_stall = (0.001 * base).min(0.5);
        let stall = if p_stall > 0.0 && self.rng.gen_bool(p_stall) {
            self.rng.gen_range(5.0..35.0)
        } else {
            0.0
        };
        SimDuration::from_secs_f64(base * contention * jitter + stall)
    }

    fn start_job(&mut self, t: SimTime, job: Job) {
        let id = self.next_job;
        self.next_job += 1;
        self.jobs.insert(id, job);
        self.begin_next_step(t, id);
    }

    fn begin_next_step(&mut self, t: SimTime, job_id: u64) {
        let Some(job) = self.jobs.get_mut(&job_id) else {
            return;
        };
        job.step_started = t;
        match job.steps.pop_front() {
            None => {
                job.current = None;
                self.finish_job(t, job_id);
            }
            Some(step) => {
                let kind = step.kind.clone();
                job.current = Some(step);
                match kind {
                    StepKind::Fixed(d) => self.q.schedule(t + d, Ev::JobStep { job: job_id }),
                    StepKind::Flow { pool, amount } => {
                        self.active_flows.insert(job_id, pool);
                        let p = self.pools.get_mut(&pool).expect("pool exists");
                        p.add(t, job_id, amount);
                        self.touch_pool(pool, t);
                    }
                }
            }
        }
    }

    fn job_step_done(&mut self, t: SimTime, job_id: u64) {
        let Some(job) = self.jobs.get_mut(&job_id) else {
            return; // job cancelled (worker died)
        };
        let Some(step) = job.current.take() else {
            return;
        };
        let elapsed = t.since(job.step_started);
        match step.phase {
            Phase::Transfer => job.phases.transfer += elapsed,
            Phase::Worker => job.phases.worker_overhead += elapsed,
            Phase::Library => job.phases.library_overhead += elapsed,
            Phase::Exec => job.phases.exec += elapsed,
        }
        self.begin_next_step(t, job_id);
    }

    fn finish_job(&mut self, t: SimTime, job_id: u64) {
        let job = self.jobs.remove(&job_id).expect("finishing a live job");
        match job.kind {
            JobKind::Call {
                id,
                library,
                submitted,
            } => {
                self.trace.invocations.push(InvocationRecord {
                    id,
                    worker: job.worker,
                    library: Some(library),
                    level: self.cfg.level,
                    submitted,
                    dispatched: job.dispatched,
                    finished: t,
                    phases: job.phases,
                    success: true,
                });
                if let Some(idx) = self.lib_records.get(&library) {
                    self.trace.libraries[*idx].served += 1;
                }
                let _ = self.mgr.unit_finished(UnitId::Call(id));
                self.end = self.end.max(t);
                let more = self.workload.on_complete(UnitId::Call(id), true);
                for u in more {
                    self.submit_unit(u, t);
                }
                self.wake_mgr(t);
            }
            JobKind::Task { id, submitted } => {
                self.trace.invocations.push(InvocationRecord {
                    // wrapped invocations are traced under the task's number
                    id: InvocationId(id.0),
                    worker: job.worker,
                    library: None,
                    level: self.cfg.level,
                    submitted,
                    dispatched: job.dispatched,
                    finished: t,
                    phases: job.phases,
                    success: true,
                });
                let _ = self.mgr.unit_finished(UnitId::Task(id));
                self.end = self.end.max(t);
                let more = self.workload.on_complete(UnitId::Task(id), true);
                for u in more {
                    self.submit_unit(u, t);
                }
                self.wake_mgr(t);
            }
            JobKind::Install {
                instance,
                library_name,
            } => {
                if self.mgr.library_ready(job.worker, instance).is_ok() {
                    self.lib_records
                        .insert(instance, self.trace.libraries.len());
                    self.trace.libraries.push(LibraryRecord {
                        id: instance,
                        worker: job.worker,
                        library_name,
                        deployed: t,
                        removed: None,
                        served: 0,
                        phases: job.phases,
                    });
                }
                self.wake_mgr(t);
            }
        }
    }

    fn fail_worker(&mut self, t: SimTime, w: WorkerId) {
        let lost = self.mgr.worker_left(w);
        // cancel this worker's in-flight jobs and requeue their units —
        // pre-overhaul shape: a scan over *all* live jobs
        let doomed: Vec<u64> = self
            .jobs
            .iter()
            .filter(|(_, j)| j.worker == w)
            .map(|(id, _)| *id)
            .collect();
        for job_id in doomed {
            if let Some(pool) = self.active_flows.remove(&job_id) {
                self.pools.get_mut(&pool).unwrap().cancel(t, job_id);
                self.touch_pool(pool, t);
            }
            let job = self.jobs.remove(&job_id).unwrap();
            if let Some(unit) = job.unit {
                self.mgr.requeue(unit);
            }
        }
        // close out the worker's library records
        for (lib, idx) in &self.lib_records {
            let rec = &mut self.trace.libraries[*idx];
            if rec.worker == w && rec.removed.is_none() {
                let _ = lib;
                rec.removed = Some(t);
            }
        }
        let _ = lost;
        self.wake_mgr(t);
    }

    fn touch_pool(&mut self, key: PoolKey, t: SimTime) {
        let pool = self.pools.get_mut(&key).expect("pool exists");
        if let Some(at) = pool.next_completion(t) {
            let epoch = pool.epoch;
            self.q.schedule(at, Ev::PoolCheck { key, epoch });
        }
    }
}
