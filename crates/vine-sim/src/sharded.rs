//! Federated-sharding simulation: N scheduling shards behind the
//! routing front-end, each shard its own dense-event sub-simulation.
//!
//! The routing tier ([`vine_manager::ShardRouter`]) is driven exactly as
//! the live `repro route` process drives it: every library registers its
//! function-context digest, every submission hashes onto the shard
//! vnode ring, and the worker fleet partitions across shards by the same
//! ring. Each shard then runs the unmodified single-shard simulator
//! ([`crate::simulate`]) over its partition — shards share no state, so
//! the sub-simulations run in parallel under the `--jobs` sweep while
//! staying bit-reproducible (results are merged in shard order).
//!
//! Scope: workloads must be *static* (all units known at start, like
//! LNNI's full non-overlapping sweep). Completion-driven submission
//! (`Workload::on_complete`) would couple shards through the client and
//! is not modeled here; chained units are ignored.
//!
//! A federation of one is the degenerate case: all units and all workers
//! land on shard 0 in submission order, so `simulate_sharded(cfg, 1, w)`
//! is trace-for-trace identical to `simulate(cfg, w)` — pinned by
//! `tests/sharded_tests.rs`.

use rayon::prelude::*;

use crate::run::{simulate, SimConfig, SimResult, Workload};
use vine_core::ids::{InvocationId, ShardId, WorkerId};
use vine_core::task::{WorkProfile, WorkUnit};
use vine_core::LibrarySpec;
use vine_manager::ShardRouter;

/// Outcome of one federated run.
#[derive(Debug)]
pub struct ShardedResult {
    /// Per-shard sub-simulation results, indexed by shard id.
    pub shards: Vec<SimResult>,
    /// Units routed to each shard (same indexing).
    pub routed: Vec<u64>,
    /// Workers partitioned to each shard (same indexing).
    pub workers: Vec<usize>,
    /// Units completed across the federation.
    pub completed: u64,
    /// Units that failed across the federation.
    pub failed: u64,
    /// Slowest shard's application execution time — the federation's
    /// completion time, since shards run concurrently.
    pub makespan_s: f64,
    /// Aggregate submission throughput: completed units per second of
    /// federation makespan.
    pub throughput: f64,
    /// Discrete events processed across all sub-simulations.
    pub events: u64,
}

/// Per-shard static workload: the slice of submissions the router hashed
/// to one shard. Every library registers on every shard (deployment is
/// demand-driven, so unused registrations cost nothing).
struct ShardSlice {
    libs: Vec<(LibrarySpec, WorkProfile)>,
    units: Vec<WorkUnit>,
}

impl Workload for ShardSlice {
    fn libraries(&self) -> Vec<(LibrarySpec, WorkProfile)> {
        self.libs.clone()
    }

    fn initial_units(&mut self) -> Vec<WorkUnit> {
        std::mem::take(&mut self.units)
    }
}

/// Run `workload` on a federation of `shards` scheduling shards.
///
/// `cfg` describes the whole fleet; each shard's sub-simulation sees its
/// worker partition and routed submissions. `cfg.fail_workers` indices
/// refer to fleet worker ids and are forwarded to whichever shard owns
/// that worker.
pub fn simulate_sharded(
    cfg: &SimConfig,
    shards: usize,
    workload: &mut dyn Workload,
) -> ShardedResult {
    assert!(shards >= 1, "a federation needs at least one shard");
    let mut router = ShardRouter::new();
    for s in 0..shards {
        router.shard_joined(ShardId(s as u32));
    }

    let libs = workload.libraries();
    for (spec, _) in &libs {
        router.register_library(spec);
    }

    // ---- route submissions (preserving per-shard submission order) ----
    let mut units: Vec<Vec<WorkUnit>> = vec![Vec::new(); shards];
    for unit in workload.initial_units() {
        let s = router.shard_for_unit(&unit).expect("shards joined");
        units[s.0 as usize].push(unit);
    }

    // ---- partition the worker fleet over the same ring ----------------
    let fleet: Vec<WorkerId> = (0..cfg.workers as u32).map(WorkerId).collect();
    let parts = router.partition(&fleet);
    let mut partition: Vec<Vec<WorkerId>> = (0..shards)
        .map(|s| parts[&ShardId(s as u32)].clone())
        .collect();
    // a shard that drew no workers from the ring but owns work steals one
    // from the largest partition — a routed unit must never strand
    while let Some(empty) = (0..shards).find(|&s| partition[s].is_empty() && !units[s].is_empty()) {
        let donor = (0..shards)
            .max_by_key(|&s| partition[s].len())
            .expect("at least one shard");
        assert!(partition[donor].len() > 1, "fewer workers than busy shards");
        let w = partition[donor].pop().expect("donor has workers");
        partition[empty].push(w);
    }

    // ---- one sub-simulation per shard, in parallel ---------------------
    let inputs: Vec<(usize, Vec<WorkerId>, Vec<WorkUnit>)> = partition
        .iter()
        .zip(units)
        .enumerate()
        .map(|(s, (ws, us))| (s, ws.clone(), us))
        .collect();
    let results: Vec<SimResult> = inputs
        .into_par_iter()
        .map(|(s, ws, us)| {
            let mut sub = cfg.clone();
            sub.shard = ShardId(s as u32);
            sub.workers = ws.len();
            // decorrelate jitter streams across shards; shard 0 of a
            // federation of one keeps the fleet seed (bit-identity)
            sub.seed = cfg.seed ^ (s as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            // fault injection follows the worker to the shard owning it
            sub.fail_workers = cfg
                .fail_workers
                .iter()
                .filter_map(|&(t, fleet_idx)| {
                    ws.iter()
                        .position(|w| w.0 as usize == fleet_idx)
                        .map(|local| (t, local))
                })
                .collect();
            let mut slice = ShardSlice {
                libs: libs.clone(),
                units: us,
            };
            simulate(sub, &mut slice)
        })
        .collect();

    let routed: Vec<u64> = results
        .iter()
        .map(|r| r.trace.invocations.len() as u64 + r.failed_units)
        .collect();
    let completed: u64 = results
        .iter()
        .map(|r| r.trace.invocations.len() as u64)
        .sum();
    let failed: u64 = results.iter().map(|r| r.failed_units).sum();
    let makespan_s = results
        .iter()
        .map(|r| r.makespan.as_secs_f64())
        .fold(0.0f64, f64::max);
    let events = results.iter().map(|r| r.events).sum();
    ShardedResult {
        workers: partition.iter().map(Vec::len).collect(),
        routed,
        completed,
        failed,
        makespan_s,
        throughput: if makespan_s > 0.0 {
            completed as f64 / makespan_s
        } else {
            0.0
        },
        events,
        shards: results,
    }
}

/// Every completed unit id across the federation, sorted — the
/// completeness check (nothing lost, nothing duplicated by routing).
pub fn completed_unit_ids(r: &ShardedResult) -> Vec<InvocationId> {
    let mut ids: Vec<InvocationId> = r
        .shards
        .iter()
        .flat_map(|s| s.trace.invocations.iter().map(|i| i.id))
        .collect();
    ids.sort_unstable();
    ids
}
