//! The simulation driver: manager decisions → timed pipelines → trace.
//!
//! ## Event-core data layout
//!
//! Every event the loop pops touches driver state, so lookups on the event
//! path are laid out dense (see DESIGN.md §7):
//!
//! * jobs live in a **slab** ([`JobSlab`]) — a `Vec` of slots plus a
//!   free-list — addressed by a packed [`JobId`] whose low bits are the
//!   slot (O(1) access) and whose high bits are a monotone dispatch
//!   sequence number (staleness check for reused slots, and the exact
//!   ordering the old `BTreeMap<u64, Job>` keys gave);
//! * fluid pools live in a **dense `Vec`** addressed by [`PoolId`]: three
//!   fixed slots (shared-FS bandwidth, shared-FS IOPS, manager uplink)
//!   followed by one disk and one uplink slot per worker;
//! * each job's in-flight flow is a field on the job itself
//!   (`Job::active_flow`) instead of a side `BTreeMap`;
//! * a per-worker job index makes `fail_worker` O(jobs on that worker)
//!   instead of a scan over every live job.
//!
//! The layout change is *only* a layout change: event times, float
//! arithmetic, and processing order are bit-identical to the retained
//! pre-overhaul driver in [`crate::reference`], which differential tests
//! and the `repro perf --sim` benchmark hold it to.

use crate::cluster::{assign_gflops, paper_groups, MachineGroup};
use crate::engine::{EventQueue, FluidPool};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::{BTreeMap, VecDeque};
use vine_core::config::{CostModel, ReuseLevel};
use vine_core::context::{FileSource, LibrarySpec};
use vine_core::ids::{InvocationId, LibraryInstanceId, ShardId, WorkerId};
use vine_core::resources::Resources;
use vine_core::task::{UnitId, WorkProfile, WorkUnit};
use vine_core::time::{SimDuration, SimTime};
use vine_core::trace::{InvocationRecord, LibraryRecord, PhaseBreakdown, Trace};
use vine_manager::{Decision, Shard};

/// What to simulate and on what cluster.
#[derive(Clone, Debug)]
pub struct SimConfig {
    pub workers: usize,
    pub seed: u64,
    pub level: ReuseLevel,
    pub cost: CostModel,
    /// Worker-to-worker transfers enabled (Fig 3b vs 3a).
    pub peer_transfer: bool,
    pub groups: Vec<MachineGroup>,
    /// Manager and worker on one machine (Table 5 setup): manager
    /// transfers run at loopback speed.
    pub colocated: bool,
    pub worker_resources: Resources,
    /// Kill worker (index) at time (seconds) — fault injection.
    pub fail_workers: Vec<(f64, usize)>,
    /// Identity of the embedded scheduling shard. A standalone simulation
    /// is shard 0 of a federation of one; `sharded::simulate_sharded` runs
    /// one sub-simulation per shard with distinct ids.
    pub shard: ShardId,
}

impl SimConfig {
    /// The paper's evaluation setup (§4.2).
    pub fn paper(level: ReuseLevel, workers: usize) -> SimConfig {
        SimConfig {
            workers,
            seed: 0x76696e65,
            level,
            cost: CostModel::paper(),
            peer_transfer: true,
            groups: paper_groups(),
            colocated: false,
            worker_resources: Resources::paper_worker(),
            fail_workers: Vec::new(),
            shard: ShardId(0),
        }
    }

    /// Table 5's co-located single-worker setup.
    pub fn colocated(level: ReuseLevel) -> SimConfig {
        let mut c = SimConfig::paper(level, 1);
        c.colocated = true;
        // one dedicated EPYC 7543 machine
        c.groups = vec![MachineGroup {
            name: "reference".into(),
            machines: 1,
            gflops_per_core: 5.4,
        }];
        c
    }
}

/// A workload feeds units to the simulator and reacts to completions
/// (ExaMol's active-learning loop submits new batches as results return).
pub trait Workload {
    /// Libraries to register, each with the [`WorkProfile`] of its context
    /// setup (what the library daemon does before reporting Ready).
    fn libraries(&self) -> Vec<(LibrarySpec, WorkProfile)>;
    /// Units known at application start.
    fn initial_units(&mut self) -> Vec<WorkUnit>;
    /// Called on every completion; returned units are submitted.
    fn on_complete(&mut self, _unit: UnitId, _success: bool) -> Vec<WorkUnit> {
        Vec::new()
    }
}

/// Simulation output.
#[derive(Debug)]
pub struct SimResult {
    pub trace: Trace,
    /// When ≥95% of workers had connected — the paper's application start
    /// line (§4.2).
    pub app_start: SimTime,
    /// When the last unit completed.
    pub end: SimTime,
    pub failed_units: u64,
    /// Application execution time (end − app_start), also in
    /// `trace.makespan`.
    pub makespan: SimDuration,
    /// Discrete events processed — the denominator of the sim-core
    /// benchmark's events/sec, and a cheap whole-run fingerprint for
    /// differential tests (identical schedules pop identical counts).
    pub events: u64,
}

// ---- internal machinery ----

/// Index of a fluid pool in the driver's dense pool vector.
///
/// Layout: `[SharedBw, SharedIops, ManagerUplink, disk(w0..wN), uplink(w0..wN)]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct PoolId(u32);

const POOL_SHARED_BW: PoolId = PoolId(0);
const POOL_SHARED_IOPS: PoolId = PoolId(1);
const POOL_MANAGER_UPLINK: PoolId = PoolId(2);
/// First per-worker slot.
const POOL_FIXED_SLOTS: u32 = 3;

/// Packed job handle: a monotone dispatch sequence number in the high bits,
/// the slab slot in the low bits.
///
/// The sequence number serves three purposes at once:
///
/// * **ordering** — `JobId`s (and the flow ids derived from them) compare
///   exactly like the old monotone `u64` job counter, because the sequence
///   occupies the high bits and is unique per job; a fluid pool's
///   "completed flows ascending by id" therefore still means "ascending by
///   dispatch order", which pins event ordering bit-for-bit;
/// * **staleness** — a `JobStep` event for a job whose slot has been freed
///   and reused (worker failure cancelled it) no longer matches the slot's
///   current occupant, exactly as a `BTreeMap` lookup of a removed key
///   found nothing;
/// * **slot addressing** — the low bits index the slab directly, O(1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct JobId(u64);

/// 22 bits of slot → up to ~4M concurrent jobs, leaving 42 bits of
/// sequence → ~4×10¹² jobs per run.
const JOB_SLOT_BITS: u32 = 22;
const JOB_SLOT_MASK: u64 = (1 << JOB_SLOT_BITS) - 1;

impl JobId {
    fn new(seq: u64, slot: u32) -> JobId {
        debug_assert!(u64::from(slot) <= JOB_SLOT_MASK, "slab slot overflow");
        debug_assert!(seq < (1 << (64 - JOB_SLOT_BITS)), "job sequence overflow");
        JobId((seq << JOB_SLOT_BITS) | u64::from(slot))
    }

    fn slot(self) -> usize {
        (self.0 & JOB_SLOT_MASK) as usize
    }

    /// The id used as this job's [`crate::engine::FlowId`] in fluid pools.
    fn flow(self) -> u64 {
        self.0
    }
}

/// Slab of live jobs: free-list `Vec`, O(1) insert/lookup/remove, no
/// per-job allocation once the high-water mark is reached.
#[derive(Debug, Default)]
struct JobSlab {
    slots: Vec<Option<Job>>,
    free: Vec<u32>,
    next_seq: u64,
}

impl JobSlab {
    fn insert(&mut self, mut job: Job) -> JobId {
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.slots.push(None);
                (self.slots.len() - 1) as u32
            }
        };
        let id = JobId::new(self.next_seq, slot);
        self.next_seq += 1;
        job.id = id;
        self.slots[slot as usize] = Some(job);
        id
    }

    fn get_mut(&mut self, id: JobId) -> Option<&mut Job> {
        self.slots
            .get_mut(id.slot())
            .and_then(|s| s.as_mut())
            .filter(|j| j.id == id)
    }

    fn remove(&mut self, id: JobId) -> Option<Job> {
        let slot = self.slots.get_mut(id.slot())?;
        if slot.as_ref().is_some_and(|j| j.id == id) {
            self.free.push(id.slot() as u32);
            slot.take()
        } else {
            None
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Transfer,
    Worker,
    Library,
    Exec,
}

#[derive(Clone, Copy, Debug)]
enum StepKind {
    Fixed(SimDuration),
    Flow { pool: PoolId, amount: f64 },
}

#[derive(Clone, Copy, Debug)]
struct Step {
    kind: StepKind,
    phase: Phase,
}

#[derive(Debug)]
enum JobKind {
    Call {
        id: InvocationId,
        library: LibraryInstanceId,
        submitted: SimTime,
    },
    Task {
        id: vine_core::ids::TaskId,
        submitted: SimTime,
    },
    Install {
        instance: LibraryInstanceId,
        library_name: String,
    },
}

#[derive(Debug)]
struct Job {
    /// Own packed id; also the staleness generation for slot reuse.
    id: JobId,
    kind: JobKind,
    worker: WorkerId,
    /// Position in `Driver::worker_jobs[worker]`, maintained on removal.
    worker_slot: u32,
    steps: VecDeque<Step>,
    current: Option<Step>,
    /// Pool of the in-flight flow step, if any (was a side `BTreeMap`).
    active_flow: Option<PoolId>,
    step_started: SimTime,
    dispatched: SimTime,
    phases: PhaseBreakdown,
    /// Original unit for requeueing on worker loss.
    unit: Option<WorkUnit>,
}

enum Ev {
    WorkerConnect(WorkerId),
    WorkerFail(WorkerId),
    MgrWake,
    PoolCheck { pool: PoolId, epoch: u64 },
    JobStep { job: JobId },
}

struct Driver<'w> {
    cfg: SimConfig,
    q: EventQueue<Ev>,
    /// Dense pool storage; see [`PoolId`] for the layout.
    pools: Vec<FluidPool>,
    /// The embedded scheduling shard (the `Manager` core plus federation
    /// identity); a single-shard simulation drives it exactly like the
    /// standalone manager, decision for decision.
    mgr: Shard,
    jobs: JobSlab,
    /// Live jobs per worker, for O(jobs-on-worker) failure handling.
    worker_jobs: Vec<Vec<JobId>>,
    gflops: Vec<f64>,
    rng: ChaCha8Rng,
    trace: Trace,
    lib_records: BTreeMap<LibraryInstanceId, usize>,
    setup_profiles: BTreeMap<String, WorkProfile>,
    /// Submit time of each *pending or in-flight* unit: entries are removed
    /// when a unit finishes or fails (requeues keep theirs), so long
    /// resubmission loops don't grow this map forever.
    submit_times: BTreeMap<UnitId, SimTime>,
    mgr_free_at: SimTime,
    mgr_wake_at: Option<SimTime>,
    app_start: Option<SimTime>,
    connected: usize,
    end: SimTime,
    failed_units: u64,
    events: u64,
    workload: &'w mut dyn Workload,
}

/// Run a workload to completion.
pub fn simulate(cfg: SimConfig, workload: &mut dyn Workload) -> SimResult {
    let mut mgr = Shard::new(cfg.shard);
    let mut setup_profiles = BTreeMap::new();
    for (spec, profile) in workload.libraries() {
        setup_profiles.insert(spec.name.clone(), profile);
        mgr.register_library(spec);
    }

    let gflops = assign_gflops(&cfg.groups, cfg.workers, cfg.seed);

    // dense pool vector: fixed slots, then per-worker disks, then uplinks
    let c = &cfg.cost;
    let mut pools = Vec::with_capacity(POOL_FIXED_SLOTS as usize + 2 * cfg.workers);
    pools.push(FluidPool::new(
        c.sharedfs_bytes_per_sec,
        c.sharedfs_client_bytes_per_sec,
    ));
    pools.push(FluidPool::new(c.sharedfs_iops, c.sharedfs_client_iops));
    let mgr_link = if cfg.colocated {
        c.loopback_bytes_per_sec
    } else {
        c.nic_bytes_per_sec
    };
    pools.push(FluidPool::new(mgr_link, mgr_link));
    for _ in 0..cfg.workers {
        pools.push(FluidPool::new(c.disk_bytes_per_sec, c.disk_bytes_per_sec));
    }
    for _ in 0..cfg.workers {
        pools.push(FluidPool::new(c.nic_bytes_per_sec, c.nic_bytes_per_sec));
    }

    let mut driver = Driver {
        q: EventQueue::new(),
        pools,
        mgr,
        jobs: JobSlab::default(),
        worker_jobs: vec![Vec::new(); cfg.workers],
        gflops,
        rng: ChaCha8Rng::seed_from_u64(cfg.seed),
        trace: Trace::default(),
        lib_records: BTreeMap::new(),
        setup_profiles,
        submit_times: BTreeMap::new(),
        mgr_free_at: SimTime::ZERO,
        mgr_wake_at: None,
        app_start: None,
        connected: 0,
        end: SimTime::ZERO,
        failed_units: 0,
        events: 0,
        workload,
        cfg,
    };
    driver.run()
}

impl<'w> Driver<'w> {
    fn disk_pool(&self, w: WorkerId) -> PoolId {
        PoolId(POOL_FIXED_SLOTS + w.0)
    }

    fn uplink_pool(&self, w: WorkerId) -> PoolId {
        PoolId(POOL_FIXED_SLOTS + self.cfg.workers as u32 + w.0)
    }

    fn run(&mut self) -> SimResult {
        // workers begin connecting at t=0; startup ≈ 20 s each (Table 2)
        for w in 0..self.cfg.workers {
            let jitter = 1.0 + self.rng.gen_range(-0.05..0.05);
            let at = SimTime::ZERO + self.cfg.cost.worker_startup * jitter;
            self.q.schedule(at, Ev::WorkerConnect(WorkerId(w as u32)));
        }
        for (secs, idx) in self.cfg.fail_workers.clone() {
            self.q.schedule(
                SimTime::from_secs_f64(secs),
                Ev::WorkerFail(WorkerId(idx as u32)),
            );
        }
        // units are known at submit time (before workers connect)
        for unit in self.workload.initial_units() {
            self.submit_unit(unit, SimTime::ZERO);
        }

        while let Some((t, ev)) = self.q.pop() {
            self.events += 1;
            match ev {
                Ev::WorkerConnect(w) => {
                    self.mgr.worker_joined(w, self.cfg.worker_resources);
                    self.connected += 1;
                    let threshold = (self.cfg.workers as f64 * 0.95).ceil() as usize;
                    if self.connected >= threshold && self.app_start.is_none() {
                        self.app_start = Some(t);
                    }
                    self.wake_mgr(t);
                }
                Ev::WorkerFail(w) => self.fail_worker(t, w),
                Ev::MgrWake => {
                    self.mgr_wake_at = None;
                    self.mgr_step(t);
                }
                Ev::PoolCheck { pool, epoch } => {
                    let p = &mut self.pools[pool.0 as usize];
                    if p.epoch != epoch {
                        continue; // stale
                    }
                    let done = p.take_completed(t);
                    for flow in done {
                        let job_id = JobId(flow);
                        if let Some(job) = self.jobs.get_mut(job_id) {
                            job.active_flow = None;
                        }
                        self.job_step_done(t, job_id);
                    }
                    self.touch_pool(pool, t);
                }
                Ev::JobStep { job } => self.job_step_done(t, job),
            }
        }

        let app_start = self.app_start.unwrap_or(SimTime::ZERO);
        let makespan = self.end.since(app_start);
        self.trace.makespan = makespan;
        SimResult {
            trace: std::mem::take(&mut self.trace),
            app_start,
            end: self.end,
            failed_units: self.failed_units,
            makespan,
            events: self.events,
        }
    }

    fn submit_unit(&mut self, unit: WorkUnit, t: SimTime) {
        let id = match &unit {
            WorkUnit::Task(task) => UnitId::Task(task.id),
            WorkUnit::Call(c) => UnitId::Call(c.id),
        };
        self.submit_times.insert(id, t);
        self.mgr.submit(unit);
    }

    fn wake_mgr(&mut self, t: SimTime) {
        let at = t.max(self.mgr_free_at);
        match self.mgr_wake_at {
            Some(existing) if existing <= at => {}
            _ => {
                self.mgr_wake_at = Some(at);
                self.q.schedule(at, Ev::MgrWake);
            }
        }
    }

    /// One manager service cycle: drain as many decisions as can be taken
    /// before any other event fires, charging each decision's cost
    /// cumulatively (first from `t`, then from the previous completion).
    ///
    /// This replaces the one-decision-per-wake cadence (decide → schedule a
    /// `MgrWake` at `mgr_free_at` → pop it → decide again), which pushed one
    /// heap event per decision. The batched loop produces the *same* decision
    /// sequence at the *same* modeled times: a follow-up wake at `mgr_free_at`
    /// could only observe different manager state if some other event with
    /// time ≤ `mgr_free_at` were processed first (wake events were scheduled
    /// last, so any event `realize` enqueued at exactly `mgr_free_at` has a
    /// smaller sequence number and ran before the wake). Hence we keep
    /// draining while the queue holds nothing at or before `mgr_free_at`,
    /// and otherwise defer to the event loop exactly as the old wake did.
    fn mgr_step(&mut self, t: SimTime) {
        if t < self.mgr_free_at {
            self.wake_mgr(self.mgr_free_at);
            return;
        }
        loop {
            let Some(d) = self.mgr.next_decision() else {
                return; // idle until the next state-changing event
            };
            let cost = self.decision_cost(&d);
            self.mgr_free_at = self.mgr_free_at.max(t) + cost;
            self.realize(d, self.mgr_free_at);
            if self
                .q
                .peek_time()
                .is_some_and(|next| next <= self.mgr_free_at)
            {
                self.wake_mgr(self.mgr_free_at);
                return;
            }
        }
    }

    fn decision_cost(&self, d: &Decision) -> SimDuration {
        let c = &self.cfg.cost;
        match d {
            Decision::DispatchTask { task, missing, .. } => {
                let l1_style = task.inputs.iter().any(|f| f.source == FileSource::SharedFs);
                c.task_dispatch_cost(!l1_style && missing.is_empty(), self.mgr.pending())
            }
            Decision::DispatchCall { .. } => c.call_dispatch_cost(self.mgr.pending()),
            Decision::InstallLibrary { .. } | Decision::EvictLibrary { .. } => {
                c.mgr_library_install
            }
            Decision::Fail { .. } => SimDuration::from_millis(1),
        }
    }

    fn realize(&mut self, d: Decision, start: SimTime) {
        let c = self.cfg.cost.clone();
        match d {
            Decision::Fail { unit, error: _ } => {
                self.failed_units += 1;
                self.submit_times.remove(&unit);
                let more = self.workload.on_complete(unit, false);
                for u in more {
                    self.submit_unit(u, start);
                }
            }
            Decision::EvictLibrary { instance, .. } => {
                if let Some(idx) = self.lib_records.get(&instance) {
                    self.trace.libraries[*idx].removed = Some(start);
                }
            }
            Decision::DispatchCall {
                worker,
                library,
                call,
            } => {
                let mut steps = VecDeque::new();
                steps.push_back(Step {
                    kind: StepKind::Fixed(c.net_latency),
                    phase: Phase::Transfer,
                });
                let mut worker_overhead = c.call_sandbox_setup + c.invocation_handoff;
                let mode = call.exec_mode.unwrap_or(vine_core::task::ExecMode::Direct);
                if mode == vine_core::task::ExecMode::Fork {
                    worker_overhead += c.fork_overhead;
                }
                steps.push_back(Step {
                    kind: StepKind::Fixed(worker_overhead),
                    phase: Phase::Worker,
                });
                steps.push_back(Step {
                    kind: StepKind::Fixed(c.call_args_deserialize),
                    phase: Phase::Library,
                });
                steps.push_back(Step {
                    kind: StepKind::Fixed(self.compute_time(
                        worker,
                        call.profile.exec_gflop,
                        call.resources.cores,
                    )),
                    phase: Phase::Exec,
                });
                let submitted = self.submit_times[&UnitId::Call(call.id)];
                self.start_job(
                    start,
                    Job {
                        id: JobId(0), // assigned by the slab
                        kind: JobKind::Call {
                            id: call.id,
                            library,
                            submitted,
                        },
                        worker,
                        worker_slot: 0,
                        steps,
                        current: None,
                        active_flow: None,
                        step_started: start,
                        dispatched: start,
                        phases: PhaseBreakdown::default(),
                        unit: Some(WorkUnit::Call(call)),
                    },
                );
            }
            Decision::DispatchTask {
                worker,
                task,
                missing,
            } => {
                let mut steps = VecDeque::new();
                // stage cacheable inputs from the manager or a peer
                let staged: u64 = missing.iter().map(|f| f.size_bytes).sum();
                if staged > 0 {
                    let src = self.pick_source(worker, &missing);
                    steps.push_back(Step {
                        kind: StepKind::Flow {
                            pool: src,
                            amount: staged as f64,
                        },
                        phase: Phase::Transfer,
                    });
                } else {
                    steps.push_back(Step {
                        kind: StepKind::Fixed(c.net_latency),
                        phase: Phase::Transfer,
                    });
                }
                // unpack freshly staged archives
                let unpack: u64 = missing
                    .iter()
                    .filter(|f| f.unpacked_bytes > 0)
                    .map(|f| f.unpacked_bytes)
                    .sum();
                let mut worker_fixed = c.sandbox_setup;
                if unpack > 0 {
                    worker_fixed += SimDuration::for_transfer(unpack, c.env_unpack_bytes_per_sec);
                }
                steps.push_back(Step {
                    kind: StepKind::Fixed(worker_fixed),
                    phase: Phase::Worker,
                });
                let l1_style = task.inputs.iter().any(|f| f.source == FileSource::SharedFs);
                if l1_style {
                    // the import storm and context read both hit the
                    // shared filesystem (volumes are workload-specific)
                    if task.profile.sharedfs_ops > 0.0 {
                        steps.push_back(Step {
                            kind: StepKind::Flow {
                                pool: POOL_SHARED_IOPS,
                                amount: task.profile.sharedfs_ops,
                            },
                            phase: Phase::Worker,
                        });
                    }
                    let bytes = task.profile.sharedfs_read_bytes + task.profile.context_read_bytes;
                    if bytes > 0 {
                        steps.push_back(Step {
                            kind: StepKind::Flow {
                                pool: POOL_SHARED_BW,
                                amount: bytes as f64,
                            },
                            phase: Phase::Worker,
                        });
                    }
                }
                // the wrapper's interpreter boot + object deserialization
                // happen inside the invocation process (Table 5's
                // "Library/Invoc. Overhead" column); deserialization only
                // applies when there are input objects to reconstruct
                let mut lib_fixed = c.task_wrapper_overhead;
                if !task.inputs.is_empty() || task.profile.context_read_bytes > 0 {
                    lib_fixed += c.invocation_deserialize;
                }
                steps.push_back(Step {
                    kind: StepKind::Fixed(lib_fixed),
                    phase: Phase::Library,
                });
                // context reconstruction happens *inside* the function at
                // L1/L2, so the paper's measurements count it as execution
                // time (Table 5: L2 exec 5.05 s = param read + model build
                // + 3.08 s of inference); at L1 the read already went over
                // the shared FS above
                if !l1_style && task.profile.context_read_bytes > 0 {
                    steps.push_back(Step {
                        kind: StepKind::Flow {
                            pool: self.disk_pool(worker),
                            amount: task.profile.context_read_bytes as f64,
                        },
                        phase: Phase::Exec,
                    });
                }
                if task.profile.context_gflop > 0.0 {
                    steps.push_back(Step {
                        kind: StepKind::Fixed(self.compute_time(
                            worker,
                            task.profile.context_gflop,
                            task.resources.cores,
                        )),
                        phase: Phase::Exec,
                    });
                }
                let mut exec =
                    self.compute_time(worker, task.profile.exec_gflop, task.resources.cores);
                if l1_style {
                    exec = exec * task.profile.l1_exec_slowdown.max(1.0);
                }
                steps.push_back(Step {
                    kind: StepKind::Fixed(exec),
                    phase: Phase::Exec,
                });
                let submitted = self.submit_times[&UnitId::Task(task.id)];
                self.start_job(
                    start,
                    Job {
                        id: JobId(0), // assigned by the slab
                        kind: JobKind::Task {
                            id: task.id,
                            submitted,
                        },
                        worker,
                        worker_slot: 0,
                        steps,
                        current: None,
                        active_flow: None,
                        step_started: start,
                        dispatched: start,
                        phases: PhaseBreakdown::default(),
                        unit: Some(WorkUnit::Task(task)),
                    },
                );
            }
            Decision::InstallLibrary {
                worker,
                instance,
                spec,
                missing,
            } => {
                let mut steps = VecDeque::new();
                let staged: u64 = missing.iter().map(|f| f.size_bytes).sum();
                if staged > 0 {
                    let src = self.pick_source(worker, &missing);
                    steps.push_back(Step {
                        kind: StepKind::Flow {
                            pool: src,
                            amount: staged as f64,
                        },
                        phase: Phase::Transfer,
                    });
                }
                let unpack: u64 = missing
                    .iter()
                    .filter(|f| f.unpacked_bytes > 0)
                    .map(|f| f.unpacked_bytes)
                    .sum();
                if unpack > 0 {
                    steps.push_back(Step {
                        kind: StepKind::Fixed(SimDuration::for_transfer(
                            unpack,
                            c.env_unpack_bytes_per_sec,
                        )),
                        phase: Phase::Worker,
                    });
                }
                steps.push_back(Step {
                    kind: StepKind::Fixed(c.library_boot),
                    phase: Phase::Library,
                });
                let profile = self
                    .setup_profiles
                    .get(&spec.name)
                    .copied()
                    .unwrap_or_default();
                if profile.context_read_bytes > 0 {
                    steps.push_back(Step {
                        kind: StepKind::Flow {
                            pool: self.disk_pool(worker),
                            amount: profile.context_read_bytes as f64,
                        },
                        phase: Phase::Library,
                    });
                }
                if profile.context_gflop > 0.0 {
                    let cores = spec
                        .resources
                        .map(|r| r.cores)
                        .unwrap_or(self.cfg.worker_resources.cores)
                        .max(1);
                    steps.push_back(Step {
                        kind: StepKind::Fixed(self.compute_time(
                            worker,
                            profile.context_gflop,
                            cores.min(4),
                        )),
                        phase: Phase::Library,
                    });
                }
                self.start_job(
                    start,
                    Job {
                        id: JobId(0), // assigned by the slab
                        kind: JobKind::Install {
                            instance,
                            library_name: spec.name.clone(),
                        },
                        worker,
                        worker_slot: 0,
                        steps,
                        current: None,
                        active_flow: None,
                        step_started: start,
                        dispatched: start,
                        phases: PhaseBreakdown::default(),
                        unit: None,
                    },
                );
            }
        }
    }

    /// Pick the uplink pool to stage `missing` from: a peer that holds all
    /// the files (when peer transfer is on), preferring the least-loaded
    /// uplink; otherwise the manager.
    ///
    /// Candidate peers come from the manager's content-hash → holders index:
    /// only workers caching the first file are walked (ascending id, the same
    /// order the old full-cluster scan visited them, so the strict-less
    /// tie-break picks an identical winner), and each is verified against the
    /// remaining hashes — straight off the `FileRef`s, no scratch allocation.
    fn pick_source(&self, dest: WorkerId, missing: &[vine_core::context::FileRef]) -> PoolId {
        if !self.cfg.peer_transfer {
            return POOL_MANAGER_UPLINK;
        }
        let Some((first, rest)) = missing.split_first() else {
            return POOL_MANAGER_UPLINK;
        };
        let mut best: Option<(usize, PoolId)> = None;
        for wid in self.mgr.holders_of(first.hash) {
            if wid == dest {
                continue;
            }
            let ws = &self.mgr.core().workers[&wid];
            if rest.iter().all(|f| ws.cache.contains(f.hash)) {
                let key = self.uplink_pool(wid);
                let load = self.pools[key.0 as usize].active();
                if best.is_none_or(|(l, _)| load < l) {
                    best = Some((load, key));
                }
            }
        }
        match best {
            // only offload to a peer that isn't already saturated worse
            // than the manager
            Some((load, key))
                if load <= self.pools[POOL_MANAGER_UPLINK.0 as usize].active() + 2 =>
            {
                key
            }
            _ => POOL_MANAGER_UPLINK,
        }
    }

    /// Modeled compute duration on `worker` for `gflop` of work across
    /// `cores` cores: machine speed × occupancy interference × seeded
    /// jitter with a rare straggler tail.
    fn compute_time(&mut self, worker: WorkerId, gflop: f64, cores: u32) -> SimDuration {
        if gflop <= 0.0 {
            return SimDuration::ZERO;
        }
        let rating = self
            .gflops
            .get(worker.0 as usize)
            .copied()
            .unwrap_or(self.cfg.cost.reference_gflops);
        let base = gflop / (rating * f64::from(cores.max(1)));
        let occupancy = self
            .mgr
            .core()
            .workers
            .get(&worker)
            .map(|w| w.occupancy())
            .unwrap_or(0.0);
        let contention = 1.0 + occupancy * (self.cfg.cost.full_occupancy_slowdown - 1.0);
        let jitter = (self.rng.gen_range(-0.08f64..0.08)).exp();
        // stragglers are *additive* stalls (page-cache misses, preemption,
        // cgroup throttling): a pause costs the same wall-clock whether
        // the task runs 5 s or 500 s — which is why the paper's max/mean
        // ratio shrinks as invocations lengthen (Table 4 vs Fig 8) — and
        // the chance of hitting one grows with how long the task runs
        let p_stall = (0.001 * base).min(0.5);
        let stall = if p_stall > 0.0 && self.rng.gen_bool(p_stall) {
            self.rng.gen_range(5.0..35.0)
        } else {
            0.0
        };
        SimDuration::from_secs_f64(base * contention * jitter + stall)
    }

    fn start_job(&mut self, t: SimTime, mut job: Job) {
        let w = job.worker.0 as usize;
        job.worker_slot = self.worker_jobs[w].len() as u32;
        let id = self.jobs.insert(job);
        self.worker_jobs[w].push(id);
        self.begin_next_step(t, id);
    }

    /// Remove a finished job, unlinking it from its worker's job index.
    /// The index is patched by swap-remove; `fail_worker` takes a worker's
    /// whole list at once, in which case the positional guard skips the
    /// (already-empty) list.
    fn remove_job(&mut self, id: JobId) -> Option<Job> {
        let job = self.jobs.remove(id)?;
        let list = &mut self.worker_jobs[job.worker.0 as usize];
        let pos = job.worker_slot as usize;
        if pos < list.len() && list[pos] == id {
            list.swap_remove(pos);
            if let Some(&moved) = list.get(pos) {
                if let Some(mj) = self.jobs.get_mut(moved) {
                    mj.worker_slot = pos as u32;
                }
            }
        }
        Some(job)
    }

    fn begin_next_step(&mut self, t: SimTime, job_id: JobId) {
        let Some(job) = self.jobs.get_mut(job_id) else {
            return;
        };
        job.step_started = t;
        match job.steps.pop_front() {
            None => {
                job.current = None;
                self.finish_job(t, job_id);
            }
            Some(step) => {
                job.current = Some(step);
                if let StepKind::Flow { pool, .. } = step.kind {
                    job.active_flow = Some(pool);
                }
                match step.kind {
                    StepKind::Fixed(d) => self.q.schedule(t + d, Ev::JobStep { job: job_id }),
                    StepKind::Flow { pool, amount } => {
                        self.pools[pool.0 as usize].add(t, job_id.flow(), amount);
                        self.touch_pool(pool, t);
                    }
                }
            }
        }
    }

    fn job_step_done(&mut self, t: SimTime, job_id: JobId) {
        let Some(job) = self.jobs.get_mut(job_id) else {
            return; // job cancelled (worker died)
        };
        let Some(step) = job.current.take() else {
            return;
        };
        let elapsed = t.since(job.step_started);
        match step.phase {
            Phase::Transfer => job.phases.transfer += elapsed,
            Phase::Worker => job.phases.worker_overhead += elapsed,
            Phase::Library => job.phases.library_overhead += elapsed,
            Phase::Exec => job.phases.exec += elapsed,
        }
        self.begin_next_step(t, job_id);
    }

    fn finish_job(&mut self, t: SimTime, job_id: JobId) {
        let job = self.remove_job(job_id).expect("finishing a live job");
        match job.kind {
            JobKind::Call {
                id,
                library,
                submitted,
            } => {
                self.trace.invocations.push(InvocationRecord {
                    id,
                    worker: job.worker,
                    library: Some(library),
                    level: self.cfg.level,
                    submitted,
                    dispatched: job.dispatched,
                    finished: t,
                    phases: job.phases,
                    success: true,
                });
                if let Some(idx) = self.lib_records.get(&library) {
                    self.trace.libraries[*idx].served += 1;
                }
                let _ = self.mgr.unit_finished(UnitId::Call(id));
                self.submit_times.remove(&UnitId::Call(id));
                self.end = self.end.max(t);
                let more = self.workload.on_complete(UnitId::Call(id), true);
                for u in more {
                    self.submit_unit(u, t);
                }
                self.wake_mgr(t);
            }
            JobKind::Task { id, submitted } => {
                self.trace.invocations.push(InvocationRecord {
                    // wrapped invocations are traced under the task's number
                    id: InvocationId(id.0),
                    worker: job.worker,
                    library: None,
                    level: self.cfg.level,
                    submitted,
                    dispatched: job.dispatched,
                    finished: t,
                    phases: job.phases,
                    success: true,
                });
                let _ = self.mgr.unit_finished(UnitId::Task(id));
                self.submit_times.remove(&UnitId::Task(id));
                self.end = self.end.max(t);
                let more = self.workload.on_complete(UnitId::Task(id), true);
                for u in more {
                    self.submit_unit(u, t);
                }
                self.wake_mgr(t);
            }
            JobKind::Install {
                instance,
                library_name,
            } => {
                if self.mgr.library_ready(job.worker, instance).is_ok() {
                    self.lib_records
                        .insert(instance, self.trace.libraries.len());
                    self.trace.libraries.push(LibraryRecord {
                        id: instance,
                        worker: job.worker,
                        library_name,
                        deployed: t,
                        removed: None,
                        served: 0,
                        phases: job.phases,
                    });
                }
                self.wake_mgr(t);
            }
        }
    }

    fn fail_worker(&mut self, t: SimTime, w: WorkerId) {
        self.mgr.worker_left(w);
        // cancel this worker's in-flight jobs and requeue their units, in
        // dispatch order (ascending JobId = the order the old full-scan
        // visited them); only this worker's jobs are touched
        let mut doomed = std::mem::take(&mut self.worker_jobs[w.0 as usize]);
        doomed.sort_unstable();
        for job_id in doomed {
            let Some(job) = self.jobs.remove(job_id) else {
                continue;
            };
            if let Some(pool) = job.active_flow {
                self.pools[pool.0 as usize].cancel(t, job_id.flow());
                self.touch_pool(pool, t);
            }
            if let Some(unit) = job.unit {
                self.mgr.requeue(unit);
            }
        }
        // close out the worker's library records
        for idx in self.lib_records.values() {
            let rec = &mut self.trace.libraries[*idx];
            if rec.worker == w && rec.removed.is_none() {
                rec.removed = Some(t);
            }
        }
        self.wake_mgr(t);
    }

    fn touch_pool(&mut self, pool: PoolId, t: SimTime) {
        let p = &mut self.pools[pool.0 as usize];
        if let Some(at) = p.next_completion(t) {
            let epoch = p.epoch;
            self.q.schedule(at, Ev::PoolCheck { pool, epoch });
        }
    }
}
