//! Event queue and fluid resource pools.
//!
//! The simulator is a classic discrete-event engine plus *fluid flows* for
//! contended resources. A [`FluidPool`] models processor sharing: `n`
//! concurrent flows each progress at `min(per_flow_cap, capacity / n)`.
//! Whenever the flow set changes, all flows' progress is advanced to the
//! current instant and the pool's next completion is rescheduled; stale
//! completion events are recognized by an epoch counter. This models the
//! paper's contended devices — the shared filesystem's aggregate bandwidth
//! and IOPS, each worker's local SSD, and each node's NIC — without
//! per-packet simulation.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use vine_core::{SimDuration, SimTime};

/// A scheduled event: time-ordered, FIFO within the same instant.
#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A deterministic time-ordered event queue.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn now(&self) -> SimTime {
        self.now
    }

    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(at >= self.now, "scheduling into the past");
        self.heap.push(Reverse(Scheduled {
            at: at.max(self.now),
            seq: self.seq,
            event,
        }));
        self.seq += 1;
    }

    pub fn schedule_after(&mut self, delay: SimDuration, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Pop the next event, advancing the clock.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(s) = self.heap.pop()?;
        self.now = s.at;
        Some((s.at, s.event))
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

/// Identifier of a flow within a pool.
pub type FlowId = u64;

#[derive(Debug, Clone)]
struct Flow {
    remaining: f64,
}

/// A processor-shared fluid resource.
#[derive(Debug)]
pub struct FluidPool {
    /// Aggregate capacity (bytes/s, ops/s, ...).
    capacity: f64,
    /// Per-flow ceiling (e.g. one client's NIC when reading a shared FS).
    per_flow_cap: f64,
    flows: BTreeMap<FlowId, Flow>,
    last_advance: SimTime,
    /// Bumped on every flow-set change; completion events carry the epoch
    /// they were computed under and are ignored if stale.
    pub epoch: u64,
}

impl FluidPool {
    pub fn new(capacity: f64, per_flow_cap: f64) -> FluidPool {
        FluidPool {
            capacity: capacity.max(1e-9),
            per_flow_cap: per_flow_cap.max(1e-9),
            flows: BTreeMap::new(),
            last_advance: SimTime::ZERO,
            epoch: 0,
        }
    }

    pub fn rate(&self) -> f64 {
        if self.flows.is_empty() {
            return self.per_flow_cap;
        }
        (self.capacity / self.flows.len() as f64).min(self.per_flow_cap)
    }

    pub fn active(&self) -> usize {
        self.flows.len()
    }

    /// Advance all flows' progress to `now`.
    pub fn advance(&mut self, now: SimTime) {
        let dt = now.since(self.last_advance).as_secs_f64();
        if dt > 0.0 && !self.flows.is_empty() {
            let done = self.rate() * dt;
            for f in self.flows.values_mut() {
                f.remaining = (f.remaining - done).max(0.0);
            }
        }
        self.last_advance = now;
    }

    /// Add a flow of `amount` units. Caller must then reschedule via
    /// [`FluidPool::next_completion`].
    pub fn add(&mut self, now: SimTime, id: FlowId, amount: f64) {
        self.advance(now);
        self.epoch += 1;
        self.flows.insert(
            id,
            Flow {
                remaining: amount.max(0.0),
            },
        );
    }

    /// Remove and return flows that have completed as of `now`.
    pub fn take_completed(&mut self, now: SimTime) -> Vec<FlowId> {
        self.advance(now);
        const EPS: f64 = 1e-6;
        let done: Vec<FlowId> = self
            .flows
            .iter()
            .filter(|(_, f)| f.remaining <= EPS)
            .map(|(id, _)| *id)
            .collect();
        if !done.is_empty() {
            self.epoch += 1;
            for id in &done {
                self.flows.remove(id);
            }
        }
        done
    }

    /// Forcibly remove a flow (fault injection: its worker died).
    pub fn cancel(&mut self, now: SimTime, id: FlowId) -> bool {
        self.advance(now);
        let existed = self.flows.remove(&id).is_some();
        if existed {
            self.epoch += 1;
        }
        existed
    }

    /// Earliest time any current flow completes, given the current flow
    /// set. `None` if idle.
    pub fn next_completion(&self, now: SimTime) -> Option<SimTime> {
        let min_remaining = self
            .flows
            .values()
            .map(|f| f.remaining)
            .fold(f64::INFINITY, f64::min);
        if min_remaining.is_infinite() {
            return None;
        }
        let secs = min_remaining / self.rate();
        Some(now + SimDuration::from_secs_f64(secs.max(0.0)) + SimDuration::from_micros(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_orders_by_time_then_fifo() {
        let mut q: EventQueue<&str> = EventQueue::new();
        q.schedule(SimTime(100), "b");
        q.schedule(SimTime(50), "a");
        q.schedule(SimTime(100), "c");
        assert_eq!(q.pop().unwrap(), (SimTime(50), "a"));
        assert_eq!(q.now(), SimTime(50));
        assert_eq!(q.pop().unwrap(), (SimTime(100), "b"));
        assert_eq!(q.pop().unwrap(), (SimTime(100), "c"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn single_flow_runs_at_per_flow_cap() {
        let mut p = FluidPool::new(100.0, 10.0);
        p.add(SimTime::ZERO, 1, 50.0);
        assert_eq!(p.rate(), 10.0);
        let done_at = p.next_completion(SimTime::ZERO).unwrap();
        // 50 units at 10/s = 5 s
        assert!((done_at.as_secs_f64() - 5.0).abs() < 1e-3, "{done_at}");
        assert!(p.take_completed(SimTime::from_secs_f64(4.9)).is_empty());
        assert_eq!(p.take_completed(done_at), vec![1]);
    }

    #[test]
    fn many_flows_share_capacity() {
        let mut p = FluidPool::new(100.0, 100.0);
        for i in 0..10 {
            p.add(SimTime::ZERO, i, 100.0);
        }
        // 10 flows share 100/s → 10/s each → 10 s
        assert_eq!(p.rate(), 10.0);
        let done = p.next_completion(SimTime::ZERO).unwrap();
        assert!((done.as_secs_f64() - 10.0).abs() < 1e-3);
    }

    #[test]
    fn flow_departure_speeds_up_remainder() {
        let mut p = FluidPool::new(100.0, 100.0);
        p.add(SimTime::ZERO, 1, 100.0);
        p.add(SimTime::ZERO, 2, 200.0);
        // both run at 50/s; flow 1 done at t=2
        let t1 = p.next_completion(SimTime::ZERO).unwrap();
        assert!((t1.as_secs_f64() - 2.0).abs() < 1e-3);
        assert_eq!(p.take_completed(t1), vec![1]);
        // flow 2 has 100 left, now alone at 100/s → done 1 s later
        let t2 = p.next_completion(t1).unwrap();
        assert!((t2.as_secs_f64() - 3.0).abs() < 1e-2, "{t2}");
    }

    #[test]
    fn epoch_bumps_on_changes() {
        let mut p = FluidPool::new(10.0, 10.0);
        let e0 = p.epoch;
        p.add(SimTime::ZERO, 1, 5.0);
        assert!(p.epoch > e0);
        let e1 = p.epoch;
        p.cancel(SimTime::ZERO, 1);
        assert!(p.epoch > e1);
        // cancelling a missing flow does not bump
        let e2 = p.epoch;
        assert!(!p.cancel(SimTime::ZERO, 1));
        assert_eq!(p.epoch, e2);
    }

    #[test]
    fn zero_amount_flow_completes_immediately() {
        let mut p = FluidPool::new(10.0, 10.0);
        p.add(SimTime::ZERO, 7, 0.0);
        assert_eq!(p.take_completed(SimTime::ZERO), vec![7]);
    }

    #[test]
    fn advance_is_idempotent_at_same_instant() {
        let mut p = FluidPool::new(10.0, 10.0);
        p.add(SimTime::ZERO, 1, 100.0);
        p.advance(SimTime::from_secs_f64(1.0));
        p.advance(SimTime::from_secs_f64(1.0));
        // after 1 s at 10/s, 90 remain → completion 9 s later
        let t = p.next_completion(SimTime::from_secs_f64(1.0)).unwrap();
        assert!((t.as_secs_f64() - 10.0).abs() < 1e-3);
    }
}
