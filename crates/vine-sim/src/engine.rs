//! Event queue and fluid resource pools.
//!
//! The simulator is a classic discrete-event engine plus *fluid flows* for
//! contended resources. A [`FluidPool`] models processor sharing: `n`
//! concurrent flows each progress at `min(per_flow_cap, capacity / n)`.
//! Whenever the flow set changes, all flows' progress is advanced to the
//! current instant and the pool's next completion is rescheduled; stale
//! completion events are recognized by an epoch counter. This models the
//! paper's contended devices — the shared filesystem's aggregate bandwidth
//! and IOPS, each worker's local SSD, and each node's NIC — without
//! per-packet simulation.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use vine_core::{SimDuration, SimTime};

/// A scheduled event: time-ordered, FIFO within the same instant.
#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A deterministic time-ordered event queue.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn now(&self) -> SimTime {
        self.now
    }

    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(at >= self.now, "scheduling into the past");
        self.heap.push(Reverse(Scheduled {
            at: at.max(self.now),
            seq: self.seq,
            event,
        }));
        self.seq += 1;
    }

    pub fn schedule_after(&mut self, delay: SimDuration, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Pop the next event, advancing the clock.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(s) = self.heap.pop()?;
        self.now = s.at;
        Some((s.at, s.event))
    }

    /// Time of the next event without popping (the clock does not move).
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(s)| s.at)
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

/// Identifier of a flow within a pool.
pub type FlowId = u64;

#[derive(Debug, Clone)]
struct Flow {
    remaining: f64,
    /// Original transfer size (scales the completion tolerance).
    amount: f64,
}

/// A processor-shared fluid resource.
///
/// Progress is tracked eagerly: each advance decrements every active
/// flow's `remaining` by the shared service delivered over the interval.
///
/// A virtual-service-accumulator variant (one shared scalar advanced in
/// O(1), flows stored as fixed finish levels in an ordered map) was
/// evaluated and rejected: it computes the same real-number values, but
/// with different f64 rounding than this per-flow fold, and completion
/// instants are quantized to whole microseconds — the ~1e-8-unit rounding
/// difference is enough to flip a `.round()` boundary, shifting events by
/// 1 µs and cascading into different (though equally valid) schedules.
/// Reproducibility of recorded experiment baselines is worth more here
/// than O(1) advance: a pool's flow count is bounded by one device's
/// concurrency, so the eager loop is short, while the decision-path
/// indexes (see `vine-manager`) carry the asymptotic load.
///
/// Flows live in a `Vec` kept sorted ascending by [`FlowId`] — ids are
/// assigned from a global monotone counter, so the sort order is dispatch
/// order, exactly what the old `BTreeMap` keying produced. The dense
/// layout turns every advance into a linear walk over contiguous memory,
/// [`FluidPool::take_completed`] into one in-order `retain` pass (the
/// `BTreeMap` version collected completed ids and then removed them one
/// lookup each), and insertion into a binary-search `Vec::insert` (cheap:
/// a pool's flow set is bounded by one device's concurrency).
#[derive(Debug)]
pub struct FluidPool {
    /// Aggregate capacity (bytes/s, ops/s, ...).
    capacity: f64,
    /// Per-flow ceiling (e.g. one client's NIC when reading a shared FS).
    per_flow_cap: f64,
    /// Active flows, sorted ascending by id.
    flows: Vec<(FlowId, Flow)>,
    last_advance: SimTime,
    /// Bumped on every flow-set change; completion events carry the epoch
    /// they were computed under and are ignored if stale.
    pub epoch: u64,
}

/// Absolute completion slack, in transfer units (legacy constant).
const EPS_ABS: f64 = 1e-6;
/// Relative completion slack: amounts are bytes, so a multi-GB flow sits
/// numerically far from any absolute epsilon (ulp of 1e10 is already
/// ~2e-6) — the tolerance must scale with the flow size.
const EPS_REL: f64 = 1e-9;

impl FluidPool {
    pub fn new(capacity: f64, per_flow_cap: f64) -> FluidPool {
        FluidPool {
            capacity: capacity.max(1e-9),
            per_flow_cap: per_flow_cap.max(1e-9),
            flows: Vec::new(),
            last_advance: SimTime::ZERO,
            epoch: 0,
        }
    }

    pub fn rate(&self) -> f64 {
        if self.flows.is_empty() {
            return self.per_flow_cap;
        }
        (self.capacity / self.flows.len() as f64).min(self.per_flow_cap)
    }

    pub fn active(&self) -> usize {
        self.flows.len()
    }

    /// Advance all flows' progress to `now`.
    pub fn advance(&mut self, now: SimTime) {
        let dt = now.since(self.last_advance).as_secs_f64();
        if dt > 0.0 && !self.flows.is_empty() {
            let done = self.rate() * dt;
            for (_, f) in self.flows.iter_mut() {
                f.remaining = (f.remaining - done).max(0.0);
            }
        }
        self.last_advance = now;
    }

    /// A flow's completion tolerance: absolute floor plus a term
    /// proportional to its size.
    fn eps(amount: f64) -> f64 {
        EPS_ABS + EPS_REL * amount
    }

    /// Add a flow of `amount` units. Caller must then reschedule via
    /// [`FluidPool::next_completion`].
    pub fn add(&mut self, now: SimTime, id: FlowId, amount: f64) {
        self.advance(now);
        self.epoch += 1;
        let flow = Flow {
            remaining: amount.max(0.0),
            amount: amount.max(0.0),
        };
        match self.flows.binary_search_by_key(&id, |(fid, _)| *fid) {
            Ok(i) => self.flows[i] = (id, flow),
            Err(i) => self.flows.insert(i, (id, flow)),
        }
    }

    /// Remove and return flows that have completed as of `now`, ascending
    /// by id — one in-order pass over the (sorted) flow set.
    pub fn take_completed(&mut self, now: SimTime) -> Vec<FlowId> {
        self.advance(now);
        let mut done = Vec::new();
        self.flows.retain(|(id, f)| {
            if f.remaining <= Self::eps(f.amount) {
                done.push(*id);
                false
            } else {
                true
            }
        });
        if !done.is_empty() {
            self.epoch += 1;
        }
        done
    }

    /// Forcibly remove a flow (fault injection: its worker died).
    pub fn cancel(&mut self, now: SimTime, id: FlowId) -> bool {
        self.advance(now);
        match self.flows.binary_search_by_key(&id, |(fid, _)| *fid) {
            Ok(i) => {
                self.flows.remove(i);
                self.epoch += 1;
                true
            }
            Err(_) => false,
        }
    }

    /// Earliest time any current flow completes, given the current flow
    /// set. `None` if idle. One pass; `f64::min` is order-insensitive, so
    /// the fold matches the old map-ordered version bit for bit.
    pub fn next_completion(&self, now: SimTime) -> Option<SimTime> {
        let min_remaining = self
            .flows
            .iter()
            .map(|(_, f)| f.remaining)
            .fold(f64::INFINITY, f64::min);
        if min_remaining.is_infinite() {
            return None;
        }
        let secs = min_remaining / self.rate();
        Some(now + SimDuration::from_secs_f64(secs.max(0.0)) + SimDuration::from_micros(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_orders_by_time_then_fifo() {
        let mut q: EventQueue<&str> = EventQueue::new();
        q.schedule(SimTime(100), "b");
        q.schedule(SimTime(50), "a");
        q.schedule(SimTime(100), "c");
        assert_eq!(q.pop().unwrap(), (SimTime(50), "a"));
        assert_eq!(q.now(), SimTime(50));
        assert_eq!(q.pop().unwrap(), (SimTime(100), "b"));
        assert_eq!(q.pop().unwrap(), (SimTime(100), "c"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn single_flow_runs_at_per_flow_cap() {
        let mut p = FluidPool::new(100.0, 10.0);
        p.add(SimTime::ZERO, 1, 50.0);
        assert_eq!(p.rate(), 10.0);
        let done_at = p.next_completion(SimTime::ZERO).unwrap();
        // 50 units at 10/s = 5 s
        assert!((done_at.as_secs_f64() - 5.0).abs() < 1e-3, "{done_at}");
        assert!(p.take_completed(SimTime::from_secs_f64(4.9)).is_empty());
        assert_eq!(p.take_completed(done_at), vec![1]);
    }

    #[test]
    fn many_flows_share_capacity() {
        let mut p = FluidPool::new(100.0, 100.0);
        for i in 0..10 {
            p.add(SimTime::ZERO, i, 100.0);
        }
        // 10 flows share 100/s → 10/s each → 10 s
        assert_eq!(p.rate(), 10.0);
        let done = p.next_completion(SimTime::ZERO).unwrap();
        assert!((done.as_secs_f64() - 10.0).abs() < 1e-3);
    }

    #[test]
    fn flow_departure_speeds_up_remainder() {
        let mut p = FluidPool::new(100.0, 100.0);
        p.add(SimTime::ZERO, 1, 100.0);
        p.add(SimTime::ZERO, 2, 200.0);
        // both run at 50/s; flow 1 done at t=2
        let t1 = p.next_completion(SimTime::ZERO).unwrap();
        assert!((t1.as_secs_f64() - 2.0).abs() < 1e-3);
        assert_eq!(p.take_completed(t1), vec![1]);
        // flow 2 has 100 left, now alone at 100/s → done 1 s later
        let t2 = p.next_completion(t1).unwrap();
        assert!((t2.as_secs_f64() - 3.0).abs() < 1e-2, "{t2}");
    }

    #[test]
    fn epoch_bumps_on_changes() {
        let mut p = FluidPool::new(10.0, 10.0);
        let e0 = p.epoch;
        p.add(SimTime::ZERO, 1, 5.0);
        assert!(p.epoch > e0);
        let e1 = p.epoch;
        p.cancel(SimTime::ZERO, 1);
        assert!(p.epoch > e1);
        // cancelling a missing flow does not bump
        let e2 = p.epoch;
        assert!(!p.cancel(SimTime::ZERO, 1));
        assert_eq!(p.epoch, e2);
    }

    #[test]
    fn zero_amount_flow_completes_immediately() {
        let mut p = FluidPool::new(10.0, 10.0);
        p.add(SimTime::ZERO, 7, 0.0);
        assert_eq!(p.take_completed(SimTime::ZERO), vec![7]);
    }

    #[test]
    fn advance_is_idempotent_at_same_instant() {
        let mut p = FluidPool::new(10.0, 10.0);
        p.add(SimTime::ZERO, 1, 100.0);
        p.advance(SimTime::from_secs_f64(1.0));
        p.advance(SimTime::from_secs_f64(1.0));
        // after 1 s at 10/s, 90 remain → completion 9 s later
        let t = p.next_completion(SimTime::from_secs_f64(1.0)).unwrap();
        assert!((t.as_secs_f64() - 10.0).abs() < 1e-3);
    }

    #[test]
    fn peek_time_does_not_advance_clock() {
        let mut q: EventQueue<&str> = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime(70), "x");
        q.schedule(SimTime(30), "y");
        assert_eq!(q.peek_time(), Some(SimTime(30)));
        assert_eq!(q.now(), SimTime::ZERO, "peek must not move the clock");
        assert_eq!(q.pop().unwrap(), (SimTime(30), "y"));
        assert_eq!(q.peek_time(), Some(SimTime(70)));
    }

    #[test]
    fn gb_scale_flow_completes_despite_float_rounding() {
        // regression for the absolute-only EPS = 1e-6: amounts are bytes,
        // so a multi-GB flow sits numerically far from 1e-6 — f64 rounding
        // in the rate × dt products alone can leave a few bytes "remaining"
        // at the modeled finish instant and stall the flow one reschedule
        // short of done. The tolerance must scale with the flow size.
        // 1e6 B/s makes one microsecond of service equal one byte, so the
        // shortfall below is representable in integer sim-time.
        let mut p = FluidPool::new(1e6, 1e6);
        p.add(SimTime::ZERO, 1, 10e9);
        // stop 5 bytes short of the finish: far beyond the absolute 1e-6
        // tolerance, but within the size-relative one (10 bytes for 10 GB)
        let shy = SimTime::from_secs_f64((10e9 - 5.0) / 1e6);
        assert_eq!(p.take_completed(shy), vec![1]);

        // a genuine 1 MB shortfall must still count as in-flight
        let mut p = FluidPool::new(1e6, 1e6);
        p.add(SimTime::ZERO, 2, 10e9);
        let far = SimTime::from_secs_f64((10e9 - 1e6) / 1e6);
        assert!(p.take_completed(far).is_empty());
        assert_eq!(p.active(), 1);
    }

    #[test]
    fn pool_reuse_after_drain() {
        let mut p = FluidPool::new(10.0, 10.0);
        p.add(SimTime::ZERO, 1, 50.0);
        let t1 = p.next_completion(SimTime::ZERO).unwrap();
        assert_eq!(p.take_completed(t1), vec![1]);
        // a fresh flow after the pool drained behaves exactly like one in
        // a brand-new pool
        p.add(t1, 2, 30.0);
        let t2 = p.next_completion(t1).unwrap();
        assert!((t2.since(t1).as_secs_f64() - 3.0).abs() < 1e-3, "{t2}");
        assert_eq!(p.take_completed(t2), vec![2]);
    }

    #[test]
    fn completed_ids_come_back_sorted() {
        let mut p = FluidPool::new(100.0, 100.0);
        // insert in scrambled order; completions report ascending by id
        for id in [9, 3, 7, 1] {
            p.add(SimTime::ZERO, id, 100.0);
        }
        let t = p.next_completion(SimTime::ZERO).unwrap();
        assert_eq!(p.take_completed(t), vec![1, 3, 7, 9]);
    }
}
