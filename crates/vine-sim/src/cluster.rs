//! The paper's heterogeneous cluster (Table 3).

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// One machine group: a CPU model with a per-core GFLOPS rating and a
/// machine count (Table 3's "# of Machines, GFlops").
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MachineGroup {
    pub name: String,
    pub machines: u32,
    pub gflops_per_core: f64,
}

/// Table 3: the five major machine groups ("96.2% of all machines used in
/// any run"), with counts and per-core GFLOPS as published.
pub fn paper_groups() -> Vec<MachineGroup> {
    vec![
        MachineGroup {
            name: "d32cepyc[001-070] EPYC 7532".into(),
            machines: 58,
            gflops_per_core: 4.4,
        },
        MachineGroup {
            name: "d32cepyc[076-260] EPYC 7543".into(),
            machines: 117,
            gflops_per_core: 5.4,
        },
        MachineGroup {
            name: "qa-a10 Xeon Gold 6326".into(),
            machines: 14,
            gflops_per_core: 1.9,
        },
        MachineGroup {
            name: "qa-a40 Xeon Gold 6326".into(),
            machines: 7,
            gflops_per_core: 1.9,
        },
        MachineGroup {
            name: "sa-rtx6ka Xeon Silver 4316".into(),
            machines: 5,
            gflops_per_core: 1.9,
        },
    ]
}

/// Assign per-core GFLOPS ratings to `n` workers in the same proportion as
/// the groups' machine counts, shuffled deterministically by `seed` ("all
/// experiments are run with a similar proportion of machine groups", §4.2).
pub fn assign_gflops(groups: &[MachineGroup], n: usize, seed: u64) -> Vec<f64> {
    if groups.is_empty() || n == 0 {
        return vec![1.0; n];
    }
    let total: u32 = groups.iter().map(|g| g.machines).sum();
    let mut out: Vec<f64> = Vec::with_capacity(n);
    // largest-remainder apportionment
    let mut counts: Vec<usize> = groups
        .iter()
        .map(|g| (n as u64 * u64::from(g.machines) / u64::from(total)) as usize)
        .collect();
    let mut assigned: usize = counts.iter().sum();
    let mut remainders: Vec<(u64, usize)> = groups
        .iter()
        .enumerate()
        .map(|(i, g)| ((n as u64 * u64::from(g.machines)) % u64::from(total), i))
        .collect();
    remainders.sort_unstable_by(|a, b| b.cmp(a));
    let mut ri = 0;
    while assigned < n {
        counts[remainders[ri % remainders.len()].1] += 1;
        assigned += 1;
        ri += 1;
    }
    for (g, c) in groups.iter().zip(&counts) {
        out.extend(std::iter::repeat_n(g.gflops_per_core, *c));
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x636c7573);
    out.shuffle(&mut rng);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_groups_match_table3() {
        let groups = paper_groups();
        assert_eq!(groups.len(), 5);
        let machines: u32 = groups.iter().map(|g| g.machines).sum();
        assert_eq!(machines, 201);
        assert_eq!(groups[1].gflops_per_core, 5.4);
    }

    #[test]
    fn assignment_is_proportional() {
        let groups = paper_groups();
        let ratings = assign_gflops(&groups, 150, 42);
        assert_eq!(ratings.len(), 150);
        let fast = ratings.iter().filter(|g| **g == 5.4).count();
        // group 2 is 117/201 ≈ 58% of the cluster
        assert!((80..=95).contains(&fast), "fast count {fast}");
        let slow = ratings.iter().filter(|g| **g == 1.9).count();
        // groups 3–5 are 26/201 ≈ 13%
        assert!((15..=25).contains(&slow), "slow count {slow}");
    }

    #[test]
    fn assignment_is_deterministic_per_seed() {
        let groups = paper_groups();
        assert_eq!(assign_gflops(&groups, 50, 7), assign_gflops(&groups, 50, 7));
        assert_ne!(assign_gflops(&groups, 50, 7), assign_gflops(&groups, 50, 8));
    }

    #[test]
    fn small_and_degenerate_inputs() {
        let groups = paper_groups();
        assert_eq!(assign_gflops(&groups, 0, 1), Vec::<f64>::new());
        assert_eq!(assign_gflops(&groups, 1, 1).len(), 1);
        assert_eq!(assign_gflops(&[], 3, 1), vec![1.0; 3]);
        // exact count coverage even when n < group count
        assert_eq!(assign_gflops(&groups, 3, 9).len(), 3);
    }
}
