//! # vine-sim
//!
//! A deterministic discrete-event simulator that executes vine-rs
//! workloads on a modeled cluster — the substitution for the paper's
//! 201-machine HTCondor pool (DESIGN.md §2). The real [`vine_manager`]
//! scheduler and [`vine_worker`] accounting run unmodified; only *time* is
//! simulated:
//!
//! * manager bookkeeping is a single-server queue with per-decision costs
//!   from [`vine_core::CostModel`];
//! * contended devices (shared-FS bandwidth and IOPS, worker SSDs, NICs)
//!   are processor-shared fluid pools ([`engine::FluidPool`]);
//! * compute time scales with each machine group's per-core GFLOPS
//!   (Table 3, [`cluster`]) plus occupancy-dependent interference and
//!   seeded jitter.
//!
//! Paper-scale runs (100k invocations × 150 workers) complete in seconds
//! and produce a [`vine_core::trace::Trace`] from which every table and
//! figure of the evaluation is regenerated.

pub mod cluster;
pub mod engine;
pub mod reference;
pub mod run;
pub mod sharded;

pub use cluster::{assign_gflops, paper_groups, MachineGroup};
pub use reference::simulate_reference;
pub use run::{simulate, SimConfig, SimResult, Workload};
pub use sharded::{simulate_sharded, ShardedResult};
