//! # vine-dag
//!
//! The *parallel library* layer of the paper's software stack (Fig 1):
//! applications "express computational needs as a DAG of tasks" by invoking
//! functions whose results flow into later invocations; the library
//! "automatically creates and maintains a DAG of function invocations,
//! transforms invocations into tasks, and sends ready tasks to the
//! execution engine". This is the Parsl role; [`vine_runtime::Runtime`] is
//! the TaskVine role; [`App`] is the `TaskVineExecutor` glue (§3.6): it
//! receives an arbitrary stream of invocations, submits those whose inputs
//! are resolved, and feeds results forward as they return.
//!
//! ```
//! use vine_dag::{App, Arg};
//! use vine_core::context::{ContextSpec, LibrarySpec};
//! use vine_lang::Value;
//! use vine_runtime::{Runtime, RuntimeConfig};
//!
//! let mut rt = Runtime::new(RuntimeConfig::default());
//! let mut spec = LibrarySpec::new("mathlib");
//! spec.functions = vec!["double".into(), "add".into()];
//! spec.resources = Some(vine_core::resources::Resources::new(1, 512, 512));
//! spec.slots = Some(2);
//! rt.install_library(
//!     spec,
//!     "def double(x) { return x * 2 }\ndef add(a, b) { return a + b }",
//!     vec![],
//!     &[],
//! ).unwrap();
//!
//! // y = add(double(3), double(4)) — a little DAG
//! let mut app = App::new(rt);
//! let a = app.invoke("mathlib", "double", vec![Arg::Val(Value::Int(3))]);
//! let b = app.invoke("mathlib", "double", vec![Arg::Val(Value::Int(4))]);
//! let y = app.invoke("mathlib", "add", vec![Arg::ResultOf(a), Arg::ResultOf(b)]);
//! let results = app.run().unwrap();
//! assert_eq!(results[&y], Value::Int(14));
//! ```

use std::collections::BTreeMap;
use vine_core::ids::InvocationId;
use vine_core::resources::Resources;
use vine_core::task::{FunctionCall, UnitId, WorkUnit};
use vine_core::{Result, VineError};
use vine_lang::pickle;
use vine_lang::Value;
use vine_runtime::{decode_result, Runtime};

/// Handle to a node in the application's DAG — the paper's "promise that
/// the application will know and receive the result" (§2.1.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u64);

/// An argument to an invocation: a literal value, or the future result of
/// an earlier invocation (which creates a DAG edge).
#[derive(Clone, Debug)]
pub enum Arg {
    Val(Value),
    ResultOf(NodeId),
}

struct Node {
    library: String,
    function: String,
    args: Vec<Arg>,
    resources: Resources,
    /// Unresolved dependencies.
    unmet: usize,
    dependents: Vec<NodeId>,
    result: Option<Value>,
    submitted: bool,
}

/// An application: a DAG of invocations over a live runtime.
pub struct App {
    runtime: Runtime,
    nodes: BTreeMap<NodeId, Node>,
    next: u64,
}

impl App {
    pub fn new(runtime: Runtime) -> App {
        App {
            runtime,
            nodes: BTreeMap::new(),
            next: 0,
        }
    }

    /// Invoke `library.function(args)` with default resources.
    pub fn invoke(&mut self, library: &str, function: &str, args: Vec<Arg>) -> NodeId {
        self.invoke_with(library, function, args, Resources::new(1, 512, 512))
    }

    /// Invoke with an explicit resource request.
    pub fn invoke_with(
        &mut self,
        library: &str,
        function: &str,
        args: Vec<Arg>,
        resources: Resources,
    ) -> NodeId {
        let id = NodeId(self.next);
        self.next += 1;
        let mut unmet = 0;
        for a in &args {
            if let Arg::ResultOf(dep) = a {
                let dep_node = self
                    .nodes
                    .get_mut(dep)
                    .unwrap_or_else(|| panic!("invoke references unknown node {dep:?}"));
                if dep_node.result.is_none() {
                    unmet += 1;
                    dep_node.dependents.push(id);
                }
            }
        }
        self.nodes.insert(
            id,
            Node {
                library: library.to_string(),
                function: function.to_string(),
                args,
                resources,
                unmet,
                dependents: Vec::new(),
                result: None,
                submitted: false,
            },
        );
        id
    }

    /// Validate the whole DAG against the runtime before anything executes:
    /// cycles, unknown libraries or functions, and arity mismatches are all
    /// statically decidable at submit time (lints V033–V035), so a graph
    /// whose node 10,000 is miswired fails here instead of an hour in.
    pub fn preflight(&self) -> Result<()> {
        let nodes: Vec<vine_lint::DagNode> = self
            .nodes
            .iter()
            .map(|(id, n)| vine_lint::DagNode {
                id: id.0,
                library: n.library.clone(),
                function: n.function.clone(),
                argc: n.args.len(),
                deps: n
                    .args
                    .iter()
                    .filter_map(|a| match a {
                        Arg::ResultOf(dep) => Some(dep.0),
                        Arg::Val(_) => None,
                    })
                    .collect(),
                // literal arguments fingerprint as type:value so the V036
                // invariant-argument lint can spot shared input data being
                // re-serialized into every task
                args: n
                    .args
                    .iter()
                    .map(|a| match a {
                        Arg::Val(v) => Some(format!("{}:{v}", v.type_name())),
                        Arg::ResultOf(_) => None,
                    })
                    .collect(),
            })
            .collect();
        let diags = vine_lint::lint_dag(&nodes, &self.runtime.library_arities());
        if diags
            .iter()
            .any(|d| d.severity == vine_lint::Severity::Error)
        {
            let mut report = vine_lint::Report::new("app dag");
            report.extend(diags);
            report.sort();
            return Err(VineError::Lint(report.render()));
        }
        Ok(())
    }

    fn submit_ready(&mut self) -> Result<()> {
        let ready: Vec<NodeId> = self
            .nodes
            .iter()
            .filter(|(_, n)| n.unmet == 0 && !n.submitted && n.result.is_none())
            .map(|(id, _)| *id)
            .collect();
        for id in ready {
            // resolve argument futures to concrete values
            let node = &self.nodes[&id];
            let mut values = Vec::with_capacity(node.args.len());
            for a in &node.args {
                match a {
                    Arg::Val(v) => values.push(v.clone()),
                    Arg::ResultOf(dep) => {
                        let v = self.nodes[dep].result.clone().ok_or_else(|| {
                            VineError::Internal(format!(
                                "node {id:?} ready but dep {dep:?} unresolved"
                            ))
                        })?;
                        values.push(v);
                    }
                }
            }
            let node = self.nodes.get_mut(&id).unwrap();
            // last line of defense for apps driving submit_ready through
            // run(): an arity mismatch would otherwise only fail on the
            // worker, after every upstream node already executed
            if let Some(expected) = self.runtime.function_arity(&node.library, &node.function) {
                if expected != node.args.len() {
                    return Err(VineError::Lint(format!(
                        "error[V034]: node {id:?} calls `{}.{}` with {} argument(s); it takes \
                         {expected}",
                        node.library,
                        node.function,
                        node.args.len()
                    )));
                }
            }
            node.submitted = true;
            let mut call = FunctionCall::new(
                InvocationId(id.0),
                node.library.clone(),
                node.function.clone(),
                pickle::serialize_args(&values)?,
            );
            call.resources = node.resources;
            self.runtime.submit(WorkUnit::Call(call));
        }
        Ok(())
    }

    /// Run the DAG to completion; returns every node's result value.
    /// Fails fast on the first failed invocation (dependents of a failed
    /// node can never run).
    pub fn run(&mut self) -> Result<BTreeMap<NodeId, Value>> {
        self.preflight()?;
        self.submit_ready()?;
        while let Some(outcome) = self.runtime.run_next()? {
            let UnitId::Call(inv) = outcome.unit else {
                return Err(VineError::Internal("DAG nodes are calls".into()));
            };
            let id = NodeId(inv.0);
            if !outcome.success {
                return Err(VineError::ExecutionFailed(format!(
                    "node {id:?} ({}) failed: {}",
                    self.nodes
                        .get(&id)
                        .map(|n| format!("{}.{}", n.library, n.function))
                        .unwrap_or_default(),
                    outcome.error.unwrap_or_default()
                )));
            }
            let value = decode_result(&outcome)?;
            let dependents = {
                let node = self
                    .nodes
                    .get_mut(&id)
                    .ok_or_else(|| VineError::Internal(format!("unknown node {id:?}")))?;
                node.result = Some(value);
                std::mem::take(&mut node.dependents)
            };
            for dep in dependents {
                let n = self.nodes.get_mut(&dep).unwrap();
                n.unmet -= 1;
            }
            self.submit_ready()?;
        }
        // collect results
        let mut out = BTreeMap::new();
        for (id, node) in &self.nodes {
            match &node.result {
                Some(v) => {
                    out.insert(*id, v.clone());
                }
                None => {
                    return Err(VineError::Internal(format!(
                        "node {id:?} never ran (cycle or lost dependency)"
                    )))
                }
            }
        }
        Ok(out)
    }

    /// Result of a node after [`App::run`].
    pub fn result(&self, id: NodeId) -> Option<&Value> {
        self.nodes.get(&id).and_then(|n| n.result.as_ref())
    }

    /// Tear down the underlying cluster.
    pub fn shutdown(self) {
        self.runtime.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vine_core::context::LibrarySpec;
    use vine_runtime::RuntimeConfig;

    const SRC: &str = r#"
        def double(x) { return x * 2 }
        def add(a, b) { return a + b }
        def fail_if_negative(x) {
            if x < 0 { return 1 / 0 }
            return x
        }
    "#;

    fn app(workers: usize) -> App {
        let mut rt = Runtime::new(RuntimeConfig {
            workers,
            ..Default::default()
        });
        let mut spec = LibrarySpec::new("m");
        spec.functions = vec!["double".into(), "add".into(), "fail_if_negative".into()];
        spec.resources = Some(Resources::new(2, 1024, 1024));
        spec.slots = Some(2);
        rt.install_library(spec, SRC, vec![], &[]).unwrap();
        App::new(rt)
    }

    #[test]
    fn figure1_composition() {
        // the paper's Fig 1 application: y = f(g(x)) over the stack
        let mut app = app(2);
        let g = app.invoke("m", "double", vec![Arg::Val(Value::Int(21))]);
        let f = app.invoke("m", "add", vec![Arg::ResultOf(g), Arg::Val(Value::Int(0))]);
        let results = app.run().unwrap();
        assert_eq!(results[&f], Value::Int(42));
        app.shutdown();
    }

    #[test]
    fn diamond_dag() {
        let mut app = app(2);
        let root = app.invoke("m", "double", vec![Arg::Val(Value::Int(1))]);
        let left = app.invoke("m", "double", vec![Arg::ResultOf(root)]);
        let right = app.invoke(
            "m",
            "add",
            vec![Arg::ResultOf(root), Arg::Val(Value::Int(10))],
        );
        let join = app.invoke("m", "add", vec![Arg::ResultOf(left), Arg::ResultOf(right)]);
        let results = app.run().unwrap();
        assert_eq!(results[&root], Value::Int(2));
        assert_eq!(results[&left], Value::Int(4));
        assert_eq!(results[&right], Value::Int(12));
        assert_eq!(results[&join], Value::Int(16));
        app.shutdown();
    }

    #[test]
    fn wide_fanout_executes_fully() {
        let mut app = app(3);
        let root = app.invoke("m", "double", vec![Arg::Val(Value::Int(1))]);
        let mut leaves = Vec::new();
        for i in 0..40 {
            leaves.push(app.invoke(
                "m",
                "add",
                vec![Arg::ResultOf(root), Arg::Val(Value::Int(i))],
            ));
        }
        let results = app.run().unwrap();
        for (i, leaf) in leaves.iter().enumerate() {
            assert_eq!(results[leaf], Value::Int(2 + i as i64));
        }
        app.shutdown();
    }

    #[test]
    fn failure_propagates_as_error() {
        let mut app = app(1);
        let bad = app.invoke("m", "fail_if_negative", vec![Arg::Val(Value::Int(-1))]);
        let _child = app.invoke("m", "double", vec![Arg::ResultOf(bad)]);
        let e = app.run().unwrap_err();
        assert!(e.to_string().contains("division by zero"), "{e}");
    }

    #[test]
    fn preflight_rejects_arity_mismatch_before_anything_runs() {
        let mut app = app(1);
        // double takes 1 argument; the upstream node must never execute
        let root = app.invoke("m", "double", vec![Arg::Val(Value::Int(1))]);
        let _bad = app.invoke(
            "m",
            "double",
            vec![Arg::ResultOf(root), Arg::Val(Value::Int(2))],
        );
        let e = app.run().unwrap_err();
        assert!(e.to_string().contains("V034"), "{e}");
        assert!(
            app.result(root).is_none(),
            "preflight must fire before any node executes"
        );
    }

    #[test]
    fn preflight_rejects_unknown_function_and_library() {
        let mut app1 = app(1);
        app1.invoke("m", "no_such_fn", vec![]);
        let e = app1.run().unwrap_err();
        assert!(e.to_string().contains("V035"), "{e}");

        let mut app2 = app(1);
        app2.invoke("ghostlib", "double", vec![Arg::Val(Value::Int(1))]);
        let e = app2.run().unwrap_err();
        assert!(e.to_string().contains("V035"), "{e}");
    }

    #[test]
    fn preflight_passes_a_well_formed_dag() {
        let mut app = app(1);
        let a = app.invoke("m", "double", vec![Arg::Val(Value::Int(5))]);
        let _b = app.invoke("m", "add", vec![Arg::ResultOf(a), Arg::Val(Value::Int(1))]);
        app.preflight().expect("well-formed DAG");
        app.shutdown();
    }

    #[test]
    fn deep_chain_sequences_correctly() {
        let mut app = app(2);
        let mut prev = app.invoke("m", "double", vec![Arg::Val(Value::Int(1))]);
        for _ in 0..9 {
            prev = app.invoke("m", "double", vec![Arg::ResultOf(prev)]);
        }
        let results = app.run().unwrap();
        assert_eq!(results[&prev], Value::Int(1024));
        app.shutdown();
    }
}
