//! # vine-runtime
//!
//! The **live** execution substrate: a manager and N workers in one
//! process, workers as real OS threads, libraries as real daemon threads
//! executing real [`vine_lang`] functions. Where [`vine_sim`] models time,
//! this runtime spends it — which is what validates that the §3.4
//! worker ↔ library protocol and the discover/distribute/retain pipeline
//! actually *work*, and what produces the live Table 2 measurements.
//!
//! Execution semantics mirror the paper exactly:
//!
//! * a **task** (L1/L2) builds a fresh interpreter, reconstructs the
//!   shipped code (source or serialized), runs it, and throws the
//!   interpreter away — context reloaded every time;
//! * a **library** (L3) builds its interpreter once, runs the context
//!   setup function once, reports [`LibraryToWorker::Ready`], then serves
//!   invocations against the retained globals; `Direct` mode executes in
//!   the daemon thread, `Fork` mode deep-clones the namespace into a child
//!   thread (copy-on-write fork semantics: mutations don't leak back).
//!
//! The scheduling brain is the same [`vine_manager::Manager`] the
//! simulator drives — one scheduler, two substrates.

//!
//! All manager ↔ worker traffic flows through the [`transport::Transport`]
//! trait: the in-process backend keeps the historical threads-and-channels
//! substrate, the TCP backend ([`reactor`]) frames the same [`vine_proto`]
//! messages over sockets to workers in other OS processes — one epoll
//! reactor thread serving the whole fleet.

pub mod library_host;
pub mod reactor;
pub mod runtime;
pub mod transport;
pub mod worker_host;

pub use library_host::LibraryImage;
pub use reactor::{TcpConfig, TcpTransport};
pub use runtime::{decode_result, Runtime, RuntimeConfig};
pub use transport::{
    run_tcp_worker, InProcTransport, RecvError, Transport, TransportEvent, TransportStats,
    WorkerTransportStats,
};
