//! The TCP manager backend: one epoll reactor thread serving the whole
//! worker fleet.
//!
//! The first TCP backend was thread-per-connection: a sleep-polled accept
//! loop, one OS thread + `BufReader` per worker, and a global stream map
//! mutex held across blocking writes — one slow worker stalled sends to
//! everyone, and a thousand workers meant a thousand reader threads. This
//! module replaces all of it with a readiness-driven design, funcX-style:
//! a single `vine-reactor` thread owns every socket and multiplexes them
//! through an [`epoll`] instance (the shim under `shims/epoll` — raw
//! `epoll_create1`/`epoll_ctl`/`epoll_wait` against the C library std
//! already links).
//!
//! Shape of the machine:
//!
//! * **Accept** — the listener is nonblocking and registered for
//!   readability; a burst of dialing workers is drained in one wake with
//!   no accept thread and no sleep loop.
//! * **Read** — each connection owns a [`FrameDecoder`]; whatever byte
//!   chunk the socket yields (half a header, three coalesced frames) is
//!   buffered and decoded incrementally. Complete messages flow into the
//!   same [`TransportEvent`] channel the runtime already drains.
//! * **Write** — [`Transport::send`] never touches a socket. It encodes
//!   the message once into a shared [`Frame`] (`Arc<[u8]>`), charges the
//!   worker's outbound gauge, and hands the bytes to the reactor, which
//!   flushes each connection's queue with vectored writes — many queued
//!   frames coalesce into one `writev`-style syscall. A broadcast (one
//!   frame to N workers) enqueues N `Arc` clones of the same bytes:
//!   serialized once, not N times.
//! * **Backpressure** — each worker's outbound queue is bounded
//!   ([`TcpConfig::max_queued_bytes`]). A slow worker fills *its* queue;
//!   senders targeting it block on its gauge until the reactor drains it
//!   or [`TcpConfig::send_timeout`] expires, at which point the worker is
//!   declared lost and its connection closed — the rest of the fleet
//!   never waits behind it.
//! * **Handshake deadline** — a connection that dials in but never sends
//!   `Join` used to pin a reader thread forever; now it is closed and
//!   counted ([`TransportStats::handshake_rejects`]) once
//!   [`TcpConfig::handshake_timeout`] passes.
//!
//! Crash semantics are unchanged from the threaded backend: a connection
//! dying — graceful leave, `kill -9`, mid-frame truncation — surfaces as
//! [`TransportEvent::Left`] and feeds the same requeue path. The wire
//! format and the worker side ([`crate::transport::run_tcp_worker`]) are
//! untouched: old workers dial new managers.

use crate::transport::{
    RecvError, Transport, TransportEvent, TransportStats, WorkerTransportStats,
};
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use epoll::{Epoll, Event, WakeFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use std::collections::{BTreeMap, VecDeque};
use std::io::{IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use vine_core::ids::WorkerId;
use vine_core::{Result, VineError};
use vine_proto::{encode_frame, Frame, FrameDecoder, ManagerToWorker, WorkerToManager};

/// Tuning knobs of the reactor backend. The defaults serve a real fleet;
/// tests shrink them to provoke the edge paths quickly.
#[derive(Clone, Debug)]
pub struct TcpConfig {
    /// How long a freshly accepted connection may sit without sending
    /// `Join` before it is closed and counted as rejected.
    pub handshake_timeout: Duration,
    /// Outbound queue bound per worker, in bytes. Sends beyond it block
    /// the caller (that worker only) until the reactor drains the queue.
    pub max_queued_bytes: usize,
    /// How long a send may wait on a full queue before the worker is
    /// declared lost.
    pub send_timeout: Duration,
}

impl Default for TcpConfig {
    fn default() -> TcpConfig {
        TcpConfig {
            handshake_timeout: Duration::from_secs(10),
            max_queued_bytes: 64 * 1024 * 1024,
            send_timeout: Duration::from_secs(30),
        }
    }
}

/// Per-worker accounting shared between the sending side (backpressure,
/// stats) and the reactor (drain notifications). All counters are
/// monotonic over the connection's life and survive its death, so stats
/// cover departed workers too.
struct Gauge {
    queued_bytes: AtomicUsize,
    queue_hwm_bytes: AtomicUsize,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    alive: AtomicBool,
    /// Senders park here when the queue is full; the reactor notifies
    /// after draining or on connection death.
    drain_lock: Mutex<()>,
    drained: Condvar,
}

impl Gauge {
    fn new() -> Gauge {
        Gauge {
            queued_bytes: AtomicUsize::new(0),
            queue_hwm_bytes: AtomicUsize::new(0),
            frames_in: AtomicU64::new(0),
            frames_out: AtomicU64::new(0),
            bytes_in: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
            alive: AtomicBool::new(true),
            drain_lock: Mutex::new(()),
            drained: Condvar::new(),
        }
    }

    /// Charge `len` queued bytes and track the high-water mark.
    fn charge(&self, len: usize) {
        let now = self.queued_bytes.fetch_add(len, Ordering::Relaxed) + len;
        self.queue_hwm_bytes.fetch_max(now, Ordering::Relaxed);
    }

    /// Release `len` queued bytes and wake parked senders.
    fn release(&self, len: usize) {
        self.queued_bytes.fetch_sub(len, Ordering::Relaxed);
        let _g = self.drain_lock.lock().unwrap();
        self.drained.notify_all();
    }

    /// Mark the worker gone and wake parked senders so they fail fast.
    fn kill(&self) {
        self.alive.store(false, Ordering::Relaxed);
        let _g = self.drain_lock.lock().unwrap();
        self.drained.notify_all();
    }
}

/// What the manager thread asks the reactor to do.
enum Command {
    /// Append pre-encoded bytes to one worker's outbound queue.
    Send { worker: WorkerId, bytes: Arc<[u8]> },
    /// Sever one worker's connection.
    Disconnect(WorkerId),
    /// Broadcast `Shutdown`, drain, close everything, exit.
    Shutdown,
}

/// State shared between the [`TcpTransport`] handle and its reactor.
struct SharedState {
    gauges: Mutex<BTreeMap<WorkerId, Arc<Gauge>>>,
    commands: Mutex<VecDeque<Command>>,
    wake: WakeFd,
    handshake_rejects: AtomicU64,
}

impl SharedState {
    fn push(&self, cmd: Command) {
        self.commands.lock().unwrap().push_back(cmd);
        self.wake.wake();
    }
}

/// The manager side of the TCP backend: bind once, let workers dial in,
/// serve thousands of them from one reactor thread.
pub struct TcpTransport {
    shared: Arc<SharedState>,
    events: Receiver<TransportEvent>,
    /// Held so the event channel outlives transient disconnect storms.
    _events_tx: Sender<TransportEvent>,
    local_addr: SocketAddr,
    cfg: TcpConfig,
    reactor: Option<JoinHandle<()>>,
}

impl TcpTransport {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and start
    /// admitting workers with default tuning.
    pub fn listen(addr: impl ToSocketAddrs) -> std::io::Result<TcpTransport> {
        TcpTransport::listen_with(addr, TcpConfig::default())
    }

    /// Bind with explicit reactor tuning.
    pub fn listen_with(addr: impl ToSocketAddrs, cfg: TcpConfig) -> std::io::Result<TcpTransport> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let shared = Arc::new(SharedState {
            gauges: Mutex::new(BTreeMap::new()),
            commands: Mutex::new(VecDeque::new()),
            wake: WakeFd::new()?,
            handshake_rejects: AtomicU64::new(0),
        });
        let (etx, erx) = crossbeam::channel::unbounded();

        let reactor = {
            let mut r = Reactor::new(listener, Arc::clone(&shared), etx.clone(), cfg.clone())?;
            std::thread::Builder::new()
                .name("vine-reactor".into())
                .spawn(move || r.run())?
        };

        Ok(TcpTransport {
            shared,
            events: erx,
            _events_tx: etx,
            local_addr,
            cfg,
            reactor: Some(reactor),
        })
    }

    /// The address workers should dial (resolves `:0` bindings).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Queue pre-encoded bytes to one worker, blocking on its (and only
    /// its) backpressure gauge.
    fn send_bytes(&self, worker: WorkerId, bytes: Arc<[u8]>) -> Result<()> {
        let gauge = self
            .shared
            .gauges
            .lock()
            .unwrap()
            .get(&worker)
            .cloned()
            .ok_or(VineError::WorkerLost(worker))?;
        if !gauge.alive.load(Ordering::Relaxed) {
            return Err(VineError::WorkerLost(worker));
        }

        let len = bytes.len();
        let deadline = Instant::now() + self.cfg.send_timeout;
        let mut guard = gauge.drain_lock.lock().unwrap();
        loop {
            if !gauge.alive.load(Ordering::Relaxed) {
                return Err(VineError::WorkerLost(worker));
            }
            let queued = gauge.queued_bytes.load(Ordering::Relaxed);
            // an empty queue always admits one frame, even an oversized
            // one — otherwise a frame bigger than the bound could never
            // be sent at all
            if queued == 0 || queued + len <= self.cfg.max_queued_bytes {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                // the worker has not drained its queue within the send
                // budget: declare it lost so its in-flight work requeues
                // elsewhere, and let the reactor reap the connection
                drop(guard);
                self.shared.push(Command::Disconnect(worker));
                return Err(VineError::WorkerLost(worker));
            }
            let (g, _) = gauge.drained.wait_timeout(guard, deadline - now).unwrap();
            guard = g;
        }
        drop(guard);

        gauge.charge(len);
        self.shared.push(Command::Send { worker, bytes });
        Ok(())
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, worker: WorkerId, msg: ManagerToWorker) -> Result<()> {
        let bytes =
            encode_frame(&msg).map_err(|e| VineError::Protocol(format!("encoding frame: {e}")))?;
        self.send_bytes(worker, Arc::from(bytes.into_boxed_slice()))
    }

    fn send_frame(&mut self, worker: WorkerId, frame: &Frame) -> Result<()> {
        // the serialize-once path: the frame was encoded by the caller,
        // possibly for many recipients; this enqueues a shared reference
        self.send_bytes(worker, Arc::clone(frame.bytes()))
    }

    fn recv_timeout(
        &mut self,
        timeout: Duration,
    ) -> std::result::Result<TransportEvent, RecvError> {
        match self.events.recv_timeout(timeout) {
            Ok(ev) => Ok(ev),
            Err(RecvTimeoutError::Timeout) => Err(RecvError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(RecvError::Closed),
        }
    }

    fn try_recv(&mut self) -> Option<TransportEvent> {
        self.events.try_recv().ok()
    }

    fn disconnect(&mut self, worker: WorkerId) {
        if let Some(g) = self.shared.gauges.lock().unwrap().get(&worker) {
            g.kill();
        }
        self.shared.push(Command::Disconnect(worker));
    }

    fn shutdown(&mut self) {
        if let Some(t) = self.reactor.take() {
            self.shared.push(Command::Shutdown);
            let _ = t.join();
            for g in self.shared.gauges.lock().unwrap().values() {
                g.kill();
            }
        }
    }

    fn stats(&self) -> TransportStats {
        let workers = self
            .shared
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(w, g)| WorkerTransportStats {
                worker: *w,
                frames_in: g.frames_in.load(Ordering::Relaxed),
                frames_out: g.frames_out.load(Ordering::Relaxed),
                bytes_in: g.bytes_in.load(Ordering::Relaxed),
                bytes_out: g.bytes_out.load(Ordering::Relaxed),
                queue_hwm_bytes: g.queue_hwm_bytes.load(Ordering::Relaxed) as u64,
                alive: g.alive.load(Ordering::Relaxed),
            })
            .collect();
        TransportStats {
            workers,
            handshake_rejects: self.shared.handshake_rejects.load(Ordering::Relaxed),
        }
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---------------------------------------------------------------- reactor

/// Slab tokens 0 and 1 are the listener and the wake fd; connections
/// start at 2.
const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKE: u64 = 1;
const TOKEN_CONNS: u64 = 2;

/// Cap on socket reads consumed per readiness event, so one firehose
/// connection cannot starve the rest of a wake cycle (level-triggered
/// epoll re-reports whatever is left).
const MAX_READS_PER_EVENT: usize = 16;

/// Frames coalesced into one vectored write.
const MAX_IOVECS: usize = 64;

/// How long shutdown waits for outbound queues (the `Shutdown` broadcast
/// included) to drain before closing sockets anyway.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(5);

/// One live connection owned by the reactor.
struct Conn {
    stream: TcpStream,
    /// `None` until the `Join` handshake lands.
    worker: Option<WorkerId>,
    gauge: Option<Arc<Gauge>>,
    decoder: FrameDecoder,
    /// Outbound frames; the front one may be partially written.
    outq: VecDeque<Arc<[u8]>>,
    /// Bytes of `outq[0]` already on the wire.
    out_off: usize,
    /// Whether EPOLLOUT is currently part of the interest set.
    want_write: bool,
    /// Join-or-die deadline for handshaking connections.
    handshake_deadline: Option<Instant>,
}

/// Why a connection is being closed — controls which events surface.
enum Close {
    /// A joined worker is gone: emit [`TransportEvent::Left`].
    Lost,
    /// Handshake never completed (timeout or a non-`Join` first message):
    /// count the rejection, emit nothing.
    Rejected,
    /// Deliberate teardown (shutdown drain): emit nothing.
    Quiet,
}

struct Reactor {
    ep: Epoll,
    listener: TcpListener,
    shared: Arc<SharedState>,
    events: Sender<TransportEvent>,
    cfg: TcpConfig,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    by_worker: BTreeMap<WorkerId, usize>,
    /// Connections still waiting for `Join` (guards the deadline scan).
    handshaking: usize,
    next_worker: u32,
    /// Set once `Shutdown` arrives: drain until this deadline, then exit.
    drain_until: Option<Instant>,
}

impl Reactor {
    fn new(
        listener: TcpListener,
        shared: Arc<SharedState>,
        events: Sender<TransportEvent>,
        cfg: TcpConfig,
    ) -> std::io::Result<Reactor> {
        let ep = Epoll::new()?;
        ep.add(listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)?;
        ep.add(shared.wake.as_raw_fd(), EPOLLIN, TOKEN_WAKE)?;
        Ok(Reactor {
            ep,
            listener,
            shared,
            events,
            cfg,
            conns: Vec::new(),
            free: Vec::new(),
            by_worker: BTreeMap::new(),
            handshaking: 0,
            next_worker: 0,
            drain_until: None,
        })
    }

    fn run(&mut self) {
        let mut ready: Vec<Event> = Vec::new();
        loop {
            let timeout = self.next_timeout();
            if self.ep.wait(&mut ready, 256, timeout).is_err() {
                break;
            }
            let batch = std::mem::take(&mut ready);
            for ev in &batch {
                match ev.token {
                    TOKEN_LISTENER => self.accept_burst(),
                    TOKEN_WAKE => {
                        self.shared.wake.drain();
                        self.drain_commands();
                    }
                    t => self.conn_event((t - TOKEN_CONNS) as usize, ev.readiness),
                }
            }
            ready = batch;
            // commands may have queued while sockets were being served
            self.drain_commands();
            self.reap_handshake_timeouts();
            if self.drain_finished() {
                break;
            }
        }
        // teardown: close every socket; parked senders fail fast
        for slot in 0..self.conns.len() {
            self.close(slot, Close::Quiet);
        }
    }

    /// Milliseconds until the nearest deadline (handshakes, drain), or
    /// `None` to block until a socket or the wake fd stirs.
    fn next_timeout(&self) -> Option<u32> {
        let mut next: Option<Instant> = self.drain_until;
        if self.handshaking > 0 {
            for conn in self.conns.iter().flatten() {
                if let Some(d) = conn.handshake_deadline {
                    next = Some(next.map_or(d, |n| n.min(d)));
                }
            }
        }
        next.map(|d| {
            d.saturating_duration_since(Instant::now())
                .as_millis()
                .min(u32::MAX as u128) as u32
        })
    }

    fn accept_burst(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    // frames are small and latency-bound: never sit on one
                    // waiting for Nagle + delayed ACK to agree
                    stream.set_nodelay(true).ok();
                    let slot = self.free.pop().unwrap_or_else(|| {
                        self.conns.push(None);
                        self.conns.len() - 1
                    });
                    let token = TOKEN_CONNS + slot as u64;
                    if self
                        .ep
                        .add(stream.as_raw_fd(), EPOLLIN | EPOLLRDHUP, token)
                        .is_err()
                    {
                        self.free.push(slot);
                        continue;
                    }
                    self.conns[slot] = Some(Conn {
                        stream,
                        worker: None,
                        gauge: None,
                        decoder: FrameDecoder::new(),
                        outq: VecDeque::new(),
                        out_off: 0,
                        want_write: false,
                        handshake_deadline: Some(Instant::now() + self.cfg.handshake_timeout),
                    });
                    self.handshaking += 1;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
    }

    fn drain_commands(&mut self) {
        loop {
            let cmd = self.shared.commands.lock().unwrap().pop_front();
            let Some(cmd) = cmd else { break };
            match cmd {
                Command::Send { worker, bytes } => match self.by_worker.get(&worker).copied() {
                    Some(slot) => {
                        if let Some(conn) = self.conns[slot].as_mut() {
                            conn.outq.push_back(bytes);
                        }
                        // opportunistic flush: the socket is almost always
                        // writable, so most frames never arm EPOLLOUT
                        self.flush(slot);
                    }
                    None => {
                        // the connection died between enqueue and here:
                        // un-charge the gauge so parked senders move on
                        if let Some(g) = self.shared.gauges.lock().unwrap().get(&worker) {
                            g.release(bytes.len());
                        }
                    }
                },
                Command::Disconnect(worker) => {
                    if let Some(slot) = self.by_worker.get(&worker).copied() {
                        self.close(slot, Close::Lost);
                    }
                }
                Command::Shutdown => self.begin_drain(),
            }
        }
    }

    /// `Shutdown` broadcast: encode the frame **once**, queue the same
    /// bytes to every joined worker, then drain until queues empty or the
    /// deadline passes. Handshaking connections are closed immediately.
    fn begin_drain(&mut self) {
        if self.drain_until.is_some() {
            return;
        }
        self.drain_until = Some(Instant::now() + DRAIN_TIMEOUT);
        let frame = Frame::encode_once(ManagerToWorker::Shutdown).expect("shutdown encodes");
        for slot in 0..self.conns.len() {
            let Some(conn) = self.conns[slot].as_mut() else {
                continue;
            };
            if conn.worker.is_none() {
                // never completed the handshake and the fleet is going
                // away: not a protocol violation, just a quiet close
                self.close(slot, Close::Quiet);
                continue;
            }
            if let Some(g) = &conn.gauge {
                g.charge(frame.len());
            }
            conn.outq.push_back(Arc::clone(frame.bytes()));
            self.flush(slot);
        }
    }

    /// During drain: true once every queue flushed (or the deadline hit),
    /// which ends the reactor.
    fn drain_finished(&self) -> bool {
        let Some(deadline) = self.drain_until else {
            return false;
        };
        let expired = Instant::now() >= deadline;
        let pending = self.conns.iter().flatten().any(|c| !c.outq.is_empty());
        expired || !pending
    }

    fn reap_handshake_timeouts(&mut self) {
        if self.handshaking == 0 {
            return;
        }
        let now = Instant::now();
        for slot in 0..self.conns.len() {
            let overdue = matches!(
                self.conns[slot].as_ref().and_then(|c| c.handshake_deadline),
                Some(d) if now >= d
            );
            if overdue {
                self.close(slot, Close::Rejected);
            }
        }
    }

    fn conn_event(&mut self, slot: usize, readiness: u32) {
        if !matches!(self.conns.get(slot), Some(Some(_))) {
            return; // stale event for a slot already reaped this wake
        }
        if readiness & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0 {
            self.readable(slot);
        }
        if readiness & EPOLLOUT != 0 {
            self.flush(slot);
        }
    }

    fn readable(&mut self, slot: usize) {
        let mut scratch = [0u8; 64 * 1024];
        for _ in 0..MAX_READS_PER_EVENT {
            let Some(conn) = self.conns[slot].as_mut() else {
                return;
            };
            match conn.stream.read(&mut scratch) {
                Ok(0) => {
                    // peer closed; whether it is a crash or a graceful
                    // leave, the worker is gone
                    self.close(slot, Close::Lost);
                    return;
                }
                Ok(n) => {
                    if let Some(g) = &conn.gauge {
                        g.bytes_in.fetch_add(n as u64, Ordering::Relaxed);
                    }
                    conn.decoder.extend(&scratch[..n]);
                    if !self.pump_decoder(slot) {
                        return;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(slot, Close::Lost);
                    return;
                }
            }
        }
    }

    /// Decode every complete frame buffered on `slot`. Returns false if
    /// the connection was closed (handshake violation or garbage bytes).
    fn pump_decoder(&mut self, slot: usize) -> bool {
        loop {
            let Some(conn) = self.conns[slot].as_mut() else {
                return false;
            };
            match conn.decoder.decode::<WorkerToManager>() {
                Ok(None) => return true,
                Ok(Some(msg)) => match conn.worker {
                    None => {
                        // §3.5 step 1: the first frame must be Join
                        let WorkerToManager::Join { resources } = msg else {
                            self.close(slot, Close::Rejected);
                            return false;
                        };
                        self.admit(slot, resources);
                    }
                    Some(worker) => {
                        if let Some(g) = &conn.gauge {
                            g.frames_in.fetch_add(1, Ordering::Relaxed);
                        }
                        let _ = self.events.send(TransportEvent::Message { worker, msg });
                    }
                },
                Err(_) => {
                    // unframeable garbage or an oversized header: the
                    // stream cannot be resynchronized
                    let rejected = conn.worker.is_none();
                    self.close(
                        slot,
                        if rejected {
                            Close::Rejected
                        } else {
                            Close::Lost
                        },
                    );
                    return false;
                }
            }
        }
    }

    /// Admit a handshaking connection: assign a [`WorkerId`], publish its
    /// gauge, queue `Welcome`, announce the join.
    fn admit(&mut self, slot: usize, resources: vine_core::resources::Resources) {
        let worker = WorkerId(self.next_worker);
        self.next_worker += 1;
        let gauge = Arc::new(Gauge::new());
        // the gauge must be visible before Joined is observable, so the
        // first send the runtime issues finds it
        self.shared
            .gauges
            .lock()
            .unwrap()
            .insert(worker, Arc::clone(&gauge));

        let welcome = encode_frame(&ManagerToWorker::Welcome { worker }).expect("welcome encodes");
        let welcome: Arc<[u8]> = Arc::from(welcome.into_boxed_slice());
        gauge.charge(welcome.len());

        let conn = self.conns[slot].as_mut().expect("admitting a live conn");
        conn.worker = Some(worker);
        conn.gauge = Some(gauge);
        conn.handshake_deadline = None;
        self.handshaking -= 1;
        conn.outq.push_back(welcome);
        self.by_worker.insert(worker, slot);

        let _ = self
            .events
            .send(TransportEvent::Joined { worker, resources });
        self.flush(slot);
    }

    /// Write as much of `slot`'s outbound queue as the socket accepts,
    /// coalescing queued frames into vectored writes. Arms or disarms
    /// EPOLLOUT to match what remains.
    fn flush(&mut self, slot: usize) {
        loop {
            let Some(conn) = self.conns[slot].as_mut() else {
                return;
            };
            if conn.outq.is_empty() {
                break;
            }
            let wrote = {
                let mut iov: Vec<IoSlice> = Vec::with_capacity(conn.outq.len().min(MAX_IOVECS));
                for (i, frame) in conn.outq.iter().take(MAX_IOVECS).enumerate() {
                    let bytes = if i == 0 {
                        &frame[conn.out_off..]
                    } else {
                        &frame[..]
                    };
                    iov.push(IoSlice::new(bytes));
                }
                conn.stream.write_vectored(&iov)
            };
            match wrote {
                Ok(0) => {
                    self.close(slot, Close::Lost);
                    return;
                }
                Ok(mut n) => {
                    if let Some(g) = &conn.gauge {
                        g.bytes_out.fetch_add(n as u64, Ordering::Relaxed);
                    }
                    while n > 0 {
                        let front_len = conn.outq[0].len();
                        let remaining = front_len - conn.out_off;
                        if n >= remaining {
                            n -= remaining;
                            conn.outq.pop_front();
                            conn.out_off = 0;
                            if let Some(g) = &conn.gauge {
                                g.frames_out.fetch_add(1, Ordering::Relaxed);
                                g.release(front_len);
                            }
                        } else {
                            conn.out_off += n;
                            n = 0;
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    self.set_write_interest(slot, true);
                    return;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(slot, Close::Lost);
                    return;
                }
            }
        }
        self.set_write_interest(slot, false);
    }

    fn set_write_interest(&mut self, slot: usize, want: bool) {
        let Some(conn) = self.conns[slot].as_mut() else {
            return;
        };
        if conn.want_write == want {
            return;
        }
        conn.want_write = want;
        let interest = if want {
            EPOLLIN | EPOLLRDHUP | EPOLLOUT
        } else {
            EPOLLIN | EPOLLRDHUP
        };
        let _ = self
            .ep
            .modify(conn.stream.as_raw_fd(), interest, TOKEN_CONNS + slot as u64);
    }

    fn close(&mut self, slot: usize, why: Close) {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::take) else {
            return;
        };
        let _ = self.ep.delete(conn.stream.as_raw_fd());
        if conn.handshake_deadline.is_some() {
            self.handshaking -= 1;
        }
        if let Some(worker) = conn.worker {
            self.by_worker.remove(&worker);
            if let Some(g) = &conn.gauge {
                // un-charge whatever never made it to the wire, then mark
                // the worker dead so parked senders fail fast
                let undelivered: usize =
                    conn.outq.iter().map(|f| f.len()).sum::<usize>() - conn.out_off;
                if undelivered > 0 {
                    g.release(undelivered);
                }
                g.kill();
            }
            if matches!(why, Close::Lost) {
                let _ = self.events.send(TransportEvent::Left { worker });
            }
        } else if matches!(why, Close::Rejected) {
            self.shared
                .handshake_rejects
                .fetch_add(1, Ordering::Relaxed);
        }
        // dropping `conn` closes the socket
        self.free.push(slot);
    }
}
