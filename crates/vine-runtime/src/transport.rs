//! The transport seam between the manager and its workers.
//!
//! Everything the runtime says crosses this boundary as a typed
//! [`vine_proto`] message; nothing above it knows whether a worker is a
//! thread in this process or a process on another machine. Two backends:
//!
//! * [`InProcTransport`] — workers are threads, messages move over
//!   crossbeam channels untouched (today's semantics, zero serialization);
//! * [`TcpTransport`] — the manager listens, workers dial in and speak
//!   [`vine_proto::framing`] frames over `std::net` sockets. A connection
//!   dropping (worker crash, `kill -9`, network partition) surfaces as
//!   [`TransportEvent::Left`], which the runtime feeds into the same
//!   requeue path as an explicit worker kill.
//!
//! The worker side of the TCP backend is [`run_tcp_worker`]: dial, `Join`
//! with a capacity announcement, receive `Welcome`, then run the exact
//! same [`worker_engine`](crate::worker_host::worker_engine) loop the
//! in-process backend runs — one engine, two substrates.

use crate::worker_host::{spawn_worker, worker_engine, WorkerHandle};
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use std::collections::{BTreeMap, VecDeque};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;
use vine_core::ids::WorkerId;
use vine_core::resources::Resources;
use vine_core::{Result, VineError};
use vine_lang::ModuleRegistry;
use vine_proto::{read_frame, write_frame, ManagerToWorker, WorkerToManager};

/// What a transport can tell the runtime.
#[derive(Debug)]
pub enum TransportEvent {
    /// A worker connected and announced its capacity (§3.5 join).
    Joined {
        worker: WorkerId,
        resources: Resources,
    },
    /// A connected worker sent a protocol message.
    Message {
        worker: WorkerId,
        msg: WorkerToManager,
    },
    /// A worker's connection is gone — graceful leave or crash alike. The
    /// runtime routes this into [`vine_manager::Manager::worker_left`].
    Left { worker: WorkerId },
}

/// Why a blocking receive returned without an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// No event within the deadline.
    Timeout,
    /// The transport can never produce another event.
    Closed,
}

/// Manager-side view of a worker fleet. Object-safe so the runtime can
/// hold any backend behind one pointer.
pub trait Transport: Send {
    /// Deliver a message to one worker. `Err(WorkerLost)` means the worker
    /// is unreachable — the caller decides whether that is fatal.
    fn send(&mut self, worker: WorkerId, msg: ManagerToWorker) -> Result<()>;

    /// Block for the next event, up to `timeout`.
    fn recv_timeout(&mut self, timeout: Duration)
        -> std::result::Result<TransportEvent, RecvError>;

    /// Drain one already-queued event without blocking.
    fn try_recv(&mut self) -> Option<TransportEvent>;

    /// Forcibly sever one worker (fault injection, eviction of a sick
    /// peer). In-process this stops and joins the thread; over TCP it
    /// closes the socket. No [`TransportEvent::Left`] ordering guarantee —
    /// callers do their own bookkeeping.
    fn disconnect(&mut self, worker: WorkerId);

    /// Gracefully stop every worker and release transport resources.
    /// Idempotent.
    fn shutdown(&mut self);
}

// ---------------------------------------------------------------- in-proc

/// Workers as threads in this process, channels as wires — today's live
/// runtime semantics, preserved exactly.
pub struct InProcTransport {
    workers: BTreeMap<WorkerId, WorkerHandle>,
    events: Receiver<(WorkerId, WorkerToManager)>,
    /// Kept so the event channel outlives transient worker sets and so
    /// late-added workers can be wired to the same stream.
    events_tx: Sender<(WorkerId, WorkerToManager)>,
    registry: ModuleRegistry,
    /// Join announcements queued at construction (and by [`add_worker`]).
    pending: VecDeque<TransportEvent>,
    next_id: u32,
}

impl InProcTransport {
    /// Spawn `workers` worker threads, each announcing `resources`.
    pub fn new(workers: usize, resources: Resources, registry: ModuleRegistry) -> InProcTransport {
        let (etx, erx) = crossbeam::channel::unbounded();
        let mut t = InProcTransport {
            workers: BTreeMap::new(),
            events: erx,
            events_tx: etx,
            registry,
            pending: VecDeque::new(),
            next_id: 0,
        };
        for _ in 0..workers {
            t.add_worker(resources);
        }
        t
    }

    /// Spawn one more worker thread; its join event is queued like a
    /// freshly dialed TCP worker's would be.
    pub fn add_worker(&mut self, resources: Resources) -> WorkerId {
        let id = WorkerId(self.next_id);
        self.next_id += 1;
        self.workers.insert(
            id,
            spawn_worker(id, self.registry.clone(), self.events_tx.clone()),
        );
        self.pending.push_back(TransportEvent::Joined {
            worker: id,
            resources,
        });
        id
    }
}

impl Transport for InProcTransport {
    fn send(&mut self, worker: WorkerId, msg: ManagerToWorker) -> Result<()> {
        self.workers
            .get(&worker)
            .ok_or(VineError::WorkerLost(worker))?
            .tx
            .send(msg)
            .map_err(|_| VineError::WorkerLost(worker))
    }

    fn recv_timeout(
        &mut self,
        timeout: Duration,
    ) -> std::result::Result<TransportEvent, RecvError> {
        if let Some(ev) = self.pending.pop_front() {
            return Ok(ev);
        }
        match self.events.recv_timeout(timeout) {
            Ok((worker, msg)) => Ok(TransportEvent::Message { worker, msg }),
            Err(RecvTimeoutError::Timeout) => Err(RecvError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(RecvError::Closed),
        }
    }

    fn try_recv(&mut self) -> Option<TransportEvent> {
        if let Some(ev) = self.pending.pop_front() {
            return Some(ev);
        }
        self.events
            .try_recv()
            .ok()
            .map(|(worker, msg)| TransportEvent::Message { worker, msg })
    }

    fn disconnect(&mut self, worker: WorkerId) {
        if let Some(mut h) = self.workers.remove(&worker) {
            let _ = h.tx.send(ManagerToWorker::Shutdown);
            if let Some(t) = h.thread.take() {
                let _ = t.join();
            }
        }
    }

    fn shutdown(&mut self) {
        for (_, h) in self.workers.iter_mut() {
            let _ = h.tx.send(ManagerToWorker::Shutdown);
        }
        for (_, mut h) in std::mem::take(&mut self.workers) {
            if let Some(t) = h.thread.take() {
                let _ = t.join();
            }
        }
    }
}

impl Drop for InProcTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ------------------------------------------------------------------- tcp

/// Shared writer halves of every live worker connection. Reader threads
/// remove their entry on disconnect so sends fail fast afterwards.
type StreamMap = Arc<Mutex<BTreeMap<WorkerId, TcpStream>>>;

/// The manager side of the TCP backend: listen, admit dialing workers,
/// tag each connection with a fresh [`WorkerId`].
pub struct TcpTransport {
    streams: StreamMap,
    events: Receiver<TransportEvent>,
    /// Held only to keep the channel open while no worker is connected.
    _events_tx: Sender<TransportEvent>,
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpTransport {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and start
    /// admitting workers.
    pub fn listen(addr: impl ToSocketAddrs) -> std::io::Result<TcpTransport> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let streams: StreamMap = Arc::new(Mutex::new(BTreeMap::new()));
        let (etx, erx) = crossbeam::channel::unbounded();
        let stop = Arc::new(AtomicBool::new(false));

        let accept_thread = {
            let streams = Arc::clone(&streams);
            let etx = etx.clone();
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("vine-accept".into())
                .spawn(move || {
                    let ids = AtomicU32::new(0);
                    while !stop.load(Ordering::Relaxed) {
                        match listener.accept() {
                            Ok((stream, _peer)) => {
                                let worker = WorkerId(ids.fetch_add(1, Ordering::Relaxed));
                                let streams = Arc::clone(&streams);
                                let etx = etx.clone();
                                let _ = std::thread::Builder::new()
                                    .name(format!("vine-conn-{worker}"))
                                    .spawn(move || serve_connection(worker, stream, streams, etx));
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(10));
                            }
                            Err(_) => break,
                        }
                    }
                })
                .expect("spawn accept thread")
        };

        Ok(TcpTransport {
            streams,
            events: erx,
            _events_tx: etx,
            local_addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address workers should dial (resolves `:0` bindings).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }
}

/// One admitted connection: handshake, then pump frames into the event
/// stream until the socket dies.
fn serve_connection(
    worker: WorkerId,
    stream: TcpStream,
    streams: StreamMap,
    events: Sender<TransportEvent>,
) {
    // the handshake and reader run on this thread; writers clone the stream
    stream.set_nonblocking(false).ok();
    // frames are small and latency-bound: never sit on one waiting to
    // coalesce (Nagle + delayed ACK costs ~40 ms per dispatch otherwise)
    stream.set_nodelay(true).ok();
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);

    // §3.5 step 1: the worker announces itself before anything else
    let resources = match read_frame::<WorkerToManager>(&mut reader) {
        Ok(WorkerToManager::Join { resources }) => resources,
        _ => return, // not a worker — drop the connection unannounced
    };
    if write_frame(&mut writer, &ManagerToWorker::Welcome { worker }).is_err() {
        return;
    }
    streams.lock().unwrap().insert(worker, writer);
    let _ = events.send(TransportEvent::Joined { worker, resources });

    // pump until clean close, crash, or garbage: the worker is gone
    while let Ok(msg) = read_frame::<WorkerToManager>(&mut reader) {
        let _ = events.send(TransportEvent::Message { worker, msg });
    }
    streams.lock().unwrap().remove(&worker);
    let _ = events.send(TransportEvent::Left { worker });
}

impl Transport for TcpTransport {
    fn send(&mut self, worker: WorkerId, msg: ManagerToWorker) -> Result<()> {
        let mut streams = self.streams.lock().unwrap();
        let stream = streams
            .get_mut(&worker)
            .ok_or(VineError::WorkerLost(worker))?;
        if write_frame(stream, &msg).is_err() {
            // half-dead socket: drop the writer; the reader thread will
            // observe the close and emit Left
            streams.remove(&worker);
            return Err(VineError::WorkerLost(worker));
        }
        Ok(())
    }

    fn recv_timeout(
        &mut self,
        timeout: Duration,
    ) -> std::result::Result<TransportEvent, RecvError> {
        match self.events.recv_timeout(timeout) {
            Ok(ev) => Ok(ev),
            Err(RecvTimeoutError::Timeout) => Err(RecvError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(RecvError::Closed),
        }
    }

    fn try_recv(&mut self) -> Option<TransportEvent> {
        self.events.try_recv().ok()
    }

    fn disconnect(&mut self, worker: WorkerId) {
        if let Some(stream) = self.streams.lock().unwrap().remove(&worker) {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
    }

    fn shutdown(&mut self) {
        let streams = std::mem::take(&mut *self.streams.lock().unwrap());
        for (_, mut stream) in streams {
            let _ = write_frame(&mut stream, &ManagerToWorker::Shutdown);
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ----------------------------------------------------------- worker side

/// Dial a manager and serve as a worker until it says `Shutdown` (or the
/// connection dies). This is the whole worker process: handshake, then
/// the shared [`worker_engine`] with a socket for a mailbox.
pub fn run_tcp_worker(
    addr: impl ToSocketAddrs,
    resources: Resources,
    registry: ModuleRegistry,
) -> Result<()> {
    let stream = TcpStream::connect(addr)
        .map_err(|e| VineError::Protocol(format!("dialing manager: {e}")))?;
    stream.set_nodelay(true).ok();
    let mut writer = stream
        .try_clone()
        .map_err(|e| VineError::Protocol(format!("cloning socket: {e}")))?;
    let mut reader = BufReader::new(stream);

    write_frame(&mut writer, &WorkerToManager::Join { resources })
        .map_err(|e| VineError::Protocol(format!("join: {e}")))?;
    let id = match read_frame::<ManagerToWorker>(&mut reader) {
        Ok(ManagerToWorker::Welcome { worker }) => worker,
        Ok(other) => {
            return Err(VineError::Protocol(format!(
                "expected Welcome, got {other:?}"
            )))
        }
        Err(e) => return Err(VineError::Protocol(format!("welcome: {e}"))),
    };

    let (cmd_tx, cmd_rx) = crossbeam::channel::unbounded::<ManagerToWorker>();
    let (ev_tx, ev_rx) = crossbeam::channel::unbounded::<(WorkerId, WorkerToManager)>();
    let engine = std::thread::Builder::new()
        .name(format!("worker-{id}"))
        .spawn(move || worker_engine(id, registry, cmd_rx, ev_tx))
        .expect("spawn worker engine");

    // uplink: everything the engine reports goes out as frames
    let uplink = std::thread::Builder::new()
        .name(format!("worker-{id}-uplink"))
        .spawn(move || {
            while let Ok((_, msg)) = ev_rx.recv() {
                if write_frame(&mut writer, &msg).is_err() {
                    break;
                }
            }
        })
        .expect("spawn uplink thread");

    // downlink: frames become engine commands until shutdown/close
    loop {
        match read_frame::<ManagerToWorker>(&mut reader) {
            Ok(ManagerToWorker::Shutdown) => {
                let _ = cmd_tx.send(ManagerToWorker::Shutdown);
                break;
            }
            Ok(msg) => {
                if cmd_tx.send(msg).is_err() {
                    break;
                }
            }
            Err(_) => {
                // manager gone (clean close or otherwise): drain and exit
                // like a shutdown
                let _ = cmd_tx.send(ManagerToWorker::Shutdown);
                break;
            }
        }
    }
    drop(cmd_tx);
    let _ = engine.join();
    let _ = uplink.join();
    Ok(())
}
