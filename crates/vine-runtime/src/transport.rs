//! The transport seam between the manager and its workers.
//!
//! Everything the runtime says crosses this boundary as a typed
//! [`vine_proto`] message; nothing above it knows whether a worker is a
//! thread in this process or a process on another machine. Two backends:
//!
//! * [`InProcTransport`] — workers are threads, messages move over
//!   crossbeam channels untouched (today's semantics, zero serialization);
//! * [`TcpTransport`](crate::reactor::TcpTransport) — the manager binds a
//!   listener, workers dial in and speak [`vine_proto::framing`] frames
//!   over `std::net` sockets, and a single epoll reactor thread serves
//!   the whole fleet (see [`crate::reactor`]). A connection dropping
//!   (worker crash, `kill -9`, network partition) surfaces as
//!   [`TransportEvent::Left`], which the runtime feeds into the same
//!   requeue path as an explicit worker kill.
//!
//! The worker side of the TCP backend is [`run_tcp_worker`]: dial, `Join`
//! with a capacity announcement, receive `Welcome`, then run the exact
//! same [`worker_engine`](crate::worker_host::worker_engine) loop the
//! in-process backend runs — one engine, two substrates.

use crate::worker_host::{spawn_worker, worker_engine, WorkerHandle};
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use std::collections::{BTreeMap, VecDeque};
use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;
use vine_core::ids::WorkerId;
use vine_core::resources::Resources;
use vine_core::{Result, VineError};
use vine_lang::ModuleRegistry;
use vine_proto::{read_frame, write_frame, Frame, ManagerToWorker, WorkerToManager};

/// What a transport can tell the runtime.
#[derive(Debug)]
pub enum TransportEvent {
    /// A worker connected and announced its capacity (§3.5 join).
    Joined {
        worker: WorkerId,
        resources: Resources,
    },
    /// A connected worker sent a protocol message.
    Message {
        worker: WorkerId,
        msg: WorkerToManager,
    },
    /// A worker's connection is gone — graceful leave or crash alike. The
    /// runtime routes this into [`vine_manager::Manager::worker_left`].
    Left { worker: WorkerId },
}

/// Why a blocking receive returned without an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// No event within the deadline.
    Timeout,
    /// The transport can never produce another event.
    Closed,
}

/// Manager-side view of a worker fleet. Object-safe so the runtime can
/// hold any backend behind one pointer.
pub trait Transport: Send {
    /// Deliver a message to one worker. `Err(WorkerLost)` means the worker
    /// is unreachable — the caller decides whether that is fatal.
    fn send(&mut self, worker: WorkerId, msg: ManagerToWorker) -> Result<()>;

    /// Deliver a pre-encoded [`Frame`] to one worker. Broadcast paths
    /// (library installs, shutdown) encode once and call this per
    /// recipient; byte-moving backends ship the shared bytes without
    /// re-serializing, channel backends deliver the typed message without
    /// a decode. The default just unwraps the typed message.
    fn send_frame(&mut self, worker: WorkerId, frame: &Frame) -> Result<()> {
        self.send(worker, frame.to_message())
    }

    /// Block for the next event, up to `timeout`.
    fn recv_timeout(&mut self, timeout: Duration)
        -> std::result::Result<TransportEvent, RecvError>;

    /// Drain one already-queued event without blocking.
    fn try_recv(&mut self) -> Option<TransportEvent>;

    /// Forcibly sever one worker (fault injection, eviction of a sick
    /// peer). In-process this stops and joins the thread; over TCP it
    /// closes the socket. No [`TransportEvent::Left`] ordering guarantee —
    /// callers do their own bookkeeping.
    fn disconnect(&mut self, worker: WorkerId);

    /// Gracefully stop every worker and release transport resources.
    /// Idempotent.
    fn shutdown(&mut self);

    /// A snapshot of per-worker traffic counters. Every backend meters
    /// frames; byte counters stay zero on backends without a wire
    /// (in-process channels move typed messages, not encoded bytes).
    fn stats(&self) -> TransportStats {
        TransportStats::default()
    }
}

// ------------------------------------------------------------------ stats

/// Lifetime traffic counters for one worker connection, as metered by the
/// transport. Counters survive the worker's death so a post-run snapshot
/// covers the whole fleet.
#[derive(Debug, Clone)]
pub struct WorkerTransportStats {
    pub worker: WorkerId,
    /// Complete frames decoded from this worker.
    pub frames_in: u64,
    /// Complete frames flushed to this worker.
    pub frames_out: u64,
    /// Raw bytes read off the socket (including partial frames).
    pub bytes_in: u64,
    /// Raw bytes written to the socket.
    pub bytes_out: u64,
    /// High-water mark of the outbound queue, in bytes — how far this
    /// worker fell behind at its worst.
    pub queue_hwm_bytes: u64,
    /// Whether the connection was still up when the snapshot was taken.
    pub alive: bool,
}

/// A fleet-wide snapshot from [`Transport::stats`].
#[derive(Debug, Clone, Default)]
pub struct TransportStats {
    pub workers: Vec<WorkerTransportStats>,
    /// Connections closed without completing the `Join` handshake
    /// (deadline expired or the first message was not `Join`).
    pub handshake_rejects: u64,
}

impl TransportStats {
    /// Render a compact human-readable table (one line per worker plus a
    /// totals line), for end-of-run diagnostics.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("transport stats:\n");
        out.push_str("  worker  frames_in  frames_out    bytes_in   bytes_out  queue_hwm  alive\n");
        let (mut fi, mut fo, mut bi, mut bo) = (0u64, 0u64, 0u64, 0u64);
        for w in &self.workers {
            fi += w.frames_in;
            fo += w.frames_out;
            bi += w.bytes_in;
            bo += w.bytes_out;
            out.push_str(&format!(
                "  {:>6} {:>10} {:>11} {:>11} {:>11} {:>10} {:>6}\n",
                w.worker.0,
                w.frames_in,
                w.frames_out,
                w.bytes_in,
                w.bytes_out,
                w.queue_hwm_bytes,
                if w.alive { "yes" } else { "no" },
            ));
        }
        out.push_str(&format!(
            "  totals: {} workers, {fi} frames in / {fo} out, {bi} bytes in / {bo} out, {} handshake rejects\n",
            self.workers.len(),
            self.handshake_rejects,
        ));
        out
    }
}

// ---------------------------------------------------------------- in-proc

/// Workers as threads in this process, channels as wires — today's live
/// runtime semantics, preserved exactly.
pub struct InProcTransport {
    workers: BTreeMap<WorkerId, WorkerHandle>,
    events: Receiver<(WorkerId, WorkerToManager)>,
    /// Kept so the event channel outlives transient worker sets and so
    /// late-added workers can be wired to the same stream.
    events_tx: Sender<(WorkerId, WorkerToManager)>,
    registry: ModuleRegistry,
    /// Join announcements queued at construction (and by [`add_worker`]).
    pending: VecDeque<TransportEvent>,
    next_id: u32,
    /// Per-worker `(frames_in, frames_out)` message counters — the
    /// in-proc analogue of the reactor's wire metering. Entries survive
    /// worker death so a post-run snapshot covers the whole fleet.
    counters: BTreeMap<WorkerId, (u64, u64)>,
}

impl InProcTransport {
    /// Spawn `workers` worker threads, each announcing `resources`.
    pub fn new(workers: usize, resources: Resources, registry: ModuleRegistry) -> InProcTransport {
        let (etx, erx) = crossbeam::channel::unbounded();
        let mut t = InProcTransport {
            workers: BTreeMap::new(),
            events: erx,
            events_tx: etx,
            registry,
            pending: VecDeque::new(),
            next_id: 0,
            counters: BTreeMap::new(),
        };
        for _ in 0..workers {
            t.add_worker(resources);
        }
        t
    }

    /// Spawn one more worker thread; its join event is queued like a
    /// freshly dialed TCP worker's would be.
    pub fn add_worker(&mut self, resources: Resources) -> WorkerId {
        let id = WorkerId(self.next_id);
        self.next_id += 1;
        self.workers.insert(
            id,
            spawn_worker(id, self.registry.clone(), self.events_tx.clone()),
        );
        self.counters.insert(id, (0, 0));
        self.pending.push_back(TransportEvent::Joined {
            worker: id,
            resources,
        });
        id
    }
}

impl Transport for InProcTransport {
    fn send(&mut self, worker: WorkerId, msg: ManagerToWorker) -> Result<()> {
        self.workers
            .get(&worker)
            .ok_or(VineError::WorkerLost(worker))?
            .tx
            .send(msg)
            .map_err(|_| VineError::WorkerLost(worker))?;
        self.counters.entry(worker).or_default().1 += 1;
        Ok(())
    }

    fn recv_timeout(
        &mut self,
        timeout: Duration,
    ) -> std::result::Result<TransportEvent, RecvError> {
        if let Some(ev) = self.pending.pop_front() {
            return Ok(ev);
        }
        match self.events.recv_timeout(timeout) {
            Ok((worker, msg)) => {
                self.counters.entry(worker).or_default().0 += 1;
                Ok(TransportEvent::Message { worker, msg })
            }
            Err(RecvTimeoutError::Timeout) => Err(RecvError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(RecvError::Closed),
        }
    }

    fn try_recv(&mut self) -> Option<TransportEvent> {
        if let Some(ev) = self.pending.pop_front() {
            return Some(ev);
        }
        let (worker, msg) = self.events.try_recv().ok()?;
        self.counters.entry(worker).or_default().0 += 1;
        Some(TransportEvent::Message { worker, msg })
    }

    fn disconnect(&mut self, worker: WorkerId) {
        if let Some(mut h) = self.workers.remove(&worker) {
            let _ = h.tx.send(ManagerToWorker::Shutdown);
            if let Some(t) = h.thread.take() {
                let _ = t.join();
            }
        }
    }

    fn stats(&self) -> TransportStats {
        TransportStats {
            workers: self
                .counters
                .iter()
                .map(|(&worker, &(fi, fo))| WorkerTransportStats {
                    worker,
                    frames_in: fi,
                    frames_out: fo,
                    // channels carry typed messages: no wire, no bytes
                    bytes_in: 0,
                    bytes_out: 0,
                    queue_hwm_bytes: 0,
                    alive: self.workers.contains_key(&worker),
                })
                .collect(),
            handshake_rejects: 0,
        }
    }

    fn shutdown(&mut self) {
        // the broadcast pattern in miniature: one Frame, N typed clones —
        // channel substrates never touch the bytes
        if let Ok(frame) = Frame::encode_once(ManagerToWorker::Shutdown) {
            for (id, h) in self.workers.iter_mut() {
                if h.tx.send(frame.to_message()).is_ok() {
                    self.counters.entry(*id).or_default().1 += 1;
                }
            }
        }
        for (_, mut h) in std::mem::take(&mut self.workers) {
            if let Some(t) = h.thread.take() {
                let _ = t.join();
            }
        }
    }
}

impl Drop for InProcTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ----------------------------------------------------------- worker side

/// Dial a manager and serve as a worker until it says `Shutdown` (or the
/// connection dies). This is the whole worker process: handshake, then
/// the shared [`worker_engine`] with a socket for a mailbox.
pub fn run_tcp_worker(
    addr: impl ToSocketAddrs,
    resources: Resources,
    registry: ModuleRegistry,
) -> Result<()> {
    let stream = TcpStream::connect(addr)
        .map_err(|e| VineError::Protocol(format!("dialing manager: {e}")))?;
    stream.set_nodelay(true).ok();
    let mut writer = stream
        .try_clone()
        .map_err(|e| VineError::Protocol(format!("cloning socket: {e}")))?;
    let mut reader = BufReader::new(stream);

    write_frame(&mut writer, &WorkerToManager::Join { resources })
        .map_err(|e| VineError::Protocol(format!("join: {e}")))?;
    let id = match read_frame::<ManagerToWorker>(&mut reader) {
        Ok(ManagerToWorker::Welcome { worker }) => worker,
        Ok(other) => {
            return Err(VineError::Protocol(format!(
                "expected Welcome, got {other:?}"
            )))
        }
        Err(e) => return Err(VineError::Protocol(format!("welcome: {e}"))),
    };

    let (cmd_tx, cmd_rx) = crossbeam::channel::unbounded::<ManagerToWorker>();
    let (ev_tx, ev_rx) = crossbeam::channel::unbounded::<(WorkerId, WorkerToManager)>();
    let engine = std::thread::Builder::new()
        .name(format!("worker-{id}"))
        .spawn(move || worker_engine(id, registry, cmd_rx, ev_tx))
        .expect("spawn worker engine");

    // uplink: everything the engine reports goes out as frames
    let uplink = std::thread::Builder::new()
        .name(format!("worker-{id}-uplink"))
        .spawn(move || {
            while let Ok((_, msg)) = ev_rx.recv() {
                if write_frame(&mut writer, &msg).is_err() {
                    break;
                }
            }
        })
        .expect("spawn uplink thread");

    // downlink: frames become engine commands until shutdown/close
    loop {
        match read_frame::<ManagerToWorker>(&mut reader) {
            Ok(ManagerToWorker::Shutdown) => {
                let _ = cmd_tx.send(ManagerToWorker::Shutdown);
                break;
            }
            Ok(msg) => {
                if cmd_tx.send(msg).is_err() {
                    break;
                }
            }
            Err(_) => {
                // manager gone (clean close or otherwise): drain and exit
                // like a shutdown
                let _ = cmd_tx.send(ManagerToWorker::Shutdown);
                break;
            }
        }
    }
    drop(cmd_tx);
    let _ = engine.join();
    let _ = uplink.join();
    Ok(())
}
