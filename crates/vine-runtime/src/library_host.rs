//! The library daemon: one thread, one interpreter, one retained context.

use crossbeam::channel::{Receiver, Sender};
use std::thread::JoinHandle;
use vine_core::ids::{LibraryInstanceId, WorkerId};
use vine_core::task::ExecMode;
use vine_lang::pickle;
use vine_lang::{Engine, Interp, ModuleRegistry, Value};
use vine_proto::{LibraryToWorker, WorkerToLibrary};

pub use vine_proto::{LibraryImage, LibrarySetup};

/// A running daemon: its thread and command channel.
pub struct LibraryHost {
    pub instance: LibraryInstanceId,
    /// Execution option used when an invocation does not specify one.
    pub default_mode: ExecMode,
    pub tx: Sender<WorkerToLibrary>,
    pub thread: Option<JoinHandle<()>>,
}

/// Boot a library daemon thread. Replies (Ready / StartupFailed /
/// ResultReady) flow to `events` tagged with the owning worker and
/// instance.
pub fn spawn_library(
    worker: WorkerId,
    image: LibraryImage,
    registry: ModuleRegistry,
    events: Sender<(WorkerId, LibraryInstanceId, LibraryToWorker)>,
) -> LibraryHost {
    let (tx, rx) = crossbeam::channel::unbounded::<WorkerToLibrary>();
    let instance = image.instance;
    let default_mode = image.default_mode;
    let thread = std::thread::Builder::new()
        .name(format!("library-{instance}"))
        .spawn(move || daemon_main(worker, image, registry, rx, events))
        .expect("spawn library thread");
    LibraryHost {
        instance,
        default_mode,
        tx,
        thread: Some(thread),
    }
}

fn daemon_main(
    worker: WorkerId,
    image: LibraryImage,
    registry: ModuleRegistry,
    rx: Receiver<WorkerToLibrary>,
    events: Sender<(WorkerId, LibraryInstanceId, LibraryToWorker)>,
) {
    let instance = image.instance;
    // §3.4 step 2: boot, reconstruct code, run all context setup, report.
    // Library daemons run on the bytecode VM: the compiled module is part
    // of the retained context, so every invocation skips tree-walking.
    let mut interp = Interp::with_registry(registry);
    interp.engine = Engine::Vm;
    let boot = (|| -> Result<(), String> {
        match &image.compiled {
            // the manager shipped a compiled image: boot without parsing
            // or compiling (decode errors fall back to the source text)
            Some(blob) => match vine_lang::bytecode::from_bytes(&blob.bytes) {
                Ok(top) => interp
                    .exec_compiled(&vine_lang::CompiledModule {
                        top,
                        source_digest: blob.source_digest,
                    })
                    .map_err(|e| format!("library source: {e}"))?,
                Err(_) => interp
                    .exec_source(&image.source)
                    .map_err(|e| format!("library source: {e}"))?,
            },
            None => interp
                .exec_source(&image.source)
                .map_err(|e| format!("library source: {e}"))?,
        }
        for blob in &image.serialized_functions {
            let def = pickle::deserialize_funcdef(blob).map_err(|e| format!("code object: {e}"))?;
            interp.bind_function(def);
        }
        if let Some(setup) = &image.setup {
            let args = pickle::deserialize_args(&setup.args_blob, &interp.globals)
                .map_err(|e| format!("setup args: {e}"))?;
            interp
                .call_global(&setup.function, &args)
                .map_err(|e| format!("context setup: {e}"))?;
        }
        Ok(())
    })();

    match boot {
        Ok(()) => {
            let _ = events.send((worker, instance, LibraryToWorker::Ready));
        }
        Err(error) => {
            let _ = events.send((worker, instance, LibraryToWorker::StartupFailed { error }));
            return;
        }
    }

    // §3.4 steps 3–4: serve invocations until shutdown
    while let Ok(msg) = rx.recv() {
        match msg {
            WorkerToLibrary::Shutdown => break,
            WorkerToLibrary::Invoke {
                id,
                function,
                args_blob,
                sandbox: _,
                mode,
            } => {
                let result = match mode {
                    ExecMode::Direct => run_direct(&mut interp, &function, &args_blob),
                    ExecMode::Fork => run_forked(&interp, &function, &args_blob),
                };
                let _ = events.send((
                    worker,
                    instance,
                    LibraryToWorker::ResultReady { id, result },
                ));
            }
        }
    }
}

/// Direct option: execute synchronously inside the daemon's own memory
/// space; invocations may mutate the shared context.
fn run_direct(interp: &mut Interp, function: &str, args_blob: &[u8]) -> Result<Vec<u8>, String> {
    let args = pickle::deserialize_args(args_blob, &interp.globals).map_err(|e| e.to_string())?;
    let out = interp
        .call_global(function, &args)
        .map_err(|e| e.to_string())?;
    pickle::serialize_value(&out).map_err(|e| e.to_string())
}

/// Fork option: the "child" gets a deep copy of the namespace (fork's
/// copy-on-write semantics) and runs on its own thread; mutations stay in
/// the child (§2.1.4: invocations "can freely mutate the environment in
/// its memory space" without corrupting the shared context).
fn run_forked(interp: &Interp, function: &str, args_blob: &[u8]) -> Result<Vec<u8>, String> {
    // snapshot the namespace: serializable state deep-clones; module and
    // native values are rebuilt in the child from the same registry
    let parent_globals: Vec<(String, Value)> = interp
        .globals
        .borrow()
        .iter()
        .filter(|(_, v)| !matches!(v, Value::Module(_) | Value::Native(_)))
        .map(|(k, v)| (k.clone(), v.deep_clone()))
        .collect();
    // functions must be re-serialized so the child rebinds them to ITS
    // globals, not the parent's
    let mut plain = Vec::new();
    let mut funcs = Vec::new();
    for (k, v) in parent_globals {
        match &v {
            Value::Func(_) => funcs.push(pickle::serialize_value(&v).map_err(|e| e.to_string())?),
            _ => plain.push((k, pickle::serialize_value(&v).map_err(|e| e.to_string())?)),
        }
    }
    let registry = interp.registry().clone();
    let function = function.to_string();
    let args_blob = args_blob.to_vec();

    // Values are thread-local (Rc), so the "fork" moves only bytes —
    // exactly like a real fork boundary
    let child = std::thread::Builder::new()
        .name("library-fork".into())
        .spawn(move || -> Result<Vec<u8>, String> {
            let mut child_interp = Interp::with_registry(registry);
            child_interp.engine = Engine::Vm;
            for (k, blob) in plain {
                let v = pickle::deserialize_value(&blob, &child_interp.globals)
                    .map_err(|e| e.to_string())?;
                child_interp.set_global(k, v);
            }
            for blob in funcs {
                let v = pickle::deserialize_value(&blob, &child_interp.globals)
                    .map_err(|e| e.to_string())?;
                if let Value::Func(f) = &v {
                    let name = f.def.name.clone();
                    if !name.is_empty() {
                        child_interp.set_global(name, v);
                    }
                }
            }
            let args = pickle::deserialize_args(&args_blob, &child_interp.globals)
                .map_err(|e| e.to_string())?;
            let out = child_interp
                .call_global(&function, &args)
                .map_err(|e| e.to_string())?;
            pickle::serialize_value(&out).map_err(|e| e.to_string())
        })
        .map_err(|e| format!("fork failed: {e}"))?;
    child
        .join()
        .map_err(|_| "forked invocation panicked".to_string())?
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
        def context_setup(base) {
            global counter, offset
            counter = 0
            offset = base
        }
        def bump(x) {
            global counter
            counter = counter + 1
            return offset + counter + x
        }
        def read_counter() { return counter }
    "#;

    fn boot(
        mode: ExecMode,
    ) -> (
        LibraryHost,
        Receiver<(WorkerId, LibraryInstanceId, LibraryToWorker)>,
    ) {
        let (etx, erx) = crossbeam::channel::unbounded();
        let image = LibraryImage {
            instance: LibraryInstanceId(1),
            source: SRC.into(),
            serialized_functions: vec![],
            setup: Some(LibrarySetup {
                function: "context_setup".into(),
                args_blob: pickle::serialize_args(&[Value::Int(1000)]).unwrap(),
            }),
            default_mode: mode,
            compiled: None,
        };
        let host = spawn_library(WorkerId(0), image, ModuleRegistry::new(), etx);
        match erx.recv().unwrap() {
            (_, _, LibraryToWorker::Ready) => {}
            other => panic!("expected Ready, got {other:?}"),
        }
        (host, erx)
    }

    fn invoke(
        host: &LibraryHost,
        erx: &Receiver<(WorkerId, LibraryInstanceId, LibraryToWorker)>,
        id: u64,
        function: &str,
        args: &[Value],
        mode: ExecMode,
    ) -> Result<Value, String> {
        host.tx
            .send(WorkerToLibrary::Invoke {
                id: vine_core::ids::InvocationId(id),
                function: function.into(),
                args_blob: pickle::serialize_args(args).unwrap(),
                sandbox: format!("sandbox/i{id}"),
                mode,
            })
            .unwrap();
        match erx.recv().unwrap() {
            (_, _, LibraryToWorker::ResultReady { result, .. }) => result.map(|blob| {
                let g = std::rc::Rc::new(std::cell::RefCell::new(Default::default()));
                pickle::deserialize_value(&blob, &g).unwrap()
            }),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn direct_mode_retains_state_across_invocations() {
        let (host, erx) = boot(ExecMode::Direct);
        // context setup ran once: offset=1000, counter=0
        let a = invoke(&host, &erx, 1, "bump", &[Value::Int(5)], ExecMode::Direct).unwrap();
        assert_eq!(a, Value::Int(1006)); // 1000 + 1 + 5
        let b = invoke(&host, &erx, 2, "bump", &[Value::Int(5)], ExecMode::Direct).unwrap();
        assert_eq!(b, Value::Int(1007), "counter retained between invocations");
        host.tx.send(WorkerToLibrary::Shutdown).unwrap();
    }

    #[test]
    fn fork_mode_isolates_mutation() {
        let (host, erx) = boot(ExecMode::Fork);
        let a = invoke(&host, &erx, 1, "bump", &[Value::Int(0)], ExecMode::Fork).unwrap();
        assert_eq!(a, Value::Int(1001));
        let b = invoke(&host, &erx, 2, "bump", &[Value::Int(0)], ExecMode::Fork).unwrap();
        assert_eq!(
            b,
            Value::Int(1001),
            "each fork sees the pristine parent context"
        );
        // the parent daemon's counter is untouched
        let c = invoke(&host, &erx, 3, "read_counter", &[], ExecMode::Direct).unwrap();
        assert_eq!(c, Value::Int(0));
        host.tx.send(WorkerToLibrary::Shutdown).unwrap();
    }

    #[test]
    fn invocation_failure_does_not_kill_library() {
        let (host, erx) = boot(ExecMode::Direct);
        let err = invoke(&host, &erx, 1, "no_such_fn", &[], ExecMode::Direct).unwrap_err();
        assert!(err.contains("undefined"), "{err}");
        // the daemon still serves
        let ok = invoke(&host, &erx, 2, "bump", &[Value::Int(0)], ExecMode::Direct).unwrap();
        assert_eq!(ok, Value::Int(1001));
        host.tx.send(WorkerToLibrary::Shutdown).unwrap();
    }

    #[test]
    fn startup_failure_reports() {
        let (etx, erx) = crossbeam::channel::unbounded();
        let image = LibraryImage {
            instance: LibraryInstanceId(2),
            source: "import missing_module".into(),
            serialized_functions: vec![],
            setup: None,
            default_mode: ExecMode::Direct,
            compiled: None,
        };
        let host = spawn_library(WorkerId(0), image, ModuleRegistry::new(), etx);
        match erx.recv().unwrap() {
            (_, _, LibraryToWorker::StartupFailed { error }) => {
                assert!(error.contains("missing_module"), "{error}");
            }
            other => panic!("unexpected {other:?}"),
        }
        drop(host);
    }

    #[test]
    fn serialized_lambda_functions_bind_on_boot() {
        // a function with no source form travels as a code object
        let mut origin = Interp::new();
        origin
            .exec_source("def mystery(x) { return x * 41 + 1 }")
            .unwrap();
        let blob = pickle::serialize_value(&origin.get_global("mystery").unwrap()).unwrap();

        let (etx, erx) = crossbeam::channel::unbounded();
        let image = LibraryImage {
            instance: LibraryInstanceId(3),
            source: String::new(),
            serialized_functions: vec![match pickle::deserialize_value(&blob, &origin.globals)
                .unwrap()
            {
                Value::Func(f) => pickle::serialize_funcdef(&f.def),
                _ => unreachable!(),
            }],
            setup: None,
            default_mode: ExecMode::Direct,
            compiled: None,
        };
        let host = spawn_library(WorkerId(0), image, ModuleRegistry::new(), etx);
        assert!(matches!(erx.recv().unwrap().2, LibraryToWorker::Ready));
        let out = invoke(
            &host,
            &erx,
            1,
            "mystery",
            &[Value::Int(2)],
            ExecMode::Direct,
        )
        .unwrap();
        assert_eq!(out, Value::Int(83));
        host.tx.send(WorkerToLibrary::Shutdown).unwrap();
    }

    #[test]
    fn compiled_image_boots_and_serves() {
        // ship bytecode alongside the source: the daemon must boot from
        // the image and behave exactly like a source boot
        let prog = vine_lang::parse(SRC).unwrap();
        let module = vine_lang::compile_module(&prog, SRC);
        let (etx, erx) = crossbeam::channel::unbounded();
        let image = LibraryImage {
            instance: LibraryInstanceId(4),
            source: SRC.into(),
            serialized_functions: vec![],
            setup: Some(LibrarySetup {
                function: "context_setup".into(),
                args_blob: pickle::serialize_args(&[Value::Int(1000)]).unwrap(),
            }),
            default_mode: ExecMode::Direct,
            compiled: Some(vine_proto::CompiledBlob {
                source_digest: module.source_digest,
                bytes: module.to_bytes(),
            }),
        };
        let host = spawn_library(WorkerId(0), image, ModuleRegistry::new(), etx);
        assert!(matches!(erx.recv().unwrap().2, LibraryToWorker::Ready));
        let a = invoke(&host, &erx, 1, "bump", &[Value::Int(5)], ExecMode::Direct).unwrap();
        assert_eq!(a, Value::Int(1006));
        let b = invoke(&host, &erx, 2, "bump", &[Value::Int(5)], ExecMode::Direct).unwrap();
        assert_eq!(b, Value::Int(1007), "retained context, VM engine");
        host.tx.send(WorkerToLibrary::Shutdown).unwrap();
    }

    #[test]
    fn corrupt_compiled_image_falls_back_to_source() {
        let (etx, erx) = crossbeam::channel::unbounded();
        let image = LibraryImage {
            instance: LibraryInstanceId(5),
            source: SRC.into(),
            serialized_functions: vec![],
            setup: Some(LibrarySetup {
                function: "context_setup".into(),
                args_blob: pickle::serialize_args(&[Value::Int(1000)]).unwrap(),
            }),
            default_mode: ExecMode::Direct,
            compiled: Some(vine_proto::CompiledBlob {
                source_digest: vine_core::ids::ContentHash::of_str(SRC),
                bytes: vec![0xde, 0xad],
            }),
        };
        let host = spawn_library(WorkerId(0), image, ModuleRegistry::new(), etx);
        assert!(matches!(erx.recv().unwrap().2, LibraryToWorker::Ready));
        let a = invoke(&host, &erx, 1, "bump", &[Value::Int(5)], ExecMode::Direct).unwrap();
        assert_eq!(a, Value::Int(1006));
        host.tx.send(WorkerToLibrary::Shutdown).unwrap();
    }
}
