//! The worker engine: relays manager protocol messages to library daemons
//! and runs stateless tasks, mirroring the paper's worker process.
//!
//! The engine speaks [`vine_proto`] on both sides and is substrate-blind:
//! the in-process transport feeds it from channels, the TCP worker agent
//! feeds it from a framed socket — same loop, same semantics.

use crate::library_host::{spawn_library, LibraryHost};
use crossbeam::channel::{Receiver, Sender};
use std::collections::BTreeMap;
use std::thread::JoinHandle;
use vine_core::context::CodeArtifact;
use vine_core::ids::{LibraryInstanceId, WorkerId};
use vine_core::task::{Outcome, TaskSpec, UnitId, WorkUnit};
use vine_data::CompiledImageStore;
use vine_lang::pickle;
use vine_lang::{Interp, ModuleRegistry};
use vine_proto::{
    CompiledBlob, LibraryToWorker, ManagerToWorker, WorkerToLibrary, WorkerToManager,
};

/// Handle to a spawned in-process worker engine.
pub struct WorkerHandle {
    pub id: WorkerId,
    pub tx: Sender<ManagerToWorker>,
    pub thread: Option<JoinHandle<()>>,
}

/// Spawn a worker engine on its own thread (the in-process backend).
/// Everything the worker tells the manager arrives on `events`, tagged
/// with the worker's id.
pub fn spawn_worker(
    id: WorkerId,
    registry: ModuleRegistry,
    events: Sender<(WorkerId, WorkerToManager)>,
) -> WorkerHandle {
    let (tx, rx) = crossbeam::channel::unbounded::<ManagerToWorker>();
    let thread = std::thread::Builder::new()
        .name(format!("worker-{id}"))
        .spawn(move || worker_engine(id, registry, rx, events))
        .expect("spawn worker thread");
    WorkerHandle {
        id,
        tx,
        thread: Some(thread),
    }
}

/// The worker's command loop: serve [`ManagerToWorker`] messages until
/// `Shutdown` (or the command stream closes), reporting back through
/// `events`. Identical for both transports.
pub fn worker_engine(
    id: WorkerId,
    registry: ModuleRegistry,
    rx: Receiver<ManagerToWorker>,
    events: Sender<(WorkerId, WorkerToManager)>,
) {
    let (lib_tx, lib_rx) =
        crossbeam::channel::unbounded::<(WorkerId, LibraryInstanceId, LibraryToWorker)>();
    let mut libraries: BTreeMap<LibraryInstanceId, LibraryHost> = BTreeMap::new();
    let mut task_threads: Vec<JoinHandle<()>> = Vec::new();
    let mut images = CompiledImageStore::new();

    loop {
        crossbeam::channel::select! {
            recv(rx) -> cmd => {
                let Ok(cmd) = cmd else { break };
                match cmd {
                    ManagerToWorker::Welcome { .. } => {
                        // handshake concern; the transport consumed it
                        // already, a stray copy is harmless
                    }
                    ManagerToWorker::InstallLibrary { mut image, stage: _ } => {
                        // the in-process substrate shares one filesystem,
                        // so staged context files are already local; the
                        // directive matters to remote data planes
                        if let Some(CompiledBlob { source_digest, bytes }) = image.compiled.take() {
                            // intern shipped bytecode by source digest so N
                            // instances of one library hold one copy and a
                            // re-install after eviction is a map hit
                            let interned = images.intern_with(source_digest, || bytes);
                            image.compiled = Some(CompiledBlob {
                                source_digest,
                                bytes: (*interned).clone(),
                            });
                        }
                        let host = spawn_library(id, image, registry.clone(), lib_tx.clone());
                        libraries.insert(host.instance, host);
                    }
                    ManagerToWorker::RemoveLibrary { instance } => {
                        if let Some(mut host) = libraries.remove(&instance) {
                            let _ = host.tx.send(WorkerToLibrary::Shutdown);
                            if let Some(t) = host.thread.take() {
                                let _ = t.join();
                            }
                        }
                    }
                    ManagerToWorker::Invoke { instance, call } => {
                        match libraries.get(&instance) {
                            Some(host) => {
                                // the invocation's option wins; otherwise
                                // the library's default (§3.4 step 4)
                                let mode = call.exec_mode.unwrap_or(host.default_mode);
                                let _ = host.tx.send(WorkerToLibrary::Invoke {
                                    id: call.id,
                                    function: call.function.clone(),
                                    args_blob: call.args_blob.clone(),
                                    sandbox: format!("sandbox/{}", call.id),
                                    mode,
                                });
                            }
                            None => {
                                // eviction race: the instance vanished
                                // between dispatch and arrival — not the
                                // invocation's fault, hand it back
                                let _ = events.send((id, WorkerToManager::Requeue {
                                    unit: WorkUnit::Call(call),
                                }));
                            }
                        }
                    }
                    ManagerToWorker::RunTask { task, stage: _ } => {
                        // each task gets its own thread — stateless tasks on
                        // one worker run concurrently, like separate processes
                        let events = events.clone();
                        let registry = registry.clone();
                        let t = std::thread::Builder::new()
                            .name(format!("task-{}", task.id))
                            .spawn(move || {
                                let outcome = execute_task(&task, registry);
                                let _ = events.send((id, WorkerToManager::UnitDone { outcome }));
                            })
                            .expect("spawn task thread");
                        task_threads.push(t);
                    }
                    ManagerToWorker::Shutdown => break,
                }
            }
            recv(lib_rx) -> msg => {
                let Ok((_, instance, msg)) = msg else { break };
                let reply = match msg {
                    LibraryToWorker::Ready => WorkerToManager::LibraryReady { instance },
                    LibraryToWorker::StartupFailed { error } => {
                        WorkerToManager::LibraryFailed { instance, error }
                    }
                    LibraryToWorker::ResultReady { id: call_id, result } => {
                        WorkerToManager::UnitDone {
                            outcome: match result {
                                Ok(blob) => Outcome::ok(UnitId::Call(call_id), blob),
                                Err(e) => Outcome::failed(UnitId::Call(call_id), e),
                            },
                        }
                    }
                };
                let _ = events.send((id, reply));
            }
        }
    }

    // drain: stop libraries, join task threads
    for (_, mut host) in libraries {
        let _ = host.tx.send(WorkerToLibrary::Shutdown);
        if let Some(t) = host.thread.take() {
            let _ = t.join();
        }
    }
    for t in task_threads {
        let _ = t.join();
    }
}

/// Run a stateless task: fresh interpreter, reconstruct shipped code,
/// execute, serialize the result — the full context reload the paper's
/// L1/L2 levels pay per execution.
pub fn execute_task(task: &TaskSpec, registry: ModuleRegistry) -> Outcome {
    let unit = UnitId::Task(task.id);
    let mut interp = Interp::with_registry(registry);
    for artifact in &task.code {
        let result = match artifact {
            CodeArtifact::Source { text, .. } => interp.exec_source(text),
            CodeArtifact::Serialized { blob, .. } => {
                pickle::deserialize_funcdef(blob).map(|def| interp.bind_function(def))
            }
        };
        if let Err(e) = result {
            return Outcome::failed(unit, format!("reconstructing {}: {e}", artifact.name()));
        }
    }
    let Some(function) = &task.function else {
        // a pure side-effect task: success is having executed the code
        return Outcome::ok(unit, Vec::new());
    };
    let args = match pickle::deserialize_args(&task.args_blob, &interp.globals) {
        Ok(a) => a,
        Err(e) => return Outcome::failed(unit, format!("arguments: {e}")),
    };
    match interp.call_global(function, &args) {
        Ok(value) => match pickle::serialize_value(&value) {
            Ok(blob) => Outcome::ok(unit, blob),
            Err(e) => Outcome::failed(unit, format!("result serialization: {e}")),
        },
        Err(e) => Outcome::failed(unit, e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vine_core::ids::TaskId;
    use vine_lang::Value;

    #[test]
    fn execute_task_reconstructs_and_runs() {
        let mut task = TaskSpec::new(TaskId(1), "t");
        task.code = vec![CodeArtifact::Source {
            name: "f".into(),
            text: "def f(a, b) { return a * b }".into(),
        }];
        task.function = Some("f".into());
        task.args_blob = pickle::serialize_args(&[Value::Int(6), Value::Int(7)]).unwrap();
        let outcome = execute_task(&task, ModuleRegistry::new());
        assert!(outcome.success, "{:?}", outcome.error);
        let g = std::rc::Rc::new(std::cell::RefCell::new(Default::default()));
        assert_eq!(
            pickle::deserialize_value(&outcome.result_blob, &g).unwrap(),
            Value::Int(42)
        );
    }

    #[test]
    fn execute_task_reports_failures() {
        // bad source
        let mut task = TaskSpec::new(TaskId(1), "t");
        task.code = vec![CodeArtifact::Source {
            name: "f".into(),
            text: "def f( {".into(),
        }];
        assert!(!execute_task(&task, ModuleRegistry::new()).success);

        // missing function
        let mut task = TaskSpec::new(TaskId(2), "t");
        task.function = Some("ghost".into());
        task.args_blob = pickle::serialize_args(&[]).unwrap();
        let o = execute_task(&task, ModuleRegistry::new());
        assert!(!o.success);
        assert!(o.error.unwrap().contains("undefined"));

        // runtime error inside the function
        let mut task = TaskSpec::new(TaskId(3), "t");
        task.code = vec![CodeArtifact::Source {
            name: "f".into(),
            text: "def f() { return 1 / 0 }".into(),
        }];
        task.function = Some("f".into());
        task.args_blob = pickle::serialize_args(&[]).unwrap();
        let o = execute_task(&task, ModuleRegistry::new());
        assert!(!o.success);
        assert!(o.error.unwrap().contains("division by zero"));
    }

    #[test]
    fn pure_code_task_succeeds_without_function() {
        let mut task = TaskSpec::new(TaskId(4), "t");
        task.code = vec![CodeArtifact::Source {
            name: "m".into(),
            text: "x = 1 + 1".into(),
        }];
        assert!(execute_task(&task, ModuleRegistry::new()).success);
    }

    #[test]
    fn invoke_for_missing_instance_requeues() {
        let (etx, erx) = crossbeam::channel::unbounded();
        let h = spawn_worker(WorkerId(3), ModuleRegistry::new(), etx);
        let call = vine_core::task::FunctionCall::new(
            vine_core::ids::InvocationId(9),
            "ghostlib",
            "f",
            vec![],
        );
        h.tx.send(ManagerToWorker::Invoke {
            instance: LibraryInstanceId(404),
            call: call.clone(),
        })
        .unwrap();
        let (worker, msg) = erx.recv().unwrap();
        assert_eq!(worker, WorkerId(3));
        assert_eq!(
            msg,
            WorkerToManager::Requeue {
                unit: WorkUnit::Call(call)
            }
        );
        h.tx.send(ManagerToWorker::Shutdown).unwrap();
    }
}
