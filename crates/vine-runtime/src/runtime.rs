//! The live runtime: the same [`vine_manager::Manager`] brain driving real
//! workers through a pluggable [`Transport`] — threads-and-channels in
//! process, or framed TCP to workers in other OS processes.

use crate::transport::{InProcTransport, RecvError, Transport, TransportEvent, TransportStats};
use std::collections::{BTreeMap, BTreeSet};
use std::time::{Duration, Instant};
use vine_core::context::LibrarySpec;
use vine_core::ids::{ContentHash, WorkerId};
use vine_core::resources::Resources;
use vine_core::task::{ExecMode, Outcome, UnitId, WorkUnit};
use vine_core::{Result, VineError};
use vine_data::CompiledImageStore;
use vine_lang::pickle;
use vine_lang::{ModuleRegistry, Value};
use vine_manager::{Decision, Manager};
use vine_proto::{
    CompiledBlob, Frame, LibraryImage, LibrarySetup, ManagerToWorker, WorkerToManager,
};

/// Live cluster configuration.
#[derive(Clone)]
pub struct RuntimeConfig {
    pub workers: usize,
    pub worker_resources: Resources,
    /// Modules available on workers (the activated environment).
    pub registry: ModuleRegistry,
    /// Give up if the cluster makes no progress for this long.
    pub idle_timeout: Duration,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            workers: 2,
            worker_resources: Resources::new(8, 16 * 1024, 16 * 1024),
            registry: ModuleRegistry::new(),
            idle_timeout: Duration::from_secs(30),
        }
    }
}

struct LibraryTemplate {
    source: String,
    serialized_functions: Vec<Vec<u8>>,
    setup_args_blob: Option<Vec<u8>>,
    mode: ExecMode,
    /// Parameter count per exported function, for submit-time validation.
    arities: BTreeMap<String, usize>,
    /// Bytecode compiled from `source` at install time (content-addressed
    /// by source digest), shipped inside every image of this library.
    compiled: Option<CompiledBlob>,
}

/// A live cluster: manager in this struct, workers wherever the transport
/// put them.
pub struct Runtime {
    mgr: Manager,
    transport: Box<dyn Transport>,
    /// Workers currently admitted; guards double-processing of a leave
    /// observed both by an explicit kill and by the transport.
    connected: BTreeSet<WorkerId>,
    templates: BTreeMap<String, LibraryTemplate>,
    in_flight: BTreeMap<UnitId, WorkUnit>,
    outcomes: Vec<Outcome>,
    /// Wall-clock per completed unit (dispatch → result), for the live
    /// Table 2 measurements.
    pub unit_durations: Vec<(UnitId, Duration)>,
    dispatch_times: BTreeMap<UnitId, Instant>,
    idle_timeout: Duration,
    /// Module names the workers' activated environment provides, retained
    /// for install-time pre-flight analysis.
    module_names: BTreeSet<String>,
    /// Capacity of each admitted worker, retained for placement pre-flight.
    worker_caps: Vec<Resources>,
    /// Units re-admitted after a worker loss or an explicit worker-side
    /// requeue — the load-report counter a federated shard exposes.
    requeues: u64,
    /// Compiled library images interned by source digest: installing the
    /// same source N times (or into N workers) compiles once.
    images: CompiledImageStore,
}

impl Runtime {
    /// Boot a cluster of in-process worker threads (the historical — and
    /// still default — substrate).
    pub fn new(cfg: RuntimeConfig) -> Runtime {
        let transport =
            InProcTransport::new(cfg.workers, cfg.worker_resources, cfg.registry.clone());
        Runtime::with_transport(cfg, Box::new(transport))
            .expect("in-process workers join instantly")
    }

    /// Boot a cluster over any transport. Blocks until `cfg.workers`
    /// workers have joined (for TCP: until that many dialed in), failing
    /// with [`VineError::Timeout`] after `cfg.idle_timeout`.
    pub fn with_transport(cfg: RuntimeConfig, transport: Box<dyn Transport>) -> Result<Runtime> {
        let module_names: BTreeSet<String> = cfg.registry.names().map(|n| n.to_string()).collect();
        let mut rt = Runtime {
            mgr: Manager::new(),
            transport,
            connected: BTreeSet::new(),
            templates: BTreeMap::new(),
            in_flight: BTreeMap::new(),
            outcomes: Vec::new(),
            unit_durations: Vec::new(),
            dispatch_times: BTreeMap::new(),
            idle_timeout: cfg.idle_timeout,
            module_names,
            worker_caps: Vec::new(),
            requeues: 0,
            images: CompiledImageStore::new(),
        };
        while rt.connected.len() < cfg.workers {
            let joined = rt.connected.len();
            let ev = rt.transport.recv_timeout(rt.idle_timeout).map_err(|_| {
                VineError::Timeout(format!(
                    "waiting for {} worker(s) to join, {} joined",
                    cfg.workers, joined
                ))
            })?;
            rt.handle(ev)?;
        }
        Ok(rt)
    }

    /// Register a library: the spec (for the scheduler) plus what workers
    /// need to boot it — module source, serialized code objects, and
    /// context-setup arguments (Fig 5's `create_library_from_functions` +
    /// `install_library`).
    ///
    /// Runs the `vine-lint` pre-flight first: a library that would only
    /// fail after its context shipped to workers is rejected here instead
    /// (hard errors return [`VineError::Lint`]; warnings are logged to
    /// stderr and installation proceeds).
    pub fn install_library(
        &mut self,
        spec: LibrarySpec,
        source: &str,
        serialized_functions: Vec<Vec<u8>>,
        setup_args: &[Value],
    ) -> Result<()> {
        // recover names and arities from serialized code objects, so the
        // linter and submit-time validation see them like source defs
        let mut arities: BTreeMap<String, usize> = BTreeMap::new();
        let mut serialized_names = Vec::with_capacity(serialized_functions.len());
        for blob in &serialized_functions {
            let def = pickle::deserialize_funcdef(blob)?;
            serialized_names.push(def.name.clone());
            arities.insert(def.name.clone(), def.params.len());
        }
        let pre = vine_lint::LibraryPreflight {
            available_modules: self.module_names.clone(),
            declared_deps: None,
            workers: self.worker_caps.clone(),
            serialized_functions: serialized_names,
            setup_argc: spec.context.setup.as_ref().map(|_| setup_args.len()),
        };
        let report = vine_lint::lint_library(&spec, source, &pre);
        if report.has_errors() {
            return Err(VineError::Lint(report.render()));
        }
        if !report.is_clean() {
            eprintln!("{}", report.render());
        }
        let mut compiled = None;
        if !source.is_empty() {
            if let Ok(prog) = vine_lang::parse(source) {
                for s in &prog {
                    if let vine_lang::ast::StmtKind::FuncDef(f) = &s.kind {
                        arities.insert(f.name.clone(), f.params.len());
                    }
                }
                // compile-on-install: the image is context computed once on
                // the manager, content-addressed by the source digest
                let digest = ContentHash::of_str(source);
                let bytes = self.images.intern_with(digest, || {
                    vine_lang::compile_module(&prog, source).to_bytes()
                });
                compiled = Some(CompiledBlob {
                    source_digest: digest,
                    bytes: (*bytes).clone(),
                });
            }
        }
        arities.retain(|name, _| spec.hosts_function(name));
        let setup_args_blob = if spec.context.setup.is_some() {
            Some(pickle::serialize_args(setup_args)?)
        } else {
            None
        };
        self.templates.insert(
            spec.name.clone(),
            LibraryTemplate {
                source: source.to_string(),
                serialized_functions,
                setup_args_blob,
                mode: spec.exec_mode,
                arities,
                compiled,
            },
        );
        self.mgr.register_library(spec);
        Ok(())
    }

    /// Install a library by *discovering* its context from a plain module:
    /// the flow analysis ([`vine_flow::discover`]) classifies module-level
    /// statements as invocation-invariant context (hoisted into a
    /// synthesized `context_setup`) or per-instance residue, and this
    /// method wires the result into the spec — setup function, code, and a
    /// boot wrapper that replays the residue after setup when there is any.
    ///
    /// The user writes the module exactly as they would for local
    /// execution; the paper's §6 "seamless discovery" is this call. The
    /// shipped program is the same construction the differential proptest
    /// in `vine-flow` holds to bit-identical execution: setup definition,
    /// every module function, boot, residue in original order.
    pub fn install_library_auto(
        &mut self,
        mut spec: LibrarySpec,
        module_src: &str,
        work_functions: &[&str],
    ) -> Result<vine_flow::FlowDiscovery> {
        let flow = vine_flow::discover(module_src, work_functions)?;
        let ctx = &flow.context;

        let mut source = String::new();
        source.push_str(&ctx.setup_source);
        // ship every module function, not just the transitively needed set
        // in `code_source`: residue statements may call helpers the work
        // functions never touch
        let prog = vine_lang::parse(module_src)?;
        for s in &prog {
            if let vine_lang::ast::StmtKind::FuncDef(f) = &s.kind {
                source.push_str(&vine_lang::inspect::format_funcdef(f));
            }
        }
        let setup_fn = if ctx.residue.is_empty() {
            "context_setup".to_string()
        } else {
            // residue re-runs per library instance, inside a wrapper that
            // publishes whatever the residue writes back to the namespace
            source.push_str("def __auto_boot() {\n");
            if !flow.residue_publishes.is_empty() {
                source.push_str(&format!(
                    "    global {}\n",
                    flow.residue_publishes.join(", ")
                ));
            }
            source.push_str("    context_setup()\n");
            for r in &ctx.residue {
                for line in r.lines() {
                    source.push_str("    ");
                    source.push_str(line);
                    source.push('\n');
                }
            }
            source.push_str("}\n");
            "__auto_boot".to_string()
        };

        if spec.functions.is_empty() {
            spec.functions = work_functions.iter().map(|s| s.to_string()).collect();
        }
        spec.context.setup = Some(vine_core::context::SetupSpec {
            function: setup_fn,
            args_blob: pickle::serialize_args(&[])?,
        });
        self.install_library(spec, &source, vec![], &[])?;
        Ok(flow)
    }

    /// Parameter count of an installed library's exported function, when
    /// known. `None` means the library or function is not installed.
    pub fn function_arity(&self, library: &str, function: &str) -> Option<usize> {
        self.templates.get(library)?.arities.get(function).copied()
    }

    /// Arity map of every installed library, in the shape
    /// [`vine_lint::lint_dag`] consumes: library → function → params.
    pub fn library_arities(&self) -> BTreeMap<String, BTreeMap<String, usize>> {
        self.templates
            .iter()
            .map(|(name, t)| (name.clone(), t.arities.clone()))
            .collect()
    }

    /// Capacity of each worker in the cluster (placement pre-flight input).
    pub fn worker_capacities(&self) -> &[Resources] {
        &self.worker_caps
    }

    pub fn submit(&mut self, unit: WorkUnit) {
        self.mgr.submit(unit);
    }

    /// Kill a worker (fault injection): its thread or connection is torn
    /// down; running units are requeued and rescheduled elsewhere.
    pub fn kill_worker(&mut self, id: WorkerId) {
        self.transport.disconnect(id);
        if self.connected.remove(&id) {
            self.worker_left(id);
        }
    }

    /// A worker is gone (kill, crash, or disconnect): tell the manager and
    /// requeue everything that was in flight there.
    fn worker_left(&mut self, id: WorkerId) {
        let lost = self.mgr.worker_left(id);
        for unit in lost {
            if let Some(w) = self.in_flight.remove(&unit) {
                self.dispatch_times.remove(&unit);
                self.requeues += 1;
                self.mgr.requeue(w);
            }
        }
    }

    /// Drive the cluster until the *next* unit completes, returning its
    /// outcome — `Ok(None)` once everything is done. This is the primitive
    /// a dataflow layer needs: it can submit newly unblocked work between
    /// completions (the paper's Parsl integration receives "an arbitrary
    /// stream of function invocations", §3.6).
    pub fn run_next(&mut self) -> Result<Option<Outcome>> {
        loop {
            self.pump()?;
            if let Some(o) = self.outcomes.pop() {
                return Ok(Some(o));
            }
            if self.mgr.is_idle() {
                return Ok(None);
            }
            self.wait_for_event()?;
        }
    }

    /// Drive scheduling and execution until every submitted unit has a
    /// result. Returns the outcomes accumulated since the last call.
    pub fn run_until_idle(&mut self) -> Result<Vec<Outcome>> {
        loop {
            self.pump()?;
            if self.mgr.is_idle() {
                break;
            }
            self.wait_for_event()?;
        }
        Ok(std::mem::take(&mut self.outcomes))
    }

    /// Block for the next transport event, then drain whatever else is
    /// already queued.
    fn wait_for_event(&mut self) -> Result<()> {
        let ev = self
            .transport
            .recv_timeout(self.idle_timeout)
            .map_err(|e| match e {
                RecvError::Timeout => VineError::Timeout(format!(
                    "no progress for {:?} with {} unit(s) outstanding",
                    self.idle_timeout,
                    self.mgr.pending()
                )),
                RecvError::Closed => {
                    VineError::Internal("transport event stream closed".to_string())
                }
            })?;
        self.handle(ev)?;
        while let Some(ev) = self.transport.try_recv() {
            self.handle(ev)?;
        }
        Ok(())
    }

    /// Emit and realize scheduling decisions until the manager rests.
    fn pump(&mut self) -> Result<()> {
        while let Some(d) = self.mgr.next_decision() {
            match d {
                Decision::InstallLibrary {
                    worker,
                    instance,
                    spec,
                    missing,
                } => {
                    let template = self.templates.get(&spec.name).ok_or_else(|| {
                        VineError::Internal(format!("no template for library {}", spec.name))
                    })?;
                    let image = LibraryImage {
                        instance,
                        source: template.source.clone(),
                        serialized_functions: template.serialized_functions.clone(),
                        setup: spec.context.setup.as_ref().map(|s| LibrarySetup {
                            function: s.function.clone(),
                            args_blob: template
                                .setup_args_blob
                                .clone()
                                .unwrap_or_else(|| s.args_blob.clone()),
                        }),
                        default_mode: template.mode,
                        compiled: template.compiled.clone(),
                    };
                    // the image (source + serialized functions + compiled
                    // bytecode) is the heaviest payload in the system:
                    // encode it once, hand the transport shared bytes
                    let frame = Frame::encode_once(ManagerToWorker::InstallLibrary {
                        image,
                        stage: missing,
                    })
                    .map_err(|e| VineError::Protocol(format!("encoding install: {e}")))?;
                    self.send_frame(worker, &frame)?;
                }
                Decision::EvictLibrary {
                    worker, instance, ..
                } => {
                    self.send(worker, ManagerToWorker::RemoveLibrary { instance })?;
                }
                Decision::DispatchCall {
                    worker,
                    library,
                    call,
                } => {
                    let unit = UnitId::Call(call.id);
                    self.dispatch_times.insert(unit, Instant::now());
                    self.in_flight.insert(unit, WorkUnit::Call(call.clone()));
                    self.send(
                        worker,
                        ManagerToWorker::Invoke {
                            instance: library,
                            call,
                        },
                    )?;
                }
                Decision::DispatchTask {
                    worker,
                    task,
                    missing,
                } => {
                    let unit = UnitId::Task(task.id);
                    self.dispatch_times.insert(unit, Instant::now());
                    self.in_flight.insert(unit, WorkUnit::Task(task.clone()));
                    self.send(
                        worker,
                        ManagerToWorker::RunTask {
                            task,
                            stage: missing,
                        },
                    )?;
                }
                Decision::Fail { unit, error } => {
                    self.outcomes.push(Outcome::failed(unit, error));
                }
            }
        }
        Ok(())
    }

    /// Deliver one message; a worker found dead mid-send flows into the
    /// same leave-and-requeue path as an observed disconnect, and the
    /// decision that targeted it is re-made on the survivors.
    fn send(&mut self, worker: WorkerId, msg: ManagerToWorker) -> Result<()> {
        let sent = self.transport.send(worker, msg);
        self.sent(sent)
    }

    /// [`Runtime::send`] for a pre-encoded frame: same lost-worker
    /// handling, but the transport ships shared bytes instead of
    /// re-serializing the message.
    fn send_frame(&mut self, worker: WorkerId, frame: &Frame) -> Result<()> {
        let sent = self.transport.send_frame(worker, frame);
        self.sent(sent)
    }

    /// Route a send result: a lost worker flows into the leave-and-requeue
    /// path rather than failing the run.
    fn sent(&mut self, result: Result<()>) -> Result<()> {
        match result {
            Ok(()) => Ok(()),
            Err(VineError::WorkerLost(w)) => {
                if self.connected.remove(&w) {
                    self.worker_left(w);
                }
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    fn handle(&mut self, ev: TransportEvent) -> Result<()> {
        match ev {
            TransportEvent::Joined { worker, resources } => {
                if self.connected.insert(worker) {
                    self.mgr.worker_joined(worker, resources);
                    self.worker_caps.push(resources);
                }
            }
            TransportEvent::Left { worker } => {
                if self.connected.remove(&worker) {
                    self.worker_left(worker);
                }
            }
            TransportEvent::Message { worker, msg } => {
                if !self.connected.contains(&worker) {
                    // stragglers from a worker we already gave up on
                    return Ok(());
                }
                match msg {
                    WorkerToManager::LibraryReady { instance } => {
                        self.mgr.library_ready(worker, instance)?;
                    }
                    WorkerToManager::LibraryFailed { instance, error: _ } => {
                        self.mgr.library_startup_failed(worker, instance)?;
                    }
                    WorkerToManager::UnitDone { outcome } => {
                        let unit = outcome.unit;
                        // a result from a worker we already gave up on is
                        // stale: the unit was requeued and will run again
                        if self.in_flight.remove(&unit).is_none() {
                            return Ok(());
                        }
                        if let Some(at) = self.dispatch_times.remove(&unit) {
                            self.unit_durations.push((unit, at.elapsed()));
                        }
                        self.mgr.unit_finished(unit)?;
                        self.outcomes.push(outcome);
                    }
                    WorkerToManager::Requeue { unit } => {
                        let id = match &unit {
                            WorkUnit::Call(c) => UnitId::Call(c.id),
                            WorkUnit::Task(t) => UnitId::Task(t.id),
                        };
                        if self.in_flight.remove(&id).is_some() {
                            self.dispatch_times.remove(&id);
                            self.mgr.unit_finished(id)?;
                            self.requeues += 1;
                            self.mgr.requeue(unit);
                        }
                    }
                    WorkerToManager::Leave => {
                        self.transport.disconnect(worker);
                        if self.connected.remove(&worker) {
                            self.worker_left(worker);
                        }
                    }
                    WorkerToManager::Join { .. } => {
                        // joins are transport-level handshakes; a repeat on
                        // an admitted connection is a protocol violation
                        return Err(VineError::Protocol(format!(
                            "unexpected Join from admitted worker {worker}"
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Hit/miss counters of the manager's compiled-image store: misses are
    /// actual compiles, hits are installs that reused a retained image.
    pub fn compiled_image_stats(&self) -> vine_data::images::ImageStoreStats {
        self.images.stats()
    }

    /// Deployed library instances and their share values (live Fig 11).
    pub fn library_share_values(&self) -> Vec<(WorkerId, u64)> {
        self.mgr.instances().map(|(w, l)| (w, l.served)).collect()
    }

    /// A snapshot of the transport's per-worker traffic counters (byte
    /// counters are zero for backends without a wire).
    pub fn transport_stats(&self) -> TransportStats {
        self.transport.stats()
    }

    /// Units admitted but not yet dispatched (a load-report input).
    pub fn queued(&self) -> usize {
        self.mgr.queued()
    }

    /// Units currently dispatched to workers (a load-report input).
    pub fn running(&self) -> usize {
        self.mgr.running_count()
    }

    /// Units re-admitted after worker loss since boot (a load-report
    /// counter).
    pub fn requeues(&self) -> u64 {
        self.requeues
    }

    /// Shut the cluster down, stopping every worker.
    pub fn shutdown(mut self) {
        self.transport.shutdown();
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.transport.shutdown();
    }
}

/// Decode an outcome's result blob into a value (application-side helper).
pub fn decode_result(outcome: &Outcome) -> Result<Value> {
    if !outcome.success {
        return Err(VineError::ExecutionFailed(
            outcome.error.clone().unwrap_or_default(),
        ));
    }
    let globals = std::rc::Rc::new(std::cell::RefCell::new(BTreeMap::new()));
    pickle::deserialize_value(&outcome.result_blob, &globals)
}
