//! Differential and fault-injection tests for the TCP transport: the same
//! workload over in-process channels and over framed loopback sockets must
//! produce identical results, and a worker whose connection dies mid-run
//! must have its in-flight work requeued onto survivors.

use std::net::TcpStream;
use std::time::Duration;
use vine_core::context::{ContextSpec, LibrarySpec, SetupSpec};
use vine_core::ids::{InvocationId, WorkerId};
use vine_core::resources::Resources;
use vine_core::task::{ExecMode, FunctionCall, Outcome, UnitId, WorkUnit};
use vine_lang::pickle;
use vine_lang::{ModuleRegistry, Value};
use vine_proto::{read_frame, write_frame, ManagerToWorker, WorkerToManager};
use vine_runtime::{decode_result, run_tcp_worker, Runtime, RuntimeConfig, TcpTransport};

const LIB_SOURCE: &str = r#"
def context_setup(base) {
    global model
    model = base * 1000
}
def f(x) {
    return model + x
}
"#;

fn lib_spec() -> LibrarySpec {
    let mut spec = LibrarySpec::new("testlib");
    spec.functions = vec!["f".into()];
    spec.resources = Some(Resources::new(4, 4096, 4096));
    spec.slots = Some(4);
    spec.exec_mode = ExecMode::Direct;
    spec.context = ContextSpec {
        setup: Some(SetupSpec {
            function: "context_setup".into(),
            args_blob: vec![],
        }),
        ..Default::default()
    };
    spec
}

fn call(i: u64, x: i64) -> WorkUnit {
    let mut c = FunctionCall::new(
        InvocationId(i),
        "testlib",
        "f",
        pickle::serialize_args(&[Value::Int(x)]).unwrap(),
    );
    c.resources = Resources::new(1, 512, 512);
    WorkUnit::Call(c)
}

/// Canonical view of a run for differential comparison: sorted
/// (unit, success, decoded value) triples.
fn digest(outcomes: &[Outcome]) -> Vec<(UnitId, bool, Option<Value>)> {
    let mut d: Vec<_> = outcomes
        .iter()
        .map(|o| (o.unit, o.success, decode_result(o).ok()))
        .collect();
    d.sort_by_key(|(u, _, _)| *u);
    d
}

fn run_workload(mut rt: Runtime, n: u64) -> Vec<Outcome> {
    rt.install_library(lib_spec(), LIB_SOURCE, vec![], &[Value::Int(7)])
        .unwrap();
    for i in 0..n {
        rt.submit(call(i, i as i64));
    }
    let outcomes = rt.run_until_idle().unwrap();
    // the retained-context accounting must add up on any transport
    let served: u64 = rt.library_share_values().iter().map(|(_, s)| s).sum();
    assert_eq!(served, n);
    rt.shutdown();
    outcomes
}

/// Boot a TCP runtime with `workers` in-process worker *threads* dialing
/// the loopback listener — same wire protocol as separate processes.
fn tcp_runtime(workers: usize) -> (Runtime, Vec<std::thread::JoinHandle<()>>) {
    let transport = TcpTransport::listen("127.0.0.1:0").unwrap();
    let addr = transport.local_addr();
    let handles = (0..workers)
        .map(|_| {
            std::thread::spawn(move || {
                run_tcp_worker(
                    addr,
                    Resources::new(8, 16 * 1024, 16 * 1024),
                    ModuleRegistry::new(),
                )
                .unwrap();
            })
        })
        .collect();
    let cfg = RuntimeConfig {
        workers,
        idle_timeout: Duration::from_secs(30),
        ..Default::default()
    };
    let rt = Runtime::with_transport(cfg, Box::new(transport)).unwrap();
    (rt, handles)
}

#[test]
fn tcp_and_inproc_runs_are_identical() {
    let inproc = run_workload(
        Runtime::new(RuntimeConfig {
            workers: 2,
            ..Default::default()
        }),
        20,
    );

    let (rt, handles) = tcp_runtime(2);
    let tcp = run_workload(rt, 20);
    for h in handles {
        h.join().unwrap();
    }

    assert_eq!(digest(&inproc), digest(&tcp));
    // and both match ground truth: context_setup(7) ⇒ f(x) = 7000 + x
    for (unit, success, value) in digest(&tcp) {
        assert!(success);
        let UnitId::Call(id) = unit else { panic!() };
        assert_eq!(value, Some(Value::Int(7000 + id.0 as i64)));
    }
}

#[test]
fn killing_a_tcp_worker_mid_run_requeues_onto_survivor() {
    let (mut rt, handles) = tcp_runtime(2);
    rt.install_library(lib_spec(), LIB_SOURCE, vec![], &[Value::Int(3)])
        .unwrap();
    for i in 0..8 {
        rt.submit(call(i, 0));
    }
    // manager-side kill: the socket is severed under the worker
    rt.kill_worker(WorkerId(0));
    let outcomes = rt.run_until_idle().unwrap();
    assert_eq!(outcomes.len(), 8, "all units complete on the survivor");
    for o in &outcomes {
        assert!(o.success, "{:?}", o.error);
        assert_eq!(decode_result(o).unwrap(), Value::Int(3000));
    }
    rt.shutdown();
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn tcp_worker_crash_is_observed_and_in_flight_work_requeued() {
    // one real worker and one impostor that joins, installs the library,
    // then drops dead the moment work arrives — a worker crash as the
    // manager actually sees it: the connection closes with units in flight
    let transport = TcpTransport::listen("127.0.0.1:0").unwrap();
    let addr = transport.local_addr();

    let real = std::thread::spawn(move || {
        run_tcp_worker(
            addr,
            Resources::new(8, 16 * 1024, 16 * 1024),
            ModuleRegistry::new(),
        )
        .unwrap();
    });
    let impostor = std::thread::spawn(move || {
        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = std::io::BufReader::new(stream);
        write_frame(
            &mut writer,
            &WorkerToManager::Join {
                resources: Resources::new(8, 16 * 1024, 16 * 1024),
            },
        )
        .unwrap();
        loop {
            match read_frame::<ManagerToWorker>(&mut reader) {
                Ok(ManagerToWorker::Welcome { .. }) => {}
                Ok(ManagerToWorker::InstallLibrary { image, .. }) => {
                    // play along so the manager starts dispatching here
                    write_frame(
                        &mut writer,
                        &WorkerToManager::LibraryReady {
                            instance: image.instance,
                        },
                    )
                    .unwrap();
                }
                Ok(ManagerToWorker::Invoke { .. }) => {
                    // crash with the invocation in flight
                    return;
                }
                Ok(ManagerToWorker::Shutdown) | Err(_) => return,
                Ok(_) => {}
            }
        }
    });

    let mut rt = Runtime::with_transport(
        RuntimeConfig {
            workers: 2,
            idle_timeout: Duration::from_secs(30),
            ..Default::default()
        },
        Box::new(transport),
    )
    .unwrap();
    rt.install_library(lib_spec(), LIB_SOURCE, vec![], &[Value::Int(5)])
        .unwrap();
    for i in 0..8 {
        rt.submit(call(i, 0));
    }
    let outcomes = rt.run_until_idle().unwrap();
    assert_eq!(outcomes.len(), 8, "every unit completes despite the crash");
    for o in &outcomes {
        assert!(o.success, "{:?}", o.error);
        assert_eq!(decode_result(o).unwrap(), Value::Int(5000));
    }
    rt.shutdown();
    impostor.join().unwrap();
    real.join().unwrap();
}
