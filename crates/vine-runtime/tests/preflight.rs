//! Install-time pre-flight: `install_library` runs `vine-lint` and rejects
//! libraries that could only fail after their context shipped.

use vine_core::context::{LibrarySpec, SetupSpec};
use vine_core::resources::Resources;
use vine_core::VineError;
use vine_lang::pickle;
use vine_lang::Value;
use vine_runtime::{Runtime, RuntimeConfig};

fn small_cluster() -> Runtime {
    Runtime::new(RuntimeConfig {
        workers: 1,
        worker_resources: Resources::new(4, 8 * 1024, 8 * 1024),
        ..RuntimeConfig::default()
    })
}

fn spec(functions: &[&str]) -> LibrarySpec {
    let mut s = LibrarySpec::new("lib");
    s.functions = functions.iter().map(|f| f.to_string()).collect();
    s.slots = Some(1);
    s
}

#[test]
fn install_rejects_exported_function_nothing_defines() {
    let mut rt = small_cluster();
    let err = rt
        .install_library(
            spec(&["ghost"]),
            "def real(x) { return x }",
            Vec::new(),
            &[],
        )
        .unwrap_err();
    match err {
        VineError::Lint(report) => {
            assert!(report.contains("V022"), "{report}");
            assert!(report.contains("ghost"), "{report}");
        }
        other => panic!("expected Lint error, got {other:?}"),
    }
}

#[test]
fn install_rejects_undefined_name_before_any_worker_sees_it() {
    let mut rt = small_cluster();
    let err = rt
        .install_library(
            spec(&["f"]),
            "def f(x) { return x + not_defined_anywhere }",
            Vec::new(),
            &[],
        )
        .unwrap_err();
    assert!(err.to_string().contains("V010"), "{err}");
}

#[test]
fn install_rejects_unprovided_import() {
    // the default RuntimeConfig registry is empty: no module can satisfy it
    let mut rt = small_cluster();
    let err = rt
        .install_library(
            spec(&["f"]),
            "import tensorlib\ndef f(x) { return tensorlib.go(x) }",
            Vec::new(),
            &[],
        )
        .unwrap_err();
    assert!(err.to_string().contains("V020"), "{err}");
}

#[test]
fn install_rejects_unschedulable_resource_request() {
    let mut rt = small_cluster(); // workers are 4-core
    let mut s = spec(&["f"]);
    s.resources = Some(Resources::new(64, 8 * 1024, 8 * 1024));
    let err = rt
        .install_library(s, "def f(x) { return x }", Vec::new(), &[])
        .unwrap_err();
    assert!(err.to_string().contains("V030"), "{err}");
}

#[test]
fn install_rejects_setup_arity_mismatch() {
    let mut rt = small_cluster();
    let mut s = spec(&["f"]);
    s.context.setup = Some(SetupSpec {
        function: "prepare".into(),
        args_blob: Vec::new(),
    });
    let src = "def prepare(a, b) {\n    global t\n    t = a + b\n}\ndef f(x) { return x + t }";
    let err = rt
        .install_library(s, src, Vec::new(), &[Value::Int(1)])
        .unwrap_err();
    assert!(err.to_string().contains("V024"), "{err}");
}

#[test]
fn warnings_do_not_block_install_and_arities_are_recorded() {
    let mut rt = small_cluster();
    // `scratch` is assigned but never read: V011, a warning
    let src = "def f(a, b) {\n    scratch = a\n    return a + b\n}";
    rt.install_library(spec(&["f"]), src, Vec::new(), &[])
        .expect("warnings alone must not reject");
    assert_eq!(rt.function_arity("lib", "f"), Some(2));
    assert_eq!(rt.function_arity("lib", "nope"), None);
    assert_eq!(rt.function_arity("nolib", "f"), None);
    let arities = rt.library_arities();
    assert_eq!(arities["lib"]["f"], 2);
    assert_eq!(rt.worker_capacities().len(), 1);
}

#[test]
fn serialized_functions_satisfy_preflight_and_report_arity() {
    let mut rt = small_cluster();
    let mut origin = vine_lang::Interp::new();
    origin
        .exec_source("def dyn(a, b, c) { return a + b + c }")
        .unwrap();
    let Value::Func(f) = origin.get_global("dyn").unwrap() else {
        panic!("expected function value")
    };
    let blob = pickle::serialize_funcdef(&f.def);
    rt.install_library(spec(&["dyn"]), "", vec![blob], &[])
        .expect("serialized definition satisfies the function check");
    assert_eq!(rt.function_arity("lib", "dyn"), Some(3));
}
