//! End-to-end tests of the live threaded cluster.

use vine_core::context::{ContextSpec, LibrarySpec, SetupSpec};
use vine_core::ids::{InvocationId, TaskId, WorkerId};
use vine_core::resources::Resources;
use vine_core::task::{ExecMode, FunctionCall, TaskSpec, UnitId, WorkUnit};
use vine_lang::pickle;
use vine_lang::Value;
use vine_runtime::{decode_result, Runtime, RuntimeConfig};

const LIB_SOURCE: &str = r#"
def context_setup(base) {
    global model
    model = base * 1000
}
def f(x) {
    return model + x
}
def accumulate(x) {
    global model
    model = model + x
    return model
}
"#;

fn lnni_like_spec(slots: u32, mode: ExecMode) -> LibrarySpec {
    let mut spec = LibrarySpec::new("testlib");
    spec.functions = vec!["f".into(), "accumulate".into()];
    spec.resources = Some(Resources::new(4, 4096, 4096));
    spec.slots = Some(slots);
    spec.exec_mode = mode;
    spec.context = ContextSpec {
        setup: Some(SetupSpec {
            function: "context_setup".into(),
            args_blob: vec![],
        }),
        ..Default::default()
    };
    spec
}

fn call(i: u64, function: &str, x: i64) -> WorkUnit {
    let mut c = FunctionCall::new(
        InvocationId(i),
        "testlib",
        function,
        pickle::serialize_args(&[Value::Int(x)]).unwrap(),
    );
    c.resources = Resources::new(1, 512, 512);
    WorkUnit::Call(c)
}

#[test]
fn invocations_reuse_context_across_workers() {
    let mut rt = Runtime::new(RuntimeConfig {
        workers: 2,
        ..Default::default()
    });
    rt.install_library(
        lnni_like_spec(4, ExecMode::Direct),
        LIB_SOURCE,
        vec![],
        &[Value::Int(7)],
    )
    .unwrap();
    for i in 0..20 {
        rt.submit(call(i, "f", i as i64));
    }
    let outcomes = rt.run_until_idle().unwrap();
    assert_eq!(outcomes.len(), 20);
    for o in &outcomes {
        assert!(o.success, "{:?}", o.error);
        let UnitId::Call(id) = o.unit else { panic!() };
        // context_setup(7) ⇒ model = 7000; f(x) = 7000 + x
        assert_eq!(decode_result(o).unwrap(), Value::Int(7000 + id.0 as i64));
    }
    // context was set up once per deployed library, not per invocation
    let shares = rt.library_share_values();
    let total: u64 = shares.iter().map(|(_, s)| s).sum();
    assert_eq!(total, 20);
    assert!(shares.len() <= 4, "at most a few instances: {shares:?}");
    rt.shutdown();
}

#[test]
fn direct_mode_shares_mutations_fork_mode_isolates() {
    // Direct: accumulate() mutates the retained context; sequential
    // invocations observe each other. The worker is sized so exactly ONE
    // library instance fits (otherwise the manager rightly deploys more
    // instances, each with its own context).
    let mut rt = Runtime::new(RuntimeConfig {
        workers: 1,
        worker_resources: Resources::new(4, 4096, 4096),
        ..Default::default()
    });
    rt.install_library(
        lnni_like_spec(1, ExecMode::Direct),
        LIB_SOURCE,
        vec![],
        &[Value::Int(0)],
    )
    .unwrap();
    for i in 0..3 {
        rt.submit(call(i, "accumulate", 10));
    }
    let outcomes = rt.run_until_idle().unwrap();
    let mut results: Vec<i64> = outcomes
        .iter()
        .map(|o| decode_result(o).unwrap().as_int().unwrap())
        .collect();
    results.sort_unstable();
    assert_eq!(results, vec![10, 20, 30], "mutations accumulate in Direct");
    rt.shutdown();

    // Fork: every invocation sees the pristine context
    let mut rt = Runtime::new(RuntimeConfig {
        workers: 1,
        worker_resources: Resources::new(4, 4096, 4096),
        ..Default::default()
    });
    rt.install_library(
        lnni_like_spec(1, ExecMode::Fork),
        LIB_SOURCE,
        vec![],
        &[Value::Int(0)],
    )
    .unwrap();
    for i in 0..3 {
        rt.submit(call(i, "accumulate", 10));
    }
    let outcomes = rt.run_until_idle().unwrap();
    for o in &outcomes {
        assert_eq!(
            decode_result(o).unwrap(),
            Value::Int(10),
            "forked invocations never see each other's writes"
        );
    }
    rt.shutdown();
}

#[test]
fn tasks_reload_context_every_time() {
    // the L1/L2 path: each task reconstructs code and re-runs setup
    let mut rt = Runtime::new(RuntimeConfig {
        workers: 2,
        ..Default::default()
    });
    for i in 0..6 {
        let mut t = TaskSpec::new(TaskId(i), "wrapped");
        t.code = vec![vine_core::context::CodeArtifact::Source {
            name: "module".into(),
            // setup is re-executed inside every task — the reload the
            // paper's L3 level eliminates
            text: format!("{LIB_SOURCE}\ncontext_setup(1)"),
        }];
        t.function = Some("accumulate".into());
        t.args_blob = pickle::serialize_args(&[Value::Int(5)]).unwrap();
        t.resources = Resources::new(1, 512, 512);
        rt.submit(WorkUnit::Task(t));
    }
    let outcomes = rt.run_until_idle().unwrap();
    assert_eq!(outcomes.len(), 6);
    for o in &outcomes {
        assert!(o.success, "{:?}", o.error);
        // every task starts from model = 1000: no sharing between tasks
        assert_eq!(decode_result(o).unwrap(), Value::Int(1005));
    }
    rt.shutdown();
}

#[test]
fn unknown_library_fails_cleanly() {
    let mut rt = Runtime::new(RuntimeConfig::default());
    rt.submit(call(1, "f", 0)); // "testlib" never installed
    let outcomes = rt.run_until_idle().unwrap();
    assert_eq!(outcomes.len(), 1);
    assert!(!outcomes[0].success);
    assert!(outcomes[0].error.as_ref().unwrap().contains("testlib"));
    rt.shutdown();
}

#[test]
fn failed_invocation_reports_error_and_cluster_continues() {
    let mut rt = Runtime::new(RuntimeConfig {
        workers: 1,
        ..Default::default()
    });
    rt.install_library(
        lnni_like_spec(2, ExecMode::Direct),
        LIB_SOURCE,
        vec![],
        &[Value::Int(1)],
    )
    .unwrap();
    // f("oops") fails inside the function (string + int)
    let mut bad = FunctionCall::new(
        InvocationId(1),
        "testlib",
        "f",
        pickle::serialize_args(&[Value::str("oops")]).unwrap(),
    );
    bad.resources = Resources::new(1, 512, 512);
    rt.submit(WorkUnit::Call(bad));
    rt.submit(call(2, "f", 1));
    let outcomes = rt.run_until_idle().unwrap();
    assert_eq!(outcomes.len(), 2);
    let failed = outcomes.iter().find(|o| !o.success).unwrap();
    assert_eq!(failed.unit, UnitId::Call(InvocationId(1)));
    let ok = outcomes.iter().find(|o| o.success).unwrap();
    assert_eq!(decode_result(ok).unwrap(), Value::Int(1001));
    rt.shutdown();
}

#[test]
fn worker_death_reschedules_in_flight_work() {
    let mut rt = Runtime::new(RuntimeConfig {
        workers: 2,
        ..Default::default()
    });
    rt.install_library(
        lnni_like_spec(2, ExecMode::Direct),
        LIB_SOURCE,
        vec![],
        &[Value::Int(3)],
    )
    .unwrap();
    for i in 0..8 {
        rt.submit(call(i, "f", 0));
    }
    // kill one worker immediately — anything dispatched there is requeued
    rt.kill_worker(WorkerId(0));
    let outcomes = rt.run_until_idle().unwrap();
    assert_eq!(outcomes.len(), 8, "all units complete on the survivor");
    for o in &outcomes {
        assert!(o.success, "{:?}", o.error);
        assert_eq!(decode_result(o).unwrap(), Value::Int(3000));
    }
    rt.shutdown();
}

#[test]
fn lnni_application_runs_live() {
    // the real LNNI functions + nn module, small scale
    let mut rt = Runtime::new(RuntimeConfig {
        workers: 2,
        registry: vine_apps::modules::full_registry(),
        ..Default::default()
    });
    let mut spec = LibrarySpec::new("lnni");
    spec.functions = vec!["infer".into()];
    spec.resources = Some(Resources::new(2, 2048, 2048));
    spec.slots = Some(2);
    spec.context = ContextSpec {
        setup: Some(SetupSpec {
            function: "context_setup".into(),
            args_blob: vec![],
        }),
        ..Default::default()
    };
    rt.install_library(
        spec,
        vine_apps::lnni::LNNI_SOURCE,
        vec![],
        &[Value::Int(3), Value::Int(32)], // 3 layers, dim 32
    )
    .unwrap();
    for i in 0..10u64 {
        let mut c = FunctionCall::new(
            InvocationId(i),
            "lnni",
            "infer",
            pickle::serialize_args(&[Value::Int(i as i64 * 16), Value::Int(16)]).unwrap(),
        );
        c.resources = Resources::new(1, 512, 512);
        rt.submit(WorkUnit::Call(c));
    }
    let outcomes = rt.run_until_idle().unwrap();
    assert_eq!(outcomes.len(), 10);
    for o in &outcomes {
        assert!(o.success, "{:?}", o.error);
        let Value::List(classes) = decode_result(o).unwrap() else {
            panic!("expected class list")
        };
        assert_eq!(classes.borrow().len(), 16, "16 inferences per invocation");
    }
    rt.shutdown();
}
