//! Reactor-transport behavior the threaded backend never had: handshake
//! deadlines that reap half-open connections, per-worker backpressure that
//! isolates a slow worker from the fleet, serialize-once broadcasts, and
//! per-connection traffic metering — all through one epoll thread.

use std::io::{BufReader, Read};
use std::net::TcpStream;
use std::time::{Duration, Instant};
use vine_core::ids::{LibraryInstanceId, WorkerId};
use vine_core::resources::Resources;
use vine_proto::{read_frame, write_frame, Frame, ManagerToWorker, WorkerToManager};
use vine_runtime::{TcpConfig, TcpTransport, Transport, TransportEvent};

/// Dial the manager and complete the Join handshake; returns the write
/// half, a buffered read half, and the assigned worker id.
fn join(addr: std::net::SocketAddr) -> (TcpStream, BufReader<TcpStream>, WorkerId) {
    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    write_frame(
        &mut writer,
        &WorkerToManager::Join {
            resources: Resources::new(4, 1024, 1024),
        },
    )
    .unwrap();
    let ManagerToWorker::Welcome { worker } = read_frame::<ManagerToWorker>(&mut reader).unwrap()
    else {
        panic!("expected Welcome");
    };
    (writer, reader, worker)
}

/// Drain transport events until one matches, failing after `timeout`.
fn wait_for(
    t: &mut TcpTransport,
    timeout: Duration,
    mut pred: impl FnMut(&TransportEvent) -> bool,
) -> TransportEvent {
    let deadline = Instant::now() + timeout;
    loop {
        let left = deadline
            .checked_duration_since(Instant::now())
            .expect("event within deadline");
        let ev = t.recv_timeout(left).expect("event within deadline");
        if pred(&ev) {
            return ev;
        }
    }
}

#[test]
fn unjoined_connections_are_reaped_and_counted() {
    let mut t = TcpTransport::listen_with(
        "127.0.0.1:0",
        TcpConfig {
            handshake_timeout: Duration::from_millis(100),
            ..TcpConfig::default()
        },
    )
    .unwrap();
    let addr = t.local_addr();

    // a connection that never says anything: reaped at the deadline
    let mut mute = TcpStream::connect(addr).unwrap();
    // a connection whose first message is not Join: rejected on arrival
    let mut rude = TcpStream::connect(addr).unwrap();
    write_frame(&mut rude, &WorkerToManager::Leave).unwrap();

    // both sockets must observe a close (read returns 0), well before a
    // reader thread would have blocked forever in the old backend
    for (name, sock) in [("mute", &mut mute), ("rude", &mut rude)] {
        sock.set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut buf = [0u8; 16];
        assert_eq!(sock.read(&mut buf).unwrap(), 0, "{name} socket closed");
    }

    // neither ever became a worker, and both closures were counted
    assert!(t.try_recv().is_none(), "no Joined/Left events for rejects");
    assert_eq!(t.stats().handshake_rejects, 2);

    // the deadline machinery must not break real admissions
    let (_w, _r, worker) = join(addr);
    let ev = wait_for(&mut t, Duration::from_secs(10), |e| {
        matches!(e, TransportEvent::Joined { .. })
    });
    let TransportEvent::Joined { worker: joined, .. } = ev else {
        unreachable!()
    };
    assert_eq!(joined, worker);
    t.shutdown();
}

#[test]
fn slow_worker_backpressure_does_not_stall_the_fleet() {
    let mut t = TcpTransport::listen_with(
        "127.0.0.1:0",
        TcpConfig {
            max_queued_bytes: 64 * 1024,
            send_timeout: Duration::from_millis(300),
            ..TcpConfig::default()
        },
    )
    .unwrap();
    let addr = t.local_addr();

    // the slow worker joins and then never reads again
    let (_slow_w, slow_r, slow) = join(addr);
    // the healthy worker echoes everything it is sent
    let (mut fast_w, mut fast_r, fast) = join(addr);
    for _ in 0..2 {
        wait_for(&mut t, Duration::from_secs(10), |e| {
            matches!(e, TransportEvent::Joined { .. })
        });
    }

    // a frame big enough that a handful exhausts socket buffer + queue
    let big = ManagerToWorker::InstallLibrary {
        image: vine_proto::LibraryImage {
            instance: LibraryInstanceId(1),
            source: "x".repeat(256 * 1024),
            serialized_functions: vec![],
            setup: None,
            default_mode: vine_core::task::ExecMode::Direct,
            compiled: None,
        },
        stage: vec![],
    };

    // hammer the slow worker until its bounded queue declares it lost;
    // the kernel socket buffer absorbs the first few frames, the reactor
    // queue the next one, and then the sender must hit the send deadline
    let mut lost = false;
    for _ in 0..64 {
        if t.send(slow, big.clone()).is_err() {
            lost = true;
            break;
        }
    }
    assert!(lost, "a worker that never drains must be declared lost");

    // the slow worker's demise surfaces like any other crash
    wait_for(
        &mut t,
        Duration::from_secs(10),
        |e| matches!(e, TransportEvent::Left { worker } if *worker == slow),
    );

    // and the fleet never stalled: the sender paid at most one send
    // deadline for the loss, and the healthy worker is still fully usable
    let ping = ManagerToWorker::RemoveLibrary {
        instance: LibraryInstanceId(7),
    };
    t.send(fast, ping.clone()).unwrap();
    assert_eq!(read_frame::<ManagerToWorker>(&mut fast_r).unwrap(), ping);
    write_frame(
        &mut fast_w,
        &WorkerToManager::LibraryReady {
            instance: LibraryInstanceId(7),
        },
    )
    .unwrap();
    wait_for(&mut t, Duration::from_secs(10), |e| {
        matches!(
            e,
            TransportEvent::Message {
                msg: WorkerToManager::LibraryReady { .. },
                ..
            }
        )
    });

    let stats = t.stats();
    let s = stats.workers.iter().find(|w| w.worker == slow).unwrap();
    assert!(!s.alive, "slow worker marked dead in stats");
    assert!(
        s.queue_hwm_bytes as usize >= 256 * 1024,
        "its queue visibly backed up (hwm {})",
        s.queue_hwm_bytes
    );
    drop(slow_r);
    t.shutdown();
}

#[test]
fn a_64_connection_fleet_roundtrips_through_one_reactor() {
    const FLEET: usize = 64;
    let mut t = TcpTransport::listen("127.0.0.1:0").unwrap();
    let addr = t.local_addr();

    // every client: join, echo each RemoveLibrary as LibraryReady, exit
    // on Shutdown
    let clients: Vec<_> = (0..FLEET)
        .map(|_| {
            std::thread::spawn(move || {
                let (mut w, mut r, _) = join(addr);
                loop {
                    match read_frame::<ManagerToWorker>(&mut r) {
                        Ok(ManagerToWorker::RemoveLibrary { instance }) => {
                            write_frame(&mut w, &WorkerToManager::LibraryReady { instance })
                                .unwrap();
                        }
                        Ok(ManagerToWorker::Shutdown) | Err(_) => return,
                        Ok(other) => panic!("unexpected {other:?}"),
                    }
                }
            })
        })
        .collect();

    let mut workers = Vec::new();
    while workers.len() < FLEET {
        if let TransportEvent::Joined { worker, .. } =
            wait_for(&mut t, Duration::from_secs(30), |e| {
                matches!(e, TransportEvent::Joined { .. })
            })
        {
            workers.push(worker);
        }
    }

    // per-worker sends, then a broadcast encoded exactly once
    for &w in &workers {
        t.send(
            w,
            ManagerToWorker::RemoveLibrary {
                instance: LibraryInstanceId(w.0 as u64),
            },
        )
        .unwrap();
    }
    let broadcast = Frame::encode_once(ManagerToWorker::RemoveLibrary {
        instance: LibraryInstanceId(9999),
    })
    .unwrap();
    for &w in &workers {
        t.send_frame(w, &broadcast).unwrap();
    }

    // every client answers both frames
    let mut echoes = 0;
    while echoes < FLEET * 2 {
        if let TransportEvent::Message {
            msg: WorkerToManager::LibraryReady { .. },
            ..
        } = wait_for(&mut t, Duration::from_secs(30), |e| {
            matches!(e, TransportEvent::Message { .. })
        }) {
            echoes += 1;
        }
    }

    t.shutdown();
    for c in clients {
        c.join().unwrap();
    }

    // metering: Welcome + per-worker send + broadcast + Shutdown out,
    // the two echoes in (Join is handshake, not a metered message)
    let stats = t.stats();
    assert_eq!(stats.workers.len(), FLEET);
    assert_eq!(stats.handshake_rejects, 0);
    for w in &stats.workers {
        assert_eq!(w.frames_in, 2, "worker {} echoes", w.worker);
        assert_eq!(w.frames_out, 4, "worker {} deliveries", w.worker);
        assert!(w.bytes_in > 0 && w.bytes_out > 0);
    }
}
