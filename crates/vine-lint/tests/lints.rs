//! One trigger test and one clean-variant test per lint code.

use std::collections::{BTreeMap, BTreeSet};
use vine_core::{ContentHash, ExecMode, FileId, FileRef, LibrarySpec, Resources, SetupSpec};
use vine_lint::{
    lint_dag, lint_library, lint_source, lint_source_with_env, DagNode, LibraryPreflight, Report,
    Severity,
};

fn codes(report: &Report) -> Vec<&'static str> {
    report.diagnostics.iter().map(|d| d.code).collect()
}

fn modules(names: &[&str]) -> BTreeSet<String> {
    names.iter().map(|s| s.to_string()).collect()
}

// --- V001: syntax-error ---

#[test]
fn v001_triggers_on_malformed_source_with_position() {
    let report = lint_source("bad.vine", "def f( {\n");
    assert!(report.has("V001"), "{}", report.render());
    assert!(report.has_errors());
    let d = &report.diagnostics[0];
    assert!(d.span.is_some(), "V001 should carry a reconstructed span");
    assert!(report.render().contains("bad.vine:"), "{}", report.render());
}

#[test]
fn v001_clean_on_wellformed_source() {
    let report = lint_source("ok.vine", "def f(x) { return x + 1 }\n");
    assert!(!report.has("V001"), "{}", report.render());
}

// --- V010: undefined-name ---

#[test]
fn v010_triggers_on_undefined_name() {
    let report = lint_source("t.vine", "def f() { return missing }\n");
    assert!(report.has("V010"), "{}", report.render());
    assert!(report.has_errors());
}

#[test]
fn v010_clean_when_name_is_param_local_global_or_published() {
    // parameter, local, module def, builtin, and a name published by a
    // setup function via `global` (the paper's Fig 4 pattern)
    let src = "\
def context_setup() {\n    global model\n    model = 7\n}\n\
def infer(x) {\n    y = x + 1\n    return len([model, y, infer])\n}\n";
    let report = lint_source("t.vine", src);
    assert!(!report.has("V010"), "{}", report.render());
}

#[test]
fn v010_downgrades_to_warning_under_eval() {
    let src = "def f() {\n    eval(\"maybe = 1\")\n    return maybe\n}\n";
    let report = lint_source("t.vine", src);
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == "V010")
        .expect("V010 still reported");
    assert_eq!(d.severity, Severity::Warning, "{}", report.render());
    assert!(!report.has_errors());
}

// --- V011: unused-binding ---

#[test]
fn v011_triggers_on_write_only_local() {
    let report = lint_source("t.vine", "def f() {\n    scratch = 1\n    return 2\n}\n");
    assert!(report.has("V011"), "{}", report.render());
    assert!(!report.has_errors(), "V011 is a warning");
}

#[test]
fn v011_clean_when_local_is_read_global_or_underscored() {
    let src = "\
def f() {\n    used = 1\n    _ignored = 2\n    global pub\n    pub = 3\n    return used\n}\n";
    let report = lint_source("t.vine", src);
    assert!(!report.has("V011"), "{}", report.render());
}

// --- V012: shadowed-global ---

#[test]
fn v012_triggers_on_param_and_local_shadowing_module_binding() {
    let src = "table = [1, 2]\ndef f(table) { return table }\ndef g() {\n    table = 9\n    return table\n}\n";
    let report = lint_source("t.vine", src);
    let n = codes(&report).iter().filter(|c| **c == "V012").count();
    assert_eq!(n, 2, "param shadow and assign shadow: {}", report.render());
}

#[test]
fn v012_clean_with_global_declaration_or_distinct_names() {
    let src = "table = [1, 2]\ndef f(row) { return row }\ndef g() {\n    global table\n    table = 9\n    return table\n}\n";
    let report = lint_source("t.vine", src);
    assert!(!report.has("V012"), "{}", report.render());
}

// --- V013: dynamic code at module scope ---

#[test]
fn v013_triggers_on_module_level_eval() {
    let report = lint_source("t.vine", "eval(\"x = 1\")\n");
    assert!(report.has("V013"), "{}", report.render());
}

#[test]
fn v013_clean_when_eval_is_inside_a_function() {
    let report = lint_source("t.vine", "def f(s) { return eval(s) }\n");
    assert!(!report.has("V013"), "{}", report.render());
}

// --- V014: hoist-defeated ---

#[test]
fn v014_triggers_when_function_mutates_module_binding() {
    let src =
        "served = 0\ndef f() {\n    global served\n    served = served + 1\n    return served\n}\n";
    let report = lint_source("t.vine", src);
    assert!(report.has("V014"), "{}", report.render());
    assert!(!report.has_errors(), "V014 is a warning");
}

#[test]
fn v014_clean_when_globals_are_only_read() {
    let src = "table = [1, 2]\ndef f(i) { return table[i] }\n";
    let report = lint_source("t.vine", src);
    assert!(!report.has("V014"), "{}", report.render());
}

// --- V015: fork-unserializable-capture ---

fn fork_spec(name: &str) -> LibrarySpec {
    let mut spec = LibrarySpec::new(name);
    spec.functions = vec!["work".into()];
    spec.exec_mode = ExecMode::Fork;
    spec
}

#[test]
fn v015_triggers_on_published_import_under_fork() {
    let src = "\
def context_setup() {\n    global nn\n    import nn\n}\n\
def work(x) { return nn.forward(x, x) }\n";
    let mut spec = fork_spec("forky");
    spec.context.setup = Some(SetupSpec {
        function: "context_setup".into(),
        args_blob: Vec::new(),
    });
    let pre = LibraryPreflight {
        available_modules: modules(&["nn"]),
        setup_argc: Some(0),
        ..LibraryPreflight::default()
    };
    let report = lint_library(&spec, src, &pre);
    assert!(report.has("V015"), "{}", report.render());
    assert!(
        !report.has_errors(),
        "V015 is a warning: {}",
        report.render()
    );
}

#[test]
fn v015_clean_under_direct_mode_or_module_scope_import() {
    let src = "\
def context_setup() {\n    global nn\n    import nn\n}\n\
def work(x) { return nn.forward(x, x) }\n";
    let mut direct = fork_spec("directy");
    direct.exec_mode = ExecMode::Direct;
    direct.context.setup = Some(SetupSpec {
        function: "context_setup".into(),
        args_blob: Vec::new(),
    });
    let pre = LibraryPreflight {
        available_modules: modules(&["nn"]),
        setup_argc: Some(0),
        ..LibraryPreflight::default()
    };
    assert!(!lint_library(&direct, src, &pre).has("V015"));

    // fork mode, but the import is at module scope: fine
    let src2 = "import nn\ndef work(x) { return nn.forward(x, x) }\n";
    assert!(!lint_library(&fork_spec("forky2"), src2, &pre).has("V015"));
}

// --- V016: duplicate-definition ---

#[test]
fn v016_triggers_on_redefined_function() {
    let src = "def f(x) { return x }\ndef f(x) { return x + 1 }\n";
    let report = lint_source("t.vine", src);
    assert!(report.has("V016"), "{}", report.render());
}

#[test]
fn v016_clean_on_distinct_names() {
    let src = "def f(x) { return x }\ndef g(x) { return x + 1 }\n";
    let report = lint_source("t.vine", src);
    assert!(!report.has("V016"), "{}", report.render());
}

// --- V020: missing-import ---

#[test]
fn v020_triggers_on_unprovided_module() {
    let report = lint_source_with_env(
        "t.vine",
        "import tensorlib\n",
        &modules(&["nn", "chem"]),
        None,
    );
    assert!(report.has("V020"), "{}", report.render());
    assert!(report.has_errors());
}

#[test]
fn v020_clean_when_registry_provides_the_module() {
    let report = lint_source_with_env("t.vine", "import nn\n", &modules(&["nn", "chem"]), None);
    assert!(!report.has("V020"), "{}", report.render());
}

// --- V021: unused-dependency ---

#[test]
fn v021_triggers_on_declared_but_unimported_dep() {
    let declared = modules(&["nn", "chem"]);
    let report = lint_source_with_env(
        "t.vine",
        "import nn\ndef f(x) { return nn.forward(x, x) }\n",
        &modules(&["nn", "chem"]),
        Some(&declared),
    );
    assert!(report.has("V021"), "{}", report.render());
    assert!(!report.has_errors(), "V021 is a warning");
}

#[test]
fn v021_clean_when_every_declared_dep_is_imported() {
    let declared = modules(&["nn"]);
    let report = lint_source_with_env(
        "t.vine",
        "import nn\ndef f(x) { return nn.forward(x, x) }\n",
        &modules(&["nn"]),
        Some(&declared),
    );
    assert!(!report.has("V021"), "{}", report.render());
}

// --- V022: missing-function ---

#[test]
fn v022_triggers_when_exported_function_is_not_shipped() {
    let mut spec = LibrarySpec::new("lib");
    spec.functions = vec!["ghost".into()];
    let report = lint_library(
        &spec,
        "def real(x) { return x }\n",
        &LibraryPreflight::default(),
    );
    assert!(report.has("V022"), "{}", report.render());
}

#[test]
fn v022_clean_for_source_and_serialized_definitions() {
    let mut spec = LibrarySpec::new("lib");
    spec.functions = vec!["real".into(), "dynamic_fn".into()];
    let pre = LibraryPreflight {
        serialized_functions: vec!["dynamic_fn".into()],
        ..LibraryPreflight::default()
    };
    let report = lint_library(&spec, "def real(x) { return x }\n", &pre);
    assert!(!report.has("V022"), "{}", report.render());
}

// --- V023: missing-setup ---

#[test]
fn v023_triggers_when_setup_function_is_not_shipped() {
    let mut spec = LibrarySpec::new("lib");
    spec.functions = vec!["f".into()];
    spec.context.setup = Some(SetupSpec {
        function: "prepare".into(),
        args_blob: Vec::new(),
    });
    let report = lint_library(
        &spec,
        "def f(x) { return x }\n",
        &LibraryPreflight::default(),
    );
    assert!(report.has("V023"), "{}", report.render());
}

#[test]
fn v023_clean_when_setup_ships_with_the_code() {
    let mut spec = LibrarySpec::new("lib");
    spec.functions = vec!["f".into()];
    spec.context.setup = Some(SetupSpec {
        function: "prepare".into(),
        args_blob: Vec::new(),
    });
    let src = "def prepare() {\n    global t\n    t = 1\n}\ndef f(x) { return x + t }\n";
    let report = lint_library(&spec, src, &LibraryPreflight::default());
    assert!(!report.has("V023"), "{}", report.render());
}

// --- V024: setup-arity ---

#[test]
fn v024_triggers_on_setup_argument_count_mismatch() {
    let mut spec = LibrarySpec::new("lib");
    spec.functions = vec!["f".into()];
    spec.context.setup = Some(SetupSpec {
        function: "prepare".into(),
        args_blob: Vec::new(),
    });
    let src = "def prepare(a, b) {\n    global t\n    t = a + b\n}\ndef f(x) { return x + t }\n";
    let pre = LibraryPreflight {
        setup_argc: Some(1),
        ..LibraryPreflight::default()
    };
    let report = lint_library(&spec, src, &pre);
    assert!(report.has("V024"), "{}", report.render());
}

#[test]
fn v024_clean_when_arity_matches_or_is_unknown() {
    let mut spec = LibrarySpec::new("lib");
    spec.functions = vec!["f".into()];
    spec.context.setup = Some(SetupSpec {
        function: "prepare".into(),
        args_blob: Vec::new(),
    });
    let src = "def prepare(a, b) {\n    global t\n    t = a + b\n}\ndef f(x) { return x + t }\n";
    let pre = LibraryPreflight {
        setup_argc: Some(2),
        ..LibraryPreflight::default()
    };
    assert!(!lint_library(&spec, src, &pre).has("V024"));
    // argc unknown (CLI case): no finding
    assert!(!lint_library(&spec, src, &LibraryPreflight::default()).has("V024"));
}

// --- V030: unschedulable-resources ---

#[test]
fn v030_triggers_when_no_worker_fits_the_request() {
    let mut spec = LibrarySpec::new("lib");
    spec.functions = vec!["f".into()];
    spec.resources = Some(Resources::new(64, 128 * 1024, 64 * 1024));
    let pre = LibraryPreflight {
        workers: vec![Resources::paper_worker(); 4],
        ..LibraryPreflight::default()
    };
    let report = lint_library(&spec, "def f(x) { return x }\n", &pre);
    assert!(report.has("V030"), "{}", report.render());
}

#[test]
fn v030_clean_when_some_worker_fits() {
    let mut spec = LibrarySpec::new("lib");
    spec.functions = vec!["f".into()];
    spec.resources = Some(Resources::lnni_invocation());
    let pre = LibraryPreflight {
        workers: vec![Resources::paper_worker()],
        ..LibraryPreflight::default()
    };
    let report = lint_library(&spec, "def f(x) { return x }\n", &pre);
    assert!(!report.has("V030"), "{}", report.render());
}

// --- V031: zero-slots ---

#[test]
fn v031_triggers_on_explicit_zero_slots() {
    let mut spec = LibrarySpec::new("lib");
    spec.functions = vec!["f".into()];
    spec.slots = Some(0);
    let report = lint_library(
        &spec,
        "def f(x) { return x }\n",
        &LibraryPreflight::default(),
    );
    assert!(report.has("V031"), "{}", report.render());
}

#[test]
fn v031_clean_on_positive_or_derived_slots() {
    let mut spec = LibrarySpec::new("lib");
    spec.functions = vec!["f".into()];
    spec.slots = Some(4);
    assert!(!lint_library(
        &spec,
        "def f(x) { return x }\n",
        &LibraryPreflight::default()
    )
    .has("V031"));
    spec.slots = None;
    assert!(!lint_library(
        &spec,
        "def f(x) { return x }\n",
        &LibraryPreflight::default()
    )
    .has("V031"));
}

// --- V032: context-exceeds-cache ---

fn big_file(gb: u64) -> FileRef {
    FileRef::new(
        FileId(1),
        "dataset.bin",
        ContentHash::of_str("dataset"),
        gb * 1024 * 1024 * 1024,
    )
}

#[test]
fn v032_triggers_when_context_outgrows_every_disk() {
    let mut spec = LibrarySpec::new("lib");
    spec.functions = vec!["f".into()];
    spec.context.data = vec![big_file(100)]; // 100 GB vs 64 GB disks
    let pre = LibraryPreflight {
        workers: vec![Resources::paper_worker(); 2],
        ..LibraryPreflight::default()
    };
    let report = lint_library(&spec, "def f(x) { return x }\n", &pre);
    assert!(report.has("V032"), "{}", report.render());
}

#[test]
fn v032_clean_when_context_fits_on_some_disk() {
    let mut spec = LibrarySpec::new("lib");
    spec.functions = vec!["f".into()];
    spec.context.data = vec![big_file(10)]; // 10 GB fits a 64 GB disk
    let pre = LibraryPreflight {
        workers: vec![Resources::paper_worker()],
        ..LibraryPreflight::default()
    };
    let report = lint_library(&spec, "def f(x) { return x }\n", &pre);
    assert!(!report.has("V032"), "{}", report.render());
}

// --- DAG lints ---

fn one_lib_arities() -> BTreeMap<String, BTreeMap<String, usize>> {
    let mut fns = BTreeMap::new();
    fns.insert("f".to_string(), 2usize);
    let mut libs = BTreeMap::new();
    libs.insert("lib".to_string(), fns);
    libs
}

fn node(id: u64, argc: usize, deps: &[u64]) -> DagNode {
    DagNode {
        id,
        library: "lib".into(),
        function: "f".into(),
        argc,
        deps: deps.to_vec(),
        args: Vec::new(),
    }
}

// --- V033: dag-cycle ---

#[test]
fn v033_triggers_on_dependency_cycle() {
    let nodes = vec![node(1, 2, &[2]), node(2, 2, &[1])];
    let diags = lint_dag(&nodes, &one_lib_arities());
    assert!(diags.iter().any(|d| d.code == "V033"), "{diags:?}");
}

#[test]
fn v033_clean_on_acyclic_graph() {
    let nodes = vec![node(1, 2, &[]), node(2, 2, &[1]), node(3, 2, &[1, 2])];
    let diags = lint_dag(&nodes, &one_lib_arities());
    assert!(!diags.iter().any(|d| d.code == "V033"), "{diags:?}");
    assert!(diags.is_empty(), "{diags:?}");
}

// --- V034: arity-mismatch ---

#[test]
fn v034_triggers_on_wrong_argument_count() {
    let nodes = vec![node(1, 3, &[])];
    let diags = lint_dag(&nodes, &one_lib_arities());
    assert!(diags.iter().any(|d| d.code == "V034"), "{diags:?}");
}

#[test]
fn v034_clean_on_matching_argument_count() {
    let nodes = vec![node(1, 2, &[])];
    let diags = lint_dag(&nodes, &one_lib_arities());
    assert!(!diags.iter().any(|d| d.code == "V034"), "{diags:?}");
}

// --- V035: unknown-target ---

#[test]
fn v035_triggers_on_unknown_library_function_and_dep() {
    let mut ghost_lib = node(1, 2, &[]);
    ghost_lib.library = "nolib".into();
    let mut ghost_fn = node(2, 2, &[]);
    ghost_fn.function = "nofn".into();
    let ghost_dep = node(3, 2, &[99]);
    let diags = lint_dag(&[ghost_lib, ghost_fn, ghost_dep], &one_lib_arities());
    let n = diags.iter().filter(|d| d.code == "V035").count();
    assert_eq!(n, 3, "{diags:?}");
}

#[test]
fn v035_clean_when_every_target_resolves() {
    let nodes = vec![node(1, 2, &[]), node(2, 2, &[1])];
    let diags = lint_dag(&nodes, &one_lib_arities());
    assert!(!diags.iter().any(|d| d.code == "V035"), "{diags:?}");
}

// --- V036: invariant-argument ---

#[test]
fn v036_triggers_on_identical_literal_across_many_invocations() {
    // 8 invocations, argument 1 always the same int literal; argument 0 varies
    let nodes: Vec<DagNode> = (0..8)
        .map(|i| {
            let mut n = node(i, 2, &[]);
            n.args = vec![Some(format!("int:{i}")), Some("str:config".into())];
            n
        })
        .collect();
    let diags = lint_dag(&nodes, &one_lib_arities());
    let v036: Vec<_> = diags.iter().filter(|d| d.code == "V036").collect();
    assert_eq!(v036.len(), 1, "{diags:?}");
    assert!(v036[0].message.contains("argument 1"), "{diags:?}");
}

#[test]
fn v036_silent_below_threshold_or_with_varying_args() {
    // 7 identical invocations: below threshold
    let few: Vec<DagNode> = (0..7)
        .map(|i| {
            let mut n = node(i, 2, &[]);
            n.args = vec![Some("int:1".into()), Some("str:config".into())];
            n
        })
        .collect();
    assert!(!lint_dag(&few, &one_lib_arities())
        .iter()
        .any(|d| d.code == "V036"));

    // 8 invocations but one position is a result-reference somewhere
    let mixed: Vec<DagNode> = (0..8)
        .map(|i| {
            let mut n = node(i + 1, 2, &[]);
            n.args = vec![Some("int:1".into()), None];
            if i == 0 {
                n.args[0] = None;
            }
            n
        })
        .collect();
    assert!(!lint_dag(&mixed, &one_lib_arities())
        .iter()
        .any(|d| d.code == "V036"));
}

// --- real application sources stay clean ---

#[test]
fn shipped_application_sources_lint_clean_of_errors() {
    for (name, src) in [
        ("lnni", vine_apps::lnni::LNNI_SOURCE),
        ("examol", vine_apps::examol::EXAMOL_SOURCE),
    ] {
        let available: BTreeSet<String> = vine_apps::modules::full_registry()
            .names()
            .map(|s| s.to_string())
            .collect();
        let report = lint_source_with_env(name, src, &available, None);
        assert!(
            !report.has_errors(),
            "{name} should have no lint errors:\n{}",
            report.render()
        );
    }
}
