//! Language-layer lints over a parsed vinescript [`Program`].
//!
//! These are the checks the paper's discover mechanism (§3.2) implies but
//! never enforces: a work function that reads a name nothing defines will
//! only fail on a worker, after the context shipped; a module-level
//! statement that calls `eval` silently disables autocontext hoisting; a
//! function that mutates a module-level global quietly demotes that
//! binding to per-instance residue. Each of those becomes a diagnostic
//! here, before anything is packaged.
//!
//! Scope model: vinescript resolves free names in a function against the
//! module's global namespace at *call* time, so a name is "defined" if it
//! is a builtin, a parameter or local of the enclosing scope, a
//! module-level binding, or — crucially for the paper's Fig 4 pattern — a
//! name *published* by any function through a `global` declaration
//! (`context_setup` publishing `model` is how LNNI's `infer` finds it).

use crate::diag::Diagnostic;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;
use vine_lang::ast::{
    walk_exprs_in, walk_stmts, Expr, FuncDef, Program, Span, Stmt, StmtKind, Target,
};
use vine_lang::builtins::is_builtin;

/// What the module-level pass learned about a program; shared by several
/// lints and by the environment layer.
pub(crate) struct ModuleModel {
    /// Names bound at module level (defs, imports, plain assignments).
    pub module_defs: BTreeMap<String, Span>,
    /// Names any function declares `global` — published into the namespace
    /// for later invocations (or read from it).
    pub published: BTreeSet<String>,
    /// `eval`/`exec` appears somewhere: name resolution is undecidable, so
    /// undefined-name findings downgrade to warnings.
    pub uses_dynamic: bool,
    /// Named top-level functions, in order.
    pub functions: Vec<Rc<FuncDef>>,
}

pub(crate) fn build_model(prog: &Program) -> ModuleModel {
    let mut module_defs = BTreeMap::new();
    let mut published = BTreeSet::new();
    let mut functions = Vec::new();
    for s in prog {
        match &s.kind {
            StmtKind::Import(n) => {
                module_defs.entry(n.clone()).or_insert(s.span);
            }
            StmtKind::FuncDef(f) => {
                module_defs.entry(f.name.clone()).or_insert(f.span);
                functions.push(Rc::clone(f));
            }
            StmtKind::Assign(Target::Var(n), _) => {
                module_defs.entry(n.clone()).or_insert(s.span);
            }
            StmtKind::For(v, _, _) => {
                module_defs.entry(v.clone()).or_insert(s.span);
            }
            _ => {}
        }
    }
    let mut uses_dynamic = false;
    walk_stmts(prog, &mut |s| {
        each_own_expr(s, &mut |e| {
            walk_exprs_in(e, &mut |x| {
                if let Expr::Call(f, _) = x {
                    if matches!(&**f, Expr::Var(n) if n == "eval" || n == "exec") {
                        uses_dynamic = true;
                    }
                }
            });
        });
        if let StmtKind::Global(names) = &s.kind {
            published.extend(names.iter().cloned());
        }
    });
    ModuleModel {
        module_defs,
        published,
        uses_dynamic,
        functions,
    }
}

/// Visit the expressions that belong to this statement itself (conditions,
/// right-hand sides, index targets) — not those of nested statements.
fn each_own_expr<'a>(s: &'a Stmt, f: &mut dyn FnMut(&'a Expr)) {
    match &s.kind {
        StmtKind::Assign(t, e) => {
            if let Target::Index(obj, idx) = t {
                f(obj);
                f(idx);
            }
            f(e);
        }
        StmtKind::If(arms, _) => {
            for (c, _) in arms {
                f(c);
            }
        }
        StmtKind::While(c, _) => f(c),
        StmtKind::For(_, iter, _) => f(iter),
        StmtKind::Return(Some(e)) | StmtKind::Expr(e) => f(e),
        _ => {}
    }
}

/// Names this statement binds in its enclosing scope (descending nested
/// blocks, not nested function bodies).
fn stmt_scope_binds(s: &Stmt, out: &mut BTreeSet<String>) {
    match &s.kind {
        StmtKind::Assign(Target::Var(n), _) => {
            out.insert(n.clone());
        }
        StmtKind::Global(names) => out.extend(names.iter().cloned()),
        StmtKind::Import(n) => {
            out.insert(n.clone());
        }
        StmtKind::FuncDef(f) if !f.is_lambda() => {
            out.insert(f.name.clone());
        }
        StmtKind::For(v, _, body) => {
            out.insert(v.clone());
            for s in body {
                stmt_scope_binds(s, out);
            }
        }
        StmtKind::If(arms, els) => {
            for (_, body) in arms {
                for s in body {
                    stmt_scope_binds(s, out);
                }
            }
            if let Some(body) = els {
                for s in body {
                    stmt_scope_binds(s, out);
                }
            }
        }
        StmtKind::While(_, body) => {
            for s in body {
                stmt_scope_binds(s, out);
            }
        }
        _ => {}
    }
}

/// Report every variable read in this statement and its nested blocks (not
/// nested function bodies), attributed to the innermost statement's span.
fn stmt_reads_spanned(s: &Stmt, f: &mut dyn FnMut(&str, Span)) {
    let span = s.span;
    each_own_expr(s, &mut |e| {
        walk_exprs_in(e, &mut |x| {
            if let Expr::Var(n) = x {
                f(n, span);
            }
        });
    });
    match &s.kind {
        StmtKind::If(arms, els) => {
            for (_, body) in arms {
                for s in body {
                    stmt_reads_spanned(s, f);
                }
            }
            if let Some(body) = els {
                for s in body {
                    stmt_reads_spanned(s, f);
                }
            }
        }
        StmtKind::While(_, body) | StmtKind::For(_, _, body) => {
            for s in body {
                stmt_reads_spanned(s, f);
            }
        }
        _ => {}
    }
}

/// Functions defined directly within this body: nested `def` statements and
/// lambdas in expression position (each is its own scope to check).
fn directly_nested_functions(body: &[Stmt], out: &mut Vec<Rc<FuncDef>>) {
    for s in body {
        match &s.kind {
            StmtKind::FuncDef(fd) => out.push(Rc::clone(fd)),
            StmtKind::If(arms, els) => {
                for (_, b) in arms {
                    directly_nested_functions(b, out);
                }
                if let Some(b) = els {
                    directly_nested_functions(b, out);
                }
            }
            StmtKind::While(_, b) | StmtKind::For(_, _, b) => directly_nested_functions(b, out),
            _ => {}
        }
        each_own_expr(s, &mut |e| {
            walk_exprs_in(e, &mut |x| {
                if let Expr::Lambda(fd) = x {
                    out.push(Rc::clone(fd));
                }
            });
        });
    }
}

/// Every name read anywhere under `body`, including nested function and
/// lambda bodies (used for the unused-binding lint: a nested function may
/// observe an outer binding through the global namespace at run time).
fn deep_reads(body: &[Stmt]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    walk_stmts(body, &mut |s| {
        each_own_expr(s, &mut |e| {
            walk_exprs_in(e, &mut |x| {
                if let Expr::Var(n) = x {
                    out.insert(n.clone());
                }
            });
        });
    });
    out
}

/// `global`-declared names that `def` actually writes (by assignment or by
/// index-assignment into the named container).
fn global_writes(def: &FuncDef) -> BTreeSet<String> {
    let mut declared = BTreeSet::new();
    walk_stmts(&def.body, &mut |s| {
        if let StmtKind::Global(names) = &s.kind {
            declared.extend(names.iter().cloned());
        }
    });
    let mut written = BTreeSet::new();
    walk_stmts(&def.body, &mut |s| match &s.kind {
        StmtKind::Assign(Target::Var(n), _) if declared.contains(n) => {
            written.insert(n.clone());
        }
        StmtKind::Assign(Target::Index(Expr::Var(n), _), _) if declared.contains(n) => {
            written.insert(n.clone());
        }
        _ => {}
    });
    written
}

/// All language-layer lints for one parsed program.
pub fn lint_language(prog: &Program) -> Vec<Diagnostic> {
    let model = build_model(prog);
    let mut diags = Vec::new();
    undefined_names(prog, &model, &mut diags); // V010
    unused_bindings(&model, &mut diags); // V011
    shadowed_globals(&model, &mut diags); // V012
    dynamic_module_scope(prog, &mut diags); // V013
    hoist_defeated(prog, &model, &mut diags); // V014
    duplicate_definitions(prog, &mut diags); // V016
    diags
}

// --- V010: undefined-name ---

fn undefined_names(prog: &Program, model: &ModuleModel, diags: &mut Vec<Diagnostic>) {
    // module scope first: every top-level binding is visible regardless of
    // order (functions run after the whole module loads)
    let empty = BTreeSet::new();
    check_scope(prog, &[], &empty, model, diags);
}

fn check_scope(
    body: &[Stmt],
    params: &[String],
    enclosing: &BTreeSet<String>,
    model: &ModuleModel,
    diags: &mut Vec<Diagnostic>,
) {
    let mut bound: BTreeSet<String> = enclosing.clone();
    bound.extend(params.iter().cloned());
    for s in body {
        stmt_scope_binds(s, &mut bound);
    }
    let mut reported: BTreeSet<String> = BTreeSet::new();
    for s in body {
        stmt_reads_spanned(s, &mut |n, span| {
            if bound.contains(n)
                || is_builtin(n)
                || model.module_defs.contains_key(n)
                || model.published.contains(n)
                || !reported.insert(n.to_string())
            {
                return;
            }
            let d = if model.uses_dynamic {
                Diagnostic::warning(
                    "V010",
                    "undefined-name",
                    format!("name `{n}` is not defined"),
                )
                .with_help(
                    "this program uses eval/exec, which may define names dynamically; \
                     downgraded from an error",
                )
            } else {
                Diagnostic::error(
                    "V010",
                    "undefined-name",
                    format!("name `{n}` is not defined"),
                )
                .with_help(
                    "define it, pass it as a parameter, or publish it from a \
                     context setup function via `global`",
                )
            };
            diags.push(d.with_span(span));
        });
    }
    let mut nested = Vec::new();
    directly_nested_functions(body, &mut nested);
    for fd in nested {
        check_scope(&fd.body, &fd.params, &bound, model, diags);
    }
}

// --- V011: unused-binding ---

fn unused_bindings(model: &ModuleModel, diags: &mut Vec<Diagnostic>) {
    for f in &model.functions {
        let mut declared_global = BTreeSet::new();
        walk_stmts(&f.body, &mut |s| {
            if let StmtKind::Global(names) = &s.kind {
                declared_global.extend(names.iter().cloned());
            }
        });
        let mut first_assign: BTreeMap<String, Span> = BTreeMap::new();
        collect_assigns(&f.body, &mut first_assign);
        let read = deep_reads(&f.body);
        for (n, span) in &first_assign {
            if read.contains(n) || declared_global.contains(n) || n.starts_with('_') {
                continue;
            }
            diags.push(
                Diagnostic::warning(
                    "V011",
                    "unused-binding",
                    format!(
                        "local `{n}` in function `{}` is assigned but never read",
                        f.name
                    ),
                )
                .with_span(*span)
                .with_help("remove the assignment, or prefix the name with `_` if intentional"),
            );
        }
    }
}

/// First assignment span per plain variable target, nested blocks included,
/// nested function bodies excluded (they are their own scopes).
fn collect_assigns(body: &[Stmt], out: &mut BTreeMap<String, Span>) {
    for s in body {
        match &s.kind {
            StmtKind::Assign(Target::Var(n), _) => {
                out.entry(n.clone()).or_insert(s.span);
            }
            StmtKind::If(arms, els) => {
                for (_, b) in arms {
                    collect_assigns(b, out);
                }
                if let Some(b) = els {
                    collect_assigns(b, out);
                }
            }
            StmtKind::While(_, b) | StmtKind::For(_, _, b) => collect_assigns(b, out),
            _ => {}
        }
    }
}

// --- V012: shadowed-global ---

fn shadowed_globals(model: &ModuleModel, diags: &mut Vec<Diagnostic>) {
    for f in &model.functions {
        let globally_visible = |n: &String| {
            (model.module_defs.contains_key(n) && *n != f.name) || model.published.contains(n)
        };
        for p in f.params.iter().filter(|p| globally_visible(p)) {
            diags.push(
                Diagnostic::warning(
                    "V012",
                    "shadowed-global",
                    format!(
                        "parameter `{p}` of function `{}` shadows a module-level binding",
                        f.name
                    ),
                )
                .with_span(f.span)
                .with_help("rename the parameter; inside this function the global is unreachable"),
            );
        }
        let mut declared_global = BTreeSet::new();
        walk_stmts(&f.body, &mut |s| {
            if let StmtKind::Global(names) = &s.kind {
                declared_global.extend(names.iter().cloned());
            }
        });
        let mut assigns = BTreeMap::new();
        collect_assigns(&f.body, &mut assigns);
        for (n, span) in &assigns {
            if globally_visible(n) && !declared_global.contains(n) && !f.params.contains(n) {
                diags.push(
                    Diagnostic::warning(
                        "V012",
                        "shadowed-global",
                        format!(
                            "assignment to `{n}` in function `{}` creates a local that \
                             shadows the module-level binding",
                            f.name
                        ),
                    )
                    .with_span(*span)
                    .with_help("declare `global` first if you meant to write the module binding"),
                );
            }
        }
    }
}

// --- V013: dynamic code at module scope ---

fn dynamic_module_scope(prog: &Program, diags: &mut Vec<Diagnostic>) {
    for s in prog {
        if matches!(&s.kind, StmtKind::FuncDef(_)) {
            continue;
        }
        let mut hit = false;
        each_own_expr(s, &mut |e| {
            walk_exprs_in(e, &mut |x| {
                if let Expr::Call(f, _) = x {
                    if matches!(&**f, Expr::Var(n) if n == "eval" || n == "exec") {
                        hit = true;
                    }
                }
            });
        });
        if hit {
            diags.push(
                Diagnostic::warning(
                    "V013",
                    "dynamic-module-scope",
                    "eval/exec at module scope cannot be statically analyzed",
                )
                .with_span(s.span)
                .with_help(
                    "autocontext cannot classify this statement as hoistable context; \
                     functions it defines must ship serialized, not as source",
                ),
            );
        }
    }
}

// --- V014: hoist-defeated ---

fn hoist_defeated(prog: &Program, model: &ModuleModel, diags: &mut Vec<Diagnostic>) {
    let mut writers: BTreeMap<String, String> = BTreeMap::new();
    for f in &model.functions {
        for n in global_writes(f) {
            writers.entry(n).or_insert_with(|| f.name.clone());
        }
    }
    for s in prog {
        if let StmtKind::Assign(Target::Var(n), _) = &s.kind {
            if let Some(writer) = writers.get(n) {
                diags.push(
                    Diagnostic::warning(
                        "V014",
                        "hoist-defeated",
                        format!(
                            "module-level binding `{n}` is mutated by function `{writer}` \
                             via `global`; its definition cannot be hoisted into reusable \
                             context"
                        ),
                    )
                    .with_span(s.span)
                    .with_help(
                        "this statement re-runs per library instance as residue; keep \
                         mutable per-invocation state out of context setup",
                    ),
                );
            }
        }
    }
}

// --- V015: fork-mode unserializable capture (invoked per-spec) ---

/// Lints that only apply when the hosting library executes invocations in
/// fork mode: whatever context setup publishes must be serializable into
/// the forked snapshot, and module handles are not.
pub fn lint_fork_mode(prog: &Program) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let model = build_model(prog);
    for f in &model.functions {
        let mut declared_global = BTreeSet::new();
        let mut imported: BTreeMap<String, Span> = BTreeMap::new();
        walk_stmts(&f.body, &mut |s| match &s.kind {
            StmtKind::Global(names) => declared_global.extend(names.iter().cloned()),
            StmtKind::Import(n) => {
                imported.entry(n.clone()).or_insert(s.span);
            }
            _ => {}
        });
        for (n, span) in &imported {
            if declared_global.contains(n) {
                diags.push(
                    Diagnostic::warning(
                        "V015",
                        "fork-unserializable-capture",
                        format!(
                            "function `{}` publishes imported module `{n}` via `global` \
                             under fork execution",
                            f.name
                        ),
                    )
                    .with_span(*span)
                    .with_help(
                        "module handles cannot be serialized into forked invocation \
                         snapshots; import at module scope instead so each interpreter \
                         re-imports",
                    ),
                );
            }
        }
    }
    diags
}

// --- V016: duplicate-definition ---

fn duplicate_definitions(prog: &Program, diags: &mut Vec<Diagnostic>) {
    let mut seen: BTreeMap<&str, &str> = BTreeMap::new(); // name -> kind
    for s in prog {
        let (name, kind, span) = match &s.kind {
            StmtKind::FuncDef(f) => (f.name.as_str(), "function", f.span),
            StmtKind::Import(n) => (n.as_str(), "import", s.span),
            _ => continue,
        };
        if let Some(prev) = seen.insert(name, kind) {
            diags.push(
                Diagnostic::warning(
                    "V016",
                    "duplicate-definition",
                    format!(
                        "`{name}` is defined more than once at module level \
                         (earlier {prev} is silently replaced)"
                    ),
                )
                .with_span(span)
                .with_help("rename one of the definitions; only the last one survives"),
            );
        }
    }
}
