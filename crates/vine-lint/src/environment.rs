//! Environment-layer lints: imports vs. the module/package world, and
//! library specs vs. the code they claim to package.
//!
//! The paper's element 2 ("the code's dependencies", §2.2.1) is resolved at
//! package time; these checks run before that, so a worker never unpacks a
//! 3.1 GB environment only to fail on the first `import`.

use crate::diag::Diagnostic;
use std::collections::{BTreeMap, BTreeSet};
use vine_core::LibrarySpec;
use vine_lang::ast::{walk_stmts, Program, Span, StmtKind};

/// V020 + V021: imports that nothing provides, and declared dependencies
/// that nothing imports.
///
/// `available` is the union of module names something can provide (native
/// registry entries, source modules, package-catalog `provides_module`
/// names). `declared` — when the caller knows the spec's dependency list —
/// enables the unused-dependency check; pass `None` to skip it (e.g. the
/// CLI, which has no spec in hand).
pub fn lint_environment(
    prog: &Program,
    available: &BTreeSet<String>,
    declared: Option<&BTreeSet<String>>,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut imported: BTreeMap<String, Span> = BTreeMap::new();
    walk_stmts(prog, &mut |s| {
        if let StmtKind::Import(n) = &s.kind {
            imported.entry(n.clone()).or_insert(s.span);
        }
    });
    for (n, span) in &imported {
        if !available.contains(n) {
            diags.push(
                Diagnostic::error(
                    "V020",
                    "missing-import",
                    format!("imported module `{n}` is not provided by any registry or package"),
                )
                .with_span(*span)
                .with_help(
                    "register the module, add a package that provides it, or drop the import",
                ),
            );
        }
    }
    if let Some(declared) = declared {
        for dep in declared {
            if !imported.contains_key(dep) {
                diags.push(
                    Diagnostic::warning(
                        "V021",
                        "unused-dependency",
                        format!("declared dependency `{dep}` is never imported"),
                    )
                    .with_help(
                        "every declared package is packed, shipped, and unpacked on each \
                         worker; remove it to shrink the context",
                    ),
                );
            }
        }
    }
    diags
}

/// What the caller knows about the code backing a [`LibrarySpec`], gathered
/// from whatever mix of source text and serialized blobs the library ships.
#[derive(Clone, Debug, Default)]
pub struct SpecFacts {
    /// Every function name the library's code defines: top-level `def`s
    /// parsed from source plus names recovered from serialized artifacts.
    pub defined_functions: BTreeSet<String>,
    /// Parameter counts for functions whose definitions were parseable.
    pub arities: BTreeMap<String, usize>,
    /// How many setup arguments the installer will pass, when known (the
    /// runtime knows; the CLI analyzing bare source does not).
    pub setup_argc: Option<usize>,
}

/// V022 + V023 + V024: the spec's function list and setup hook must both
/// resolve against the code the library actually ships.
pub fn lint_spec(spec: &LibrarySpec, facts: &SpecFacts) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for f in &spec.functions {
        if !facts.defined_functions.contains(f) {
            diags.push(
                Diagnostic::error(
                    "V022",
                    "missing-function",
                    format!(
                        "library `{}` exports function `{f}`, but no shipped code defines it",
                        spec.name
                    ),
                )
                .with_help("define it in the library source or include its serialized form"),
            );
        }
    }
    if let Some(setup) = &spec.context.setup {
        if !facts.defined_functions.contains(&setup.function) {
            diags.push(
                Diagnostic::error(
                    "V023",
                    "missing-setup",
                    format!(
                        "library `{}` names `{}` as its context setup, but no shipped code \
                         defines it",
                        spec.name, setup.function
                    ),
                )
                .with_help("the setup function must ship with the context code artifacts"),
            );
        } else if let (Some(argc), Some(params)) =
            (facts.setup_argc, facts.arities.get(&setup.function))
        {
            if argc != *params {
                diags.push(
                    Diagnostic::error(
                        "V024",
                        "setup-arity",
                        format!(
                            "context setup `{}` takes {params} parameter(s) but {argc} \
                             argument(s) are supplied",
                            setup.function
                        ),
                    )
                    .with_help(
                        "setup runs once per library instance on the worker; an arity \
                         mismatch there poisons every slot",
                    ),
                );
            }
        }
    }
    diags
}
