//! # vine-lint
//!
//! Pre-flight static analysis for function-centric workflow programs.
//!
//! The paper's pipeline — discover a function's context, package it,
//! distribute it, retain it on workers (§2.2) — front-loads a lot of
//! expensive machinery before the first invocation runs. A defect that a
//! compiler would catch in milliseconds (an undefined name, a missing
//! import, an arity mismatch) instead surfaces minutes later on a worker,
//! after environments were packed, broadcast, and unpacked. `vine-lint`
//! moves those failures to submission time.
//!
//! Three analysis layers, one [`Report`] per target:
//!
//! * **language** ([`language`]) — checks a parsed vinescript [`Program`]:
//!   undefined names, unused bindings, shadowed globals, dynamic code in
//!   hoistable positions, global writes that defeat autocontext hoisting,
//!   captures that will not survive fork-mode serialization.
//! * **environment** ([`environment`]) — checks imports against what the
//!   module registry and package catalog can actually provide, declared
//!   dependencies against what the code imports, and a [`LibrarySpec`]'s
//!   exported function list against the code it ships.
//! * **placement** ([`placement`], [`dag`]) — checks a spec against worker
//!   capacities (unschedulable resource requests, zero slots, contexts
//!   bigger than any cache) and an invocation graph for cycles, arity
//!   mismatches, and unknown targets.
//!
//! Entry points: [`lint_source`] for bare programs (the `repro lint` CLI),
//! [`lint_library`] for the runtime's `install_library` pre-flight, and
//! [`dag::lint_dag`] for submit-time app validation.

pub mod dag;
pub mod diag;
pub mod environment;
pub mod flow;
pub mod language;
pub mod placement;

pub use dag::{lint_dag, DagNode};
pub use diag::{Diagnostic, Report, Severity};
pub use environment::{lint_environment, lint_spec, SpecFacts};
pub use flow::{lint_flow, lint_fork_setup};
pub use language::{lint_fork_mode, lint_language};
pub use placement::lint_placement;

use std::collections::{BTreeMap, BTreeSet};
use vine_core::{ExecMode, LibrarySpec, Resources};
use vine_lang::ast::{Program, Span, StmtKind};

/// Reconstruct a span from a lexer/parser error message of the form
/// `... line L, column C ...`, so even V001 findings point at the source.
fn span_from_error(msg: &str, src: &str) -> Option<Span> {
    let rest = &msg[msg.find("line ")? + 5..];
    let line: u32 = rest[..rest.find(',')?].trim().parse().ok()?;
    let rest = &rest[rest.find("column ")? + 7..];
    let col_end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    let col: usize = rest[..col_end].parse().ok()?;
    let mut offset = 0usize;
    for (i, l) in src.split('\n').enumerate() {
        if i as u32 + 1 == line {
            let start = offset + col.saturating_sub(1).min(l.len());
            return Some(Span::new(start, start + 1));
        }
        offset += l.len() + 1;
    }
    None
}

/// Parse and run every language-layer lint over one source file.
pub fn lint_source(origin: &str, src: &str) -> Report {
    let mut report = Report::with_source(origin, src);
    match vine_lang::parse(src) {
        Ok(prog) => {
            report.extend(lint_language(&prog));
            report.extend(lint_flow(&prog));
        }
        Err(e) => {
            let msg = e.to_string();
            let mut d = Diagnostic::error("V001", "syntax-error", &msg);
            if let Some(span) = span_from_error(&msg, src) {
                d = d.with_span(span);
            }
            report.push(d);
        }
    }
    report.sort();
    report
}

/// [`lint_source`] plus the environment layer: imports checked against
/// `available` modules, and (when `declared` is supplied) declared
/// dependencies checked against actual imports.
pub fn lint_source_with_env(
    origin: &str,
    src: &str,
    available: &BTreeSet<String>,
    declared: Option<&BTreeSet<String>>,
) -> Report {
    let mut report = Report::with_source(origin, src);
    match vine_lang::parse(src) {
        Ok(prog) => {
            report.extend(lint_language(&prog));
            report.extend(lint_flow(&prog));
            report.extend(lint_environment(&prog, available, declared));
        }
        Err(e) => {
            let msg = e.to_string();
            let mut d = Diagnostic::error("V001", "syntax-error", &msg);
            if let Some(span) = span_from_error(&msg, src) {
                d = d.with_span(span);
            }
            report.push(d);
        }
    }
    report.sort();
    report
}

/// Everything the runtime knows at `install_library` time that the linter
/// needs: the module world, the fleet, and the non-source code artifacts.
#[derive(Clone, Debug, Default)]
pub struct LibraryPreflight {
    /// Module names the registry or package catalog can provide.
    pub available_modules: BTreeSet<String>,
    /// Package names the spec's environment declares, when known; enables
    /// the unused-dependency check.
    pub declared_deps: Option<BTreeSet<String>>,
    /// Capacity of each worker in the fleet.
    pub workers: Vec<Resources>,
    /// Names of functions shipped in serialized (non-source) form.
    pub serialized_functions: Vec<String>,
    /// Number of setup arguments the installer passes, when known.
    pub setup_argc: Option<usize>,
}

/// The full install-time pre-flight: all three layers over one library.
/// Errors should reject the install; warnings should be logged.
pub fn lint_library(spec: &LibrarySpec, source: &str, pre: &LibraryPreflight) -> Report {
    let origin = format!("library `{}`", spec.name);
    let mut report = if source.is_empty() {
        Report::new(origin)
    } else {
        Report::with_source(origin, source)
    };

    let mut facts = SpecFacts {
        setup_argc: pre.setup_argc,
        ..SpecFacts::default()
    };
    facts
        .defined_functions
        .extend(pre.serialized_functions.iter().cloned());
    for code in &spec.context.code {
        facts.defined_functions.insert(code.name().to_string());
    }

    let mut parsed: Option<Program> = None;
    if !source.is_empty() {
        match vine_lang::parse(source) {
            Ok(prog) => {
                for s in &prog {
                    if let StmtKind::FuncDef(f) = &s.kind {
                        facts.defined_functions.insert(f.name.clone());
                        facts.arities.insert(f.name.clone(), f.params.len());
                    }
                }
                parsed = Some(prog);
            }
            Err(e) => {
                let msg = e.to_string();
                let mut d = Diagnostic::error("V001", "syntax-error", &msg);
                if let Some(span) = span_from_error(&msg, source) {
                    d = d.with_span(span);
                }
                report.push(d);
            }
        }
    }

    if let Some(prog) = &parsed {
        report.extend(lint_language(prog));
        report.extend(lint_flow(prog));
        if spec.exec_mode == ExecMode::Fork {
            report.extend(lint_fork_mode(prog));
            if let Some(setup) = &spec.context.setup {
                report.extend(lint_fork_setup(prog, &setup.function));
            }
        }
        report.extend(lint_environment(
            prog,
            &pre.available_modules,
            pre.declared_deps.as_ref(),
        ));
    }
    report.extend(lint_spec(spec, &facts));
    report.extend(lint_placement(spec, &pre.workers));
    report.sort();
    report
}

/// Arity map for [`lint_dag`] from per-library function arities.
pub fn arity_map(
    libraries: impl IntoIterator<Item = (String, BTreeMap<String, usize>)>,
) -> BTreeMap<String, BTreeMap<String, usize>> {
    libraries.into_iter().collect()
}
