//! DAG-layer lints: will this invocation graph ever finish?
//!
//! A dependency cycle deadlocks the whole app (every node waits on the
//! others forever), and an arity mismatch or unknown target fails only
//! when the invocation finally reaches a worker — after its entire
//! upstream subgraph ran for nothing. Both are statically decidable at
//! submit time.

use crate::diag::Diagnostic;
use std::collections::{BTreeMap, BTreeSet};

/// One invocation node, decoupled from any particular app builder so the
/// linter can check graphs from `vine-dag`, tests, or tools alike.
#[derive(Clone, Debug)]
pub struct DagNode {
    pub id: u64,
    pub library: String,
    pub function: String,
    /// Total argument count (values and result-references together).
    pub argc: usize,
    /// Ids of nodes whose results feed this one.
    pub deps: Vec<u64>,
    /// Per-position fingerprint of each literal argument (`None` for a
    /// result-reference or when the builder does not track values). Feeds
    /// the V036 invariant-argument lint; leave empty to opt out.
    pub args: Vec<Option<String>>,
}

/// Minimum number of same-target invocations before V036 considers an
/// identical literal argument a pattern rather than a coincidence.
const INVARIANT_ARG_THRESHOLD: usize = 8;

/// V033 + V034 + V035 + V036 for one invocation graph. `arities` maps
/// library → function → parameter count for everything installed on the
/// runtime.
pub fn lint_dag(
    nodes: &[DagNode],
    arities: &BTreeMap<String, BTreeMap<String, usize>>,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let ids: BTreeSet<u64> = nodes.iter().map(|n| n.id).collect();

    for n in nodes {
        match arities.get(&n.library) {
            None => {
                diags.push(
                    Diagnostic::error(
                        "V035",
                        "unknown-target",
                        format!(
                            "node {} invokes library `{}`, which is not installed",
                            n.id, n.library
                        ),
                    )
                    .with_help("install the library before building the app"),
                );
            }
            Some(funcs) => match funcs.get(&n.function) {
                None => {
                    diags.push(
                        Diagnostic::error(
                            "V035",
                            "unknown-target",
                            format!(
                                "node {} invokes `{}.{}`, but the library does not export \
                                 that function",
                                n.id, n.library, n.function
                            ),
                        )
                        .with_help("check the spec's function list"),
                    );
                }
                Some(params) => {
                    if n.argc != *params {
                        diags.push(
                            Diagnostic::error(
                                "V034",
                                "arity-mismatch",
                                format!(
                                    "node {} calls `{}.{}` with {} argument(s); it takes {}",
                                    n.id, n.library, n.function, n.argc, params
                                ),
                            )
                            .with_help(
                                "this invocation would fail on the worker after all its \
                                 dependencies ran",
                            ),
                        );
                    }
                }
            },
        }
        for d in &n.deps {
            if !ids.contains(d) {
                diags.push(
                    Diagnostic::error(
                        "V035",
                        "unknown-target",
                        format!("node {} depends on node {d}, which does not exist", n.id),
                    )
                    .with_help("result references must name nodes in the same app"),
                );
            }
        }
    }

    // Kahn's algorithm; whatever survives sits on a cycle.
    let mut indegree: BTreeMap<u64, usize> = ids.iter().map(|&id| (id, 0)).collect();
    let mut dependents: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for n in nodes {
        for d in &n.deps {
            if ids.contains(d) {
                *indegree.get_mut(&n.id).unwrap() += 1;
                dependents.entry(*d).or_default().push(n.id);
            }
        }
    }
    let mut ready: Vec<u64> = indegree
        .iter()
        .filter(|(_, &deg)| deg == 0)
        .map(|(&id, _)| id)
        .collect();
    let mut done = 0usize;
    while let Some(id) = ready.pop() {
        done += 1;
        for &dep in dependents.get(&id).into_iter().flatten() {
            let deg = indegree.get_mut(&dep).unwrap();
            *deg -= 1;
            if *deg == 0 {
                ready.push(dep);
            }
        }
    }
    if done < ids.len() {
        let stuck: Vec<u64> = indegree
            .into_iter()
            .filter(|(_, deg)| *deg > 0)
            .map(|(id, _)| id)
            .collect();
        diags.push(
            Diagnostic::error(
                "V033",
                "dag-cycle",
                format!("invocation graph has a dependency cycle through node(s) {stuck:?}"),
            )
            .with_help("no node on the cycle can ever become ready; the app would hang"),
        );
    }
    invariant_arguments(nodes, &mut diags);
    diags
}

// --- V036: invariant-argument ---

/// An argument position that carries the *same literal value* into every
/// one of many invocations of the same function is shared input data
/// masquerading as a per-call argument: the paper's context discovery
/// (§3.2) would hoist it once into the library context instead of
/// serializing it into every task.
fn invariant_arguments(nodes: &[DagNode], diags: &mut Vec<Diagnostic>) {
    let mut by_target: BTreeMap<(&str, &str), Vec<&DagNode>> = BTreeMap::new();
    for n in nodes {
        by_target
            .entry((n.library.as_str(), n.function.as_str()))
            .or_default()
            .push(n);
    }
    for ((lib, func), group) in by_target {
        if group.len() < INVARIANT_ARG_THRESHOLD {
            continue;
        }
        let positions = group.iter().map(|n| n.args.len()).min().unwrap_or(0);
        for p in 0..positions {
            let Some(Some(first)) = group[0].args.get(p) else {
                continue;
            };
            if group
                .iter()
                .all(|n| n.args.get(p).is_some_and(|a| a.as_deref() == Some(first)))
            {
                diags.push(
                    Diagnostic::warning(
                        "V036",
                        "invariant-argument",
                        format!(
                            "argument {p} of `{lib}.{func}` is the same literal across \
                             all {} invocations",
                            group.len()
                        ),
                    )
                    .with_help(
                        "an invocation-invariant value serializes into every task; move \
                         it into the library context (a module-level binding the setup \
                         publishes) and drop the parameter",
                    ),
                );
            }
        }
    }
}
