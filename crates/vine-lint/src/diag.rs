//! The diagnostics framework: codes, severities, and rustc-style rendering.
//!
//! A [`Diagnostic`] is one finding (code + severity + message, optionally
//! anchored to a [`Span`] in the analyzed source); a [`Report`] is every
//! finding for one analysis target, carrying the source text so rendering
//! can excerpt the offending line under a caret the way rustc does.

use std::fmt;
use vine_lang::Span;

/// How bad a finding is. `Error` findings reject a library at install
/// pre-flight; `Warning` findings are logged and execution proceeds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warning,
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One static-analysis finding.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    /// Stable code, e.g. `"V010"`. The catalog lives in DESIGN.md.
    pub code: &'static str,
    /// Short slug naming the lint, e.g. `"undefined-name"`.
    pub name: &'static str,
    pub severity: Severity,
    pub message: String,
    /// Where in the analyzed source the finding anchors (None for findings
    /// about specs or DAGs, which have no source text).
    pub span: Option<Span>,
    pub help: Option<String>,
}

impl Diagnostic {
    pub fn error(code: &'static str, name: &'static str, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            name,
            severity: Severity::Error,
            message: message.into(),
            span: None,
            help: None,
        }
    }

    pub fn warning(
        code: &'static str,
        name: &'static str,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::error(code, name, message)
        }
    }

    pub fn with_span(mut self, span: Span) -> Diagnostic {
        self.span = Some(span);
        self
    }

    pub fn with_help(mut self, help: impl Into<String>) -> Diagnostic {
        self.help = Some(help.into());
        self
    }

    /// Render this finding in rustc's layout:
    ///
    /// ```text
    /// error[V010]: name `foo` is not defined
    ///  --> lnni.vine:7:5
    ///   |
    /// 7 |     push(classes, foo)
    ///   |     ^^^^^^^^^^^^^^^^^^
    ///   = help: define it or publish it from a context setup via `global`
    /// ```
    pub fn render(&self, origin: &str, src: Option<&str>) -> String {
        let mut out = format!("{}[{}]: {}\n", self.severity, self.code, self.message);
        match (self.span, src) {
            (Some(span), Some(src)) if !span.is_dummy() || span.end > span.start => {
                let (line, col) = span.line_col(src);
                out.push_str(&format!(" --> {origin}:{line}:{col}\n"));
                let line_text = src.lines().nth(line as usize - 1).unwrap_or("");
                let gutter = line.to_string();
                let pad = " ".repeat(gutter.len());
                out.push_str(&format!("{pad} |\n"));
                out.push_str(&format!("{gutter} | {line_text}\n"));
                // carets under the span, clamped to the excerpted line; a
                // span continuing past the newline gets an explicit `...`
                // instead of silently under-marking
                let start = (col as usize - 1).min(line_text.len());
                let span_len = (span.end - span.start) as usize;
                let on_line = line_text.len() - start;
                let crosses_newline = span_len > on_line;
                let width = span_len.min(on_line).max(1);
                out.push_str(&format!(
                    "{pad} | {}{}{}\n",
                    " ".repeat(start),
                    "^".repeat(width),
                    if crosses_newline { "..." } else { "" }
                ));
                if let Some(help) = &self.help {
                    out.push_str(&format!("{pad} = help: {help}\n"));
                }
            }
            _ => {
                out.push_str(&format!(" --> {origin}\n"));
                if let Some(help) = &self.help {
                    out.push_str(&format!(" = help: {help}\n"));
                }
            }
        }
        out
    }
}

/// Every finding for one analysis target (a source file, a library spec, a
/// DAG), with the context needed to render them.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// What was analyzed — a filename, a library name, "app dag".
    pub origin: String,
    /// The analyzed source text, when there is one.
    pub source: Option<String>,
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    pub fn new(origin: impl Into<String>) -> Report {
        Report {
            origin: origin.into(),
            source: None,
            diagnostics: Vec::new(),
        }
    }

    pub fn with_source(origin: impl Into<String>, source: impl Into<String>) -> Report {
        Report {
            origin: origin.into(),
            source: Some(source.into()),
            diagnostics: Vec::new(),
        }
    }

    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    pub fn extend(&mut self, ds: impl IntoIterator<Item = Diagnostic>) {
        self.diagnostics.extend(ds);
    }

    /// Errors first, then warnings; within a severity, by source position.
    pub fn sort(&mut self) {
        self.diagnostics.sort_by_key(|d| {
            (
                std::cmp::Reverse(d.severity),
                d.span.map_or(u32::MAX, |s| s.start),
                d.code,
            )
        });
    }

    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// True if `code` was reported.
    pub fn has(&self, code: &str) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Render every finding plus a one-line summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render(&self.origin, self.source.as_deref()));
            out.push('\n');
        }
        match (self.error_count(), self.warning_count()) {
            (0, 0) => out.push_str(&format!("{}: clean\n", self.origin)),
            (e, w) => out.push_str(&format!("{}: {e} error(s), {w} warning(s)\n", self.origin)),
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_with_span_excerpts_the_line() {
        let src = "x = 1\ny = missing + 2\n";
        let span = Span::new(6, 21); // the whole second statement
        let d = Diagnostic::error("V010", "undefined-name", "name `missing` is not defined")
            .with_span(span)
            .with_help("define it before use");
        let r = d.render("test.vine", Some(src));
        assert!(
            r.contains("error[V010]: name `missing` is not defined"),
            "{r}"
        );
        assert!(r.contains(" --> test.vine:2:1"), "{r}");
        assert!(r.contains("2 | y = missing + 2"), "{r}");
        assert!(r.contains("^^^^^^^^^^^^^^^"), "{r}");
        assert!(r.contains("= help: define it before use"), "{r}");
    }

    #[test]
    fn render_clamps_multiline_span_to_first_line() {
        let src = "if a {\n    b = 1\n}\nc = 2\n";
        let span = Span::new(0, 18); // the whole `if` statement, 3 lines
        let d = Diagnostic::warning("V018", "unreachable-code", "statement is unreachable")
            .with_span(span);
        let r = d.render("test.vine", Some(src));
        assert!(r.contains("1 | if a {\n"), "{r}");
        assert!(r.contains("| ^^^^^^...\n"), "{r}");
        // no caret line longer than the excerpt
        for l in r.lines().filter(|l| l.contains('^')) {
            assert!(l.len() <= "  | if a {...".len() + 4, "{r}");
        }
    }

    #[test]
    fn render_without_span_still_names_origin() {
        let d = Diagnostic::warning(
            "V021",
            "unused-dependency",
            "dependency `mathx` never imported",
        );
        let r = d.render("spec lnni", None);
        assert!(r.starts_with("warning[V021]:"), "{r}");
        assert!(r.contains(" --> spec lnni"), "{r}");
    }

    #[test]
    fn report_counts_and_sorting() {
        let mut rep = Report::with_source("t.vine", "a = 1\nb = 2\n");
        rep.push(Diagnostic::warning("V011", "unused-binding", "w").with_span(Span::new(0, 5)));
        rep.push(Diagnostic::error("V010", "undefined-name", "e").with_span(Span::new(6, 11)));
        rep.sort();
        assert_eq!(rep.diagnostics[0].code, "V010", "errors sort first");
        assert_eq!(rep.error_count(), 1);
        assert_eq!(rep.warning_count(), 1);
        assert!(rep.has_errors());
        assert!(!rep.is_clean());
        assert!(rep.has("V011"));
        assert!(!rep.has("V033"));
        assert!(rep.render().contains("t.vine: 1 error(s), 1 warning(s)"));
    }

    #[test]
    fn clean_report_renders_summary_only() {
        let rep = Report::new("lnni");
        assert!(rep.is_clean());
        assert_eq!(rep.render(), "lnni: clean\n");
    }
}
