//! Placement-layer lints: does this library stand a chance of being
//! scheduled and retained on the cluster it is being submitted to?
//!
//! The scheduler (§3.5) will simply never dispatch a library whose
//! resource request exceeds every worker, and the cache will thrash
//! forever on a context bigger than any worker's disk — both are silent
//! starvation at run time, so both are hard errors here.

use crate::diag::Diagnostic;
use vine_core::{LibrarySpec, Resources};

/// V030 + V031 + V032 for one library spec against the fleet's capacities.
/// `workers` is one entry per worker (uniform fleets repeat the same
/// capacity); with no workers known, placement cannot be judged and no
/// findings are produced.
pub fn lint_placement(spec: &LibrarySpec, workers: &[Resources]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if let Some(need) = &spec.resources {
        if !workers.is_empty() && !workers.iter().any(|w| w.can_fit(need)) {
            diags.push(
                Diagnostic::error(
                    "V030",
                    "unschedulable-resources",
                    format!(
                        "library `{}` requests {need:?}, which no worker can satisfy",
                        spec.name
                    ),
                )
                .with_help(
                    "the scheduler will hold this library forever; shrink the request or \
                     provision larger workers",
                ),
            );
        }
    }
    if spec.slots == Some(0) {
        diags.push(
            Diagnostic::error(
                "V031",
                "zero-slots",
                format!("library `{}` declares 0 invocation slots", spec.name),
            )
            .with_help(
                "the runtime silently clamps 0 to 1 slot; say what you mean — omit `slots` \
                 to derive it from resources",
            ),
        );
    }
    let ctx_bytes = spec.context.materialized_bytes();
    if !workers.is_empty() {
        let max_disk_bytes = workers
            .iter()
            .map(|w| w.disk_mb.saturating_mul(1024 * 1024))
            .max()
            .unwrap_or(0);
        if ctx_bytes > max_disk_bytes {
            diags.push(
                Diagnostic::error(
                    "V032",
                    "context-exceeds-cache",
                    format!(
                        "context of library `{}` materializes to {ctx_bytes} bytes, larger \
                         than any worker's {max_disk_bytes}-byte disk cache",
                        spec.name
                    ),
                )
                .with_help(
                    "the retain mechanism cannot keep a context that does not fit on disk; \
                     shrink the environment or data files",
                ),
            );
        }
    }
    diags
}
