//! Flow-layer lints: findings only a control-flow graph can justify.
//!
//! The language layer (V010–V016) reasons about names and scopes; these
//! lints reason about *paths*. They sit on `vine-flow`'s CFG, liveness,
//! and constant propagation:
//!
//! * **V017 dead-store** — a local is assigned, the name is read elsewhere
//!   in the function, but no path from *this* assignment reaches a read.
//!   (Never-read names are V011's business; this catches the overwritten
//!   half of the story.)
//! * **V018 unreachable-code** — a statement lexically follows a
//!   `return`/`break`/`continue` on every path.
//! * **V019 constant-condition** — an `if`/`while` condition that is not a
//!   literal still folds to a known truth value on every reachable path;
//!   one arm is dead weight shipped to every worker.
//! * **V025 effectful-fork-setup** — a fork-mode library's context setup
//!   performs I/O or dynamic code; whatever handles or state it opens live
//!   in the template interpreter and every forked invocation snapshot
//!   inherits them blind.

use crate::diag::Diagnostic;
use std::collections::BTreeSet;
use vine_flow::analyses::{const_transfer_stmt, eval_const, leaf_def, leaf_uses, CVal};
use vine_flow::{constprop, liveness, Cfg, EffectEnv, Terminator};
use vine_lang::ast::{walk_stmts, Expr, FuncDef, Program, Span, Stmt, StmtKind, Target};
use vine_lang::autocontext::{expr_reads, stmt_reads};

/// All flow-layer lints over one parsed program: V017, V018, V019.
pub fn lint_flow(prog: &Program) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let effects = EffectEnv::compute(prog);

    // module top level: unreachable + constant conditions (module code has
    // no locals, so every store is a visible global — no dead-store lint)
    let module_cfg = Cfg::lower(prog);
    unreachable_code(&module_cfg, "module top level", &mut diags);
    constant_conditions(&module_cfg, &effects, &[], &BTreeSet::new(), &mut diags);

    for f in top_functions(prog) {
        let cfg = Cfg::lower(&f.body);
        unreachable_code(&cfg, &format!("function `{}`", f.name), &mut diags);
        let locals = function_locals(f);
        constant_conditions(&cfg, &effects, &f.params, &locals, &mut diags);
        dead_stores(&cfg, f, &locals, &mut diags);
    }
    diags
}

fn top_functions(prog: &Program) -> impl Iterator<Item = &FuncDef> {
    prog.iter().filter_map(|s| match &s.kind {
        StmtKind::FuncDef(f) => Some(&**f),
        _ => None,
    })
}

/// Frame-resolved names of a function: parameters plus every assigned name
/// not declared `global` (the interpreter's binding rule).
fn function_locals(f: &FuncDef) -> BTreeSet<String> {
    let mut declared_global = BTreeSet::new();
    walk_stmts(&f.body, &mut |s| {
        if let StmtKind::Global(names) = &s.kind {
            declared_global.extend(names.iter().cloned());
        }
    });
    let mut locals: BTreeSet<String> = f.params.iter().cloned().collect();
    walk_stmts(&f.body, &mut |s| match &s.kind {
        StmtKind::Assign(Target::Var(n), _) if !declared_global.contains(n) => {
            locals.insert(n.clone());
        }
        StmtKind::For(v, _, _) => {
            locals.insert(v.clone());
        }
        _ => {}
    });
    locals
}

// --- V018: unreachable-code ---

fn unreachable_code(cfg: &Cfg, where_: &str, diags: &mut Vec<Diagnostic>) {
    for span in &cfg.unreachable {
        diags.push(
            Diagnostic::warning(
                "V018",
                "unreachable-code",
                format!("statement in {where_} can never execute"),
            )
            .with_span(*span)
            .with_help("it follows a return/break/continue on every path; delete it"),
        );
    }
}

// --- V019: constant-condition ---

/// Is this expression a literal the author plainly wrote on purpose
/// (`while true { ... }`)? Literal conditions are idiom, not findings.
fn is_literal(e: &Expr) -> bool {
    matches!(
        e,
        Expr::None | Expr::Bool(_) | Expr::Int(_) | Expr::Float(_) | Expr::Str(_)
    )
}

fn constant_conditions(
    cfg: &Cfg,
    effects: &EffectEnv,
    params: &[String],
    locals: &BTreeSet<String>,
    diags: &mut Vec<Diagnostic>,
) {
    let sol = constprop(cfg, effects, params.to_vec(), locals.clone());
    let mut reported: BTreeSet<(u32, u32)> = BTreeSet::new();
    for (b, block) in cfg.blocks.iter().enumerate() {
        let Terminator::Branch { cond, span, .. } = &block.term else {
            continue;
        };
        if is_literal(cond) {
            continue;
        }
        // replay the block's statements over the entry environment to get
        // the environment the condition actually evaluates under
        let Some(mut env) = sol.input[b].0.clone() else {
            continue; // block unreachable: nothing to report
        };
        for s in &block.stmts {
            const_transfer_stmt(s, &mut env, effects, locals);
        }
        if let CVal::Const(v) = eval_const(cond, &env) {
            if reported.insert((span.start, span.end)) {
                diags.push(
                    Diagnostic::warning(
                        "V019",
                        "constant-condition",
                        format!(
                            "condition always evaluates {}",
                            if v.truthy() { "true" } else { "false" }
                        ),
                    )
                    .with_span(*span)
                    .with_help(
                        "every input reaching this test produces the same branch; \
                         the other arm is dead code",
                    ),
                );
            }
        }
    }
}

// --- V017: dead-store ---

/// Names this statement or its nested blocks read, *excluding* nested
/// function bodies — a lambda or inner `def` resolves free names against
/// the globals at call time, never against these locals, so a read there
/// does not keep a local alive.
fn frame_reads(body: &[Stmt]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for s in body {
        stmt_reads(s, &mut out);
    }
    out
}

fn dead_stores(cfg: &Cfg, f: &FuncDef, locals: &BTreeSet<String>, diags: &mut Vec<Diagnostic>) {
    let read_somewhere = frame_reads(&f.body);
    let sol = liveness(cfg);
    for (b, block) in cfg.blocks.iter().enumerate() {
        // walk backward from live-out, exactly as the transfer does
        let mut live = sol.input[b].0.clone();
        if let Terminator::ForNext { var, .. } = &block.term {
            live.remove(var);
        }
        match &block.term {
            Terminator::Branch { cond, .. } => expr_reads(cond, &mut live),
            Terminator::ForNext { iter, .. } => expr_reads(iter, &mut live),
            Terminator::Return(Some(e)) => expr_reads(e, &mut live),
            _ => {}
        }
        let mut dead: Vec<(Span, String)> = Vec::new();
        for s in block.stmts.iter().rev() {
            if let StmtKind::Assign(Target::Var(n), _) = &s.kind {
                if locals.contains(n)
                    && !live.contains(n)
                    && read_somewhere.contains(n)
                    && !n.starts_with('_')
                {
                    dead.push((s.span, n.clone()));
                }
            }
            if let Some(d) = leaf_def(s) {
                live.remove(d);
            }
            live.extend(leaf_uses(s));
        }
        for (span, n) in dead.into_iter().rev() {
            diags.push(
                Diagnostic::warning(
                    "V017",
                    "dead-store",
                    format!(
                        "value assigned to `{n}` in function `{}` is overwritten before \
                         any read",
                        f.name
                    ),
                )
                .with_span(span)
                .with_help(
                    "no path from this assignment reaches a use of the value; remove it \
                     or prefix the name with `_` if intentional",
                ),
            );
        }
    }
}

// --- V025: effectful-fork-setup ---

/// Fork-mode check for a library's context setup function: invoked from
/// `lint_library` when the spec names a setup and executes in fork mode.
pub fn lint_fork_setup(prog: &Program, setup_fn: &str) -> Vec<Diagnostic> {
    let effects = EffectEnv::compute(prog);
    let Some(summary) = effects.functions.get(setup_fn) else {
        return Vec::new(); // setup shipped serialized; nothing to analyze
    };
    if !summary.io && !summary.dynamic {
        return Vec::new();
    }
    let span = top_functions(prog)
        .find(|f| f.name == setup_fn)
        .map(|f| f.span);
    let what = match (summary.io, summary.dynamic) {
        (true, true) => "performs I/O and executes dynamic code",
        (true, false) => "performs I/O",
        _ => "executes dynamic code",
    };
    let mut d = Diagnostic::warning(
        "V025",
        "effectful-fork-setup",
        format!("context setup `{setup_fn}` {what} under fork execution"),
    )
    .with_help(
        "setup runs once in the template interpreter and every forked invocation \
         snapshot inherits its live state; keep I/O and dynamic code out of setup \
         or switch the library to direct execution",
    );
    if let Some(span) = span {
        d = d.with_span(span);
    }
    vec![d]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(src: &str) -> Vec<Diagnostic> {
        lint_flow(&vine_lang::parse(src).unwrap())
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn dead_store_fires_on_overwrite_before_read() {
        let diags = flow("def f(a) {\n    x = a * 2\n    x = 5\n    return x\n}");
        assert_eq!(codes(&diags), vec!["V017"], "{diags:?}");
        assert!(diags[0].message.contains('x'));
    }

    #[test]
    fn dead_store_silent_when_both_paths_read() {
        // the first store reaches the `if` arm's read on one path
        let diags = flow(
            "def f(a) {\n    x = a * 2\n    if a > 0 { print(x) }\n    x = 5\n    return x\n}",
        );
        assert!(codes(&diags).is_empty(), "{diags:?}");
    }

    #[test]
    fn dead_store_silent_in_loops_and_for_globals() {
        // acc flows around the back edge; g is global, not a frame local
        let diags = flow(
            "def f(n) {\n    global g\n    acc = 0\n    for i in range(n) { acc = acc + i }\n    \
             g = 1\n    g = 2\n    return acc\n}",
        );
        assert!(codes(&diags).is_empty(), "{diags:?}");
    }

    #[test]
    fn unreachable_after_return_fires() {
        let diags = flow("def f() {\n    return 1\n    x = 2\n}");
        assert_eq!(codes(&diags), vec!["V018"], "{diags:?}");
    }

    #[test]
    fn constant_condition_fires_through_propagation() {
        let diags =
            flow("limit = 10\nif limit > 5 {\n    mode = \"big\"\n}\ndef f(x) { return x }");
        assert!(codes(&diags).contains(&"V019"), "{diags:?}");
        assert!(
            diags.iter().any(|d| d.message.contains("true")),
            "{diags:?}"
        );
    }

    #[test]
    fn literal_condition_is_idiom_not_finding() {
        let diags = flow("def f(x) {\n    while true {\n        if x > 0 { return x }\n        x = x + 1\n    }\n}");
        assert!(codes(&diags).is_empty(), "{diags:?}");
    }

    #[test]
    fn parameter_dependent_condition_is_silent() {
        let diags = flow("def f(x) {\n    if x > 3 { return 1 }\n    return 0\n}");
        assert!(codes(&diags).is_empty(), "{diags:?}");
    }

    #[test]
    fn fork_setup_with_io_warns_v025() {
        let prog = vine_lang::parse(
            "def context_setup() {\n    global model\n    model = 1\n    print(\"ready\")\n}",
        )
        .unwrap();
        let diags = lint_fork_setup(&prog, "context_setup");
        assert_eq!(codes(&diags), vec!["V025"], "{diags:?}");
        assert!(diags[0].message.contains("I/O"));
    }

    #[test]
    fn pure_fork_setup_is_clean() {
        let prog =
            vine_lang::parse("def context_setup() {\n    global model\n    model = [1, 2, 3]\n}")
                .unwrap();
        assert!(lint_fork_setup(&prog, "context_setup").is_empty());
        assert!(lint_fork_setup(&prog, "not_present").is_empty());
    }
}
