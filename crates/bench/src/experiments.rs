//! One function per table/figure of the paper's evaluation (§4).
//!
//! Every experiment accepts a `scale` in (0, 1]: 1.0 reproduces the paper's
//! full workload sizes (100k/10k invocations, 150 workers); smaller values
//! shrink the invocation count for quick runs (worker counts and all cost
//! constants stay faithful). Scaling below 1.0 changes absolute totals —
//! the *relative* shape is what survives.
//!
//! Experiments whose cells are independent simulations (different reuse
//! levels, worker counts, invocation lengths) fan the cells out with
//! `into_par_iter().map(..)`: each simulation is a pure function of its
//! config and seed, and results come back in input order, so the rendered
//! tables are byte-identical at any `--jobs` setting — `--jobs 1` runs the
//! very same closures inline on one thread.

use crate::table::Table;
use rayon::prelude::*;
use vine_apps::{ExaMolConfig, ExaMolWorkload, LnniConfig, LnniWorkload};
use vine_core::config::ReuseLevel;
use vine_core::time::SimDuration;
use vine_lang::Value;
use vine_sim::{simulate, SimConfig, SimResult};
use vine_transfer::{plan_broadcast, Topology};

fn scaled(n: u64, scale: f64) -> u64 {
    ((n as f64 * scale).round() as u64).max(50)
}

/// Run LNNI in the simulator.
pub fn run_lnni(level: ReuseLevel, invocations: u64, inferences: u64, workers: usize) -> SimResult {
    let mut w = LnniWorkload::new(LnniConfig {
        invocations,
        inferences_per_invocation: inferences,
        level,
        seed: 0x6c6e6e69,
        library_strategy: vine_apps::lnni::LibraryStrategy::PerSlot,
    });
    simulate(SimConfig::paper(level, workers), &mut w)
}

/// Run ExaMol in the simulator.
pub fn run_examol(level: ReuseLevel, tasks: u64, workers: usize) -> SimResult {
    let mut cfg = ExaMolConfig::paper(level);
    cfg.total_tasks = tasks;
    cfg.initial_batch = cfg.initial_batch.min(tasks);
    let mut w = ExaMolWorkload::new(cfg);
    simulate(SimConfig::paper(level, workers), &mut w)
}

/// Table 2: overhead of executing 1,000 trivial functions on one worker in
/// three modes — Local Invocation (measured live), Remote Task, Remote
/// Invocation.
pub fn table2(scale: f64) -> Table {
    let n = scaled(1_000, scale);
    let mut t = Table::new(
        "table2",
        "Overhead of Executing 1,000 Trivial Functions (paper Table 2)",
        &[
            "total_s",
            "overhead_per_worker_s",
            "overhead_per_invocation_s",
        ],
    );

    // Local Invocation: really run the trivial function in-process
    let mut interp = vine_lang::Interp::new();
    interp
        .exec_source("def trivial(a, b) { return a + b }")
        .unwrap();
    let started = std::time::Instant::now();
    for i in 0..n {
        let _ = interp
            .call_global("trivial", &[Value::Int(i as i64), Value::Int(1)])
            .unwrap();
    }
    let local_total = started.elapsed().as_secs_f64();
    t.row(
        "Local Invocation",
        vec![local_total / n as f64, 0.0, local_total / n as f64],
    );

    // Remote Task: each execution is a whole-worker stateless task that
    // reloads the wrapper (the paper's harness runs Table 2's tasks
    // exclusively: total 211.06 s = 20.65 s worker startup + 1,000 × 0.19 s)
    struct Trivial {
        n: u64,
        as_calls: bool,
    }
    impl vine_sim::Workload for Trivial {
        fn libraries(
            &self,
        ) -> Vec<(
            vine_core::context::LibrarySpec,
            vine_core::task::WorkProfile,
        )> {
            if !self.as_calls {
                return Vec::new();
            }
            let mut spec = vine_core::context::LibrarySpec::new("trivial");
            spec.functions = vec!["trivial".into()];
            // two slots: the worker executes one invocation while the
            // manager prepares the next (the pipelining behind Table 2's
            // 2.52 ms steady-state rate)
            spec.slots = Some(2);
            vec![(spec, vine_core::task::WorkProfile::zero())]
        }
        fn initial_units(&mut self) -> Vec<vine_core::task::WorkUnit> {
            (0..self.n)
                .map(|i| {
                    let profile = vine_core::task::WorkProfile {
                        exec_gflop: 0.05, // trivial addition
                        ..vine_core::task::WorkProfile::zero()
                    };
                    if self.as_calls {
                        let mut c = vine_core::task::FunctionCall::new(
                            vine_core::ids::InvocationId(i),
                            "trivial",
                            "trivial",
                            vec![0u8; 16],
                        );
                        c.resources = vine_core::resources::Resources::paper_worker();
                        c.profile = profile;
                        vine_core::task::WorkUnit::Call(c)
                    } else {
                        let mut task =
                            vine_core::task::TaskSpec::new(vine_core::ids::TaskId(i), "trivial");
                        task.function = Some("trivial".into());
                        task.resources = vine_core::resources::Resources::paper_worker();
                        task.profile = profile;
                        vine_core::task::WorkUnit::Task(task)
                    }
                })
                .collect()
        }
    }
    let startup = SimConfig::colocated(ReuseLevel::L1)
        .cost
        .worker_startup
        .as_secs_f64();
    let totals: Vec<f64> = vec![false, true]
        .into_par_iter()
        .map(|as_calls| {
            let level = if as_calls {
                ReuseLevel::L3
            } else {
                ReuseLevel::L1
            };
            simulate(SimConfig::colocated(level), &mut Trivial { n, as_calls })
                .end
                .as_secs_f64()
        })
        .collect();
    for (label, total) in [("Remote Task", totals[0]), ("Remote Invocation", totals[1])] {
        t.row(label, vec![total, startup, (total - startup) / n as f64]);
    }
    t.note(format!(
        "n = {n} trivial functions, 1 worker, manager co-located"
    ));
    t.note(
        "paper: Local 8.89e-5 | Task 211.06 / 20.65 / 0.19 | Invocation 22.46 / 19.94 / 2.52e-3",
    );
    t
}

/// Fig 6a: LNNI 100k invocations, 150 workers, execution time per level.
pub fn fig6a(scale: f64) -> Table {
    let n = scaled(100_000, scale);
    let mut t = Table::new(
        "fig6a",
        "LNNI Execution Time by Reuse Level (paper Fig 6a)",
        &["execution_time_s"],
    );
    let times: Vec<f64> = ReuseLevel::ALL
        .to_vec()
        .into_par_iter()
        .map(|level| run_lnni(level, n, 16, 150).makespan.as_secs_f64())
        .collect();
    for (level, secs) in ReuseLevel::ALL.iter().zip(&times) {
        t.row(level.name(), vec![*secs]);
    }
    t.note(format!(
        "L1→L3 reduction: {:.1}% (paper: 94.5%, 7,485 s → 414 s)",
        (1.0 - times[2] / times[0]) * 100.0
    ));
    t.note(format!("n = {n} invocations × 16 inferences, 150 workers"));
    t
}

/// Fig 6b: ExaMol 10k tasks, 150 workers. L3 was unsupported in the paper
/// ("it's unclear whether arbitrary functions can fit..."); we add it as an
/// extension row.
pub fn fig6b(scale: f64) -> Table {
    let n = scaled(10_000, scale);
    let mut t = Table::new(
        "fig6b",
        "ExaMol Execution Time by Reuse Level (paper Fig 6b)",
        &["execution_time_s"],
    );
    let times: Vec<f64> = ReuseLevel::ALL
        .to_vec()
        .into_par_iter()
        .map(|level| run_examol(level, n, 150).makespan.as_secs_f64())
        .collect();
    t.row("L1", vec![times[0]]);
    t.row("L2", vec![times[1]]);
    t.row("L3 (extension)", vec![times[2]]);
    t.note(format!(
        "L1→L2 reduction: {:.1}% (paper: 26.9%, 4,600 s → 3,364 s); L3 row is our extension beyond the paper",
        (1.0 - times[1] / times[0]) * 100.0
    ));
    t.note(format!("n = {n} tasks, 150 workers"));
    t
}

/// Fig 7: histogram of LNNI invocation run times per level (clipped at
/// 40 s like the paper).
pub fn fig7(scale: f64) -> Table {
    let n = scaled(100_000, scale);
    let bins = 20;
    let mut t = Table::new(
        "fig7",
        "Histogram of LNNI Invocation Run Times (paper Fig 7)",
        &["L1", "L2", "L3"],
    );
    let histograms: Vec<_> = ReuseLevel::ALL
        .to_vec()
        .into_par_iter()
        .map(|level| {
            run_lnni(level, n, 16, 150)
                .trace
                .runtime_histogram(0.0, 40.0, bins)
        })
        .collect();
    for b in 0..bins {
        let lo = b as f64 * 2.0;
        t.row(
            format!("{:>4.1}–{:>4.1}s", lo, lo + 2.0),
            histograms.iter().map(|h| h.counts[b] as f64).collect(),
        );
    }
    t.row(
        ">40s",
        histograms.iter().map(|h| h.overflow as f64).collect(),
    );
    t.note(format!(
        "modes: L1 ≈ {:.1}s, L2 ≈ {:.1}s, L3 ≈ {:.1}s (paper: L1 12–20s, L2 10–16s, L3 3–7s)",
        histograms[0].mode_center(),
        histograms[1].mode_center(),
        histograms[2].mode_center()
    ));
    t
}

/// Table 4: invocation run-time statistics per level.
pub fn table4(scale: f64) -> Table {
    let n = scaled(100_000, scale);
    let mut t = Table::new(
        "table4",
        "LNNI Invocation Run Time Statistics (paper Table 4)",
        &["mean_s", "std_dev_s", "min_s", "max_s"],
    );
    let stats: Vec<_> = ReuseLevel::ALL
        .to_vec()
        .into_par_iter()
        .map(|level| run_lnni(level, n, 16, 150).trace.runtime_stats())
        .collect();
    for (level, s) in ReuseLevel::ALL.iter().zip(&stats) {
        t.row(level.name(), vec![s.mean, s.std_dev, s.min, s.max]);
    }
    t.note(
        "paper: L1 21.59/34.78/6.71/289.72 | L2 13.48/3.68/6.09/45.33 | L3 4.77/3.43/2.67/39.51",
    );
    t
}

/// Fig 8: effect of invocation length (16/160/1600 inferences) on
/// execution time; 10k invocations, 100 workers.
pub fn fig8(scale: f64) -> Table {
    let n = scaled(10_000, scale);
    let mut t = Table::new(
        "fig8",
        "Effect of Invocation Run Time on Execution Time (paper Fig 8)",
        &["L1_s", "L2_s", "L3_s", "L3_vs_L1_reduction_pct"],
    );
    const LENGTHS: [u64; 3] = [16, 160, 1_600];
    let cells: Vec<(u64, ReuseLevel)> = LENGTHS
        .iter()
        .flat_map(|&i| ReuseLevel::ALL.iter().map(move |&l| (i, l)))
        .collect();
    let times: Vec<f64> = cells
        .into_par_iter()
        .map(|(inferences, level)| run_lnni(level, n, inferences, 100).makespan.as_secs_f64())
        .collect();
    for (i, inferences) in LENGTHS.iter().enumerate() {
        let row = &times[i * 3..i * 3 + 3];
        let reduction = (1.0 - row[2] / row[0]) * 100.0;
        t.row(
            format!("{inferences} inferences"),
            vec![row[0], row[1], row[2], reduction],
        );
    }
    t.note("paper reductions (L3 vs L1): 81% @16, 41.3% @160, 15.6% @1600 — shrinking as invocations lengthen");
    t
}

/// Fig 9: effect of worker count on execution time; 10k invocations.
pub fn fig9(scale: f64) -> Table {
    let n = scaled(10_000, scale);
    let mut t = Table::new(
        "fig9",
        "Effect of Worker Count on Execution Time (paper Fig 9)",
        &["L1_s", "L2_s", "L3_s"],
    );
    const COUNTS: [usize; 3] = [50, 100, 150];
    // the paper's text: L3 at 10 and 25 workers degrades to 455 s / 145 s
    const SMALL: [usize; 2] = [10, 25];
    let mut cells: Vec<(usize, ReuseLevel)> = COUNTS
        .iter()
        .flat_map(|&w| ReuseLevel::ALL.iter().map(move |&l| (w, l)))
        .collect();
    cells.extend(SMALL.iter().map(|&w| (w, ReuseLevel::L3)));
    let times: Vec<f64> = cells
        .into_par_iter()
        .map(|(workers, level)| run_lnni(level, n, 16, workers).makespan.as_secs_f64())
        .collect();
    for (i, workers) in COUNTS.iter().enumerate() {
        t.row(
            format!("{workers} workers"),
            times[i * 3..i * 3 + 3].to_vec(),
        );
    }
    for (i, workers) in SMALL.iter().enumerate() {
        t.row(
            format!("{workers} workers (L3 only)"),
            vec![f64::NAN, f64::NAN, times[COUNTS.len() * 3 + i]],
        );
    }
    t.note("paper: L3 flat across 50–150 workers; L1/L2 improve slightly; L3 degrades to 455 s @10 and 145 s @25 workers");
    t
}

/// Fig 10: deployed libraries vs invocations completed (LNNI L3).
pub fn fig10(scale: f64) -> Table {
    let n = scaled(100_000, scale);
    let r = run_lnni(ReuseLevel::L3, n, 16, 150);
    let series = r.trace.active_libraries_series((n / 20).max(1));
    let mut t = Table::new(
        "fig10",
        "Deployed Libraries vs Invocations Completed (paper Fig 10)",
        &["active_libraries"],
    );
    for (x, y) in &series.points {
        t.row(format!("{x} done"), vec![*y]);
    }
    t.note("paper: quick ramp, then ~2,000 active libraries on 150 workers");
    t
}

/// Fig 11: average library share value vs invocations completed.
pub fn fig11(scale: f64) -> Table {
    let n = scaled(100_000, scale);
    let r = run_lnni(ReuseLevel::L3, n, 16, 150);
    let series = r.trace.avg_share_series((n / 20).max(1));
    let mut t = Table::new(
        "fig11",
        "Average Library Share Value vs Invocations Completed (paper Fig 11)",
        &["avg_invocations_per_library"],
    );
    for (x, y) in &series.points {
        t.row(format!("{x} done"), vec![*y]);
    }
    t.note("paper: share value grows linearly with completions");
    t
}

/// Table 5: overhead breakdown, manager and worker co-located.
pub fn table5() -> Table {
    let mut t = Table::new(
        "table5",
        "Overhead Breakdown of LNNI Invocations (paper Table 5)",
        &[
            "transfer_s",
            "worker_overhead_s",
            "library_invoc_overhead_s",
            "exec_s",
        ],
    );

    // two independent cells: L2 (two whole-worker sequential invocations —
    // first cold, second hot) and L3 (one library install + one invocation)
    let traces: Vec<vine_core::trace::Trace> = vec![ReuseLevel::L2, ReuseLevel::L3]
        .into_par_iter()
        .map(|level| {
            let mut w = LnniWorkload::new(LnniConfig {
                invocations: if level == ReuseLevel::L2 { 2 } else { 1 },
                inferences_per_invocation: 16,
                level,
                seed: 7,
                library_strategy: vine_apps::lnni::LibraryStrategy::PerSlot,
            });
            let mut cfg = SimConfig::colocated(level);
            if level == ReuseLevel::L2 {
                cfg.worker_resources = vine_core::resources::Resources::paper_worker();
            }
            simulate(cfg, &mut w).trace
        })
        .collect();
    let mut records = traces[0].invocations.clone();
    records.sort_by_key(|x| x.dispatched);
    for (label, rec) in [("L2 (Cold)", &records[0]), ("L2 (Hot)", &records[1])] {
        let p = rec.phases;
        t.row(
            label,
            vec![
                p.transfer.as_secs_f64(),
                p.worker_overhead.as_secs_f64(),
                p.library_overhead.as_secs_f64(),
                p.exec.as_secs_f64(),
            ],
        );
    }

    let lib = &traces[1].libraries[0];
    t.row(
        "L3 (Library)",
        vec![
            lib.phases.transfer.as_secs_f64(),
            lib.phases.worker_overhead.as_secs_f64(),
            lib.phases.library_overhead.as_secs_f64(),
            f64::NAN, // the library does no work itself (§3.4)
        ],
    );
    let inv = &traces[1].invocations[0];
    t.row(
        "L3 (Invoc.)",
        vec![
            inv.phases.transfer.as_secs_f64(),
            inv.phases.worker_overhead.as_secs_f64(),
            inv.phases.library_overhead.as_secs_f64(),
            inv.phases.exec.as_secs_f64(),
        ],
    );
    t.note("paper: L2-Cold 1.004/15.435/0.403/5.469 | L2-Hot 5.22e-4/1.18e-3/0.327/5.046 | L3-Lib 0.989/15.251/2.729/– | L3-Invoc 2.34e-4/2.75e-4/5.14e-4/3.079");
    t
}

/// Fig 3 (mechanism): modeled completion time of broadcasting the 572 MB
/// LNNI environment to 150 workers under the three distribution strategies.
pub fn fig3() -> Table {
    let workers: Vec<vine_core::ids::WorkerId> = (0..150).map(vine_core::ids::WorkerId).collect();
    let cost = vine_core::CostModel::paper();
    let per_hop =
        SimDuration::for_transfer(vine_env::catalog::LNNI_PACKED_BYTES, cost.nic_bytes_per_sec)
            .as_secs_f64();

    let mut t = Table::new(
        "fig3",
        "Broadcast Strategies: 572 MB Environment to 150 Workers (paper Fig 3)",
        &["serialized_rounds", "modeled_completion_s", "manager_sends"],
    );
    let clusters = vec![workers[..75].to_vec(), workers[75..].to_vec()];
    for (label, topo) in [
        ("(a) no worker-to-worker", Topology::Star),
        (
            "(b) spanning tree, cap 3",
            Topology::FullPeer { fanout_cap: 3 },
        ),
        (
            "(c) two clusters, cap 3",
            Topology::Clustered {
                clusters,
                fanout_cap: 3,
            },
        ),
    ] {
        let plan = plan_broadcast(&topo, &workers).unwrap();
        t.row(
            label,
            vec![
                plan.depth() as f64,
                plan.depth() as f64 * per_hop,
                plan.manager_sends() as f64,
            ],
        );
    }
    t.note(format!(
        "one 572 MB transfer over a 10 Gb/s link = {per_hop:.2} s"
    ));
    t
}

/// Ablations of DESIGN.md's design decisions at system level: library
/// sizing strategy (§3.5.2) and peer transfer (Fig 3a vs 3b), measured on
/// the LNNI workload.
pub fn ablations(scale: f64) -> Table {
    // capped at 5k invocations: ablation contrasts are visible well below
    // full scale and the row count is 4 cluster runs
    let n = scaled(20_000, scale.min(0.25));
    let mut t = Table::new(
        "ablations",
        "Design Ablations on LNNI (DESIGN.md §5)",
        &["execution_time_s"],
    );
    let run = |level: ReuseLevel, strategy: vine_apps::lnni::LibraryStrategy, peer: bool| {
        let mut w = LnniWorkload::new(LnniConfig {
            invocations: n,
            inferences_per_invocation: 16,
            level,
            seed: 0x6c6e6e69,
            library_strategy: strategy,
        });
        let mut cfg = SimConfig::paper(level, 150);
        cfg.peer_transfer = peer;
        simulate(cfg, &mut w).makespan.as_secs_f64()
    };
    use vine_apps::lnni::LibraryStrategy::*;
    let cells = vec![
        (
            "L3 per-slot libraries + peer transfer (baseline)",
            ReuseLevel::L3,
            PerSlot,
            true,
        ),
        (
            "L3 whole-worker libraries (16 slots)",
            ReuseLevel::L3,
            WholeWorker,
            true,
        ),
        (
            "L3 sequential broadcast (no peer transfer)",
            ReuseLevel::L3,
            PerSlot,
            false,
        ),
        (
            "L2 sequential broadcast (no peer transfer)",
            ReuseLevel::L2,
            PerSlot,
            false,
        ),
    ];
    let rows: Vec<(&str, f64)> = cells
        .into_par_iter()
        .map(|(label, level, strategy, peer)| (label, run(level, strategy, peer)))
        .collect();
    for (label, secs) in rows {
        t.row(label, vec![secs]);
    }
    t.note(format!("n = {n} invocations × 16 inferences, 150 workers"));
    t.note("whole-worker libraries pay one setup per 16 slots instead of 16; no-peer staging serializes the 802 MB context on the manager uplink");
    t
}

/// `perf`: scheduler hot-path self-benchmark (not a paper figure).
///
/// Drives the indexed [`vine_manager::Manager`] and the retained
/// scan-based [`vine_manager::reference::NaiveManager`] through an
/// identical scheduler-bound workload — hundreds of libraries so the
/// per-decision library scans dominate, a near-full worker ring so
/// first-fit walks are long, and install/evict churn once the ring
/// saturates — and reports wall-clock plus decisions/second for each.
/// Both must emit the same number of decisions (the differential
/// property test guarantees the sequences themselves match); results are
/// also written to `BENCH_sched.json` in the working directory.
pub fn perf(scale: f64) -> Table {
    use std::collections::VecDeque;
    use vine_core::context::{FileRef, LibrarySpec};
    use vine_core::ids::{ContentHash, FileId, InvocationId, LibraryInstanceId, TaskId, WorkerId};
    use vine_core::resources::Resources;
    use vine_core::task::{FunctionCall, TaskSpec, UnitId, WorkUnit};
    use vine_manager::manager::{Decision, Manager};
    use vine_manager::reference::NaiveManager;

    const WORKERS: u32 = 1000;
    const LIBS: usize = 512;
    let calls = scaled(40_000, scale);
    let tasks = scaled(8_000, scale);

    /// The subset of the manager API the drive loop needs, so the same
    /// loop times both implementations.
    trait Sched {
        fn register(&mut self, spec: LibrarySpec);
        fn join(&mut self, id: WorkerId, r: Resources);
        fn push(&mut self, unit: WorkUnit);
        fn next(&mut self) -> Option<Decision>;
        fn ready(&mut self, w: WorkerId, i: LibraryInstanceId);
        fn done(&mut self, u: UnitId);
    }
    macro_rules! impl_sched {
        ($t:ty) => {
            impl Sched for $t {
                fn register(&mut self, spec: LibrarySpec) {
                    self.register_library(spec);
                }
                fn join(&mut self, id: WorkerId, r: Resources) {
                    self.worker_joined(id, r);
                }
                fn push(&mut self, unit: WorkUnit) {
                    self.submit(unit);
                }
                fn next(&mut self) -> Option<Decision> {
                    self.next_decision()
                }
                fn ready(&mut self, w: WorkerId, i: LibraryInstanceId) {
                    self.library_ready(w, i).expect("install ack");
                }
                fn done(&mut self, u: UnitId) {
                    self.unit_finished(u).expect("finish");
                }
            }
        };
    }
    impl_sched!(Manager);
    impl_sched!(NaiveManager);

    fn lib(i: usize) -> LibrarySpec {
        let mut spec = LibrarySpec::new(format!("lib{i:03}"));
        spec.functions = vec!["f".into()];
        spec.resources = Some(Resources::new(4, 2048, 4));
        spec.context.environment = Some(FileRef::new(
            FileId(i as u64),
            format!("env{i}.tar"),
            ContentHash::of_str(&format!("env{i}")),
            64 * 1024,
        ));
        spec
    }

    fn setup<S: Sched>(s: &mut S) {
        for i in 0..LIBS {
            s.register(lib(i));
        }
        for w in 0..WORKERS {
            s.join(WorkerId(w), Resources::new(8, 16 * 1024, 64));
        }
    }

    fn drive<S: Sched>(s: &mut S, calls: u64, tasks: u64) -> u64 {
        for i in 0..calls {
            let mut c = FunctionCall::new(
                InvocationId(i),
                format!("lib{:03}", i as usize % LIBS),
                "f",
                vec![],
            );
            c.resources = Resources::new(1, 512, 1);
            s.push(WorkUnit::Call(c));
        }
        for i in 0..tasks {
            let mut t = TaskSpec::new(TaskId(i), format!("t{}", i % 17));
            t.resources = Resources::new(2, 1024, 1);
            t.inputs.push(FileRef::new(
                FileId(10_000 + i % 64),
                format!("in{}", i % 64),
                ContentHash::of_str(&format!("in{}", i % 64)),
                64 * 1024,
            ));
            s.push(WorkUnit::Task(t));
        }
        let mut running: VecDeque<UnitId> = VecDeque::new();
        let mut decisions = 0u64;
        loop {
            while let Some(d) = s.next() {
                decisions += 1;
                match d {
                    Decision::InstallLibrary {
                        worker, instance, ..
                    } => s.ready(worker, instance),
                    Decision::DispatchCall { call, .. } => {
                        running.push_back(UnitId::Call(call.id));
                    }
                    Decision::DispatchTask { task, .. } => {
                        running.push_back(UnitId::Task(task.id));
                    }
                    Decision::EvictLibrary { .. } | Decision::Fail { .. } => {}
                }
            }
            if running.is_empty() {
                break;
            }
            // complete the older half to free slots for the next wave
            for _ in 0..(running.len() / 2).max(1) {
                let u = running.pop_front().expect("non-empty");
                s.done(u);
            }
        }
        decisions
    }

    let mut naive = NaiveManager::new();
    setup(&mut naive);
    let started = std::time::Instant::now();
    let naive_decisions = drive(&mut naive, calls, tasks);
    let naive_s = started.elapsed().as_secs_f64();

    let mut indexed = Manager::new();
    setup(&mut indexed);
    let started = std::time::Instant::now();
    let indexed_decisions = drive(&mut indexed, calls, tasks);
    let indexed_s = started.elapsed().as_secs_f64();

    assert_eq!(
        naive_decisions, indexed_decisions,
        "decision streams diverged"
    );

    let speedup = naive_s / indexed_s;
    let mut t = Table::new(
        "perf",
        "Scheduler hot-path throughput: indexed vs naive manager",
        &["wall_s", "decisions", "decisions_per_sec"],
    );
    t.row(
        "naive (linear scans)",
        vec![
            naive_s,
            naive_decisions as f64,
            naive_decisions as f64 / naive_s,
        ],
    );
    t.row(
        "indexed",
        vec![
            indexed_s,
            indexed_decisions as f64,
            indexed_decisions as f64 / indexed_s,
        ],
    );
    t.row("speedup", vec![speedup, 0.0, 0.0]);
    t.note(format!(
        "{WORKERS} workers, {LIBS} libraries, {calls} calls + {tasks} tasks; \
         wall-clock, varies run to run"
    ));

    let json = format!(
        "{{\n  \"benchmark\": \"sched_hot_path\",\n  \"workers\": {WORKERS},\n  \
         \"libraries\": {LIBS},\n  \"calls\": {calls},\n  \"tasks\": {tasks},\n  \
         \"naive\": {{ \"wall_s\": {naive_s:.6}, \"decisions\": {naive_decisions}, \
         \"decisions_per_sec\": {:.1} }},\n  \
         \"indexed\": {{ \"wall_s\": {indexed_s:.6}, \"decisions\": {indexed_decisions}, \
         \"decisions_per_sec\": {:.1} }},\n  \"speedup\": {speedup:.2}\n}}\n",
        naive_decisions as f64 / naive_s,
        indexed_decisions as f64 / indexed_s,
    );
    if let Err(e) = std::fs::write("BENCH_sched.json", json) {
        eprintln!("warning: could not write BENCH_sched.json: {e}");
    }
    t
}

/// `perf --sim`: simulator event-core self-benchmark (not a paper figure).
///
/// Drives the dense-layout driver ([`vine_sim::simulate`]: slab jobs,
/// `Vec`-indexed pools, per-worker job index) and the retained
/// BTreeMap-shaped pre-overhaul driver ([`vine_sim::simulate_reference`])
/// through one identical event-heavy workload — a wide cluster running
/// short invocations (thousands of live jobs, so per-event job lookups
/// dominate), staged tasks churning the fluid pools, dynamic resubmission,
/// and a few worker failures (the old driver's full-scan path) — and
/// reports events/second for each. Both traces and popped-event counts
/// must match exactly (the vine-sim differential tests pin the same
/// invariant); results are also written to `BENCH_sim.json`.
pub fn perf_sim(scale: f64) -> Table {
    use vine_core::context::{ContextSpec, FileRef, LibrarySpec};
    use vine_core::ids::{ContentHash, FileId, InvocationId, TaskId};
    use vine_core::resources::Resources;
    use vine_core::task::{FunctionCall, TaskSpec, UnitId, WorkProfile, WorkUnit};
    use vine_sim::{simulate_reference, Workload};

    const WORKERS: usize = 500;
    let total = scaled(200_000, scale);
    /// Units submitted up front, sized to the cluster's slot capacity:
    /// the opening wave carries thousands of shared-FS readers, so the
    /// contended pool is already thousands of flows wide while the call
    /// stream is at full rate — the regime where per-event container
    /// shape matters most.
    const BATCH: u64 = 16_000;
    /// Completions are replenished in chunks: submitting one unit per
    /// completion would make the manager run one-decision service cycles
    /// (index rebuilds every wake), drowning the layout signal in shared
    /// scheduler cost for both drivers alike.
    const CHUNK: u64 = 64;

    struct EventStorm {
        total: u64,
        /// Next unit index to submit (`initial_units` hands out the first
        /// BATCH, completions chain the rest in CHUNK-sized refills).
        next: u64,
        done: u64,
    }

    impl EventStorm {
        /// Deterministic unit mix by index:
        ///
        /// * 4/8 cheap-dispatch calls with ~10 s executions — thousands of
        ///   live jobs (deep job container) and a fast completion stream,
        ///   so chained refills keep arriving while the shared pool below
        ///   is at its widest;
        /// * 1/8 input-less tasks whose context reads churn the per-worker
        ///   disk pools (add/complete/reschedule against pool + active-flow
        ///   containers);
        /// * 3/8 shared-FS tasks reading 2.4 GB each: arrivals outrun the
        ///   pool's aggregate drain rate, so their flows pile up into one
        ///   globally contended pool thousands of flows wide, making every
        ///   pool event an O(width) pass over the container whose layout
        ///   changed (BTreeMap walk vs contiguous scan).
        fn unit(i: u64) -> WorkUnit {
            match i % 8 {
                0..=3 => {
                    let mut c = FunctionCall::new(InvocationId(i), "storm", "f", vec![0u8; 16]);
                    c.resources = Resources::new(1, 512, 1);
                    c.profile = WorkProfile {
                        exec_gflop: 60.0,
                        output_bytes: 1_000,
                        ..WorkProfile::zero()
                    };
                    WorkUnit::Call(c)
                }
                4 => {
                    let mut t = TaskSpec::new(TaskId(i), "read");
                    t.resources = Resources::new(1, 512, 1);
                    if (i / 8).is_multiple_of(8) {
                        // rotate through 64 cacheable blobs: early tasks
                        // stage them, later ones hit peer caches via the
                        // old driver's allocating pick_source path
                        t.inputs = vec![FileRef::new(
                            FileId(100 + i % 64),
                            format!("blob{}", i % 64),
                            ContentHash::of_str(&format!("blob{}", i % 64)),
                            40_000_000,
                        )];
                    }
                    t.profile = WorkProfile {
                        exec_gflop: 80.0,
                        context_read_bytes: 150_000_000,
                        output_bytes: 1_000,
                        ..WorkProfile::zero()
                    };
                    WorkUnit::Task(t)
                }
                _ => {
                    let mut t = TaskSpec::new(TaskId(i), "volread");
                    t.resources = Resources::new(1, 512, 1);
                    t.inputs = vec![FileRef::new(
                        FileId(50 + i % 16),
                        format!("vol{}", i % 16),
                        ContentHash::of_str(&format!("vol{}", i % 16)),
                        2_400_000_000,
                    )
                    .from_shared_fs()
                    .uncached()];
                    t.profile = WorkProfile {
                        exec_gflop: 30.0,
                        sharedfs_read_bytes: 2_400_000_000,
                        output_bytes: 1_000,
                        ..WorkProfile::zero()
                    };
                    WorkUnit::Task(t)
                }
            }
        }
    }

    impl Workload for EventStorm {
        fn libraries(&self) -> Vec<(LibrarySpec, WorkProfile)> {
            let mut spec = LibrarySpec::new("storm");
            spec.functions = vec!["f".into()];
            spec.resources = Some(Resources::new(1, 512, 1));
            spec.context = ContextSpec {
                environment: Some(
                    FileRef::new(
                        FileId(1),
                        "storm-env.tar",
                        ContentHash::of_str("storm-env"),
                        64_000_000,
                    )
                    .packed(256_000_000),
                ),
                ..Default::default()
            };
            vec![(spec, WorkProfile::zero())]
        }

        fn initial_units(&mut self) -> Vec<WorkUnit> {
            self.next = BATCH.min(self.total);
            (0..self.next).map(EventStorm::unit).collect()
        }

        fn on_complete(&mut self, _u: UnitId, _ok: bool) -> Vec<WorkUnit> {
            self.done += 1;
            if self.done.is_multiple_of(CHUNK) && self.next < self.total {
                let refill = CHUNK.min(self.total - self.next);
                let start = self.next;
                self.next += refill;
                (start..start + refill).map(EventStorm::unit).collect()
            } else {
                Vec::new()
            }
        }
    }

    let make = || EventStorm {
        total,
        next: 0,
        done: 0,
    };
    let mut cfg = SimConfig::paper(ReuseLevel::L3, WORKERS);
    cfg.fail_workers = vec![(120.0, 7), (180.0, 33), (240.0, 120), (300.0, 201)];
    // fat nodes: double the slot count per worker so the contended
    // shared-FS pool can grow wider before dispatch stalls on slots
    cfg.worker_resources = Resources::new(64, 128 * 1024, 64 * 1024);

    // Two timed passes per driver, interleaved, keeping the minimum wall
    // time of each: the min is the least-interference estimate of a
    // deterministic run's cost, so the ratio is robust to background noise.
    let mut ref_s = f64::INFINITY;
    let mut dense_s = f64::INFINITY;
    let mut ref_r = None;
    let mut dense_r = None;
    for _ in 0..2 {
        let started = std::time::Instant::now();
        let r = simulate_reference(cfg.clone(), &mut make());
        ref_s = ref_s.min(started.elapsed().as_secs_f64());
        ref_r = Some(r);

        let started = std::time::Instant::now();
        let d = simulate(cfg.clone(), &mut make());
        dense_s = dense_s.min(started.elapsed().as_secs_f64());
        dense_r = Some(d);
    }
    let (ref_r, dense_r) = (ref_r.unwrap(), dense_r.unwrap());

    assert_eq!(
        ref_r.trace, dense_r.trace,
        "dense and reference drivers diverged"
    );
    assert_eq!(ref_r.events, dense_r.events, "event counts diverged");

    let events = dense_r.events;
    let speedup = ref_s / dense_s;
    let mut t = Table::new(
        "perf_sim",
        "Simulator event-core throughput: dense layout vs BTreeMap reference",
        &["wall_s", "events", "events_per_sec"],
    );
    t.row(
        "reference (BTreeMap-shaped)",
        vec![ref_s, events as f64, events as f64 / ref_s],
    );
    t.row(
        "dense (slab + Vec pools)",
        vec![dense_s, events as f64, events as f64 / dense_s],
    );
    t.row("speedup", vec![speedup, 0.0, 0.0]);
    t.note(format!(
        "{WORKERS} workers, {total} units ({BATCH} up front, rest chained); \
         identical traces asserted; min wall time of 2 passes per driver"
    ));

    let json = format!(
        "{{\n  \"benchmark\": \"sim_event_core\",\n  \"workers\": {WORKERS},\n  \
         \"units\": {total},\n  \"events\": {events},\n  \
         \"reference\": {{ \"wall_s\": {ref_s:.6}, \"events_per_sec\": {:.1} }},\n  \
         \"dense\": {{ \"wall_s\": {dense_s:.6}, \"events_per_sec\": {:.1} }},\n  \
         \"speedup\": {speedup:.2}\n}}\n",
        events as f64 / ref_s,
        events as f64 / dense_s,
    );
    if let Err(e) = std::fs::write("BENCH_sim.json", json) {
        eprintln!("warning: could not write BENCH_sim.json: {e}");
    }
    t
}

/// `perf --lang`: vine-lang invocation-path self-benchmark (not a paper
/// figure).
///
/// Boots the `overhead_modes` microbenchmark library — `context_setup`
/// builds a 512-entry table of squares, `lookup` indexes it — into two
/// retained interpreters, one on the tree-walking evaluator and one on
/// the bytecode VM, then drives the same invocation stream through both
/// via `call_global`: exactly the path a warm library daemon serves
/// (§3.4 step 3). Both engines must produce identical results (the
/// 256-case differential proptest in vine-lang pins full bit-equality);
/// results are also written to `BENCH_lang.json`.
pub fn perf_lang(scale: f64) -> Table {
    use vine_lang::{compile_module, parse, Engine, Interp, Value};

    const TABLE_N: i64 = 512;
    // A representative library module: retained-context setup + lookup (the
    // overhead_modes shape) plus a handful of pure kernels of the kind a
    // funcX-style stateless task ships — enough code that re-materializing
    // it per invocation is the dominant cost of the stateless path.
    const MODULE_SRC: &str = "\
def context_setup(n) {
    global table
    table = []
    for i in range(n) { push(table, i * i) }
}
def lookup(i) {
    return table[i]
}
def clamp(x, lo, hi) {
    if x < lo { return lo }
    if x > hi { return hi }
    return x
}
def weigh(x) {
    acc = 0
    for w in [3, 1, 4, 1, 5, 9, 2, 6] {
        acc = acc + w * x
        x = x + 1
    }
    return acc
}
def decay(x, steps) {
    while steps > 0 {
        x = x - x / 4
        steps = steps - 1
    }
    return x
}
def score(x) {
    s = weigh(clamp(x, 0, 255))
    return decay(s, 4)
}
def bucket(x, size) {
    if size <= 0 { return 0 }
    return x - x % size
}
def smooth(x) {
    acc = x
    for k in [2, 4, 8] {
        acc = acc + bucket(x, k)
    }
    return acc / 4
}
def fma(a, b, c) {
    return a * b + c
}
def horner(x) {
    acc = 0
    for c in [5, 0, 3, 2, 7] {
        acc = fma(acc, x, c)
    }
    return acc
}
def tri(n) {
    if n <= 1 { return 1 }
    return n + tri(n - 1)
}
def rescale(x, num, den) {
    if den == 0 { return 0 }
    return x * num / den
}
";

    fn boot(engine: Engine) -> Interp {
        let mut interp = Interp::new();
        interp.engine = engine;
        interp.exec_source(MODULE_SRC).expect("module boots");
        interp
            .exec_source(&format!("context_setup({TABLE_N})"))
            .expect("setup runs");
        interp
    }

    fn drive(interp: &mut Interp, calls: u64) -> i64 {
        let mut acc = 0i64;
        let mut arg = 0i64;
        for _ in 0..calls {
            arg = (arg + 1) % TABLE_N;
            match interp.call_global("lookup", &[Value::Int(arg)]) {
                Ok(Value::Int(v)) => acc = acc.wrapping_add(v),
                other => panic!("lookup returned {other:?}"),
            }
        }
        acc
    }

    // The host may throttle or steal CPU mid-run, so both engines are
    // timed in small interleaved batches and each engine keeps its best
    // batch: a slow window penalizes both sides equally instead of
    // whichever engine happened to run during it.
    fn time_warm(calls: u64) -> (f64, f64) {
        const BATCHES: u64 = 16;
        let batch = (calls / BATCHES).max(1);
        let mut tree = boot(Engine::Tree);
        let mut vm = boot(Engine::Vm);
        let mut tree_best = f64::INFINITY;
        let mut vm_best = f64::INFINITY;
        let mut tree_acc = 0i64;
        let mut vm_acc = 0i64;
        for _ in 0..BATCHES {
            let started = std::time::Instant::now();
            tree_acc = tree_acc.wrapping_add(drive(&mut tree, batch));
            tree_best = tree_best.min(started.elapsed().as_secs_f64());
            let started = std::time::Instant::now();
            vm_acc = vm_acc.wrapping_add(drive(&mut vm, batch));
            vm_best = vm_best.min(started.elapsed().as_secs_f64());
        }
        assert_eq!(tree_acc, vm_acc, "engines diverged on the result stream");
        // best-batch per-invocation time, scaled back to the full stream
        (
            tree_best * (calls as f64 / batch as f64),
            vm_best * (calls as f64 / batch as f64),
        )
    }

    // Stateless-task path: every invocation re-materializes the library in
    // a fresh interpreter, then calls one pure kernel. The tree walker must
    // re-parse and re-walk the source each time; the VM boots from the
    // compiled module retained at install (content-addressed by source
    // digest in `CompiledImageStore`, decoded once per distinct digest).
    fn time_stateless(calls: u64) -> (f64, f64) {
        const BATCHES: u64 = 16;
        let batch = (calls / BATCHES).max(1);
        let prog = parse(MODULE_SRC).expect("module parses");
        let module = std::rc::Rc::new(compile_module(&prog, MODULE_SRC));
        let mut tree_best = f64::INFINITY;
        let mut vm_best = f64::INFINITY;
        let mut tree_acc = 0i64;
        let mut vm_acc = 0i64;
        for _ in 0..BATCHES {
            let started = std::time::Instant::now();
            for i in 0..batch {
                let mut interp = Interp::new();
                interp.exec_source(MODULE_SRC).expect("module boots");
                match interp.call_global("score", &[Value::Int((i % 256) as i64)]) {
                    Ok(Value::Int(v)) => tree_acc = tree_acc.wrapping_add(v),
                    other => panic!("score returned {other:?}"),
                }
            }
            tree_best = tree_best.min(started.elapsed().as_secs_f64());
            let started = std::time::Instant::now();
            for i in 0..batch {
                let mut interp = Interp::new();
                interp.engine = Engine::Vm;
                interp
                    .exec_compiled(&module)
                    .expect("compiled module boots");
                match interp.call_global("score", &[Value::Int((i % 256) as i64)]) {
                    Ok(Value::Int(v)) => vm_acc = vm_acc.wrapping_add(v),
                    other => panic!("score returned {other:?}"),
                }
            }
            vm_best = vm_best.min(started.elapsed().as_secs_f64());
        }
        assert_eq!(tree_acc, vm_acc, "engines diverged on the stateless stream");
        (
            tree_best * (calls as f64 / batch as f64),
            vm_best * (calls as f64 / batch as f64),
        )
    }

    let calls = scaled(300_000, scale);
    let (tree_s, vm_s) = time_warm(calls);

    let boots = scaled(8_000, scale);
    let (st_tree_s, st_vm_s) = time_stateless(boots);

    let warm_speedup = tree_s / vm_s;
    let speedup = st_tree_s / st_vm_s;
    let mut t = Table::new(
        "perf_lang",
        "Invocation-path throughput: bytecode VM vs tree-walking evaluator",
        &["wall_s", "invocations", "invocations_per_sec"],
    );
    t.row(
        "warm: tree walker (retained ctx)",
        vec![tree_s, calls as f64, calls as f64 / tree_s],
    );
    t.row(
        "warm: bytecode VM (retained ctx)",
        vec![vm_s, calls as f64, calls as f64 / vm_s],
    );
    t.row("warm speedup", vec![warm_speedup, 0.0, 0.0]);
    t.row(
        "stateless: tree re-walks source",
        vec![st_tree_s, boots as f64, boots as f64 / st_tree_s],
    );
    t.row(
        "stateless: VM retained image",
        vec![st_vm_s, boots as f64, boots as f64 / st_vm_s],
    );
    t.row("stateless speedup", vec![speedup, 0.0, 0.0]);
    t.note(format!(
        "warm: {calls} invocations of lookup over a {TABLE_N}-entry retained \
         table. stateless: {boots} invocations that each re-materialize the \
         library (tree: re-parse + re-walk source; VM: boot from the compiled \
         image retained at install) and call one pure kernel. identical \
         results asserted on both streams"
    ));

    let json = format!(
        "{{\n  \"benchmark\": \"lang_vm_invocation\",\n  \
         \"warm\": {{\n    \"calls\": {calls},\n    \"table_entries\": {TABLE_N},\n    \
         \"tree\": {{ \"wall_s\": {tree_s:.6}, \"invocations_per_sec\": {:.1} }},\n    \
         \"vm\": {{ \"wall_s\": {vm_s:.6}, \"invocations_per_sec\": {:.1} }},\n    \
         \"speedup\": {warm_speedup:.2}\n  }},\n  \
         \"stateless\": {{\n    \"calls\": {boots},\n    \
         \"tree\": {{ \"wall_s\": {st_tree_s:.6}, \"invocations_per_sec\": {:.1} }},\n    \
         \"vm\": {{ \"wall_s\": {st_vm_s:.6}, \"invocations_per_sec\": {:.1} }},\n    \
         \"speedup\": {speedup:.2}\n  }},\n  \
         \"speedup\": {speedup:.2}\n}}\n",
        calls as f64 / tree_s,
        calls as f64 / vm_s,
        boots as f64 / st_tree_s,
        boots as f64 / st_vm_s,
    );
    if let Err(e) = std::fs::write("BENCH_lang.json", json) {
        eprintln!("warning: could not write BENCH_lang.json: {e}");
    }
    t
}

/// All experiments in paper order.
pub fn all(scale: f64) -> Vec<Table> {
    vec![
        table2(scale),
        fig3(),
        fig6a(scale),
        fig6b(scale),
        fig7(scale),
        table4(scale),
        ablations(scale),
        fig8(scale),
        fig9(scale),
        fig10(scale),
        fig11(scale),
        table5(),
    ]
}

/// Experiment ids accepted by the `repro` binary.
pub const IDS: &[&str] = &[
    "table2",
    "fig3",
    "fig6a",
    "fig6b",
    "fig7",
    "table4",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "table5",
    "ablations",
];

/// Run one experiment by id.
pub fn by_id(id: &str, scale: f64) -> Option<Table> {
    Some(match id {
        "table2" => table2(scale),
        "fig3" => fig3(),
        "fig6a" => fig6a(scale),
        "fig6b" => fig6b(scale),
        "fig7" => fig7(scale),
        "table4" => table4(scale),
        "fig8" => fig8(scale),
        "fig9" => fig9(scale),
        "fig10" => fig10(scale),
        "fig11" => fig11(scale),
        "table5" => table5(),
        "ablations" => ablations(scale),
        // self-benchmarks, not paper figures; excluded from `all` so the
        // paper reproduction stays deterministic
        "perf" => perf(scale),
        "perf_sim" => perf_sim(scale),
        "perf_lang" => perf_lang(scale),
        "shard" => crate::shard::shard_sweep(scale),
        _ => return None,
    })
}
