//! # bench
//!
//! The experiment harness. [`experiments`] has one function per table and
//! figure of the paper's evaluation; [`table::Table`] is the common output
//! shape (printable and JSON-serializable). [`live`] drives the live
//! runtime over both transports (`repro serve` / `repro join` and the
//! `--transport` flag). The `repro` binary dispatches by experiment id;
//! the Criterion benches in `benches/` measure the latency-critical
//! substrate paths and the DESIGN.md ablations.

pub mod experiments;
pub mod live;
pub mod net;
pub mod shard;
pub mod table;

pub use table::Table;
