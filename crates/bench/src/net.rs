//! `repro perf --net`: transport-scaling self-benchmark (not a paper
//! figure).
//!
//! Proves the reactor transport's claim to fame: **one** manager thread
//! serving a fleet of live worker connections — 2, 64, 256, 1000 — with
//! flat per-message cost, plus the serialize-once broadcast win
//! ([`vine_proto::Frame`]): a library-image install fanned out to N
//! workers encoded once instead of N times.
//!
//! The load generator is its own single-threaded epoll loop
//! ([`EchoFleet`]): every client dials in, performs the `Join` handshake,
//! and echoes each `RemoveLibrary`/`InstallLibrary` it receives as
//! `LibraryReady` — the cheapest worker that still exercises the full
//! wire path (framing, incremental decode, readiness-driven writes) in
//! both directions. A thousand blocking client threads would distort the
//! numbers on small machines; one reactor benchmarking another does not.
//!
//! Results are written to `BENCH_net.json`. Wall-clock, varies run to
//! run: excluded from `repro all` so the paper reproduction stays
//! deterministic.

use crate::table::Table;
use epoll::{Epoll, Event, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::unix::io::AsRawFd;
use std::time::{Duration, Instant};
use vine_core::ids::{LibraryInstanceId, WorkerId};
use vine_core::resources::Resources;
use vine_core::task::ExecMode;
use vine_proto::{
    encode_frame, Frame, FrameDecoder, LibraryImage, ManagerToWorker, WorkerToManager,
};
use vine_runtime::{TcpTransport, Transport, TransportEvent, TransportStats};

/// Fleet sizes the scaling rows sweep (the paper's deployments run
/// hundreds of workers; 1000 is the headroom claim).
pub const FLEET_SIZES: [usize; 4] = [2, 64, 256, 1000];

// ------------------------------------------------------------ echo fleet

/// One loopback client inside the fleet reactor.
struct EchoClient {
    stream: TcpStream,
    dec: FrameDecoder,
    /// Pending outbound bytes (replies that hit a full socket).
    out: VecDeque<u8>,
    want_write: bool,
    open: bool,
}

impl EchoClient {
    /// Queue `bytes` and flush as much as the socket accepts.
    fn enqueue(&mut self, ep: &Epoll, token: u64, bytes: &[u8]) {
        self.out.extend(bytes);
        self.flush(ep, token);
    }

    fn flush(&mut self, ep: &Epoll, token: u64) {
        while !self.out.is_empty() {
            let (front, _) = self.out.as_slices();
            match self.stream.write(front) {
                Ok(0) => {
                    self.open = false;
                    return;
                }
                Ok(n) => {
                    self.out.drain(..n);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.open = false;
                    return;
                }
            }
        }
        let want = !self.out.is_empty();
        if want != self.want_write {
            self.want_write = want;
            let interest = if want {
                EPOLLIN | EPOLLRDHUP | EPOLLOUT
            } else {
                EPOLLIN | EPOLLRDHUP
            };
            let _ = ep.modify(self.stream.as_raw_fd(), interest, token);
        }
    }
}

/// A fleet of echo clients sustained by one epoll thread: join, answer
/// every library message with `LibraryReady`, leave on `Shutdown`.
pub struct EchoFleet {
    thread: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl EchoFleet {
    /// Dial `n` clients into `addr` and start serving them.
    pub fn launch(addr: SocketAddr, n: usize) -> std::io::Result<EchoFleet> {
        let thread = std::thread::Builder::new()
            .name("echo-fleet".into())
            .spawn(move || EchoFleet::run(addr, n))?;
        Ok(EchoFleet {
            thread: Some(thread),
        })
    }

    /// Wait for every client to see `Shutdown` and disconnect.
    pub fn finish(mut self) -> std::io::Result<()> {
        self.thread
            .take()
            .expect("fleet joined once")
            .join()
            .expect("fleet thread panicked")
    }

    fn run(addr: SocketAddr, n: usize) -> std::io::Result<()> {
        let ep = Epoll::new()?;
        let join_frame = encode_frame(&WorkerToManager::Join {
            resources: Resources::new(4, 1024, 1024),
        })
        .expect("join encodes");

        let mut clients = Vec::with_capacity(n);
        for token in 0..n as u64 {
            let stream = TcpStream::connect(addr)?;
            stream.set_nodelay(true)?;
            stream.set_nonblocking(true)?;
            ep.add(stream.as_raw_fd(), EPOLLIN | EPOLLRDHUP, token)?;
            let mut client = EchoClient {
                stream,
                dec: FrameDecoder::new(),
                out: VecDeque::new(),
                want_write: false,
                open: true,
            };
            client.enqueue(&ep, token, &join_frame);
            clients.push(client);
        }

        let mut live = clients.iter().filter(|c| c.open).count();
        let mut events: Vec<Event> = Vec::new();
        let mut scratch = vec![0u8; 64 * 1024];
        while live > 0 {
            ep.wait(&mut events, 256, Some(10_000))?;
            if events.is_empty() {
                // nothing moved for 10 s: the manager died without saying
                // Shutdown; bail rather than hang the benchmark
                break;
            }
            for ev in &events {
                let token = ev.token;
                let client = &mut clients[token as usize];
                if !client.open {
                    continue;
                }
                if ev.readiness & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0 {
                    'read: loop {
                        match client.stream.read(&mut scratch) {
                            Ok(0) => {
                                client.open = false;
                                break 'read;
                            }
                            Ok(got) => {
                                client.dec.extend(&scratch[..got]);
                                loop {
                                    match client.dec.decode::<ManagerToWorker>() {
                                        Ok(Some(msg)) => {
                                            let reply = match msg {
                                                ManagerToWorker::RemoveLibrary { instance } => {
                                                    Some(instance)
                                                }
                                                ManagerToWorker::InstallLibrary {
                                                    image, ..
                                                } => Some(image.instance),
                                                ManagerToWorker::Shutdown => {
                                                    client.open = false;
                                                    break 'read;
                                                }
                                                _ => None,
                                            };
                                            if let Some(instance) = reply {
                                                let bytes =
                                                    encode_frame(&WorkerToManager::LibraryReady {
                                                        instance,
                                                    })
                                                    .expect("reply encodes");
                                                client.enqueue(&ep, token, &bytes);
                                            }
                                        }
                                        Ok(None) => break,
                                        Err(_) => {
                                            client.open = false;
                                            break 'read;
                                        }
                                    }
                                }
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break 'read,
                            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                            Err(_) => {
                                client.open = false;
                                break 'read;
                            }
                        }
                    }
                }
                if client.open && ev.readiness & EPOLLOUT != 0 {
                    client.flush(&ep, token);
                }
                if !client.open {
                    let _ = ep.delete(client.stream.as_raw_fd());
                    live -= 1;
                }
            }
        }
        Ok(())
    }
}

impl Drop for EchoFleet {
    fn drop(&mut self) {
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

// --------------------------------------------------------- manager side

/// The manager half of the benchmark: one reactor transport with `n`
/// fleet clients joined and ready to echo.
pub struct FleetBench {
    transport: TcpTransport,
    workers: Vec<WorkerId>,
    fleet: Option<EchoFleet>,
    /// Wall time from first dial to the n-th `Joined` event.
    pub join_wave_s: f64,
    next_tag: u64,
}

impl FleetBench {
    /// Bind, launch an [`EchoFleet`] of `n`, and wait for every join.
    pub fn start(n: usize) -> FleetBench {
        let mut transport = TcpTransport::listen("127.0.0.1:0").expect("bind loopback");
        let addr = transport.local_addr();
        let started = Instant::now();
        let fleet = EchoFleet::launch(addr, n).expect("fleet launches");
        let mut workers = Vec::with_capacity(n);
        while workers.len() < n {
            match transport.recv_timeout(Duration::from_secs(30)) {
                Ok(TransportEvent::Joined { worker, .. }) => workers.push(worker),
                Ok(_) => {}
                Err(e) => panic!("waiting for {n} joins, got {} then {e:?}", workers.len()),
            }
        }
        let join_wave_s = started.elapsed().as_secs_f64();
        FleetBench {
            transport,
            workers,
            fleet: Some(fleet),
            join_wave_s,
            next_tag: 0,
        }
    }

    pub fn connections(&self) -> usize {
        self.workers.len()
    }

    /// Collect `expected` echo messages, panicking on a lost worker.
    fn drain_echoes(&mut self, expected: usize) {
        let mut got = 0;
        while got < expected {
            match self.transport.recv_timeout(Duration::from_secs(30)) {
                Ok(TransportEvent::Message { .. }) => got += 1,
                Ok(TransportEvent::Left { worker }) => {
                    panic!("worker {worker} died mid-benchmark")
                }
                Ok(_) => {}
                Err(e) => panic!("waiting for {expected} echoes, got {got} then {e:?}"),
            }
        }
    }

    /// One synchronous wave: a small ping to every worker, then wait for
    /// every echo. Returns the wall time of the wave.
    pub fn ping_wave(&mut self) -> f64 {
        let started = Instant::now();
        let mut tag = self.next_tag;
        for &worker in &self.workers {
            tag += 1;
            let instance = LibraryInstanceId(tag);
            self.transport
                .send(worker, ManagerToWorker::RemoveLibrary { instance })
                .expect("ping delivered");
        }
        self.next_tag = tag;
        self.drain_echoes(self.workers.len());
        started.elapsed().as_secs_f64()
    }

    /// Broadcast one library-image install (`payload` bytes of source) to
    /// the whole fleet and wait for every ack. With `shared`, the frame is
    /// encoded **once** and fanned out as shared bytes
    /// ([`Transport::send_frame`]); otherwise every worker pays a fresh
    /// serialization ([`Transport::send`]). Returns the wall time.
    pub fn broadcast_install(&mut self, payload: usize, shared: bool) -> f64 {
        self.next_tag += 1;
        let msg = ManagerToWorker::InstallLibrary {
            image: LibraryImage {
                instance: LibraryInstanceId(self.next_tag),
                source: "x".repeat(payload),
                serialized_functions: vec![],
                setup: None,
                default_mode: ExecMode::Direct,
                compiled: None,
            },
            stage: vec![],
        };
        let started = Instant::now();
        if shared {
            let frame = Frame::encode_once(msg).expect("image encodes");
            for &worker in &self.workers {
                self.transport
                    .send_frame(worker, &frame)
                    .expect("install delivered");
            }
        } else {
            for &worker in &self.workers {
                self.transport
                    .send(worker, msg.clone())
                    .expect("install delivered");
            }
        }
        self.drain_echoes(self.workers.len());
        started.elapsed().as_secs_f64()
    }

    /// Shut the fleet down and return the transport's traffic counters.
    pub fn finish(mut self) -> TransportStats {
        self.transport.shutdown();
        let stats = self.transport.stats();
        if let Some(fleet) = self.fleet.take() {
            fleet.finish().expect("fleet exits cleanly");
        }
        stats
    }
}

// ----------------------------------------------------------- experiment

/// Source bytes of the broadcast image: big enough that serialization
/// dominates the fan-out, small enough to stay far from MAX_FRAME.
const BROADCAST_PAYLOAD: usize = 128 * 1024;

/// `perf --net`: the scaling table. `max_conns` caps the largest fleet
/// (CI smoke runs at 256); `scale` shrinks the per-size message budget.
pub fn perf_net(scale: f64, max_conns: usize) -> Table {
    let budget = ((4_000f64 * scale).round() as u64).max(200);
    let sizes: Vec<usize> = FLEET_SIZES
        .iter()
        .copied()
        .filter(|&n| n <= max_conns)
        .collect();
    assert!(!sizes.is_empty(), "--conns below the smallest fleet size");
    let largest = *sizes.last().expect("non-empty sizes");

    let mut t = Table::new(
        "perf_net",
        "Reactor transport scaling: one manager thread vs fleet size",
        &["wall_s", "messages", "msgs_per_sec"],
    );

    let mut rows_json = Vec::new();
    let mut broadcast_json = String::new();
    for &n in &sizes {
        let mut bench = FleetBench::start(n);
        let waves = (budget / n as u64).max(2);
        // one untimed wave warms every connection's buffers and path
        bench.ping_wave();
        let started = Instant::now();
        for _ in 0..waves {
            bench.ping_wave();
        }
        let wall = started.elapsed().as_secs_f64();
        let msgs = waves * n as u64;
        // a message = one manager→worker ping + its worker→manager echo
        let rtt_us = wall / msgs as f64 * 1e6;
        t.row(
            format!("round-trips, {n} conns"),
            vec![wall, msgs as f64, msgs as f64 / wall],
        );
        rows_json.push(format!(
            "    {{ \"connections\": {n}, \"join_wave_s\": {:.6}, \"waves\": {waves}, \
             \"messages\": {msgs}, \"wall_s\": {wall:.6}, \"msgs_per_sec\": {:.1}, \
             \"round_trip_us\": {rtt_us:.1} }}",
            bench.join_wave_s,
            msgs as f64 / wall,
        ));

        if n == largest {
            // the serialize-once win, measured on the largest fleet: the
            // same 128 KiB image install, N encodes vs one
            let per_worker = bench.broadcast_install(BROADCAST_PAYLOAD, false);
            let once = bench.broadcast_install(BROADCAST_PAYLOAD, true);
            let win = per_worker / once;
            t.row(
                format!("broadcast install ({n} encodes)"),
                vec![per_worker, n as f64, n as f64 / per_worker],
            );
            t.row(
                "broadcast install (encode once)",
                vec![once, n as f64, n as f64 / once],
            );
            t.row("serialize-once speedup", vec![win, 0.0, 0.0]);
            broadcast_json = format!(
                "  \"broadcast\": {{ \"connections\": {n}, \"payload_bytes\": {BROADCAST_PAYLOAD}, \
                 \"per_worker_encode_s\": {per_worker:.6}, \"encode_once_s\": {once:.6}, \
                 \"speedup\": {win:.2} }},\n"
            );
        }
        let stats = bench.finish();
        assert_eq!(stats.workers.len(), n, "every connection metered");
        assert_eq!(stats.handshake_rejects, 0, "no rejected handshakes");
    }

    t.note(format!(
        "echo fleet on one epoll client thread; a wave = 1 ping to every \
         conn + all echoes; ~{budget} messages per fleet size; broadcast \
         payload {BROADCAST_PAYLOAD} B at the largest size"
    ));
    t.note("wall-clock, varies run to run; writes BENCH_net.json");

    let json = format!(
        "{{\n  \"benchmark\": \"net_reactor_scaling\",\n  \"sizes\": [\n{}\n  ],\n{}  \
         \"budget_messages\": {budget}\n}}\n",
        rows_json.join(",\n"),
        broadcast_json,
    );
    if let Err(e) = std::fs::write("BENCH_net.json", json) {
        eprintln!("warning: could not write BENCH_net.json: {e}");
    }
    t
}
