//! `repro shard` — the federated-sharding experiments.
//!
//! Sim substrate: [`shard_sweep`] runs a manager-bound submission storm
//! through 1→8 scheduling shards (`vine_sim::simulate_sharded`) and
//! reports aggregate submission throughput per shard count, writing
//! `BENCH_shard.json`. The single-manager scheduling path serializes
//! every dispatch behind one service queue (Table 2's per-invocation
//! overhead plus pending-table scans), so sharding the manager is
//! near-linear until routing imbalance bites; per-shard pending tables
//! also shrink, which is why the scan term makes the speedup slightly
//! superlinear at full scale.
//!
//! Live substrate: [`serve_shard`] and [`route`] are the process drivers
//! behind `repro serve --shard` / `repro route` (see DESIGN.md §6.11).

use crate::table::Table;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc;
use std::time::Duration;
use vine_core::config::ReuseLevel;
use vine_core::context::LibrarySpec;
use vine_core::ids::{InvocationId, ShardId};
use vine_core::resources::Resources;
use vine_core::task::{FunctionCall, Outcome, WorkProfile, WorkUnit};
use vine_core::VineError;
use vine_manager::ShardRouter;
use vine_proto::{
    read_frame, render_shard_stats, write_frame, RouterToShard, ShardStats, ShardToRouter,
};
use vine_runtime::{Runtime, RuntimeConfig, TcpTransport, Transport};
use vine_sim::{simulate_sharded, SimConfig, Workload};

/// Shard counts swept by `repro shard`.
pub const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// A manager-bound submission storm: `n` cheap invocations spread
/// round-robin over `libs` distinct libraries. Executions are tiny, so
/// every run is limited by its managers' dispatch service rate — the
/// single-manager ownership cost this experiment isolates. Distinct
/// libraries give the router distinct function-context digests to spread
/// across the shard ring.
struct RouteStorm {
    libs: u32,
    n: u64,
}

impl RouteStorm {
    fn lib_name(l: u32) -> String {
        format!("storm-lib-{l}")
    }
}

impl Workload for RouteStorm {
    fn libraries(&self) -> Vec<(LibrarySpec, WorkProfile)> {
        (0..self.libs)
            .map(|l| {
                let mut spec = LibrarySpec::new(Self::lib_name(l));
                spec.functions = vec!["f".into()];
                spec.resources = Some(Resources::lnni_invocation());
                spec.slots = Some(1);
                // no context files: installs are cheap, so the storm
                // isolates dispatch cost rather than transfer bandwidth
                (spec, WorkProfile::zero())
            })
            .collect()
    }

    fn initial_units(&mut self) -> Vec<WorkUnit> {
        (0..self.n)
            .map(|i| {
                let mut c = FunctionCall::new(
                    InvocationId(i),
                    Self::lib_name(i as u32 % self.libs),
                    "f",
                    vec![0u8; 16],
                );
                c.resources = Resources::lnni_invocation();
                c.profile = WorkProfile {
                    exec_gflop: 0.4, // ~40 ms on a paper worker core pair
                    output_bytes: 128,
                    ..WorkProfile::zero()
                };
                WorkUnit::Call(c)
            })
            .collect()
    }
}

/// `repro shard`: sweep the federation from 1 to 8 shards over the same
/// submission storm and fleet, and measure aggregate submission
/// throughput (completed units per second of federation makespan — the
/// slowest shard closes the run).
pub fn shard_sweep(scale: f64) -> Table {
    let n = ((1_000_000f64 * scale).round() as u64).max(400);
    // enough distinct contexts that 8 shards draw even loads, capped so
    // tiny --scale smokes still exercise multi-library routing
    let libs = ((n / 64).clamp(16, 512)) as u32;
    let workers = 64;
    let cfg = SimConfig::paper(ReuseLevel::L3, workers);

    let mut t = Table::new(
        "shard",
        "Federated sharding: aggregate submission throughput, 1→8 shards",
        &[
            "shards",
            "throughput_per_sec",
            "speedup",
            "makespan_s",
            "max_shard_units",
        ],
    );

    let mut entries = String::new();
    let mut base_tput = 0.0f64;
    for (i, &shards) in SHARD_COUNTS.iter().enumerate() {
        let mut w = RouteStorm { libs, n };
        let fed = simulate_sharded(&cfg, shards, &mut w);
        assert_eq!(fed.completed, n, "every routed submission must complete");
        assert_eq!(fed.failed, 0);
        if shards == 1 {
            base_tput = fed.throughput;
        }
        let speedup = fed.throughput / base_tput;
        let max_units = fed.routed.iter().copied().max().unwrap_or(0);
        t.row(
            format!("{shards} shard(s)"),
            vec![
                shards as f64,
                fed.throughput,
                speedup,
                fed.makespan_s,
                max_units as f64,
            ],
        );
        if i > 0 {
            entries.push_str(",\n");
        }
        entries.push_str(&format!(
            "    {{ \"shards\": {shards}, \"throughput_per_sec\": {:.3}, \
             \"speedup\": {speedup:.3}, \"makespan_s\": {:.3}, \
             \"events\": {} }}",
            fed.throughput, fed.makespan_s, fed.events
        ));
    }
    t.note(format!(
        "{n} submissions over {libs} libraries, {workers} workers partitioned \
         across shards; simulated time; routing by function-context digest"
    ));

    let json = format!(
        "{{\n  \"benchmark\": \"shard_throughput\",\n  \"units\": {n},\n  \
         \"libraries\": {libs},\n  \"workers\": {workers},\n  \"sweep\": [\n{entries}\n  ]\n}}\n"
    );
    if let Err(e) = std::fs::write("BENCH_shard.json", json) {
        eprintln!("warning: could not write BENCH_shard.json: {e}");
    }
    t
}

// --------------------------------------------------------- live substrate

/// The library names a federated LNNI run installs and routes over.
/// `libs == 1` is the exact single-manager workload (library `lnni`);
/// `libs > 1` installs the same function context under `lnni-0..` so the
/// router has distinct digests to spread across the shard ring. Results —
/// and therefore the stdout digest — are identical either way, because
/// every copy computes the same function of the same arguments.
pub fn lnni_library_names(libs: u32) -> Vec<String> {
    if libs <= 1 {
        vec!["lnni".to_string()]
    } else {
        (0..libs).map(|l| format!("lnni-{l}")).collect()
    }
}

fn live_shard_stats(shard: ShardId, rt: &Runtime, workers: usize, routed: u64) -> ShardStats {
    let ts = rt.transport_stats();
    let (mut fi, mut fo, mut bi, mut bo) = (0u64, 0u64, 0u64, 0u64);
    for w in &ts.workers {
        fi += w.frames_in;
        fo += w.frames_out;
        bi += w.bytes_in;
        bo += w.bytes_out;
    }
    let queued = rt.queued() as u64;
    let running = rt.running() as u64;
    ShardStats {
        shard,
        workers: workers as u32,
        routed,
        finished: routed - queued - running,
        requeued: rt.requeues(),
        queued,
        running,
        frames_in: fi,
        frames_out: fo,
        bytes_in: bi,
        bytes_out: bo,
    }
}

/// `repro serve --shard ID --router ADDR`: one scheduling shard of a
/// federation. Boots its own worker fleet (in-process threads by default;
/// with `--listen` it is the same epoll-reactor TCP manager `repro serve
/// --listen` runs, and `repro join` workers dial in), installs the LNNI
/// workload's libraries, announces itself to the router, then serves
/// [`RouterToShard::Route`] submissions until `Shutdown` or the router
/// connection drops.
pub fn serve_shard(
    router_addr: &str,
    shard: ShardId,
    workers: usize,
    libs: u32,
    listen: Option<&str>,
) -> Result<(), VineError> {
    let cfg = RuntimeConfig {
        workers,
        worker_resources: crate::live::default_worker_resources(),
        registry: vine_apps::modules::full_registry(),
        ..Default::default()
    };
    let mut rt = match listen {
        Some(addr) => {
            let transport = TcpTransport::listen(addr)
                .map_err(|e| VineError::Protocol(format!("binding {addr}: {e}")))?;
            eprintln!(
                "# shard {shard} listening on {}, waiting for {workers} worker(s)",
                transport.local_addr()
            );
            Runtime::with_transport(cfg, Box::new(transport) as Box<dyn Transport>)?
        }
        None => Runtime::new(cfg),
    };
    for name in lnni_library_names(libs) {
        crate::live::install_lnni(&mut rt, &name)?;
    }

    let stream = TcpStream::connect(router_addr)
        .map_err(|e| VineError::Protocol(format!("dialing router {router_addr}: {e}")))?;
    stream.set_nodelay(true).ok();
    let mut writer = stream
        .try_clone()
        .map_err(|e| VineError::Protocol(format!("cloning router socket: {e}")))?;
    let mut reader = BufReader::new(stream);
    write_frame(
        &mut writer,
        &ShardToRouter::ShardJoin {
            shard,
            workers: workers as u32,
        },
    )
    .map_err(|e| VineError::Protocol(format!("shard join: {e}")))?;
    eprintln!("# shard {shard} joined router at {router_addr} ({workers} worker(s))");

    let (tx, rx) = mpsc::channel::<RouterToShard>();
    let downlink = std::thread::Builder::new()
        .name(format!("shard-{shard}-downlink"))
        .spawn(move || {
            while let Ok(msg) = read_frame::<RouterToShard>(&mut reader) {
                if tx.send(msg).is_err() {
                    break;
                }
            }
        })
        .expect("spawn downlink thread");

    let (mut routed, mut finished) = (0u64, 0u64);
    'serve: loop {
        // drain queued router commands first — block only when the shard
        // has nothing in flight (submissions batch up while units run)
        loop {
            let cmd = if routed == finished {
                match rx.recv() {
                    Ok(c) => c,
                    Err(_) => break 'serve, // router gone, nothing owed
                }
            } else {
                match rx.try_recv() {
                    Ok(c) => c,
                    Err(mpsc::TryRecvError::Empty) => break,
                    Err(mpsc::TryRecvError::Disconnected) => break 'serve,
                }
            };
            match cmd {
                RouterToShard::Route { unit } => {
                    rt.submit(*unit);
                    routed += 1;
                }
                RouterToShard::StatsRequest => {
                    let stats = live_shard_stats(shard, &rt, workers, routed);
                    if write_frame(&mut writer, &ShardToRouter::ShardStats { stats }).is_err() {
                        break 'serve;
                    }
                }
                RouterToShard::Shutdown => break 'serve,
            }
        }
        // commands drained and work outstanding: drive the next completion
        match rt.run_next()? {
            Some(outcome) => {
                finished += 1;
                if write_frame(&mut writer, &ShardToRouter::UnitDone { outcome }).is_err() {
                    break 'serve; // router gone mid-run
                }
            }
            None => {
                return Err(VineError::Internal(format!(
                    "shard {shard}: {} routed unit(s) vanished without an outcome",
                    routed - finished
                )));
            }
        }
    }
    eprintln!("# shard {shard} done: {routed} routed, {finished} finished");
    rt.shutdown();
    // unblock the downlink reader if the router is still connected
    let _ = writer.shutdown(std::net::Shutdown::Both);
    drop(rx);
    let _ = downlink.join();
    Ok(())
}

/// Route `queue` onto live shards, re-routing through surviving shards
/// whenever a write reveals a dead one (its whole in-flight ledger —
/// including the unit that just failed to send — rejoins the queue).
fn dispatch_units(
    sr: &mut ShardRouter,
    writers: &mut BTreeMap<ShardId, TcpStream>,
    dead: &mut BTreeSet<ShardId>,
    mut queue: VecDeque<WorkUnit>,
) -> Result<(), VineError> {
    while let Some(unit) = queue.pop_front() {
        let Some(sid) = sr.route(unit.clone()) else {
            return Err(VineError::Internal(
                "no shards left to route to".to_string(),
            ));
        };
        let sent = writers
            .get_mut(&sid)
            .is_some_and(|w| write_frame(w, &RouterToShard::Route { unit: unit.into() }).is_ok());
        if !sent && dead.insert(sid) {
            writers.remove(&sid);
            let orphans = sr.shard_left(sid);
            eprintln!(
                "# shard {sid} unreachable, re-routing {} unit(s)",
                orphans.len()
            );
            queue.extend(orphans);
        }
    }
    Ok(())
}

/// `repro route --listen ADDR --shards N`: the routing front-end of a
/// federated deployment. Waits for N `repro serve --shard` processes to
/// dial in, hashes each LNNI submission's function-context digest onto
/// the shard ring, collects results (re-routing the in-flight ledger of
/// any shard whose connection dies — the `kill -9` path), prints the
/// per-shard stats table on stderr and the deterministic digest on
/// stdout. The digest byte-matches `repro serve --local` for the same
/// `--n`, whatever the shard count, spread, or fault schedule.
pub fn route(listen: &str, shards: usize, n: u64, libs: u32) -> Result<String, VineError> {
    let listener = TcpListener::bind(listen)
        .map_err(|e| VineError::Protocol(format!("binding {listen}: {e}")))?;
    let addr = listener
        .local_addr()
        .map_err(|e| VineError::Protocol(format!("local addr: {e}")))?;
    eprintln!("# router listening on {addr}, waiting for {shards} shard(s)");

    let (tx, rx) = mpsc::channel::<(ShardId, Option<ShardToRouter>)>();
    let mut writers: BTreeMap<ShardId, TcpStream> = BTreeMap::new();
    while writers.len() < shards {
        let (stream, peer) = listener
            .accept()
            .map_err(|e| VineError::Protocol(format!("accept: {e}")))?;
        stream.set_nodelay(true).ok();
        let mut reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| VineError::Protocol(format!("cloning shard socket: {e}")))?,
        );
        let join = read_frame::<ShardToRouter>(&mut reader)
            .map_err(|e| VineError::Protocol(format!("shard handshake from {peer}: {e}")))?;
        let (sid, w) = match join {
            ShardToRouter::ShardJoin { shard, workers } => (shard, workers),
            other => {
                return Err(VineError::Protocol(format!(
                    "expected ShardJoin, got {other:?}"
                )))
            }
        };
        if writers.contains_key(&sid) {
            return Err(VineError::Protocol(format!(
                "duplicate shard id {sid} announced"
            )));
        }
        eprintln!("# shard {sid} connected from {peer} ({w} worker(s))");
        writers.insert(sid, stream);
        let tx = tx.clone();
        std::thread::Builder::new()
            .name(format!("router-read-{sid}"))
            .spawn(move || {
                loop {
                    match read_frame::<ShardToRouter>(&mut reader) {
                        Ok(msg) => {
                            if tx.send((sid, Some(msg))).is_err() {
                                return;
                            }
                        }
                        Err(_) => {
                            // connection gone — crash and graceful close alike
                            let _ = tx.send((sid, None));
                            return;
                        }
                    }
                }
            })
            .expect("spawn router reader");
    }
    drop(tx);

    let mut sr = ShardRouter::new();
    for &sid in writers.keys() {
        sr.shard_joined(sid);
    }
    let names = lnni_library_names(libs);
    for name in &names {
        sr.register_library(&crate::live::lnni_spec_named(name));
        // stderr breadcrumb: which shard owns each library's context — the
        // fault smoke reads this to pick its kill victim
        let probe = WorkUnit::Call(crate::live::lnni_call(u64::MAX, name)?);
        if let Some(owner) = sr.shard_for_unit(&probe) {
            eprintln!("# route: {name} -> {owner}");
        }
    }

    let mut dead: BTreeSet<ShardId> = BTreeSet::new();
    let queue: VecDeque<WorkUnit> = (0..n)
        .map(|i| {
            crate::live::lnni_call(i, &names[(i % names.len() as u64) as usize]).map(WorkUnit::Call)
        })
        .collect::<Result<_, _>>()?;
    eprintln!(
        "# routing {n} submission(s) over {} librar(ies)",
        names.len()
    );
    dispatch_units(&mut sr, &mut writers, &mut dead, queue)?;

    let mut outcomes: Vec<Outcome> = Vec::new();
    while (outcomes.len() as u64) < n {
        let (sid, msg) = rx.recv_timeout(Duration::from_secs(60)).map_err(|_| {
            VineError::Timeout(format!(
                "router: no progress with {} of {n} outcome(s) collected",
                outcomes.len()
            ))
        })?;
        match msg {
            Some(ShardToRouter::UnitDone { outcome }) => {
                // the ledger guards against double-counting a unit that
                // completed on a shard we had already given up on
                if sr.unit_done(sid, outcome.unit).is_some() {
                    outcomes.push(outcome);
                }
            }
            Some(ShardToRouter::ShardStats { .. }) => {} // late report
            Some(ShardToRouter::ShardJoin { .. }) => {
                return Err(VineError::Protocol(format!(
                    "unexpected ShardJoin from admitted shard {sid}"
                )));
            }
            Some(ShardToRouter::ShardLeave { .. }) | None => {
                if dead.insert(sid) {
                    writers.remove(&sid);
                    let orphans = sr.shard_left(sid);
                    eprintln!("# shard {sid} left, re-routing {} unit(s)", orphans.len());
                    if sr.shard_count() == 0 && (outcomes.len() as u64) < n {
                        return Err(VineError::Internal(
                            "every shard left before the run completed".to_string(),
                        ));
                    }
                    dispatch_units(&mut sr, &mut writers, &mut dead, orphans.into())?;
                }
            }
        }
    }

    // per-shard aggregates from the survivors, then shut the fleet down
    for w in writers.values_mut() {
        let _ = write_frame(w, &RouterToShard::StatsRequest);
    }
    let mut reports: Vec<ShardStats> = Vec::new();
    while reports.len() < writers.len() {
        match rx.recv_timeout(Duration::from_secs(5)) {
            Ok((_, Some(ShardToRouter::ShardStats { stats }))) => reports.push(stats),
            Ok(_) => {}
            Err(_) => break,
        }
    }
    reports.sort_by_key(|s| s.shard);
    if !reports.is_empty() {
        eprint!("{}", render_shard_stats(&reports));
    }
    eprintln!(
        "# router: {} routed ({} re-routed), {} of {shards} shard(s) survived",
        sr.routed(),
        sr.rerouted(),
        writers.len()
    );
    for w in writers.values_mut() {
        let _ = write_frame(w, &RouterToShard::Shutdown);
    }
    Ok(crate::live::digest(&outcomes))
}
