//! Live-cluster drivers behind `repro serve` / `repro join` and the
//! `--transport` flag: the same LNNI workload the in-process tests run,
//! executable as one process (in-proc transport) or as a manager plus
//! worker OS processes dialing in over TCP.
//!
//! Every driver ends by printing a **digest**: one line per invocation
//! (sorted by id, with its decoded result) and a trailing summary line.
//! The digest is a pure function of the workload, so an in-process run and
//! a TCP run — or two TCP runs with different worker fates — byte-match,
//! which is exactly what the loopback smoke test compares.

use crate::table::Table;
use std::time::Instant;
use vine_core::context::{ContextSpec, LibrarySpec, SetupSpec};
use vine_core::ids::InvocationId;
use vine_core::resources::Resources;
use vine_core::task::{ExecMode, FunctionCall, Outcome, UnitId, WorkUnit};
use vine_lang::{pickle, Value};
use vine_runtime::{
    decode_result, run_tcp_worker, Runtime, RuntimeConfig, TcpTransport, Transport,
};

/// Capacity a dialing worker announces (`repro join`): a developer-laptop
/// slice, not the paper's 32-core node.
pub fn default_worker_resources() -> Resources {
    Resources::new(8, 16 * 1024, 16 * 1024)
}

/// The LNNI library spec under an arbitrary name. The name is the routing
/// tenant identity: a federated run can install the same function context
/// under several names (`lnni-0`, `lnni-1`, …) to give the shard router
/// distinct digests to spread, without changing any invocation's result.
pub(crate) fn lnni_spec_named(name: &str) -> LibrarySpec {
    let mut spec = LibrarySpec::new(name);
    spec.functions = vec!["infer".into()];
    spec.resources = Some(Resources::new(2, 2048, 2048));
    spec.slots = Some(2);
    spec.exec_mode = ExecMode::Direct;
    spec.context = ContextSpec {
        setup: Some(SetupSpec {
            function: "context_setup".into(),
            args_blob: vec![],
        }),
        ..Default::default()
    };
    spec
}

/// Install the LNNI library into a live runtime under `name`.
pub(crate) fn install_lnni(rt: &mut Runtime, name: &str) -> Result<(), vine_core::VineError> {
    rt.install_library(
        lnni_spec_named(name),
        vine_apps::lnni::LNNI_SOURCE,
        vec![],
        &[Value::Int(3), Value::Int(32)], // 3 layers, dim 32
    )
}

/// The i-th LNNI inference call, against `library`. The arguments (and so
/// the result, and so the digest line) depend only on `i`, never on which
/// library name or shard served it.
pub(crate) fn lnni_call(i: u64, library: &str) -> Result<FunctionCall, vine_core::VineError> {
    let mut c = FunctionCall::new(
        InvocationId(i),
        library,
        "infer",
        pickle::serialize_args(&[Value::Int(i as i64 * 16), Value::Int(16)])?,
    );
    c.resources = Resources::new(1, 512, 512);
    Ok(c)
}

/// Install the LNNI library, submit `n` inference invocations, run to
/// completion, and render the deterministic digest.
pub fn run_lnni_live(mut rt: Runtime, n: u64) -> Result<String, vine_core::VineError> {
    install_lnni(&mut rt, "lnni")?;
    for i in 0..n {
        rt.submit(WorkUnit::Call(lnni_call(i, "lnni")?));
    }
    let outcomes = rt.run_until_idle()?;
    // per-worker traffic counters on stderr (stdout is the byte-compared
    // digest); the in-proc transport meters frames but has no wire bytes
    let stats = rt.transport_stats();
    if !stats.workers.is_empty() || stats.handshake_rejects > 0 {
        eprint!("{}", stats.render());
    }
    rt.shutdown();
    Ok(digest(&outcomes))
}

/// The deterministic run summary: per-invocation results sorted by id,
/// then the trace statistics the smoke test compares.
pub fn digest(outcomes: &[Outcome]) -> String {
    let mut lines: Vec<String> = outcomes
        .iter()
        .map(|o| {
            let id = match o.unit {
                UnitId::Call(i) => format!("i{}", i.0),
                UnitId::Task(t) => format!("t{}", t.0),
            };
            if o.success {
                match decode_result(o) {
                    Ok(v) => format!("{id} ok {v:?}"),
                    Err(e) => format!("{id} undecodable {e}"),
                }
            } else {
                format!("{id} err {}", o.error.clone().unwrap_or_default())
            }
        })
        .collect();
    lines.sort();
    let failures = outcomes.iter().filter(|o| !o.success).count();
    lines.push(format!("outcomes={} failures={}", outcomes.len(), failures));
    lines.join("\n")
}

/// `repro serve --local`: the whole workload in this process over the
/// in-proc transport — the reference digest for loopback comparison.
pub fn serve_local(workers: usize, n: u64) -> Result<String, vine_core::VineError> {
    let rt = Runtime::new(RuntimeConfig {
        workers,
        worker_resources: default_worker_resources(),
        registry: vine_apps::modules::full_registry(),
        ..Default::default()
    });
    run_lnni_live(rt, n)
}

/// `repro serve --listen ADDR`: bind, wait for `workers` processes to
/// dial in (`repro join ADDR`), run the workload, print the digest.
pub fn serve_tcp(listen: &str, workers: usize, n: u64) -> Result<String, vine_core::VineError> {
    let transport = TcpTransport::listen(listen)
        .map_err(|e| vine_core::VineError::Protocol(format!("binding {listen}: {e}")))?;
    eprintln!(
        "# manager listening on {}, waiting for {workers} worker(s)",
        transport.local_addr()
    );
    let rt = Runtime::with_transport(
        RuntimeConfig {
            workers,
            worker_resources: default_worker_resources(),
            registry: vine_apps::modules::full_registry(),
            ..Default::default()
        },
        Box::new(transport),
    )?;
    eprintln!("# {workers} worker(s) joined, running {n} invocations");
    run_lnni_live(rt, n)
}

/// `repro join ADDR`: be a worker process until the manager shuts us down
/// (or the connection dies).
pub fn join(addr: &str) -> Result<(), vine_core::VineError> {
    run_tcp_worker(
        addr,
        default_worker_resources(),
        vine_apps::modules::full_registry(),
    )
}

// ------------------------------------------------- live Table 2 analogue

const TRIVIAL_SOURCE: &str = "def trivial(a, b) { return a + b }\n";

fn trivial_spec() -> LibrarySpec {
    let mut spec = LibrarySpec::new("trivial");
    spec.functions = vec!["trivial".into()];
    spec.resources = Some(Resources::new(1, 512, 512));
    spec.slots = Some(2);
    spec.exec_mode = ExecMode::Direct;
    spec
}

fn run_trivial(mut rt: Runtime, n: u64) -> f64 {
    rt.install_library(trivial_spec(), TRIVIAL_SOURCE, vec![], &[])
        .unwrap();
    for i in 0..n {
        let mut c = FunctionCall::new(
            InvocationId(i),
            "trivial",
            "trivial",
            pickle::serialize_args(&[Value::Int(i as i64), Value::Int(1)]).unwrap(),
        );
        c.resources = Resources::new(1, 256, 256);
        rt.submit(WorkUnit::Call(c));
    }
    let started = Instant::now();
    let outcomes = rt.run_until_idle().unwrap();
    let total = started.elapsed().as_secs_f64();
    assert_eq!(outcomes.len() as u64, n);
    assert!(outcomes.iter().all(|o| o.success));
    rt.shutdown();
    total
}

/// The live Table 2 analogue: per-invocation overhead of a trivial
/// function through the *real* runtime, per transport. `tcp` adds the
/// framed-loopback row alongside in-process, so the serialization +
/// socket cost is read directly off the table.
pub fn table2_live(scale: f64, tcp: bool) -> Table {
    let n = ((1_000f64 * scale).round() as u64).max(50);
    let mut t = Table::new(
        "table2_live",
        "Live Per-Invocation Overhead by Transport (Table 2 analogue)",
        &["total_s", "overhead_per_invocation_s"],
    );

    let total = run_trivial(
        Runtime::new(RuntimeConfig {
            workers: 1,
            worker_resources: default_worker_resources(),
            ..Default::default()
        }),
        n,
    );
    t.row("Invocation (inproc)", vec![total, total / n as f64]);

    if tcp {
        let transport = TcpTransport::listen("127.0.0.1:0").expect("bind loopback");
        let addr = transport.local_addr();
        let worker = std::thread::spawn(move || {
            run_tcp_worker(
                addr,
                default_worker_resources(),
                vine_lang::ModuleRegistry::new(),
            )
            .unwrap();
        });
        let rt = Runtime::with_transport(
            RuntimeConfig {
                workers: 1,
                worker_resources: default_worker_resources(),
                ..Default::default()
            },
            Box::new(transport) as Box<dyn Transport>,
        )
        .expect("tcp worker joins");
        let total = run_trivial(rt, n);
        worker.join().unwrap();
        t.row("Invocation (tcp loopback)", vec![total, total / n as f64]);
    }

    t.note(format!("n = {n} trivial invocations, 1 worker, wall-clock"));
    t.note("timing rows vary run to run; absent from the committed reference output");
    t
}
