//! Common result table: printable, serializable, comparable.

use serde::Serialize;

/// One experiment's output: labeled rows of numeric columns.
#[derive(Clone, Debug, Serialize)]
pub struct Table {
    pub id: String,
    pub title: String,
    pub columns: Vec<String>,
    pub rows: Vec<(String, Vec<f64>)>,
    pub notes: Vec<String>,
}

impl Table {
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Table {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    pub fn row(&mut self, label: impl Into<String>, values: Vec<f64>) -> &mut Self {
        debug_assert_eq!(values.len(), self.columns.len());
        self.rows.push((label.into(), values));
        self
    }

    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    pub fn get(&self, row: &str, column: &str) -> Option<f64> {
        let c = self.columns.iter().position(|x| x == column)?;
        let (_, values) = self.rows.iter().find(|(l, _)| l == row)?;
        values.get(c).copied()
    }

    /// Render as a markdown-ish table.
    pub fn render(&self) -> String {
        let mut out = format!("## {} — {}\n\n", self.id, self.title);
        let label_w = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain([8])
            .max()
            .unwrap();
        out.push_str(&format!("| {:label_w$} |", ""));
        for c in &self.columns {
            out.push_str(&format!(" {c:>14} |"));
        }
        out.push('\n');
        out.push_str(&format!("|{}|", "-".repeat(label_w + 2)));
        for _ in &self.columns {
            out.push_str(&format!("{}|", "-".repeat(16)));
        }
        out.push('\n');
        for (label, values) in &self.rows {
            out.push_str(&format!("| {label:label_w$} |"));
            for v in values {
                out.push_str(&format!(" {:>14} |", format_value(*v)));
            }
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("\n> {note}\n"));
        }
        out
    }

    pub fn print(&self) {
        println!("{}", self.render());
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("table serializes")
    }
}

fn format_value(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.5}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut t = Table::new("t1", "demo", &["a", "b"]);
        t.row("r1", vec![1.0, 2.0]).row("r2", vec![3.5, 4000.0]);
        t.note("a note");
        assert_eq!(t.get("r1", "a"), Some(1.0));
        assert_eq!(t.get("r2", "b"), Some(4000.0));
        assert_eq!(t.get("r3", "a"), None);
        assert_eq!(t.get("r1", "c"), None);
        let rendered = t.render();
        assert!(rendered.contains("r1"));
        assert!(rendered.contains("4000"));
        assert!(rendered.contains("a note"));
        assert!(t.to_json().contains("\"id\": \"t1\""));
    }
}
