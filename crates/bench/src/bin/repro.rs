//! `repro` — regenerate the paper's tables and figures, and pre-flight
//! workflow programs.
//!
//! ```text
//! repro all [--scale 0.05] [--json] [--jobs N]
//! repro fig6a table4 ...
//! repro table2 --transport tcp       # + live loopback overhead rows
//! repro perf [--sim | --lang | --net [--conns N]]
//! repro lint [file.vine ...]
//! repro analyze [file.vine ...] [--check]   # context-discovery report
//! repro serve --listen ADDR [--workers N] [--n N]   # live TCP manager
//! repro serve --local [--workers N] [--n N]         # same run, in-proc
//! repro serve --shard ID --router ADDR              # one federation shard
//! repro route --listen ADDR [--shards N] [--n N]    # federation front-end
//! repro join ADDR                                   # live TCP worker
//! repro --list
//! ```
//!
//! `--jobs N` caps the worker threads used to fan out independent
//! simulation cells (and independent experiments); the default is the
//! machine's available parallelism. Every cell is a pure function of its
//! config and seed and results are collected into pre-sized, input-ordered
//! slots, so output is byte-identical at any `--jobs` value — `--jobs 1`
//! runs the exact sequential path (CI byte-compares the two).

use bench::{experiments, live, net};
use rayon::prelude::*;
use std::collections::BTreeSet;

/// `repro serve [--listen ADDR | --local] [--workers N] [--n N]` — run the
/// small live LNNI workload as a manager, printing the deterministic
/// digest on stdout. With `--listen`, worker processes must dial in via
/// `repro join ADDR`; with `--local`, workers are in-process threads and
/// the digest is the reference a TCP run must byte-match.
///
/// `repro serve --shard ID --router ADDR [--libs L] [--listen ADDR]` runs
/// one scheduling shard of a federation instead: no digest (the router
/// prints it); the shard serves routed submissions until told to stop.
fn run_serve(args: &[String]) -> ! {
    let mut listen: Option<String> = None;
    let mut local = false;
    let mut workers = 2usize;
    let mut n = 200u64;
    let mut shard: Option<u32> = None;
    let mut router: Option<String> = None;
    let mut libs = 1u32;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--listen" => listen = it.next().cloned(),
            "--local" => local = true,
            "--workers" => {
                workers = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--workers expects an integer >= 1");
                    std::process::exit(2);
                })
            }
            "--n" => {
                n = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--n expects an integer >= 1");
                    std::process::exit(2);
                })
            }
            "--shard" => {
                shard = it.next().and_then(|s| s.parse().ok());
                if shard.is_none() {
                    eprintln!("--shard expects an integer shard id");
                    std::process::exit(2);
                }
            }
            "--router" => router = it.next().cloned(),
            "--libs" => {
                libs = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|l| *l >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("--libs expects an integer >= 1");
                        std::process::exit(2);
                    })
            }
            other => {
                eprintln!("serve: unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }
    if let Some(id) = shard {
        let Some(router_addr) = router else {
            eprintln!("serve: --shard requires --router ADDR");
            std::process::exit(2);
        };
        match bench::shard::serve_shard(
            &router_addr,
            vine_core::ids::ShardId(id),
            workers,
            libs,
            listen.as_deref(),
        ) {
            Ok(()) => std::process::exit(0),
            Err(e) => {
                eprintln!("serve --shard: {e}");
                std::process::exit(1);
            }
        }
    }
    let digest = if local {
        live::serve_local(workers, n)
    } else {
        let Some(addr) = listen else {
            eprintln!("serve: pass --listen ADDR (or --local for in-process workers)");
            std::process::exit(2);
        };
        live::serve_tcp(&addr, workers, n)
    };
    match digest {
        Ok(d) => {
            println!("{d}");
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("serve: {e}");
            std::process::exit(1);
        }
    }
}

/// `repro route --listen ADDR [--shards N] [--n N] [--libs L]` — the
/// routing front-end of a federated deployment: waits for N shard
/// processes, routes the LNNI workload by function-context digest, prints
/// the per-shard stats table on stderr and the digest on stdout. The
/// digest byte-matches `repro serve --local --n N`.
fn run_route(args: &[String]) -> ! {
    let mut listen: Option<String> = None;
    let mut shards = 2usize;
    let mut n = 200u64;
    let mut libs = 1u32;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--listen" => listen = it.next().cloned(),
            "--shards" => {
                shards = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|s| *s >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("--shards expects an integer >= 1");
                        std::process::exit(2);
                    })
            }
            "--n" => {
                n = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--n expects an integer >= 1");
                    std::process::exit(2);
                })
            }
            "--libs" => {
                libs = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|l| *l >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("--libs expects an integer >= 1");
                        std::process::exit(2);
                    })
            }
            other => {
                eprintln!("route: unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }
    let Some(addr) = listen else {
        eprintln!("route: pass --listen ADDR for shards to dial");
        std::process::exit(2);
    };
    match bench::shard::route(&addr, shards, n, libs) {
        Ok(d) => {
            println!("{d}");
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("route: {e}");
            std::process::exit(1);
        }
    }
}

/// `repro join ADDR` — be one worker process until the manager says stop.
fn run_join(args: &[String]) -> ! {
    let Some(addr) = args.first() else {
        eprintln!("join: pass the manager address, e.g. repro join 127.0.0.1:9440");
        std::process::exit(2);
    };
    match live::join(addr) {
        Ok(()) => std::process::exit(0),
        Err(e) => {
            eprintln!("join: {e}");
            std::process::exit(1);
        }
    }
}

/// `repro disasm FILE...` — compile vinescript modules to bytecode and
/// print their disassembly (the same stable text the golden tests pin).
fn run_disasm(args: &[String]) -> ! {
    if args.is_empty() {
        eprintln!("disasm: pass one or more .vine files");
        std::process::exit(2);
    }
    for p in args {
        let src = match std::fs::read_to_string(p) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{p}: {e}");
                std::process::exit(2);
            }
        };
        let prog = match vine_lang::parse(&src) {
            Ok(prog) => prog,
            Err(e) => {
                eprintln!("{p}: parse error: {e}");
                std::process::exit(1);
            }
        };
        let module = vine_lang::compile_module(&prog, &src);
        if args.len() > 1 {
            println!("== {p} ==");
        }
        print!("{}", vine_lang::bytecode::disassemble(&module.top));
    }
    std::process::exit(0);
}

/// `repro lint [paths...]` — run the vine-lint language + environment
/// layers over vinescript sources. With no paths, lints the embedded
/// application sources (LNNI, ExaMol) and every `examples/vinescript/*.vine`
/// file. Exits 1 if any target has errors.
fn run_lint(paths: &[String]) -> ! {
    // everything an activated worker environment could provide: the native
    // module registry plus every catalog package that provides a module
    let mut available: BTreeSet<String> = vine_apps::modules::full_registry()
        .names()
        .map(|s| s.to_string())
        .collect();
    available.extend(
        vine_env::catalog::standard_registry()
            .provided_modules()
            .map(|s| s.to_string()),
    );

    let mut targets: Vec<(String, String)> = Vec::new();
    if paths.is_empty() {
        targets.push(("lnni".into(), vine_apps::lnni::LNNI_SOURCE.to_string()));
        targets.push((
            "examol".into(),
            vine_apps::examol::EXAMOL_SOURCE.to_string(),
        ));
        if let Ok(entries) = std::fs::read_dir("examples/vinescript") {
            let mut files: Vec<_> = entries
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|x| x == "vine"))
                .collect();
            files.sort();
            for p in files {
                match std::fs::read_to_string(&p) {
                    Ok(src) => targets.push((p.display().to_string(), src)),
                    Err(e) => {
                        eprintln!("{}: {e}", p.display());
                        std::process::exit(2);
                    }
                }
            }
        }
    } else {
        for p in paths {
            match std::fs::read_to_string(p) {
                Ok(src) => targets.push((p.clone(), src)),
                Err(e) => {
                    eprintln!("{p}: {e}");
                    std::process::exit(2);
                }
            }
        }
    }

    let mut errors = 0;
    for (origin, src) in &targets {
        let report = vine_lint::lint_source_with_env(origin, src, &available, None);
        print!("{}", report.render());
        errors += report.error_count();
    }
    std::process::exit(if errors > 0 { 1 } else { 0 });
}

/// `repro analyze [paths...] [--check]` — run both context-discovery
/// passes (syntactic `vine_lang::autocontext` and dataflow `vine_flow`)
/// over vinescript modules and report, per target, what each pass hoists
/// into `context_setup`, which statements stay per-invocation residue,
/// and the effect summaries driving the decisions. With no paths,
/// analyzes the embedded naive LNNI user module, ExaMol, and every
/// `examples/vinescript/*.vine` file. For files, every top-level `def`
/// is treated as a work function. `--check` exits 1 on analysis errors.
fn run_analyze(args: &[String]) -> ! {
    use vine_lang::ast::StmtKind;

    let mut check = false;
    let mut paths: Vec<String> = Vec::new();
    for a in args {
        match a.as_str() {
            "--check" => check = true,
            other if other.starts_with("--") => {
                eprintln!("analyze: unknown flag '{other}'");
                std::process::exit(2);
            }
            p => paths.push(p.to_string()),
        }
    }

    // (origin, source, explicit work set — None means every top-level def)
    let mut targets: Vec<(String, String, Option<Vec<String>>)> = Vec::new();
    if paths.is_empty() {
        targets.push((
            "lnni-user".into(),
            vine_apps::lnni::LNNI_USER_SOURCE.to_string(),
            Some(vec!["classify".into(), "remaining".into()]),
        ));
        targets.push((
            "examol".into(),
            vine_apps::examol::EXAMOL_SOURCE.to_string(),
            Some(vec!["simulate".into(), "train".into(), "infer".into()]),
        ));
        if let Ok(entries) = std::fs::read_dir("examples/vinescript") {
            let mut files: Vec<_> = entries
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|x| x == "vine"))
                .collect();
            files.sort();
            for p in files {
                match std::fs::read_to_string(&p) {
                    Ok(src) => targets.push((p.display().to_string(), src, None)),
                    Err(e) => {
                        eprintln!("{}: {e}", p.display());
                        std::process::exit(2);
                    }
                }
            }
        }
    } else {
        for p in &paths {
            match std::fs::read_to_string(p) {
                Ok(src) => targets.push((p.clone(), src, None)),
                Err(e) => {
                    eprintln!("{p}: {e}");
                    std::process::exit(2);
                }
            }
        }
    }

    let mut failures = 0usize;
    for (origin, src, explicit_work) in &targets {
        println!("== {origin} ==");
        let prog = match vine_lang::parse(src) {
            Ok(p) => p,
            Err(e) => {
                println!("  parse error: {e}\n");
                failures += 1;
                continue;
            }
        };
        let work: Vec<String> = match explicit_work {
            Some(w) => w.clone(),
            None => prog
                .iter()
                .filter_map(|s| match &s.kind {
                    StmtKind::FuncDef(f) => Some(f.name.clone()),
                    _ => None,
                })
                .collect(),
        };
        let work_refs: Vec<&str> = work.iter().map(String::as_str).collect();
        // module-level statements eligible for hoisting (defs travel as code)
        let candidates = prog
            .iter()
            .filter(|s| !matches!(s.kind, StmtKind::FuncDef(_)))
            .count();
        println!(
            "  work functions: {}",
            if work.is_empty() {
                "(none)".into()
            } else {
                work.join(", ")
            }
        );

        let syn = vine_lang::autocontext::discover(src, &work_refs);
        let flow = vine_flow::discover(src, &work_refs);
        let syn_hoisted = match &syn {
            Ok(c) => {
                let h = candidates - c.residue.len();
                println!(
                    "  syntactic: hoisted {h}/{candidates}, residue {}",
                    c.residue.len()
                );
                Some(h)
            }
            Err(e) => {
                println!("  syntactic: error: {e}");
                failures += 1;
                None
            }
        };
        match &flow {
            Ok(f) => {
                let h = f.hoisted.len();
                let delta = syn_hoisted
                    .map(|s| format!("  [{:+} vs syntactic]", h as i64 - s as i64))
                    .unwrap_or_default();
                println!(
                    "  flow:      hoisted {h}/{candidates} ({} folded), residue {}{delta}",
                    f.folded,
                    f.context.residue.len()
                );
                let multiline = |tag: &str, text: &str| {
                    for (i, line) in text.lines().enumerate() {
                        if i == 0 {
                            println!("    {tag} {line}");
                        } else {
                            println!("    {}{line}", " ".repeat(tag.len() + 1));
                        }
                    }
                };
                for st in &f.hoisted {
                    match &st.folded_from {
                        Some(orig) => multiline("fold: ", &format!("{}  <-  {orig}", st.source)),
                        None => multiline("hoist:", &st.source),
                    }
                }
                for r in &f.context.residue {
                    multiline("stays:", r);
                }
                if !f.context.provides.is_empty() {
                    println!("  provides: {}", f.context.provides.join(", "));
                }
                for (name, eff) in &f.effects {
                    println!("  effect {name}: {}", eff.describe());
                }
            }
            Err(e) => {
                println!("  flow:      error: {e}");
                failures += 1;
            }
        }
        println!();
    }
    std::process::exit(if check && failures > 0 { 1 } else { 0 });
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("lint") {
        run_lint(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("analyze") {
        run_analyze(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("disasm") {
        run_disasm(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("serve") {
        run_serve(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("join") {
        run_join(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("route") {
        run_route(&args[1..]);
    }
    let mut scale = 1.0f64;
    let mut json = false;
    let mut jobs = 0usize; // 0 = available parallelism
    let mut sim = false;
    let mut lang = false;
    let mut net_flag = false;
    let mut conns = 1000usize;
    let mut transport: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|s| *s > 0.0 && *s <= 1.0)
                    .unwrap_or_else(|| {
                        eprintln!("--scale expects a number in (0, 1]");
                        std::process::exit(2);
                    });
            }
            "--jobs" => {
                jobs = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|j| *j >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("--jobs expects an integer >= 1");
                        std::process::exit(2);
                    });
            }
            "--json" => json = true,
            "--sim" => sim = true,
            "--lang" => lang = true,
            "--net" => net_flag = true,
            "--conns" => {
                conns = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|c| *c >= 2)
                    .unwrap_or_else(|| {
                        eprintln!("--conns expects an integer >= 2");
                        std::process::exit(2);
                    });
            }
            "--transport" => {
                transport = it
                    .next()
                    .filter(|t| t.as_str() == "inproc" || t.as_str() == "tcp")
                    .cloned();
                if transport.is_none() {
                    eprintln!("--transport expects 'inproc' or 'tcp'");
                    std::process::exit(2);
                }
            }
            "--list" => {
                for id in experiments::IDS {
                    println!("{id}");
                }
                return;
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [all | <id>...] [--scale S] [--json] [--jobs N] [--transport inproc|tcp]\n\
                     \x20      repro lint [file.vine ...]\n\
                     \x20      repro analyze [file.vine ...] [--check]\n\
                     \x20      repro serve [--listen ADDR | --local] [--workers N] [--n N]\n\
                     \x20      repro serve --shard ID --router ADDR [--workers N] [--libs L] [--listen ADDR]\n\
                     \x20      repro route --listen ADDR [--shards N] [--n N] [--libs L]\n\
                     \x20      repro join ADDR\n\
                     \x20      repro disasm file.vine ...\n\
                     experiments: {}\n\
                     extra: perf (scheduler self-benchmark, writes BENCH_sched.json)\n\
                     \x20      perf --sim (simulator event-core self-benchmark, writes BENCH_sim.json)\n\
                     \x20      perf --lang (VM vs tree-walker invocation benchmark, writes BENCH_lang.json)\n\
                     \x20      perf --net [--conns N] (reactor transport scaling, writes BENCH_net.json)\n\
                     \x20      shard (federated sharding 1\u{2192}8 shards, writes BENCH_shard.json)\n\
                     --conns N: cap the largest fleet size for perf --net (default 1000)\n\
                     --jobs N: worker threads for independent simulation cells\n\
                     \x20         (default: available parallelism; output is identical at any N)",
                    experiments::IDS.join(", ")
                );
                return;
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ids = experiments::IDS.iter().map(|s| s.to_string()).collect();
    }
    if (sim as u8) + (lang as u8) + (net_flag as u8) > 1 {
        eprintln!("--sim, --lang, and --net are mutually exclusive");
        std::process::exit(2);
    }
    if sim || lang || net_flag {
        for id in &mut ids {
            if id == "perf" {
                *id = if sim {
                    "perf_sim"
                } else if lang {
                    "perf_lang"
                } else {
                    "perf_net"
                }
                .to_string();
            }
        }
    }
    for id in &ids {
        let known = experiments::IDS.contains(&id.as_str())
            || id == "perf"
            || id == "perf_sim"
            || id == "perf_lang"
            || id == "perf_net"
            || id == "shard";
        if !known {
            eprintln!("unknown experiment '{id}' (try --list)");
            std::process::exit(2);
        }
    }

    rayon::ThreadPoolBuilder::new()
        .num_threads(jobs)
        .build_global()
        .expect("thread pool setup");

    eprintln!("# vine-rs reproduction at scale {scale}");
    // fan the experiments out too (each also fans out its own cells);
    // results land in input-ordered slots and print sequentially below
    let tables: Vec<_> = ids
        .clone()
        .into_par_iter()
        .map(|id| {
            if id == "perf_net" {
                net::perf_net(scale, conns)
            } else {
                experiments::by_id(&id, scale).expect("id validated above")
            }
        })
        .collect();
    for table in &tables {
        if json {
            println!("{}", table.to_json());
        } else {
            table.print();
        }
    }

    // live transport rows ride along only when asked for: the default
    // output stays byte-identical to the committed reference
    if let Some(kind) = transport {
        if ids.iter().any(|i| i == "table2") {
            let live = live::table2_live(scale, kind == "tcp");
            if json {
                println!("{}", live.to_json());
            } else {
                live.print();
            }
        } else {
            eprintln!("--transport only affects table2; add it to the experiment list");
        }
    }
}
