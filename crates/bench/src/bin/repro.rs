//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro all [--scale 0.05] [--json]
//! repro fig6a table4 ...
//! repro --list
//! ```

use bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 1.0f64;
    let mut json = false;
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|s| *s > 0.0 && *s <= 1.0)
                    .unwrap_or_else(|| {
                        eprintln!("--scale expects a number in (0, 1]");
                        std::process::exit(2);
                    });
            }
            "--json" => json = true,
            "--list" => {
                for id in experiments::IDS {
                    println!("{id}");
                }
                return;
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [all | <id>...] [--scale S] [--json]\n\
                     experiments: {}\n\
                     extra: perf (scheduler self-benchmark, writes BENCH_sched.json)",
                    experiments::IDS.join(", ")
                );
                return;
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ids = experiments::IDS.iter().map(|s| s.to_string()).collect();
    }

    eprintln!("# vine-rs reproduction at scale {scale}");
    for id in &ids {
        match experiments::by_id(id, scale) {
            Some(table) => {
                if json {
                    println!("{}", table.to_json());
                } else {
                    table.print();
                }
            }
            None => {
                eprintln!("unknown experiment '{id}' (try --list)");
                std::process::exit(2);
            }
        }
    }
}
