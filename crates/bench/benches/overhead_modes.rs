//! Live per-invocation overhead by execution mode — the microbenchmark
//! behind the paper's Table 2: how much does it cost to run one trivial
//! function locally, as a reloaded stateless task, and as an invocation
//! against a retained library context?

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vine_core::context::CodeArtifact;
use vine_core::ids::TaskId;
use vine_core::task::TaskSpec;
use vine_lang::{pickle, Interp, ModuleRegistry, Value};
use vine_runtime::worker_host::execute_task;

const MODULE_SRC: &str = r#"
def context_setup(n) {
    global table
    table = []
    for i in range(n) { push(table, i * i) }
}
def lookup(i) {
    return table[i]
}
"#;

fn bench_local_invocation(c: &mut Criterion) {
    // the paper's "Local Invocation" row: a warm interpreter, direct call
    let mut interp = Interp::new();
    interp.exec_source(MODULE_SRC).unwrap();
    interp.exec_source("context_setup(512)").unwrap();
    c.bench_function("local_invocation", |b| {
        let mut i = 0i64;
        b.iter(|| {
            i = (i + 1) % 512;
            black_box(interp.call_global("lookup", &[Value::Int(i)]).unwrap())
        })
    });
}

fn bench_task_reload(c: &mut Criterion) {
    // the "Remote Task" cost structure: every execution reconstructs the
    // code AND re-runs the context setup
    let mut task = TaskSpec::new(TaskId(1), "wrapped");
    task.code = vec![CodeArtifact::Source {
        name: "module".into(),
        text: format!("{MODULE_SRC}\ncontext_setup(512)"),
    }];
    task.function = Some("lookup".into());
    task.args_blob = pickle::serialize_args(&[Value::Int(7)]).unwrap();
    c.bench_function("task_reloads_context", |b| {
        b.iter(|| black_box(execute_task(&task, ModuleRegistry::new())))
    });
}

fn bench_invocation_reuses_context(c: &mut Criterion) {
    // the "Remote Invocation" cost structure: context set up once, each
    // call pays only argument deserialization + execution + result
    // serialization
    let mut interp = Interp::new();
    interp.exec_source(MODULE_SRC).unwrap();
    interp.exec_source("context_setup(512)").unwrap();
    let args_blob = pickle::serialize_args(&[Value::Int(7)]).unwrap();
    c.bench_function("invocation_reuses_context", |b| {
        b.iter(|| {
            let args = pickle::deserialize_args(&args_blob, &interp.globals).unwrap();
            let out = interp.call_global("lookup", &args).unwrap();
            black_box(pickle::serialize_value(&out).unwrap())
        })
    });
}

fn bench_context_setup_itself(c: &mut Criterion) {
    // what reuse amortizes away: the setup cost itself
    c.bench_function("context_setup_cost", |b| {
        b.iter(|| {
            let mut interp = Interp::new();
            interp.exec_source(MODULE_SRC).unwrap();
            interp.exec_source("context_setup(512)").unwrap();
            black_box(interp.get_global("table").unwrap())
        })
    });
}

criterion_group!(
    benches,
    bench_local_invocation,
    bench_task_reload,
    bench_invocation_reuses_context,
    bench_context_setup_itself
);
criterion_main!(benches);
